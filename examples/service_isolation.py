#!/usr/bin/env python3
"""Inter-service traffic isolation (§6.1.2 / Figures 6-7).

Four services share a 1 GbE switch port under DWRR or WFQ; flows follow the
web search workload.  Compares TCN, CoDel, MQ-ECN (DWRR only — it cannot
run on WFQ) and per-queue ECN/RED with the standard threshold, across
loads, printing one FCT table per (scheduler, load) point.

Usage:
    python examples/service_isolation.py [--sched dwrr|wfq] [--flows N]
"""

import argparse

from repro import ExperimentConfig, format_fct_rows, run_experiment


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--sched", choices=("dwrr", "wfq"), default="dwrr")
    ap.add_argument("--flows", type=int, default=120)
    ap.add_argument("--loads", type=float, nargs="+", default=[0.5, 0.8])
    args = ap.parse_args()

    schemes = ["tcn", "codel", "red_std"]
    if args.sched == "dwrr":
        schemes.insert(2, "mqecn")  # round-robin only

    for load in args.loads:
        results = {}
        for scheme in schemes:
            cfg = ExperimentConfig(
                scheme=scheme,
                scheduler=args.sched,
                workload="websearch",
                load=load,
                n_flows=args.flows,
                n_queues=4,
                seed=7,
                init_cwnd=10,
            )
            results[scheme] = run_experiment(cfg)
        print(f"\n=== {args.sched.upper()}, load {load:.0%}, "
              f"{args.flows} web-search flows ===")
        print(format_fct_rows(results))


if __name__ == "__main__":
    main()
