#!/usr/bin/env python3
"""Traffic prioritization with PIAS flow scheduling (§6.1.3 / Figures 8-9).

Adds a strict higher-priority queue above the DWRR/WFQ service queues and
tags the first 100 KB of every flow into it (two-priority PIAS).  Small
flows finish entirely in the high-priority queue, so their tail FCT is
governed by how well each AQM protects the shared buffer — the experiment
where TCN's advantage over per-queue ECN/RED peaks (-82.8% average,
-95.3% 99th percentile in the paper's testbed).

Usage:
    python examples/traffic_prioritization.py [--sched sp_dwrr|sp_wfq]
"""

import argparse

from repro import ExperimentConfig, format_fct_rows, run_experiment


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--sched", choices=("sp_dwrr", "sp_wfq"), default="sp_dwrr")
    ap.add_argument("--flows", type=int, default=150)
    ap.add_argument("--load", type=float, default=0.8)
    args = ap.parse_args()

    results = {}
    for scheme in ("tcn", "codel", "red_std"):
        cfg = ExperimentConfig(
            scheme=scheme,
            scheduler=args.sched,
            n_queues=5,      # 1 strict-priority + 4 service queues
            n_high=1,
            pias=True,       # first 100 KB -> high-priority queue
            workload="websearch",
            load=args.load,
            n_flows=args.flows,
            seed=7,
            init_cwnd=10,
        )
        results[scheme] = run_experiment(cfg)

    print(f"=== {args.sched.upper()} + PIAS, load {args.load:.0%} ===")
    print(format_fct_rows(results))
    print("\nsmall-flow timeouts per scheme:",
          {k: r.timeouts_small for k, r in results.items()})


if __name__ == "__main__":
    main()
