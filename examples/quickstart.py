#!/usr/bin/env python3
"""Quickstart: compare TCN against per-queue ECN/RED in two minutes.

Runs the paper's inter-service isolation experiment (§6.1.2) in miniature:
8 senders fetch web-search-distributed flows toward one receiver through a
DWRR switch port with 4 service queues, at 70% load, under two marking
schemes.  Prints the FCT statistics the paper reports.

Usage:
    python examples/quickstart.py [n_flows]
"""

import sys

from repro import ExperimentConfig, format_fct_rows, run_experiment


def main() -> None:
    n_flows = int(sys.argv[1]) if len(sys.argv) > 1 else 120
    results = {}
    for scheme in ("tcn", "red_std"):
        cfg = ExperimentConfig(
            scheme=scheme,
            scheduler="dwrr",
            workload="websearch",
            load=0.7,
            n_flows=n_flows,
            n_queues=4,
            seed=1,
            init_cwnd=10,
        )
        print(f"running {scheme} ({n_flows} flows at load 0.7)...")
        results[scheme] = run_experiment(cfg)

    print()
    print(format_fct_rows(results))
    print()
    tcn, red = results["tcn"].summary, results["red_std"].summary
    if red.avg_small_ns and tcn.avg_small_ns:
        gain = (1 - tcn.avg_small_ns / red.avg_small_ns) * 100
        print(
            f"TCN reduces the average small-flow FCT by {gain:.0f}% "
            f"versus per-queue ECN/RED with the standard threshold."
        )


if __name__ == "__main__":
    main()
