#!/usr/bin/env python3
"""Partition-aggregate queries under incast — the paper's motivating
workload (§1), comparing burst tolerance across marking schemes.

An aggregator fans each query out to 16 workers; every worker answers with
64 KB simultaneously.  Query completion time (QCT) is bounded by the
slowest response, so a single switch-buffer overflow (and the 10 ms RTO it
causes) ruins the query.  TCN's instantaneous marking reins the responders
in within one RTT; queue-length RED with the standard threshold leaves the
shared buffer near-full and turns bursts into timeouts.

Usage:
    python examples/incast_queries.py [--workers N] [--queries N]
"""

import argparse
import statistics

from repro import (
    CoDel,
    DctcpSender,
    Flow,
    IncastApp,
    PerQueueRed,
    Receiver,
    Simulator,
    StarTopology,
    Tcn,
)
from repro.sched.fifo import FifoScheduler
from repro.units import GBPS, KB, MSEC, SEC, USEC

SCHEMES = {
    "tcn": lambda: Tcn(100 * USEC),
    "codel": lambda: CoDel(target_ns=20 * USEC, interval_ns=1 * MSEC),
    "red_std": lambda: PerQueueRed(125 * KB),
}


def run(scheme: str, n_workers: int, n_queries: int):
    sim = Simulator()
    topo = StarTopology(
        sim, n_workers + 1, 10 * GBPS,
        sched_factory=FifoScheduler,
        aqm_factory=SCHEMES[scheme],
        buffer_bytes=200 * KB,
        link_delay_ns=25_000,
    )
    # background elephants keep the shared buffer under pressure — the
    # regime where the marking scheme decides whether bursts survive
    for i in range(2):
        elephant = Flow(900_000 + i, 1 + i, 0, 4_000_000_000)
        Receiver(sim, topo.hosts[0], elephant)
        s = DctcpSender(sim, topo.hosts[1 + i], elephant,
                        init_cwnd=16, max_cwnd=400)
        sim.schedule(0, s.start)
    app = IncastApp(
        sim, topo.hosts[0], topo.hosts[1:],
        response_bytes=64 * KB,
        interval_ns=5 * MSEC,
        n_queries=n_queries,
        sender_cls=DctcpSender,
        init_cwnd=16,
        min_rto_ns=10 * MSEC,
        max_cwnd=400,
    )
    sim.schedule(1 * MSEC, app.start)
    sim.run(until=60 * SEC)
    qcts = sorted(app.qcts_ns())
    port = topo.port_to(0)
    return {
        "done": app.completed,
        "avg_us": statistics.mean(qcts) / 1000,
        "p99_us": qcts[max(0, int(0.99 * len(qcts)) - 1)] / 1000,
        "worst_us": qcts[-1] / 1000,
        "drops": port.stats.dropped_pkts,
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--workers", type=int, default=16)
    ap.add_argument("--queries", type=int, default=100)
    args = ap.parse_args()

    print(f"{args.workers}-way incast, 64 KB responses, "
          f"{args.queries} queries, 200 KB switch buffer\n")
    print(f"{'scheme':<9} {'avg QCT':>9} {'p99 QCT':>9} {'worst':>9} {'drops':>6}")
    print("-" * 48)
    for scheme in SCHEMES:
        r = run(scheme, args.workers, args.queries)
        print(f"{scheme:<9} {r['avg_us']:>7.0f}us {r['p99_us']:>7.0f}us "
              f"{r['worst_us']:>7.0f}us {r['drops']:>6}")


if __name__ == "__main__":
    main()
