#!/usr/bin/env python3
"""The static-flow experiment of §6.1.1 / Figure 5, built from the library
primitives directly (no harness) — a tour of the lower-level API.

Topology: 4 hosts on a 1 GbE switch running SP/WFQ with 3 queues.
 * queue 1 (strict high): one 500 Mbps application-limited flow,
 * queue 2: one greedy flow, started at t=1s,
 * queue 3: four greedy flows, started at t=2s,
plus a pinger measuring queue-3 RTT.

SP/WFQ policy says the goodputs must converge to 500 / 250 / 250 Mbps —
and under TCN they do, while RTT stays low.
"""

import statistics

from repro import (
    DctcpSender,
    Flow,
    GoodputTracker,
    Pinger,
    Receiver,
    Simulator,
    SpWfqScheduler,
    StarTopology,
    Tcn,
    make_queues,
)
from repro.units import GBPS, KB, MB, MBPS, MSEC, SEC, USEC


def main() -> None:
    sim = Simulator()
    topo = StarTopology(
        sim,
        n_hosts=4,
        link_rate_bps=GBPS,
        sched_factory=lambda: SpWfqScheduler(
            make_queues(3, quanta=[1500] * 3), n_high=1
        ),
        aqm_factory=lambda: Tcn(256 * USEC),   # RTT x lambda for the testbed
        buffer_bytes=96 * KB,
        link_delay_ns=62_500,                  # base RTT 250 us
    )

    tracker = GoodputTracker()

    def on_bytes(flow, nbytes, now):
        tracker.record(flow.service, nbytes, now)

    flow_id = 0
    for src, service, n_flows, start in (
        (0, 0, 1, 0),          # the 500 Mbps high-priority flow
        (1, 1, 1, 1 * SEC),    # one greedy flow in queue 2
        (2, 2, 4, 2 * SEC),    # four greedy flows in queue 3
    ):
        for _ in range(n_flows):
            flow_id += 1
            flow = Flow(flow_id, src, 3, 2000 * MB, service=service)
            Receiver(sim, topo.hosts[3], flow, on_bytes=on_bytes)
            sender = DctcpSender(
                sim,
                topo.hosts[src],
                flow,
                init_cwnd=10,
                app_rate_bps=500 * MBPS if service == 0 else None,
            )
            sim.schedule(start, sender.start)

    ping = Pinger(sim, topo.hosts[2], 3, flow_id=9999, dscp=2,
                  interval_ns=1 * MSEC)
    sim.schedule(2 * SEC + 100 * MSEC, ping.start)

    print("simulating 4 seconds...")
    sim.run(until=4 * SEC)

    print("\nsteady-state goodputs (t in [3s, 4s]):")
    for service in range(3):
        rate = tracker.goodput_bps(service, 3 * SEC, 4 * SEC)
        print(f"  queue {service + 1}: {rate / 1e6:7.1f} Mbps")

    rtts = sorted(ping.rtts_ns)
    print("\nqueue-3 RTT under TCN:")
    print(f"  average: {statistics.mean(rtts) / 1000:.0f} us")
    print(f"  99th pct: {rtts[int(0.99 * len(rtts)) - 1] / 1000:.0f} us")
    print("\n(SP/WFQ policy: 500 / 250 / 250 Mbps — preserved by TCN.)")


if __name__ == "__main__":
    main()
