#!/usr/bin/env python3
"""One TCN threshold, every scheduler — the paper's central claim.

Runs the same two-service contention pattern (1 flow vs 8 flows) under
five different packet schedulers — DWRR, WRR, WFQ, strict priority, and a
programmable PIFO with an STFQ rank — all with the *identical* TCN
configuration (a single 250 us sojourn threshold).  Per-queue goodputs
show each scheduler's policy enforced exactly; nothing about TCN had to
change between schedulers, which is precisely what queue-length ECN/RED
cannot offer (§3) and what MQ-ECN can only offer for the first two.
"""

from repro import (
    DctcpSender,
    DwrrScheduler,
    Flow,
    GoodputTracker,
    PifoScheduler,
    Receiver,
    Simulator,
    StarTopology,
    StrictPriorityScheduler,
    Tcn,
    WfqScheduler,
    WrrScheduler,
    make_queues,
)
from repro.sched.pifo import stfq_rank
from repro.units import GBPS, KB, MB, SEC, USEC

SCHEDULERS = {
    "dwrr": lambda: DwrrScheduler(make_queues(2, quanta=[1500, 1500])),
    "wrr": lambda: WrrScheduler(make_queues(2)),
    "wfq": lambda: WfqScheduler(make_queues(2)),
    "sp": lambda: StrictPriorityScheduler(make_queues(2)),
    "pifo-stfq": lambda: PifoScheduler(make_queues(2), rank_fn=stfq_rank),
}

#: what each policy should do with (service0: 1 flow) vs (service1: 8 flows)
EXPECTED = {
    "dwrr": "50% / 50%   (equal quanta)",
    "wrr": "50% / 50%   (equal weights)",
    "wfq": "50% / 50%   (equal weights)",
    "sp": "~100% / ~0%  (service 0 has strict priority)",
    "pifo-stfq": "50% / 50%   (STFQ rank emulates fair queueing)",
}


def run(sched_name: str) -> tuple:
    sim = Simulator()
    topo = StarTopology(
        sim, 3, GBPS,
        sched_factory=SCHEDULERS[sched_name],
        aqm_factory=lambda: Tcn(250 * USEC),  # the SAME config everywhere
        buffer_bytes=192 * KB,
        link_delay_ns=62_500,
    )
    tracker = GoodputTracker()
    on_bytes = lambda f, b, t: tracker.record(f.service, b, t)  # noqa: E731
    flows = [Flow(1, 0, 2, 500 * MB, service=0)]
    flows += [Flow(2 + i, 1, 2, 500 * MB, service=1) for i in range(8)]
    for f in flows:
        Receiver(sim, topo.hosts[2], f, on_bytes=on_bytes)
        s = DctcpSender(sim, topo.hosts[f.src], f, init_cwnd=10)
        sim.schedule(0, s.start)
    sim.run(until=2 * SEC)
    return (
        tracker.goodput_bps(0, 1 * SEC, 2 * SEC) / 1e6,
        tracker.goodput_bps(1, 1 * SEC, 2 * SEC) / 1e6,
    )


def main() -> None:
    print("TCN threshold: 250 us, identical for every scheduler\n")
    print(f"{'scheduler':<10} {'svc1 (1 flow)':>14} {'svc2 (8 flows)':>15}   policy")
    print("-" * 72)
    for name in SCHEDULERS:
        g1, g2 = run(name)
        print(f"{name:<10} {g1:>11.0f} Mbps {g2:>12.0f} Mbps   {EXPECTED[name]}")


if __name__ == "__main__":
    main()
