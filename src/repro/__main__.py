"""Command-line entry point: run one experiment and print its FCT table,
fan a parameter sweep across worker processes, or summarize a trace.

Examples::

    python -m repro --scheme tcn --scheduler dwrr --load 0.7 --flows 200
    python -m repro --scheme red_std --scheduler sp_wfq --pias --queues 5
    python -m repro --topology leafspine --workload mixed --transport ecnstar

    # record the packet-lifecycle trace of a run, then summarize it
    python -m repro run --scheme tcn --trace out.jsonl --ports
    python -m repro trace out.jsonl

    # convert the packet trace for https://ui.perfetto.dev
    python -m repro trace out.jsonl --format chrome --out trace.json

    # record the harness flight recorder, then inspect / export it
    python -m repro run --topology leafspine --workers 2 --spans spans.jsonl
    python -m repro timeline spans.jsonl --chrome timeline.json

    # one self-contained run report (markdown or HTML)
    python -m repro report --topology leafspine --workers 2 --out report.md

    # cartesian sweep (repeat a flag to add grid points), 4 workers,
    # results cached under benchmarks/.cache/
    python -m repro sweep --scheme tcn --scheme red_std \\
        --load 0.6 --load 0.9 --seed 1 --seed 2 --processes 4

    # hot-path microbenchmarks; gate against the committed baselines
    python -m repro bench --out bench-out --compare benchmarks/baselines

    # hybrid fluid/packet mode: long flows on the fluid solver
    python -m repro run --topology leafspine --workload bulk --mode hybrid

    # cross-validate fluid/hybrid accuracy against the packet engine
    python -m repro fluidcheck --json fluidcheck.json

    # simlint: determinism/hot-path static analysis (`--list-rules`
    # prints the current rule set)
    python -m repro lint --format json

    # re-lint only the files changed against a git base
    python -m repro lint --changed origin/main

    # run with every runtime invariant check armed (freelist poisoning,
    # pop-order, partition-ownership); zero overhead when off
    python -m repro run --topology leafspine --sanitize
"""

from __future__ import annotations

import argparse
import itertools
import sys

from repro.harness.config import ExperimentConfig
from repro.harness.report import (
    format_fct_rows,
    format_port_breakdown,
    format_stall_table,
)
from repro.harness.runner import run_experiment
from repro.harness.schemes import SCHEDULERS, SCHEMES, TRANSPORTS
from repro.harness.sweep import ResultCache, SweepResult, run_sweep
from repro.obs import (
    DEFAULT_CAPACITY,
    DEFAULT_SPAN_CAPACITY,
    RunProfile,
    SpanRecorder,
    Tracer,
    format_span_summary,
    format_trace_summary,
    load_spans_jsonl,
    stall_table,
    summarize_events,
    summarize_trace_file,
    trace_events_to_chrome,
    write_chrome,
)
from repro.obs.spans import write_chrome_doc
from repro.sim.equeue import BACKENDS
from repro.units import KB

_EQUEUE_CHOICES = sorted(BACKENDS) + ["auto"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a TCN-reproduction experiment.",
    )
    parser.add_argument("--scheme", default="tcn", choices=sorted(SCHEMES))
    parser.add_argument(
        "--scheduler", default="dwrr", choices=sorted(SCHEDULERS)
    )
    parser.add_argument(
        "--transport", default="dctcp", choices=sorted(TRANSPORTS)
    )
    parser.add_argument(
        "--topology", default="star", choices=("star", "leafspine")
    )
    parser.add_argument("--workload", default="websearch")
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument("--flows", type=int, default=200)
    parser.add_argument("--queues", type=int, default=4)
    parser.add_argument("--pias", action="store_true")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--buffer-kb", type=int, default=96, help="per-port buffer (KB)"
    )
    parser.add_argument(
        "--trace", metavar="PATH", default=None,
        help="record the event trace and write it as JSONL to PATH",
    )
    parser.add_argument(
        "--trace-limit", type=int, default=DEFAULT_CAPACITY,
        help="trace ring-buffer capacity in events (oldest evicted first)",
    )
    parser.add_argument(
        "--ports", action="store_true",
        help="print the per-port traffic/mark/drop breakdown",
    )
    parser.add_argument(
        "--equeue", default="heap", choices=_EQUEUE_CHOICES,
        help=(
            "event-queue backend (results are identical across backends; "
            "'auto' picks by workload shape)"
        ),
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help=(
            "partition the fabric across N worker processes (leafspine "
            "only; 0 = the serial engine; results are identical — see "
            "docs/PARALLEL.md)"
        ),
    )
    parser.add_argument(
        "--no-batch", action="store_false", dest="batch",
        help=(
            "disable the batched hot path (same-timestamp run draining "
            "and inline transmit trains); pure performance knob — "
            "results are bit-identical either way"
        ),
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help=(
            "arm the runtime sanitizer: freelist use-after-release / "
            "double-release poisoning, event-queue order checks, "
            "partition-ownership assertions (see docs/STATIC_ANALYSIS.md; "
            "also REPRO_SANITIZE=1)"
        ),
    )
    parser.add_argument(
        "--mode", default="packet", choices=("packet", "fluid", "hybrid"),
        help=(
            "simulation mode: 'packet' is the exact packet engine "
            "(default); 'fluid' solves every flow as a fluid rate; "
            "'hybrid' promotes flows of at least --fluid-size-bytes to "
            "the fluid solver and keeps short flows packet-exact (see "
            "docs/FLUID.md)"
        ),
    )
    parser.add_argument(
        "--fluid-size-bytes", type=int, default=1_000_000,
        help=(
            "hybrid-mode promotion threshold in bytes: flows at least "
            "this large go fluid (default 1000000)"
        ),
    )
    parser.add_argument(
        "--spans", metavar="PATH", default=None,
        help=(
            "record the harness flight recorder (chunk / round-phase / "
            "sync spans) and write it as JSONL to PATH — feed it to "
            "`repro timeline`"
        ),
    )
    parser.add_argument(
        "--spans-chrome", metavar="PATH", default=None,
        help=(
            "also export the flight recorder as Chrome trace-event JSON "
            "(open at https://ui.perfetto.dev); implies span recording"
        ),
    )
    parser.add_argument(
        "--span-limit", type=int, default=DEFAULT_SPAN_CAPACITY,
        help=(
            "span ring capacity (oldest rounds evicted first; default "
            f"{DEFAULT_SPAN_CAPACITY})"
        ),
    )
    return parser


def build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro trace",
        description=(
            "Summarize a JSONL event trace (written by `run --trace`): "
            "per-queue mark rates, sojourn percentiles, drop causes — "
            "or convert it to Chrome trace-event JSON for Perfetto."
        ),
    )
    parser.add_argument("path", help="JSONL trace file")
    parser.add_argument(
        "--format", choices=("summary", "chrome"), default="summary",
        help=(
            "'summary' prints the plain-text digest (default); 'chrome' "
            "converts packet sojourns / marks / drops / control-law "
            "series to Chrome trace-event JSON that overlays with "
            "`run --spans-chrome` output in one Perfetto view"
        ),
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="output file for --format chrome (default: <path>.chrome.json)",
    )
    return parser


def build_timeline_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro timeline",
        description=(
            "Inspect a flight-recorder JSONL export (written by "
            "`run --spans` / `sweep --spans` / `bench --spans`): prints "
            "the per-span-type digest and, for parallel runs, the "
            "round-phase stall-attribution table; optionally exports "
            "Chrome trace-event JSON for https://ui.perfetto.dev."
        ),
    )
    parser.add_argument("path", help="span JSONL file")
    parser.add_argument(
        "--chrome", metavar="PATH", default=None,
        help="also write the timeline as Chrome trace-event JSON",
    )
    return parser


def build_report_parser() -> argparse.ArgumentParser:
    parser = build_parser()
    parser.prog = "python -m repro report"
    parser.description = (
        "Run one experiment with the flight recorder on and render a "
        "self-contained run report (config, profile, FCT, stall "
        "attribution, hottest ports, timeline digest)."
    )
    parser.add_argument(
        "--out", metavar="PATH", default=None,
        help="report output file (default: stdout)",
    )
    parser.add_argument(
        "--format", choices=("md", "html"), default=None,
        help=(
            "report format (default: inferred from --out extension, "
            "falling back to markdown)"
        ),
    )
    parser.add_argument(
        "--top-ports", type=int, default=8,
        help="rows in the hottest-ports table (default 8)",
    )
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro sweep",
        description=(
            "Run a cartesian grid of experiments across worker processes "
            "with on-disk result caching.  Repeat --scheme/--scheduler/"
            "--transport/--workload/--load/--seed to add grid points."
        ),
    )
    parser.add_argument("--scheme", action="append", choices=sorted(SCHEMES))
    parser.add_argument(
        "--scheduler", action="append", choices=sorted(SCHEDULERS)
    )
    parser.add_argument(
        "--transport", action="append", choices=sorted(TRANSPORTS)
    )
    parser.add_argument("--workload", action="append")
    parser.add_argument("--load", type=float, action="append")
    parser.add_argument("--seed", type=int, action="append")
    parser.add_argument(
        "--topology", default="star", choices=("star", "leafspine")
    )
    parser.add_argument("--flows", type=int, default=200)
    parser.add_argument("--queues", type=int, default=4)
    parser.add_argument("--pias", action="store_true")
    parser.add_argument(
        "--buffer-kb", type=int, default=96, help="per-port buffer (KB)"
    )
    parser.add_argument(
        "--processes", type=int, default=None,
        help="worker processes (default: one per CPU; 0 = serial)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None,
        help="per-config wall-clock budget in seconds",
    )
    parser.add_argument(
        "--cache-dir", default=None,
        help="result cache directory (default: benchmarks/.cache)",
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="disable the result cache"
    )
    parser.add_argument(
        "--equeue", default="auto", choices=_EQUEUE_CHOICES,
        help=(
            "event-queue backend for every grid point (default auto: "
            "picked per config from its workload shape; results are "
            "identical across backends)"
        ),
    )
    parser.add_argument(
        "--mode", default="packet", choices=("packet", "fluid", "hybrid"),
        help=(
            "simulation mode for every grid point (result-affecting: "
            "cached results are keyed by it; see docs/FLUID.md)"
        ),
    )
    parser.add_argument(
        "--fluid-size-bytes", type=int, default=1_000_000,
        help=(
            "hybrid-mode promotion threshold in bytes (default 1000000)"
        ),
    )
    parser.add_argument(
        "--spans", metavar="PATH", default=None,
        help=(
            "record the sweep pool's job-lifecycle spans (dispatch -> "
            "completion, cache hits, worker identity, crash/timeout "
            "status) and write them as JSONL to PATH"
        ),
    )
    return parser


def build_fluidcheck_parser() -> argparse.ArgumentParser:
    from repro.harness.fluidcheck import CHECK_CONFIGS

    parser = argparse.ArgumentParser(
        prog="python -m repro fluidcheck",
        description=(
            "Cross-validate fluid/hybrid FCT and goodput against the "
            "packet engine on the pinned configs (see docs/FLUID.md); "
            "exit 1 on any tolerance violation."
        ),
    )
    parser.add_argument(
        "--config",
        action="append",
        choices=sorted(CHECK_CONFIGS),
        help="pinned config to check (repeatable; default: all)",
    )
    parser.add_argument(
        "--mode",
        action="append",
        choices=("hybrid", "fluid"),
        help="mode to cross-validate (repeatable; default: both)",
    )
    parser.add_argument(
        "--json",
        metavar="FILE",
        default=None,
        help="also write the checks as a JSON artifact (CI uploads it)",
    )
    return parser


def fluidcheck_main(argv=None) -> int:
    from repro.harness.fluidcheck import run_fluidcheck, write_json

    args = build_fluidcheck_parser().parse_args(argv)
    checks = run_fluidcheck(
        configs=args.config, modes=tuple(args.mode or ("hybrid", "fluid"))
    )
    violations = 0
    for check in checks:
        print(check.describe())
        violations += 0 if check.ok else 1
    if args.json is not None:
        write_json(checks, args.json)
        print(f"fluidcheck JSON -> {args.json}")
    if violations:
        print(f"{violations} tolerance violation(s)", file=sys.stderr)
        return 1
    return 0


def _sweep_label(result: SweepResult) -> str:
    cfg = result.config
    return f"{cfg.scheme}/{cfg.scheduler} load={cfg.load:g} seed={cfg.seed}"


def sweep_main(argv=None) -> int:
    args = build_sweep_parser().parse_args(argv)
    grid = itertools.product(
        args.scheme or ["tcn"],
        args.scheduler or ["dwrr"],
        args.transport or ["dctcp"],
        args.workload or ["websearch"],
        args.load or [0.7],
        args.seed or [1],
    )
    configs = [
        ExperimentConfig(
            scheme=scheme,
            scheduler=scheduler,
            transport=transport,
            workload=workload,
            load=load,
            seed=seed,
            topology=args.topology,
            n_flows=args.flows,
            n_queues=args.queues,
            pias=args.pias,
            buffer_bytes=args.buffer_kb * KB,
            equeue=args.equeue,
            mode=args.mode,
            fluid_size_bytes=args.fluid_size_bytes,
        )
        for scheme, scheduler, transport, workload, load, seed in grid
    ]
    try:
        for cfg in configs:
            cfg.validate()
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cache = None if args.no_cache else ResultCache(args.cache_dir)

    # live tallies across progress callbacks: aggregate simulation
    # throughput of the runs that actually ran, and the cache-hit ratio
    live = {"events": 0, "wall": 0.0, "hits": 0}

    def progress(done: int, total: int, result: SweepResult) -> None:
        if result.error is not None:
            status = f"ERROR ({result.error.kind})"
        elif result.from_cache:
            live["hits"] += 1
            status = "cached"
        else:
            live["events"] += result.events
            live["wall"] += result.wall_s
            status = (
                f"ran {result.wall_s:.1f}s wall, "
                f"{result.sim_ns / 1e9:.2f}s sim, {result.events} events"
            )
        rate = (
            f"{live['events'] / live['wall'] / 1e3:.0f}k ev/s"
            if live["wall"] > 0
            else "- ev/s"
        )
        print(
            f"[{done}/{total}] {_sweep_label(result)}: {status} "
            f"| {rate}, {live['hits']}/{done} cached"
        )

    spans = SpanRecorder(pid="sweep") if args.spans else None
    outcome = run_sweep(
        configs,
        processes=args.processes,
        timeout_s=args.timeout,
        cache=cache,
        progress=progress,
        spans=spans,
    )
    if spans is not None:
        n = spans.export_jsonl(args.spans)
        print(f"wrote {n} sweep spans to {args.spans}")
    rows = {_sweep_label(r): r for r in outcome if r.ok}
    if rows:
        print()
        print(format_fct_rows(rows))
    for result in outcome.errors():
        print(f"\nFAILED {_sweep_label(result)}: {result.error.message}")
        if result.error.traceback:
            print(result.error.traceback)
    stats = outcome.stats
    rate = (
        f"; {stats.events_per_sec / 1e3:.0f}k sim events/s"
        if stats.sim_events
        else ""
    )
    print(
        f"\n{stats.total} configs in {stats.wall_s:.1f}s: "
        f"{stats.cache_hits} cache hits, {stats.cache_misses} misses, "
        f"{stats.errors} errors{rate}"
    )
    if stats.serial_fallback:
        print(
            "note: no usable multiprocessing start method on this "
            "platform; the sweep ran serially"
        )
    return 0 if outcome.ok else 1


def trace_main(argv=None) -> int:
    args = build_trace_parser().parse_args(argv)
    if args.format == "chrome":
        out = args.out or args.path + ".chrome.json"
        try:
            events = load_spans_jsonl(args.path)  # generic JSONL reader
        except OSError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        n = write_chrome_doc(trace_events_to_chrome(events), out)
        print(
            f"wrote {n} Chrome trace events to {out} "
            f"(open at https://ui.perfetto.dev)"
        )
        return 0
    try:
        summary = summarize_trace_file(args.path)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_trace_summary(summary))
    return 0


def timeline_main(argv=None) -> int:
    args = build_timeline_parser().parse_args(argv)
    try:
        spans = load_spans_jsonl(args.path)
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(format_span_summary(spans))
    phase_stats = stall_table(spans)
    if phase_stats is not None:
        print()
        print(format_stall_table(phase_stats))
    if args.chrome is not None:
        n = write_chrome(spans, args.chrome)
        print(
            f"\nwrote {n} timeline slices to {args.chrome} "
            f"(open at https://ui.perfetto.dev)"
        )
    return 0


def report_main(argv=None) -> int:
    from repro.harness.runreport import render_run_report

    args = build_report_parser().parse_args(argv)
    fmt = args.format
    if fmt is None:
        fmt = (
            "html"
            if args.out is not None
            and args.out.lower().endswith((".html", ".htm"))
            else "md"
        )
    cfg = _config_from_args(args)
    spans = SpanRecorder(capacity=args.span_limit, pid="run")
    tracer = Tracer(capacity=args.trace_limit) if args.trace else None
    result = run_experiment(cfg, tracer=tracer, spans=spans)
    if tracer is not None:
        tracer.export_jsonl(args.trace)
    if args.spans is not None:
        spans.export_jsonl(args.spans)
    if args.spans_chrome is not None:
        spans.export_chrome(args.spans_chrome)
    document = render_run_report(
        result, spans=spans, top_ports=args.top_ports, fmt=fmt
    )
    if args.out is None:
        print(document)
    else:
        with open(args.out, "w") as fh:
            fh.write(document)
            if not document.endswith("\n"):
                fh.write("\n")
        print(f"wrote {fmt} run report to {args.out}")
    return 0 if result.all_completed else 1


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    return ExperimentConfig(
        scheme=args.scheme,
        scheduler=args.scheduler,
        transport=args.transport,
        topology=args.topology,
        workload=args.workload,
        load=args.load,
        n_flows=args.flows,
        n_queues=args.queues,
        pias=args.pias,
        seed=args.seed,
        buffer_bytes=args.buffer_kb * KB,
        equeue=args.equeue,
        workers=args.workers,
        batch=args.batch,
        sanitize=args.sanitize,
        mode=args.mode,
        fluid_size_bytes=args.fluid_size_bytes,
    )


def main(argv=None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "sweep":
        return sweep_main(argv[1:])
    if argv and argv[0] == "trace":
        return trace_main(argv[1:])
    if argv and argv[0] == "timeline":
        return timeline_main(argv[1:])
    if argv and argv[0] == "report":
        return report_main(argv[1:])
    if argv and argv[0] == "bench":
        from repro.bench.cli import main as bench_main

        return bench_main(argv[1:])
    if argv and argv[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(argv[1:])
    if argv and argv[0] == "fluidcheck":
        return fluidcheck_main(argv[1:])
    if argv and argv[0] == "run":
        # explicit subcommand form; bare flags still mean "run" for
        # backward compatibility
        argv = argv[1:]
    args = build_parser().parse_args(argv)
    cfg = _config_from_args(args)
    tracer = Tracer(capacity=args.trace_limit) if args.trace else None
    spans = (
        SpanRecorder(capacity=args.span_limit, pid="run")
        if (args.spans or args.spans_chrome)
        else None
    )
    result = run_experiment(cfg, tracer=tracer, spans=spans)
    print(format_fct_rows({args.scheme: result}))
    print(
        f"\ncompleted {result.completed}/{result.total} flows in "
        f"{result.sim_ns / 1e9:.2f} simulated seconds "
        f"({result.wall_s:.1f}s wall); "
        f"{result.timeouts} timeouts, {result.drops} drops, "
        f"{result.marks} ECN marks"
    )
    # from_dict tolerates the partitioned runner's extra profile keys
    profile_line = RunProfile.from_dict(result.profile).describe()
    if "workers" in result.profile:
        profile_line += (
            f", {result.profile['workers']} workers "
            f"({result.profile['start_method']}, "
            f"{result.profile['rounds']} sync rounds, "
            f"{result.profile['sync_stall_s']:.1f}s stalled)"
        )
    print("profile: " + profile_line)
    if args.ports:
        print()
        print(format_port_breakdown(result.metrics))
    if tracer is not None:
        n = tracer.export_jsonl(args.trace)
        evicted = (
            f" ({tracer.dropped_events} evicted from the ring)"
            if tracer.dropped_events
            else ""
        )
        print(f"\nwrote {n} trace events to {args.trace}{evicted}")
        print()
        print(format_trace_summary(summarize_events(tracer.iter_dicts())))
    if spans is not None:
        evicted = (
            f" ({spans.dropped_spans} older spans evicted)"
            if spans.dropped_spans
            else ""
        )
        if args.spans:
            n = spans.export_jsonl(args.spans)
            print(f"\nwrote {n} spans to {args.spans}{evicted}")
        if args.spans_chrome:
            n = spans.export_chrome(args.spans_chrome)
            print(
                f"\nwrote {n} timeline slices to {args.spans_chrome} "
                f"(open at https://ui.perfetto.dev){evicted}"
            )
        phase_stats = result.profile.get("phase_stats")
        if isinstance(phase_stats, dict):
            print()
            print(format_stall_table(phase_stats))
    return 0 if result.all_completed else 1


if __name__ == "__main__":
    sys.exit(main())
