"""Command-line entry point: run one experiment and print its FCT table.

Examples::

    python -m repro --scheme tcn --scheduler dwrr --load 0.7 --flows 200
    python -m repro --scheme red_std --scheduler sp_wfq --pias --queues 5
    python -m repro --topology leafspine --workload mixed --transport ecnstar
"""

from __future__ import annotations

import argparse
import sys

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_fct_rows
from repro.harness.runner import run_experiment
from repro.harness.schemes import SCHEDULERS, SCHEMES, TRANSPORTS
from repro.units import KB


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run a TCN-reproduction experiment.",
    )
    parser.add_argument("--scheme", default="tcn", choices=sorted(SCHEMES))
    parser.add_argument(
        "--scheduler", default="dwrr", choices=sorted(SCHEDULERS)
    )
    parser.add_argument(
        "--transport", default="dctcp", choices=sorted(TRANSPORTS)
    )
    parser.add_argument(
        "--topology", default="star", choices=("star", "leafspine")
    )
    parser.add_argument("--workload", default="websearch")
    parser.add_argument("--load", type=float, default=0.7)
    parser.add_argument("--flows", type=int, default=200)
    parser.add_argument("--queues", type=int, default=4)
    parser.add_argument("--pias", action="store_true")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument(
        "--buffer-kb", type=int, default=96, help="per-port buffer (KB)"
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    cfg = ExperimentConfig(
        scheme=args.scheme,
        scheduler=args.scheduler,
        transport=args.transport,
        topology=args.topology,
        workload=args.workload,
        load=args.load,
        n_flows=args.flows,
        n_queues=args.queues,
        pias=args.pias,
        seed=args.seed,
        buffer_bytes=args.buffer_kb * KB,
    )
    result = run_experiment(cfg)
    print(format_fct_rows({args.scheme: result}))
    print(
        f"\ncompleted {result.completed}/{result.total} flows in "
        f"{result.sim_ns / 1e9:.2f} simulated seconds "
        f"({result.wall_s:.1f}s wall); "
        f"{result.timeouts} timeouts, {result.drops} drops, "
        f"{result.marks} ECN marks"
    )
    return 0 if result.all_completed else 1


if __name__ == "__main__":
    sys.exit(main())
