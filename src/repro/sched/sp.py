"""Strict priority scheduling.

The queue with the numerically lowest ``priority`` value that holds a packet
is always served first; ties break toward the lower queue index.  Pure SP is
one of the two fixed-function disciplines commodity chips universally offer
(§2.2) and one of the schedulers MQ-ECN cannot support.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler


class StrictPriorityScheduler(Scheduler):
    """Serve queues in fixed priority order.

    If queues are constructed without explicit priorities, the queue index
    is used (queue 0 is the highest priority), matching common hardware
    defaults.
    """

    __slots__ = ("_order",)

    def __init__(self, queues: List[PacketQueue]) -> None:
        super().__init__(queues)
        if all(q.priority == 0 for q in queues) and len(queues) > 1:
            for q in queues:
                q.priority = q.index
        # fixed service order, computed once
        self._order = sorted(queues, key=lambda q: (q.priority, q.index))

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        self._account_enqueue(pkt, qidx)

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        for queue in self._order:
            if queue:
                return self._account_dequeue(queue), queue
        return None
