"""Weighted Round Robin (WRR): ``weight`` whole packets per service turn.

Simpler (and less byte-fair) than DWRR — included because the paper lists
WRR alongside DWRR as the round-robin disciplines MQ-ECN supports, so our
MQ-ECN implementation must run on it too.  The round observer fires exactly
as in :class:`~repro.sched.dwrr.DwrrScheduler`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler


class WrrScheduler(Scheduler):
    """Round robin serving ``round(weight)`` packets per turn (min 1)."""

    __slots__ = (
        "_active", "_in_active", "_credit", "_needs_refresh",
        "_last_turn_start",
    )

    supports_rounds = True

    def __init__(self, queues: List[PacketQueue]) -> None:
        super().__init__(queues)
        n = len(queues)
        self._active: Deque[PacketQueue] = deque()
        self._in_active = [False] * n
        self._credit = [0] * n
        self._needs_refresh = [True] * n
        self._last_turn_start: List[Optional[int]] = [None] * n

    def _packets_per_turn(self, queue: PacketQueue) -> int:
        return max(1, round(queue.weight))

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        queue = self._account_enqueue(pkt, qidx)
        if not self._in_active[qidx]:
            self._active.append(queue)
            self._in_active[qidx] = True
            self._credit[qidx] = 0
            self._needs_refresh[qidx] = True
            self._last_turn_start[qidx] = None

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        active = self._active
        while active:
            queue = active[0]
            idx = queue.index
            if self._needs_refresh[idx]:
                last = self._last_turn_start[idx]
                if last is not None and self.round_observer is not None and now > last:
                    self.round_observer(queue, now - last, now)
                self._last_turn_start[idx] = now
                self._credit[idx] = self._packets_per_turn(queue)
                self._needs_refresh[idx] = False
            if self._credit[idx] > 0:
                self._credit[idx] -= 1
                pkt = self._account_dequeue(queue)
                if not queue:
                    active.popleft()
                    self._in_active[idx] = False
                    self._needs_refresh[idx] = True
                return pkt, queue
            active.popleft()
            active.append(queue)
            self._needs_refresh[idx] = True
        return None
