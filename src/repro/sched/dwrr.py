"""Deficit Weighted Round Robin (DWRR).

The classic Shreedhar-Varghese discipline: active queues sit in a circular
list; each time a queue reaches the head of the list it earns ``quantum``
bytes of deficit, spends it on whole packets, and rotates to the tail when
the head packet no longer fits.

This implementation additionally measures the *round time* — the interval
between two consecutive service-turn starts of the same queue — and reports
it through :attr:`~repro.sched.base.Scheduler.round_observer`.  That is the
quantity MQ-ECN divides the quantum by to estimate queue capacity (§3.3),
and is exactly the per-queue timestamp the paper's qdisc prototype keeps
(§5, "to implement MQ-ECN, we maintain a timestamp for each queue to track
round time").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler


class DwrrScheduler(Scheduler):
    """Deficit weighted round robin over the queue bank."""

    __slots__ = (
        "_active", "_in_active", "_deficit", "_needs_refresh",
        "_last_turn_start",
    )

    supports_rounds = True

    def __init__(self, queues: List[PacketQueue]) -> None:
        super().__init__(queues)
        n = len(queues)
        self._active: Deque[PacketQueue] = deque()
        self._in_active = [False] * n
        self._deficit = [0] * n
        self._needs_refresh = [True] * n
        self._last_turn_start: List[Optional[int]] = [None] * n

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        # inlined PacketQueue.push + byte accounting (hot path)
        queue = self.queues[qidx]
        queue._pkts.append(pkt)
        size = pkt.wire_size
        queue.bytes = qbytes = queue.bytes + size
        queue.enqueued_pkts += 1
        if qbytes > queue.max_bytes_seen:
            queue.max_bytes_seen = qbytes
        self.total_bytes += size
        if not self._in_active[qidx]:
            self._active.append(queue)
            self._in_active[qidx] = True
            self._deficit[qidx] = 0
            self._needs_refresh[qidx] = True
            # A queue that went idle and came back starts a fresh round
            # history: the gap while idle is not a service-round sample.
            self._last_turn_start[qidx] = None

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        active = self._active
        deficit = self._deficit
        refresh = self._needs_refresh
        while active:
            queue = active[0]
            idx = queue.index
            if refresh[idx]:
                self._start_turn(queue, now)
            # active queues are never empty; direct head peek (hot path)
            head_size = queue._pkts[0].wire_size
            if (
                head_size > deficit[idx]
                and len(active) == 1
                and self.round_observer is None
            ):
                # Lone active queue, no round observer: every rotation
                # below returns straight here at this same ``now`` and
                # grants one quantum with no other effect (``_start_turn``
                # has already stamped ``now``, so ``now > last`` stays
                # false).  Fold the k spins into one grant — same final
                # deficit and bookkeeping, byte-identical dequeue order.
                quantum = queue.quantum
                short = head_size - deficit[idx]
                deficit[idx] += ((short + quantum - 1) // quantum) * quantum
                self._last_turn_start[idx] = now
                refresh[idx] = False
            if head_size <= deficit[idx]:
                deficit[idx] -= head_size
                # inlined PacketQueue.pop + byte accounting (hot path)
                pkt = queue._pkts.popleft()
                queue.bytes -= head_size
                queue.dequeued_pkts += 1
                queue.dequeued_bytes += head_size
                self.total_bytes -= head_size
                if not queue:
                    active.popleft()
                    self._in_active[idx] = False
                    deficit[idx] = 0
                    refresh[idx] = True
                return pkt, queue
            # Deficit exhausted: rotate to the tail; the next visit starts a
            # new service turn (and earns a new quantum).
            active.popleft()
            active.append(queue)
            refresh[idx] = True
        return None

    def _start_turn(self, queue: PacketQueue, now: int) -> None:
        idx = queue.index
        last = self._last_turn_start[idx]
        if last is not None and self.round_observer is not None and now > last:
            self.round_observer(queue, now - last, now)
        self._last_turn_start[idx] = now
        self._deficit[idx] += queue.quantum
        self._needs_refresh[idx] = False
