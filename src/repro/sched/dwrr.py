"""Deficit Weighted Round Robin (DWRR).

The classic Shreedhar-Varghese discipline: active queues sit in a circular
list; each time a queue reaches the head of the list it earns ``quantum``
bytes of deficit, spends it on whole packets, and rotates to the tail when
the head packet no longer fits.

This implementation additionally measures the *round time* — the interval
between two consecutive service-turn starts of the same queue — and reports
it through :attr:`~repro.sched.base.Scheduler.round_observer`.  That is the
quantity MQ-ECN divides the quantum by to estimate queue capacity (§3.3),
and is exactly the per-queue timestamp the paper's qdisc prototype keeps
(§5, "to implement MQ-ECN, we maintain a timestamp for each queue to track
round time").
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler


class DwrrScheduler(Scheduler):
    """Deficit weighted round robin over the queue bank."""

    supports_rounds = True

    def __init__(self, queues: List[PacketQueue]) -> None:
        super().__init__(queues)
        n = len(queues)
        self._active: Deque[PacketQueue] = deque()
        self._in_active = [False] * n
        self._deficit = [0] * n
        self._needs_refresh = [True] * n
        self._last_turn_start: List[Optional[int]] = [None] * n

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        queue = self._account_enqueue(pkt, qidx)
        if not self._in_active[qidx]:
            self._active.append(queue)
            self._in_active[qidx] = True
            self._deficit[qidx] = 0
            self._needs_refresh[qidx] = True
            # A queue that went idle and came back starts a fresh round
            # history: the gap while idle is not a service-round sample.
            self._last_turn_start[qidx] = None

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        active = self._active
        while active:
            queue = active[0]
            idx = queue.index
            if self._needs_refresh[idx]:
                self._start_turn(queue, now)
            head = queue.head()
            assert head is not None  # active queues are never empty
            if head.wire_size <= self._deficit[idx]:
                self._deficit[idx] -= head.wire_size
                pkt = self._account_dequeue(queue)
                if not queue:
                    active.popleft()
                    self._in_active[idx] = False
                    self._deficit[idx] = 0
                    self._needs_refresh[idx] = True
                return pkt, queue
            # Deficit exhausted: rotate to the tail; the next visit starts a
            # new service turn (and earns a new quantum).
            active.popleft()
            active.append(queue)
            self._needs_refresh[idx] = True
        return None

    def _start_turn(self, queue: PacketQueue, now: int) -> None:
        idx = queue.index
        last = self._last_turn_start[idx]
        if last is not None and self.round_observer is not None and now > last:
            self.round_observer(queue, now - last, now)
        self._last_turn_start[idx] = now
        self._deficit[idx] += queue.quantum
        self._needs_refresh[idx] = False
