"""Packet schedulers: FIFO, SP, WRR, DWRR, WFQ, SP hybrids, and PIFO.

All schedulers share the :class:`~repro.sched.base.Scheduler` interface so an
egress port (and any AQM) is agnostic to the discipline — the property that
TCN exploits and queue-length ECN/RED cannot.
"""

from repro.sched.base import Scheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.sp import StrictPriorityScheduler
from repro.sched.wrr import WrrScheduler
from repro.sched.dwrr import DwrrScheduler
from repro.sched.wfq import WfqScheduler
from repro.sched.hybrid import SpDwrrScheduler, SpWfqScheduler
from repro.sched.pifo import PifoScheduler, stfq_rank, lstf_rank

__all__ = [
    "Scheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "WrrScheduler",
    "DwrrScheduler",
    "WfqScheduler",
    "SpDwrrScheduler",
    "SpWfqScheduler",
    "PifoScheduler",
    "stfq_rank",
    "lstf_rank",
]
