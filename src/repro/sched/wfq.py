"""Weighted Fair Queueing, self-clocked (SCFQ) flavour.

Each queue carries a running *virtual finish time*; an arriving packet is
stamped ``max(V, last_finish) + size / weight`` and the scheduler always
transmits the head packet with the smallest stamp, advancing the system
virtual time ``V`` to that stamp.  This is the "maintain a virtual time for
the head packet of each queue, choose the smallest" design the paper's qdisc
prototype describes (§5), and it has no notion of a round — which is why
MQ-ECN cannot run on it while TCN can.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler


class WfqScheduler(Scheduler):
    """Self-clocked weighted fair queueing."""

    __slots__ = ("_tags", "_last_finish", "_vtime")

    def __init__(self, queues: List[PacketQueue]) -> None:
        super().__init__(queues)
        for queue in queues:
            if queue.weight <= 0:
                raise ValueError(
                    f"WFQ weights must be positive (queue {queue.index} "
                    f"has {queue.weight})"
                )
        n = len(queues)
        # Virtual finish tag of each buffered packet, FIFO per queue.
        self._tags: List[Deque[float]] = [deque() for _ in range(n)]
        self._last_finish = [0.0] * n
        self._vtime = 0.0

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        queue = self._account_enqueue(pkt, qidx)
        start = max(self._vtime, self._last_finish[qidx])
        finish = start + pkt.wire_size / queue.weight
        self._last_finish[qidx] = finish
        self._tags[qidx].append(finish)

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        best_queue: Optional[PacketQueue] = None
        best_tag = 0.0
        for queue in self.queues:
            if not queue:
                continue
            tag = self._tags[queue.index][0]
            if best_queue is None or tag < best_tag:
                best_queue = queue
                best_tag = tag
        if best_queue is None:
            return None
        self._tags[best_queue.index].popleft()
        self._vtime = best_tag
        pkt = self._account_dequeue(best_queue)
        if self.total_bytes == 0:
            # System idle: reset virtual time so tags do not grow without
            # bound over a long simulation.
            self._vtime = 0.0
            for i in range(len(self._last_finish)):
                self._last_finish[i] = 0.0
        return pkt, best_queue
