"""SP/WFQ and SP/DWRR: strict priority over a fair-queued low band.

These are the paper's production-style hybrids (§5): a handful of strict
higher-priority queues for latency-critical traffic, with all remaining
queues sharing the lowest priority under WFQ or DWRR.  Packets are only
drawn from the low band when every high-priority queue is empty.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler
from repro.sched.dwrr import DwrrScheduler
from repro.sched.wfq import WfqScheduler


class _SpOverScheduler(Scheduler):
    """Shared machinery: first ``n_high`` queues strict, rest delegated."""

    _low_cls: type = None  # type: ignore[assignment]

    def __init__(self, queues: List[PacketQueue], n_high: int = 1) -> None:
        if not 0 < n_high < len(queues):
            raise ValueError(
                f"need 0 < n_high < n_queues, got n_high={n_high} "
                f"with {len(queues)} queues"
            )
        super().__init__(queues)
        self._high = queues[:n_high]
        # The low-band sub-scheduler works on re-indexed queue objects; we
        # keep the original objects (global indices) and translate.
        self._low_queues = queues[n_high:]
        self._n_high = n_high
        self._low = self._make_low(self._low_queues, n_high)

    def _make_low(self, low_queues: List[PacketQueue], n_high: int) -> Scheduler:
        raise NotImplementedError

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        if qidx < self._n_high:
            self._account_enqueue(pkt, qidx)
        else:
            self.total_bytes += pkt.wire_size
            self._low.enqueue(pkt, qidx - self._n_high, now)

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        for queue in self._high:
            if queue:
                return self._account_dequeue(queue), queue
        result = self._low.dequeue(now)
        if result is None:
            return None
        pkt, queue = result
        self.total_bytes -= pkt.wire_size
        return pkt, queue


def _reindex(queues: List[PacketQueue]) -> List[PacketQueue]:
    """Give the low-band queues local indices 0..n-1 for the sub-scheduler.

    The queue objects themselves are shared (byte counts, stats and AQM
    state remain global); only ``index`` is rewritten, so the global
    classifier must map DSCPs to *global* indices and the hybrid translates.
    """
    for local, queue in enumerate(queues):
        queue.index = local
    return queues


class SpDwrrScheduler(_SpOverScheduler):
    """Strict priority queues over a DWRR low band (paper's SP/DWRR)."""

    supports_rounds = True  # rounds exist within the DWRR band

    def _make_low(self, low_queues: List[PacketQueue], n_high: int) -> Scheduler:
        return DwrrScheduler(_reindex(low_queues))

    @property
    def round_observer(self):  # type: ignore[override]
        return self._low.round_observer

    @round_observer.setter
    def round_observer(self, fn) -> None:
        # During base-class __init__ the low scheduler does not exist yet.
        low = getattr(self, "_low", None)
        if low is not None:
            low.round_observer = fn


class SpWfqScheduler(_SpOverScheduler):
    """Strict priority queues over a WFQ low band (paper's SP/WFQ)."""

    def _make_low(self, low_queues: List[PacketQueue], n_high: int) -> Scheduler:
        return WfqScheduler(_reindex(low_queues))
