"""SP/WFQ and SP/DWRR: strict priority over a fair-queued low band.

These are the paper's production-style hybrids (§5): a handful of strict
higher-priority queues for latency-critical traffic, with all remaining
queues sharing the lowest priority under WFQ or DWRR.  Packets are only
drawn from the low band when every high-priority queue is empty.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import RoundObserver, Scheduler
from repro.sched.dwrr import DwrrScheduler
from repro.sched.wfq import WfqScheduler


class _SpOverScheduler(Scheduler):
    """Shared machinery: first ``n_high`` queues strict, rest delegated."""

    __slots__ = ("_high", "_low_queues", "_n_high", "_low")

    _low_cls: type = None  # type: ignore[assignment]

    def __init__(self, queues: List[PacketQueue], n_high: int = 1) -> None:
        if not 0 < n_high < len(queues):
            raise ValueError(
                f"need 0 < n_high < n_queues, got n_high={n_high} "
                f"with {len(queues)} queues"
            )
        super().__init__(queues)
        self._high = queues[:n_high]
        # The low-band sub-scheduler works on re-indexed queue objects; we
        # keep the original objects (global indices) and translate.
        self._low_queues = queues[n_high:]
        self._n_high = n_high
        self._low = self._make_low(self._low_queues, n_high)

    def _make_low(self, low_queues: List[PacketQueue], n_high: int) -> Scheduler:
        raise NotImplementedError

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        if qidx < self._n_high:
            # inlined PacketQueue.push + byte accounting (hot path)
            queue = self.queues[qidx]
            queue._pkts.append(pkt)
            size = pkt.wire_size
            queue.bytes = qbytes = queue.bytes + size
            queue.enqueued_pkts += 1
            if qbytes > queue.max_bytes_seen:
                queue.max_bytes_seen = qbytes
            self.total_bytes += size
        else:
            self.total_bytes += pkt.wire_size
            self._low.enqueue(pkt, qidx - self._n_high, now)

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        for queue in self._high:
            if queue._pkts:
                # inlined PacketQueue.pop + byte accounting (hot path)
                pkt = queue._pkts.popleft()
                size = pkt.wire_size
                queue.bytes -= size
                queue.dequeued_pkts += 1
                queue.dequeued_bytes += size
                self.total_bytes -= size
                return pkt, queue
        result = self._low.dequeue(now)
        if result is None:
            return None
        pkt, queue = result
        self.total_bytes -= pkt.wire_size
        return pkt, queue


def _reindex(queues: List[PacketQueue]) -> List[PacketQueue]:
    """Give the low-band queues local indices 0..n-1 for the sub-scheduler.

    The queue objects themselves are shared (byte counts, stats and AQM
    state remain global); only ``index`` is rewritten, so the global
    classifier must map DSCPs to *global* indices and the hybrid translates.
    """
    for local, queue in enumerate(queues):
        queue.index = local
    return queues


class SpDwrrScheduler(_SpOverScheduler):
    """Strict priority queues over a DWRR low band (paper's SP/DWRR).

    This is the fabric scheduler of the paper-scale leaf-spine runs, so
    unlike its WFQ sibling it does not take the generic delegation path:
    ``enqueue``/``dequeue`` below flatten the high-band check and the
    DWRR rotation into single methods operating on the band's state
    directly (one Python frame per packet instead of three).  The
    behaviour is identical to ``_SpOverScheduler`` over ``DwrrScheduler``
    — the scheduler-equivalence tests hold both to the same reference
    model.
    """

    __slots__ = ("_high0", "_lo_active", "_lo_deficit", "_lo_refresh")

    supports_rounds = True  # rounds exist within the DWRR band

    def __init__(self, queues: List[PacketQueue], n_high: int = 1) -> None:
        super().__init__(queues, n_high)
        # flatten one attribute hop off every per-packet access: the DWRR
        # band's structures are created once and only ever mutated in
        # place, so aliasing them here is safe
        low = self._low
        self._lo_active = low._active
        self._lo_deficit = low._deficit
        self._lo_refresh = low._needs_refresh
        # the overwhelmingly common shape is a single strict queue; skip
        # the list iteration for it
        self._high0 = self._high[0] if len(self._high) == 1 else None

    def _make_low(self, low_queues: List[PacketQueue], n_high: int) -> Scheduler:
        return DwrrScheduler(_reindex(low_queues))

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        size = pkt.wire_size
        queue = self.queues[qidx]
        if qidx >= self._n_high:
            low = self._low
            lidx = queue.index
            low.total_bytes += size
            if not low._in_active[lidx]:
                self._lo_active.append(queue)
                low._in_active[lidx] = True
                self._lo_deficit[lidx] = 0
                self._lo_refresh[lidx] = True
                low._last_turn_start[lidx] = None
        # inlined PacketQueue.push + byte accounting (hot path)
        queue._pkts.append(pkt)
        queue.bytes = qbytes = queue.bytes + size
        queue.enqueued_pkts += 1
        if qbytes > queue.max_bytes_seen:
            queue.max_bytes_seen = qbytes
        self.total_bytes += size

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        queue = self._high0
        if queue is not None:
            if queue._pkts:
                # inlined PacketQueue.pop + byte accounting (hot path)
                pkt = queue._pkts.popleft()
                size = pkt.wire_size
                queue.bytes -= size
                queue.dequeued_pkts += 1
                queue.dequeued_bytes += size
                self.total_bytes -= size
                return pkt, queue
        else:
            for queue in self._high:
                if queue._pkts:
                    pkt = queue._pkts.popleft()
                    size = pkt.wire_size
                    queue.bytes -= size
                    queue.dequeued_pkts += 1
                    queue.dequeued_bytes += size
                    self.total_bytes -= size
                    return pkt, queue
        low = self._low
        active = self._lo_active
        deficit = self._lo_deficit
        refresh = self._lo_refresh
        while active:
            queue = active[0]
            idx = queue.index
            pkts = queue._pkts
            if refresh[idx]:
                # inlined DwrrScheduler._start_turn (hot path)
                last = low._last_turn_start[idx]
                observer = low.round_observer
                if (
                    last is not None
                    and observer is not None
                    and now > last
                ):
                    observer(queue, now - last, now)
                low._last_turn_start[idx] = now
                deficit[idx] += queue.quantum
                refresh[idx] = False
            head_size = pkts[0].wire_size
            if (
                head_size > deficit[idx]
                and len(active) == 1
                and low.round_observer is None
            ):
                # Lone active queue: every rotation of the slow loop
                # below comes straight back here at this same ``now``,
                # and each spin is just one quantum grant — ``_start_turn``
                # has already stamped ``now`` (or does so exactly once
                # here), so ``now > last`` is false for every further
                # turn and, with no round observer attached, the turns
                # are pure arithmetic.  Fold the k turns into one grant:
                # same final deficit, same turn-start bookkeeping,
                # byte-identical dequeue order.
                quantum = queue.quantum
                short = head_size - deficit[idx]
                deficit[idx] += ((short + quantum - 1) // quantum) * quantum
                low._last_turn_start[idx] = now
                refresh[idx] = False
            if head_size <= deficit[idx]:
                deficit[idx] -= head_size
                # inlined PacketQueue.pop + byte accounting (hot path)
                pkt = pkts.popleft()
                queue.bytes -= head_size
                queue.dequeued_pkts += 1
                queue.dequeued_bytes += head_size
                low.total_bytes -= head_size
                self.total_bytes -= head_size
                if not pkts:
                    active.popleft()
                    low._in_active[idx] = False
                    deficit[idx] = 0
                    refresh[idx] = True
                return pkt, queue
            active.popleft()
            active.append(queue)
            refresh[idx] = True
        return None

    @property
    def round_observer(self) -> Optional[RoundObserver]:  # type: ignore[override]
        return self._low.round_observer

    @round_observer.setter
    def round_observer(self, fn: Optional[RoundObserver]) -> None:
        # During base-class __init__ the low scheduler does not exist yet.
        low = getattr(self, "_low", None)
        if low is not None:
            low.round_observer = fn


class SpWfqScheduler(_SpOverScheduler):
    """Strict priority queues over a WFQ low band (paper's SP/WFQ)."""

    __slots__ = ()

    def _make_low(self, low_queues: List[PacketQueue], n_high: int) -> Scheduler:
        return WfqScheduler(_reindex(low_queues))
