"""The scheduler interface every discipline implements.

A scheduler owns an ordered list of :class:`~repro.net.queue.PacketQueue`
objects and answers exactly two questions: where does an arriving packet go
(``enqueue``) and which packet leaves next (``dequeue``).  Buffer admission
and ECN marking live *outside* the scheduler, in the egress port and AQM —
mirroring the separation in real switching chips (and in the paper's qdisc
prototype, whose five components are classifier, enqueue marking, scheduler,
rate limiter, dequeue marking).

Round-robin schedulers additionally expose ``round_observer``: a callback
``(queue, round_time_ns, now)`` fired each time a queue starts a new service
round.  MQ-ECN hooks this to estimate per-queue capacity as
``quantum / T_round`` — and the hook's *absence* on non-round schedulers is
precisely the paper's point about MQ-ECN's limited generality.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort
    from repro.obs.registry import MetricsRegistry

RoundObserver = Callable[[PacketQueue, int, int], None]


class Scheduler:
    """Abstract multi-queue packet scheduler."""

    __slots__ = ("queues", "total_bytes", "round_observer")

    #: set to True by round-robin disciplines that can drive MQ-ECN
    supports_rounds = False

    def __init__(self, queues: List[PacketQueue]) -> None:
        if not queues:
            raise ValueError("a scheduler needs at least one queue")
        self.queues = queues
        self.total_bytes = 0
        self.round_observer: Optional[RoundObserver] = None

    # -- interface -------------------------------------------------------

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        """Insert ``pkt`` into queue ``qidx`` at time ``now``."""
        raise NotImplementedError

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        """Remove and return ``(packet, queue_it_came_from)``, or ``None``."""
        raise NotImplementedError

    def register_metrics(
        self, registry: "MetricsRegistry", port: "EgressPort"
    ) -> None:
        """Publish discipline-specific metrics into a ``MetricsRegistry``.

        Called once per port at the end of a harness run.  The default
        publishes nothing; disciplines with interesting internal state
        (deficit counters, virtual time, band occupancy...) override this
        — see docs/OBSERVABILITY.md for the naming convention
        (``sched.<port-name>.<field>``) and docs/EXTENDING.md for a
        worked example.
        """

    # -- shared helpers ---------------------------------------------------

    def _account_enqueue(self, pkt: Packet, qidx: int) -> PacketQueue:
        queue = self.queues[qidx]
        queue.push(pkt)
        self.total_bytes += pkt.wire_size
        return queue

    def _account_dequeue(self, queue: PacketQueue) -> Packet:
        pkt = queue.pop()
        self.total_bytes -= pkt.wire_size
        return pkt

    @property
    def is_empty(self) -> bool:
        return self.total_bytes == 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {len(self.queues)}q {self.total_bytes}B>"


def make_queues(
    n: int,
    weights: Optional[List[float]] = None,
    quanta: Optional[List[int]] = None,
    priorities: Optional[List[int]] = None,
) -> List[PacketQueue]:
    """Convenience constructor for a homogeneous or per-queue-tuned bank.

    >>> qs = make_queues(4, quanta=[1500] * 4)
    >>> [q.index for q in qs]
    [0, 1, 2, 3]
    """
    queues = []
    for i in range(n):
        queues.append(
            PacketQueue(
                index=i,
                weight=weights[i] if weights else 1.0,
                quantum=quanta[i] if quanta else 1500,
                priority=priorities[i] if priorities else 0,
            )
        )
    return queues
