"""PIFO: a programmable Push-In First-Out scheduler.

Models the programmable scheduler of Sivaraman et al. (SIGCOMM'16) that the
paper cites as motivation: packets are pushed with a *rank* computed by an
arbitrary program and always dequeued in rank order.  Because PIFO has no
rounds and no fixed discipline, it is the clearest example of a scheduler
where MQ-ECN is inapplicable but TCN works unchanged (sojourn time needs no
knowledge of the discipline at all).

Two rank programs from the literature are provided:

* :func:`stfq_rank` — Start-Time Fair Queueing, which makes PIFO emulate
  weighted fair queueing.
* :func:`lstf_rank` — Least Slack Time First (Mittal et al., NSDI'16,
  "Universal Packet Scheduling").
"""

from __future__ import annotations

import heapq  # simlint: disable=SIM011 -- ranks packets by programmable priority, not events by time; never touches the event queue
from typing import Callable, Dict, List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler

#: rank program signature: (packet, logical queue, now, scheduler state) -> rank
RankFn = Callable[[Packet, PacketQueue, int, Dict], float]


def stfq_rank(pkt: Packet, queue: PacketQueue, now: int, state: Dict) -> float:
    """Start-Time Fair Queueing rank: PIFO emulating WFQ.

    ``state`` persists across calls: ``vtime`` advances to the start tag of
    each transmitted packet; per-queue ``finish`` accumulates virtual work.
    """
    finish: Dict[int, float] = state.setdefault("finish", {})
    vtime: float = state.get("vtime", 0.0)
    start = max(vtime, finish.get(queue.index, 0.0))
    finish[queue.index] = start + pkt.wire_size / queue.weight
    return start


def lstf_rank(pkt: Packet, queue: PacketQueue, now: int, state: Dict) -> float:
    """Least Slack Time First: rank = remaining slack at arrival.

    The slack budget per service class is configured through
    ``state['slack_ns']`` (a dict: dscp -> slack); packets of unknown
    classes get infinite slack (always yield).
    """
    slack_ns: Dict[int, int] = state.get("slack_ns", {})
    budget = slack_ns.get(pkt.dscp, float("inf"))
    return budget - (now - pkt.ts)


class PifoScheduler(Scheduler):
    """Push-in first-out queue over the logical queue bank.

    The logical :class:`PacketQueue` objects still account bytes and stats
    (so per-queue AQMs and buffer accounting keep working), but the actual
    transmission order is global rank order, not per-queue FIFO.
    """

    __slots__ = ("rank_fn", "rank_state", "_heap", "_push_seq")

    def __init__(self, queues: List[PacketQueue], rank_fn: RankFn = stfq_rank) -> None:
        super().__init__(queues)
        self.rank_fn = rank_fn
        self.rank_state: Dict = {}
        self._heap: List[Tuple[float, int, Packet, PacketQueue]] = []
        self._push_seq = 0

    def enqueue(self, pkt: Packet, qidx: int, now: int) -> None:
        queue = self.queues[qidx]
        rank = self.rank_fn(pkt, queue, now, self.rank_state)
        # Byte/stat accounting happens on the logical queue, but ordering is
        # global: we bypass the queue's deque on purpose.
        queue.bytes += pkt.wire_size
        queue.enqueued_pkts += 1
        if queue.bytes > queue.max_bytes_seen:
            queue.max_bytes_seen = queue.bytes
        self.total_bytes += pkt.wire_size
        self._push_seq += 1
        heapq.heappush(self._heap, (rank, self._push_seq, pkt, queue))

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        if not self._heap:
            return None
        rank, _, pkt, queue = heapq.heappop(self._heap)
        queue.bytes -= pkt.wire_size
        queue.dequeued_pkts += 1
        queue.dequeued_bytes += pkt.wire_size
        self.total_bytes -= pkt.wire_size
        if self.rank_fn is stfq_rank:
            self.rank_state["vtime"] = rank
            if self.total_bytes == 0:
                self.rank_state["vtime"] = 0.0
                self.rank_state.get("finish", {}).clear()
        return pkt, queue
