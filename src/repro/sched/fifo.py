"""Single-queue FIFO — used by host NICs and single-queue experiments."""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler


class FifoScheduler(Scheduler):
    """First-in first-out over one queue; ``qidx`` is ignored."""

    __slots__ = ()

    def __init__(self, queues: Optional[List[PacketQueue]] = None) -> None:
        super().__init__(queues or [PacketQueue(0)])

    def enqueue(self, pkt: Packet, qidx: int = 0, now: int = 0) -> None:
        self._account_enqueue(pkt, 0)

    def dequeue(self, now: int) -> Optional[Tuple[Packet, PacketQueue]]:
        queue = self.queues[0]
        if not queue:
            return None
        return self._account_dequeue(queue), queue
