"""CoDel (Nichols & Jacobson) in ECN-marking mode, Linux-faithful.

CoDel also uses sojourn time, but conservatively: it only acts when the
*minimum* sojourn over a sliding ``interval`` stays above ``target``, and
then marks at a rate that increases as ``interval / sqrt(count)`` — the
control law whose square root is what made hardware implementations balk
(§4.3).  Per the paper's evaluation setup, our CoDel *marks* rather than
drops; state is per queue, as in the qdisc prototype where each transmission
queue runs its own instance.

The state machine below mirrors ``include/net/codel.h`` (first_above_time,
drop_next, count/lastcount with the re-entry heuristic), with "drop"
replaced by "mark".  Because marking cannot remove multiple packets at one
dequeue the way dropping can, at most one mark is applied per departure and
``drop_next`` advances once — the standard ECN adaptation.
"""

from __future__ import annotations

from math import sqrt
from typing import TYPE_CHECKING, Dict

from repro.aqm.base import Aqm
from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.units import MSEC, MTU

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class _CodelState:
    """Per-queue CoDel variables (the four state words of §4.2)."""

    __slots__ = ("first_above_time", "mark_next", "count", "lastcount", "marking")

    def __init__(self) -> None:
        self.first_above_time = 0
        self.mark_next = 0
        self.count = 0
        self.lastcount = 0
        self.marking = False


class CoDel(Aqm):
    """Windowed-minimum sojourn marking.

    Parameters
    ----------
    target_ns:
        Acceptable standing sojourn time (Internet default 5 ms; the paper
        experimentally tuned 51.2 us for its 1 GbE testbed).
    interval_ns:
        Sliding window over which the minimum must exceed target before
        marking starts (Internet default 100 ms; testbed-tuned 1024 us).
    """

    __slots__ = ("target_ns", "interval_ns", "_state")

    def __init__(self, target_ns: int = 5 * MSEC, interval_ns: int = 100 * MSEC) -> None:
        if target_ns <= 0 or interval_ns <= 0:
            raise ValueError(
                f"target and interval must be positive, got "
                f"({target_ns}, {interval_ns})"
            )
        self.target_ns = target_ns
        self.interval_ns = interval_ns
        self._state: Dict[int, _CodelState] = {}

    def _state_for(self, queue: PacketQueue) -> _CodelState:
        st = self._state.get(id(queue))
        if st is None:
            st = _CodelState()
            self._state[id(queue)] = st
        return st

    def _control_law(self, base_ns: int, count: int) -> int:
        return base_ns + int(self.interval_ns / sqrt(count if count > 0 else 1))

    def _should_mark(self, st: _CodelState, queue: PacketQueue, sojourn: int, now: int) -> bool:
        """codel_should_drop: is the minimum-sojourn condition satisfied?"""
        if sojourn < self.target_ns or queue.bytes <= MTU:
            # Any single good packet proves the windowed minimum is below
            # target — reset the observation window.
            st.first_above_time = 0
            return False
        if st.first_above_time == 0:
            st.first_above_time = now + self.interval_ns
            return False
        return now >= st.first_above_time

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        st = self._state_for(queue)
        sojourn = now - pkt.enq_ts
        mark_now = self._should_mark(st, queue, sojourn, now)
        if st.marking:
            if not mark_now:
                st.marking = False
                return False
            if now >= st.mark_next:
                st.count += 1
                st.mark_next = self._control_law(st.mark_next, st.count)
                return True
            return False
        if mark_now:
            st.marking = True
            # Linux re-entry heuristic: if we were marking recently, resume
            # from (roughly) the previous rate rather than starting over.
            delta = st.count - st.lastcount
            if delta > 1 and now - st.mark_next < 16 * self.interval_ns:
                st.count = delta
            else:
                st.count = 1
            st.lastcount = st.count
            st.mark_next = self._control_law(now, st.count)
            return True
        return False
