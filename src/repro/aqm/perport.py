"""Per-port and per-service-pool ECN/RED (§3.2.2).

Marking keys off the occupancy of a *larger egress entity* than the queue
the packet sits in — the whole port, or a buffer pool shared by several
ports.  High throughput and low latency follow, but scheduling policies are
violated: a queue that is within its allocation still gets marked because
*other* queues filled the entity (Remark 2; Figure 1 demonstrates the
resulting DWRR unfairness, which our Fig. 1 bench reproduces).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.aqm.base import Aqm
from repro.net.packet import Packet
from repro.net.queue import PacketQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class PerPortRed(Aqm):
    """Mark at enqueue when the whole port's occupancy exceeds K."""

    __slots__ = ("threshold_bytes",)

    def __init__(self, threshold_bytes: int) -> None:
        if threshold_bytes < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold_bytes}")
        self.threshold_bytes = threshold_bytes

    def on_enqueue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        return port.occupancy > self.threshold_bytes


class BufferPool:
    """A shared buffer region spanning several ports (a "service pool").

    Ports attached to a pool charge every buffered byte to it; admission
    fails when the pool is exhausted, and :class:`PerPoolRed` marks on the
    pooled occupancy.  Queues on *different ports* can thus interfere —
    the aggravated form of Remark 2.
    """

    __slots__ = ("capacity_bytes", "occupancy")

    def __init__(self, capacity_bytes: int) -> None:
        if capacity_bytes <= 0:
            raise ValueError(f"pool capacity must be positive, got {capacity_bytes}")
        self.capacity_bytes = capacity_bytes
        self.occupancy = 0

    def admit(self, size_bytes: int) -> bool:
        """Would adding ``size_bytes`` stay within the pool?"""
        return self.occupancy + size_bytes <= self.capacity_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<BufferPool {self.occupancy}/{self.capacity_bytes}B>"


class PerPoolRed(Aqm):
    """Mark at enqueue when the shared pool's occupancy exceeds K."""

    __slots__ = ("pool", "threshold_bytes")

    def __init__(self, pool: BufferPool, threshold_bytes: int) -> None:
        self.pool = pool
        self.threshold_bytes = threshold_bytes

    def setup(self, port: "EgressPort") -> None:
        port.pool = self.pool

    def on_enqueue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        return self.pool.occupancy > self.threshold_bytes
