"""RED marking math, reusable by the queue-length AQMs.

:class:`RedMarker` implements the full Floyd/Jacobson gateway — EWMA-averaged
occupancy, ``(K_min, K_max, P_max)``, and the inter-mark count correction —
plus the *simplified* configuration production datacenters actually run
(§2.1): instantaneous occupancy with ``K_min = K_max = K``, which collapses
the whole thing to one comparison.
"""

from __future__ import annotations

import random
from typing import Optional


class RedMarker:
    """One RED instance (one queue's, or one port's, marking state).

    Parameters
    ----------
    kmin_bytes, kmax_bytes:
        Low/high occupancy thresholds.  Equal values select the simplified
        datacenter configuration: mark iff occupancy > K.
    pmax:
        Maximum marking probability at ``kmax``.
    ewma_weight:
        Weight of the *new* sample in the average-queue estimate; 1.0 (the
        default) selects instantaneous occupancy, as datacenter operators
        configure.
    rng:
        Randomness source for probabilistic marking (seeded for
        reproducibility).
    """

    __slots__ = ("kmin", "kmax", "pmax", "ewma_weight", "rng", "avg", "_count")

    def __init__(
        self,
        kmin_bytes: int,
        kmax_bytes: Optional[int] = None,
        pmax: float = 1.0,
        ewma_weight: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if kmax_bytes is None:
            kmax_bytes = kmin_bytes
        if not 0 <= kmin_bytes <= kmax_bytes:
            raise ValueError(f"need 0 <= kmin <= kmax, got ({kmin_bytes}, {kmax_bytes})")
        if not 0.0 < pmax <= 1.0:
            raise ValueError(f"pmax must be in (0, 1], got {pmax}")
        if not 0.0 < ewma_weight <= 1.0:
            raise ValueError(f"ewma_weight must be in (0, 1], got {ewma_weight}")
        self.kmin = kmin_bytes
        self.kmax = kmax_bytes
        self.pmax = pmax
        self.ewma_weight = ewma_weight
        self.rng = rng or random.Random(0)
        self.avg = 0.0
        self._count = 0  # packets since last mark, for the RED correction

    def decide(self, occupancy_bytes: int) -> bool:
        """Update the average with ``occupancy_bytes`` and decide marking."""
        w = self.ewma_weight
        if w >= 1.0:
            self.avg = float(occupancy_bytes)
        else:
            self.avg += w * (occupancy_bytes - self.avg)
        avg = self.avg
        if avg <= self.kmin:
            self._count = 0
            return False
        if avg > self.kmax:
            self._count = 0
            return True
        # gentle region: probabilistic marking with inter-mark correction
        # (prob = base / (1 - count*base), count = packets since last mark)
        base = self.pmax * (avg - self.kmin) / (self.kmax - self.kmin)
        denom = 1.0 - self._count * base
        prob = base / denom if denom > 0 else 1.0
        self._count += 1
        if self.rng.random() < prob:
            self._count = 0
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RedMarker K=[{self.kmin},{self.kmax}] pmax={self.pmax}>"
