"""The AQM interface: two hooks around the scheduler.

An AQM instance is attached to one egress port.  The port calls

* :meth:`Aqm.on_enqueue` after buffer admission, *before* the packet enters
  its queue (queue-length schemes decide here), and
* :meth:`Aqm.on_dequeue` right after the scheduler picks a packet (sojourn
  time schemes — TCN, CoDel, PIE — decide here; the packet's ``enq_ts`` was
  stamped by the port at enqueue, modelling the 2-byte enqueue-timestamp
  metadata of §4.2).

A hook returning ``True`` requests a CE mark.  The port only applies it when
the packet carries ECT; non-ECT packets are never marked (and, per the
paper's marking-only design, never AQM-dropped either — only buffer overflow
drops packets).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.net.packet import Packet
from repro.net.queue import PacketQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class Aqm:
    """Base class: never marks.  Subclasses override one or both hooks."""

    __slots__ = ()

    def setup(self, port: "EgressPort") -> None:
        """Called once when the AQM is attached to its port."""

    def register_metrics(self, registry, port: "EgressPort") -> None:
        """Publish scheme-specific metrics into a ``MetricsRegistry``.

        Called once per port at the end of a harness run.  The default
        publishes nothing; schemes with interesting internal state (rate
        estimates, marking intervals, pool occupancy...) override this —
        see docs/OBSERVABILITY.md for the naming convention
        (``aqm.<port-name>.<field>``) and docs/EXTENDING.md for a worked
        example.
        """

    def on_enqueue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        """Marking decision at enqueue; ``queue`` does not yet hold ``pkt``."""
        return False

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        """Marking decision at dequeue; ``pkt`` has left ``queue``."""
        return False


class NoopAqm(Aqm):  # simlint: disable=SIM007 -- the no-ECN baseline *is* the base class's never-mark behaviour; overriding the hooks would only re-state `return False`
    """Explicit no-marking AQM (drop-tail only) — the no-ECN baseline."""

    __slots__ = ()
