"""MQ-ECN (Bai et al., NSDI 2016): dynamic thresholds for round-robin.

MQ-ECN exploits the one structural fact round-robin schedulers guarantee:
in each round a non-empty queue transmits at most ``quantum_i`` bytes, so
``quantum_i / T_round`` is an accurate capacity estimate.  The scheduler
reports each queue's round time through the ``round_observer`` hook; the
smoothed estimate drives ``K_i = min(K_std, rate_i x RTT x lambda)``.

Attaching MQ-ECN to a scheduler without rounds (WFQ, SP, PIFO) raises — the
precise limitation (§3.3, Remark after Fig. 2) that motivates TCN.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.aqm.base import Aqm
from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class MqEcn(Aqm):
    """Round-time based dynamic per-queue marking thresholds.

    Parameters
    ----------
    rtt_ns, lam:
        Equation 2 constants; ``K_std = C x RTT x lambda`` caps every
        dynamic threshold.
    beta:
        EWMA weight of the *new* round-time sample (the MQ-ECN paper's
        suggested 0.75 — heavy weight on fresh samples gives the fast
        convergence seen in Fig. 2c).
    idle_mtu:
        ``T_idle`` expressed in MTU transmission times at line rate: a queue
        idle longer than this forgets its round-time history and reverts to
        the standard threshold (fresh traffic should not be throttled by a
        stale low-rate estimate).
    """

    __slots__ = (
        "rtt_ns", "lam", "beta", "idle_mtu", "mtu_bytes",
        "_round_ns", "_last_activity", "_k_std", "_idle_ns",
        "_line_rate_bps",
    )

    def __init__(
        self,
        rtt_ns: int,
        lam: float = 1.0,
        beta: float = 0.75,
        idle_mtu: float = 1.0,
        mtu_bytes: int = 1500,
    ) -> None:
        if not 0.0 < beta <= 1.0:
            raise ValueError(f"beta must be in (0, 1], got {beta}")
        self.rtt_ns = rtt_ns
        self.lam = lam
        self.beta = beta
        self.idle_mtu = idle_mtu
        self.mtu_bytes = mtu_bytes
        self._round_ns: Dict[int, float] = {}
        self._last_activity: Dict[int, int] = {}
        self._k_std = 0.0
        self._line_rate_bps = 0.0
        self._idle_ns = 0

    def setup(self, port: "EgressPort") -> None:
        sched = port.scheduler
        if not getattr(sched, "supports_rounds", False):
            raise TypeError(
                f"MQ-ECN requires a round-robin scheduler, got "
                f"{type(sched).__name__} (this is the limitation TCN removes)"
            )
        sched.round_observer = self._on_round
        self._line_rate_bps = float(port.rate_bps)
        self._k_std = port.rate_bps * self.rtt_ns * self.lam / (8 * SEC)
        self._idle_ns = int(
            self.idle_mtu * self.mtu_bytes * 8 * SEC / port.rate_bps
        )

    # -- round-time bookkeeping -------------------------------------------

    def _on_round(self, queue: PacketQueue, round_ns: int, now: int) -> None:
        key = id(queue)
        prev = self._round_ns.get(key)
        if prev is None:
            self._round_ns[key] = float(round_ns)
        else:
            self._round_ns[key] = self.beta * round_ns + (1.0 - self.beta) * prev
        self._last_activity[key] = now

    def rate_estimate_bps(self, queue: PacketQueue) -> float:
        """``quantum_i / T_round`` in bits/s (line rate before any sample)."""
        round_ns = self._round_ns.get(id(queue))
        if round_ns is None or round_ns <= 0:
            return self._line_rate_bps
        return min(queue.quantum * 8 * SEC / round_ns, self._line_rate_bps)

    def threshold_bytes(self, queue: PacketQueue) -> float:
        """Current dynamic threshold ``K_i`` for ``queue``."""
        rate = self.rate_estimate_bps(queue)
        k = rate * self.rtt_ns * self.lam / (8 * SEC)
        return min(k, self._k_std)

    # -- marking -------------------------------------------------------------

    def on_enqueue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        key = id(queue)
        if queue.bytes == 0:
            # Queue was idle: if it stayed idle past T_idle, its round-time
            # history is stale — revert to the standard threshold.
            last = self._last_activity.get(key)
            if last is not None and now - last > self._idle_ns:
                self._round_ns.pop(key, None)
        return queue.bytes > self.threshold_bytes(queue)

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        self._last_activity[id(queue)] = now
        return False
