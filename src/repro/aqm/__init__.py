"""Active queue management / ECN marking schemes.

Everything the paper evaluates lives here, plus the PIE extension:

* :class:`~repro.aqm.perqueue.PerQueueRed` — current practice (§3.2.1).
* :class:`~repro.aqm.perport.PerPortRed` / ``PerPoolRed`` — §3.2.2.
* :class:`~repro.aqm.dequeue_red.DequeueRed` — Wu et al.'s dequeue marking.
* :class:`~repro.aqm.mqecn.MqEcn` — round-robin-only dynamic thresholds.
* :class:`~repro.aqm.ideal.IdealRed` — Equation 2 driven by the Algorithm 1
  departure-rate meter (:class:`~repro.aqm.ratemeter.RateMeter`).
* :class:`~repro.aqm.codel.CoDel` — sojourn-time AQM, marking mode.
* :class:`~repro.aqm.pie.Pie` — PIE in marking mode (extension).
* :class:`repro.core.tcn.Tcn` — the paper's contribution (in ``repro.core``).
"""

from repro.aqm.base import Aqm, NoopAqm
from repro.aqm.red import RedMarker
from repro.aqm.perqueue import PerQueueRed
from repro.aqm.perport import PerPortRed, PerPoolRed, BufferPool
from repro.aqm.dequeue_red import DequeueRed
from repro.aqm.mqecn import MqEcn
from repro.aqm.ratemeter import RateMeter
from repro.aqm.ideal import IdealRed
from repro.aqm.codel import CoDel
from repro.aqm.pie import Pie

__all__ = [
    "Aqm",
    "NoopAqm",
    "RedMarker",
    "PerQueueRed",
    "PerPortRed",
    "PerPoolRed",
    "BufferPool",
    "DequeueRed",
    "MqEcn",
    "RateMeter",
    "IdealRed",
    "CoDel",
    "Pie",
]
