"""PIE (Pan et al., HPSR 2013) in marking mode — extension, not in the paper.

PIE estimates queueing delay as ``qlen / avg_dequeue_rate`` using the same
Algorithm 1 rate meter the "ideal" ECN/RED needs, then controls a marking
probability with a PI controller.  Included because (a) the paper borrows
its measurement machinery from PIE and (b) it rounds out the AQM family for
ablations: queue-length (RED), estimated-delay (PIE), measured-sojourn
(CoDel/TCN).
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Dict, Optional

from repro.aqm.base import Aqm
from repro.aqm.ratemeter import RateMeter
from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.units import SEC, USEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class _PieState:
    __slots__ = ("meter", "prob", "old_delay_ns")

    def __init__(self, meter: RateMeter) -> None:
        self.meter = meter
        self.prob = 0.0
        self.old_delay_ns = 0.0


class Pie(Aqm):
    """PI-controlled probabilistic marking on estimated queue delay.

    Parameters are the PIE defaults rescaled for datacenter RTTs: the
    Internet reference point (target 20 ms, update 30 ms) becomes
    (target ~ RTT, update ~ RTT) at microsecond scale.
    """

    __slots__ = (
        "target_delay_ns", "update_interval_ns", "alpha", "beta",
        "dq_thresh_bytes", "rng", "_state", "_port",
    )

    def __init__(
        self,
        target_delay_ns: int = 100 * USEC,
        update_interval_ns: int = 100 * USEC,
        alpha: float = 0.125,
        beta: float = 1.25,
        dq_thresh_bytes: int = 10_000,
        rng: Optional[random.Random] = None,
    ) -> None:
        self.target_delay_ns = target_delay_ns
        self.update_interval_ns = update_interval_ns
        self.alpha = alpha
        self.beta = beta
        self.dq_thresh_bytes = dq_thresh_bytes
        self.rng = rng or random.Random(0)
        self._state: Dict[int, _PieState] = {}
        self._port: Optional["EgressPort"] = None

    def setup(self, port: "EgressPort") -> None:
        self._port = port
        for queue in port.scheduler.queues:
            self._state[id(queue)] = _PieState(RateMeter(self.dq_thresh_bytes))
        port.sim.schedule(self.update_interval_ns, self._update_probs)

    def _update_probs(self) -> None:
        port = self._port
        assert port is not None
        now = port.sim.now
        for queue in port.scheduler.queues:
            st = self._state[id(queue)]
            rate = st.meter.rate_or(float(port.rate_bps))
            delay_ns = queue.bytes * 8 * SEC / rate if rate > 0 else 0.0
            err_s = (delay_ns - self.target_delay_ns) / SEC
            trend_s = (delay_ns - st.old_delay_ns) / SEC
            # PIE auto-scaling: gentler gains at small probabilities.
            if st.prob < 0.01:
                scale = 1 / 8
            elif st.prob < 0.1:
                scale = 1 / 2
            else:
                scale = 1.0
            st.prob += scale * (self.alpha * err_s + self.beta * trend_s) * 1000
            st.prob = min(max(st.prob, 0.0), 1.0)
            st.old_delay_ns = delay_ns
        port.sim.schedule(self.update_interval_ns, self._update_probs)

    def on_enqueue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        st = self._state[id(queue)]
        if st.prob <= 0.0:
            return False
        return self.rng.random() < st.prob

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        self._state[id(queue)].meter.on_departure(queue.bytes, pkt.wire_size, now)
        return False
