"""Algorithm 1: departure-rate (queue-capacity) measurement, from PIE.

The best general-purpose capacity estimator the paper found (§3.3): start a
measurement cycle only when the backlog exceeds ``dq_thresh`` (so the queue
stays busy throughout), count departed bytes, and close the cycle once
``dq_count`` crosses ``dq_thresh``, yielding one rate sample that is then
EWMA-smoothed.

The whole point of reproducing this faithfully is to reproduce its
*failure mode* (Fig. 2): with ``dq_thresh`` below the DWRR quantum the
samples oscillate wildly between the line rate and a too-low rate and the
smoothed estimate converges to the wrong value; with a large ``dq_thresh``
there are too few samples to track capacity changes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.units import SEC


class RateMeter:
    """One queue's departure-rate estimator (Table 1 / Algorithm 1).

    Parameters
    ----------
    dq_thresh_bytes:
        Both the backlog level that opens a measurement cycle and the byte
        count that closes it.  PIE's conventional value is 10 KB.
    avg_weight:
        EWMA weight kept by the *old* average when a new sample arrives
        (the paper's "averaging parameter", 0.875).
    record_samples:
        When True, every ``(time, sample_rate, smoothed_rate)`` triple is
        appended to :attr:`samples` — used by the Fig. 2 bench.
    """

    __slots__ = (
        "dq_thresh",
        "avg_weight",
        "is_measure",
        "dq_count",
        "dq_start",
        "avg_rate",
        "sample_count",
        "samples",
        "record_samples",
    )

    def __init__(
        self,
        dq_thresh_bytes: int,
        avg_weight: float = 0.875,
        record_samples: bool = False,
    ) -> None:
        if dq_thresh_bytes <= 0:
            raise ValueError(f"dq_thresh must be positive, got {dq_thresh_bytes}")
        if not 0.0 <= avg_weight < 1.0:
            raise ValueError(f"avg_weight must be in [0, 1), got {avg_weight}")
        self.dq_thresh = dq_thresh_bytes
        self.avg_weight = avg_weight
        self.is_measure = False
        self.dq_count = 0
        self.dq_start = 0
        self.avg_rate: Optional[float] = None  # bits per second
        self.sample_count = 0
        self.record_samples = record_samples
        self.samples: List[Tuple[int, float, float]] = []

    def on_departure(self, qlen_bytes: int, pkt_size_bytes: int, now: int) -> None:
        """Feed one packet departure (Algorithm 1 verbatim).

        ``qlen_bytes`` is the backlog remaining after the departure.

        Note the inherent bias, faithful to the published Algorithm 1 (and
        to Linux PIE): the departure that *opens* a cycle contributes its
        bytes but not its serialization time (``dq_start`` is stamped at
        that same departure), so a sample overestimates the true rate by
        roughly ``pkt_size / dq_thresh``.  This is part of why small
        ``dq_thresh`` values mis-estimate capacity (§3.3 / Fig. 2b).
        """
        # 1. Decide to be in a measurement cycle.
        if qlen_bytes >= self.dq_thresh and not self.is_measure:
            self.dq_count = 0
            self.dq_start = now
            self.is_measure = True
        # 2. During the measurement cycle.
        if self.is_measure:
            self.dq_count += pkt_size_bytes
            if self.dq_count > self.dq_thresh:
                elapsed = now - self.dq_start
                if elapsed > 0:
                    dq_rate = self.dq_count * 8 * SEC / elapsed
                    self._absorb(dq_rate, now)
                self.is_measure = False

    def _absorb(self, dq_rate: float, now: int) -> None:
        if self.avg_rate is None:
            self.avg_rate = dq_rate
        else:
            w = self.avg_weight
            self.avg_rate = w * self.avg_rate + (1.0 - w) * dq_rate
        self.sample_count += 1
        if self.record_samples:
            self.samples.append((now, dq_rate, self.avg_rate))

    def rate_or(self, default_bps: float) -> float:
        """The smoothed estimate, or ``default_bps`` before any sample."""
        return self.avg_rate if self.avg_rate is not None else default_bps

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rate = f"{self.avg_rate:.0f}bps" if self.avg_rate is not None else "n/a"
        return f"<RateMeter thresh={self.dq_thresh}B avg={rate}>"
