"""Per-queue ECN/RED — the paper's "current practice" baseline (§3.2.1).

Each queue compares its own instantaneous backlog against a static
threshold at enqueue.  Operators set the *standard* threshold
``K = C x RTT x lambda`` on every queue; when several queues are busy the
per-queue capacity is far below C, so the static K admits excess backlog —
Remark 1's latency and burst-tolerance penalty, which the FCT experiments
quantify.

Per-queue thresholds may also be set individually, which doubles as the
"ideal ECN/RED with prior knowledge of queue capacities" oracle used in the
static-flow experiment (Fig. 5b): pass the pre-computed ``C_i x RTT x
lambda`` of each queue.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, TYPE_CHECKING, Union

from repro.aqm.base import Aqm
from repro.aqm.red import RedMarker
from repro.net.packet import Packet
from repro.net.queue import PacketQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class PerQueueRed(Aqm):
    """Static per-queue threshold marking at enqueue.

    Parameters
    ----------
    threshold_bytes:
        A single K applied to every queue, or one K per queue (by queue
        position in the scheduler's bank).
    full_red:
        Optional list of :class:`RedMarker` (one per queue) to run the
        complete RED gateway instead of the simplified single-threshold
        comparison.
    """

    __slots__ = ("_threshold_spec", "_full_red_spec", "_K", "_red")

    def __init__(
        self,
        threshold_bytes: Union[int, Sequence[int]],
        full_red: Optional[List[RedMarker]] = None,
    ) -> None:
        self._threshold_spec = threshold_bytes
        self._full_red_spec = full_red
        self._K: Dict[int, int] = {}
        self._red: Dict[int, RedMarker] = {}

    def setup(self, port: "EgressPort") -> None:
        queues = port.scheduler.queues
        spec = self._threshold_spec
        if isinstance(spec, int):
            thresholds = [spec] * len(queues)
        else:
            thresholds = list(spec)
            if len(thresholds) != len(queues):
                raise ValueError(
                    f"{len(thresholds)} thresholds for {len(queues)} queues"
                )
        for queue, k in zip(queues, thresholds):
            self._K[id(queue)] = k
        if self._full_red_spec is not None:
            if len(self._full_red_spec) != len(queues):
                raise ValueError(
                    f"{len(self._full_red_spec)} RED markers for "
                    f"{len(queues)} queues"
                )
            for queue, red in zip(queues, self._full_red_spec):
                self._red[id(queue)] = red

    def on_enqueue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        red = self._red.get(id(queue))
        if red is not None:
            return red.decide(queue.bytes)
        return queue.bytes > self._K[id(queue)]
