"""The "ideal" dynamic ECN/RED (Equation 2) driven by Algorithm 1.

Each queue runs a :class:`~repro.aqm.ratemeter.RateMeter`; the marking
threshold is recomputed per packet as ``K_i = avg_rate_i x RTT x lambda``
(capped at the standard threshold, since a queue can never drain faster
than the link).  Before the first sample the queue is assumed to own the
whole link.

This is the scheme §3.3 shows to be *fundamentally* hard to tune: the bench
for Fig. 2 sweeps ``dq_thresh`` and reproduces both failure modes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict

from repro.aqm.base import Aqm
from repro.aqm.ratemeter import RateMeter
from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class IdealRed(Aqm):
    """Equation 2 marking with measured per-queue capacities.

    Parameters
    ----------
    rtt_ns, lam:
        The Equation 2 constants.
    dq_thresh_bytes:
        Algorithm 1 measurement threshold (PIE recommends 10 KB; the paper
        shows why no value works for every scheduler).
    avg_weight:
        EWMA weight of the old average (0.875 in the paper's Fig. 2).
    """

    __slots__ = (
        "rtt_ns", "lam", "dq_thresh_bytes", "avg_weight",
        "record_samples", "_meters", "_line_rate_bps",
    )

    def __init__(
        self,
        rtt_ns: int,
        lam: float = 1.0,
        dq_thresh_bytes: int = 10_000,
        avg_weight: float = 0.875,
        record_samples: bool = False,
    ) -> None:
        self.rtt_ns = rtt_ns
        self.lam = lam
        self.dq_thresh_bytes = dq_thresh_bytes
        self.avg_weight = avg_weight
        self.record_samples = record_samples
        self._meters: Dict[int, RateMeter] = {}
        self._line_rate_bps = 0.0

    def setup(self, port: "EgressPort") -> None:
        self._line_rate_bps = float(port.rate_bps)
        for queue in port.scheduler.queues:
            self._meters[id(queue)] = RateMeter(
                self.dq_thresh_bytes,
                avg_weight=self.avg_weight,
                record_samples=self.record_samples,
            )

    def meter_for(self, queue: PacketQueue) -> RateMeter:
        """Expose a queue's meter (benchmarks sample the estimates)."""
        return self._meters[id(queue)]

    def threshold_bytes(self, queue: PacketQueue) -> float:
        """Current ``K_i = min(C, avg_rate_i) x RTT x lambda``."""
        rate = self._meters[id(queue)].rate_or(self._line_rate_bps)
        rate = min(rate, self._line_rate_bps)
        return rate * self.rtt_ns * self.lam / (8 * SEC)

    def on_enqueue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        return queue.bytes > self.threshold_bytes(queue)

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        self._meters[id(queue)].on_departure(queue.bytes, pkt.wire_size, now)
        return False
