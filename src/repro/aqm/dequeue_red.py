"""Dequeue-side queue-length ECN marking (Wu et al., CoNEXT 2012).

Identical signal and threshold to per-queue ECN/RED, but the comparison is
made when a packet *leaves* the queue, against the backlog remaining behind
it.  Because the marked packet reaches the sender one queueing delay sooner
than an enqueue-marked one — and the mark reflects the congestion that
*future* departures will experience — dequeue marking reacts earlier during
buildups, which is why its slow-start peak in Fig. 3 is ~2xBDP rather than
~3xBDP.  It is still queue-length based, so it inherits every §3 problem.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Sequence, Union

from repro.aqm.base import Aqm
from repro.net.packet import Packet
from repro.net.queue import PacketQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class DequeueRed(Aqm):
    """Per-queue static threshold, evaluated on the dequeue side."""

    __slots__ = ("_threshold_spec", "_K")

    def __init__(self, threshold_bytes: Union[int, Sequence[int]]) -> None:
        self._threshold_spec = threshold_bytes
        self._K: Dict[int, int] = {}

    def setup(self, port: "EgressPort") -> None:
        queues = port.scheduler.queues
        spec = self._threshold_spec
        thresholds = [spec] * len(queues) if isinstance(spec, int) else list(spec)
        if len(thresholds) != len(queues):
            raise ValueError(f"{len(thresholds)} thresholds for {len(queues)} queues")
        for queue, k in zip(queues, thresholds):
            self._K[id(queue)] = k

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        # ``pkt`` has already been removed: queue.bytes is the backlog the
        # departing packet leaves behind, i.e. the current queue length.
        return queue.bytes > self._K[id(queue)]
