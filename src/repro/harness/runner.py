"""Build a configured experiment, run it, and collect results.

The runner reproduces the paper's two experiment shapes end to end:

* **star / many-to-one** (§6.1.2-6.1.3): one client host fetches flows from
  the remaining hosts; the switch port toward the client is the bottleneck.
* **leafspine / all-to-all** (§6.2): every host exchanges flows with every
  other; services partition the communication pairs, each with its own
  workload when ``workload == "mixed"``.

Results carry the paper's FCT statistics plus the packet-level counters
(drops, marks, TCP timeouts — including timeouts suffered by small flows,
which §6.2.1 reports explicitly).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.harness.config import ExperimentConfig
from repro.harness.schemes import SCHEDULERS, SCHEMES, TRANSPORTS
from repro.metrics.fct import FctCollector, FctSummary
from repro.obs import (
    MetricsRegistry,
    RssSampler,
    RunProfile,
    SpanRecorder,
    Tracer,
)
from repro.obs.spans import wall_ns
from repro.pias.tagger import PiasTagger
from repro.sim.engine import Simulator
from repro.sim.fluid import build_fluid_network, split_flows
from repro.sim.rng import RngFactory
from repro.topo.leafspine import LeafSpineTopology
from repro.topo.star import StarTopology
from repro.transport.base import SenderBase
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import MSEC, SEC
from repro.workloads.distributions import ALL_WORKLOADS, workload_by_name
from repro.workloads.generator import FlowGenerator

_RUN_CHUNK_NS = 50 * MSEC


@dataclass
class ExperimentResult:
    """Everything a bench or example needs from one run."""

    config: ExperimentConfig
    summary: FctSummary
    completed: int
    total: int
    timeouts: int
    timeouts_small: int
    drops: int
    marks: int
    sim_ns: int
    wall_s: float
    events: int = 0
    flows: List[Flow] = field(repr=False, default_factory=list)
    #: MetricsRegistry.snapshot() of the run — per-port / per-queue
    #: counters plus FCT (and, when traced, sojourn) histograms.  Every
    #: value is derived from simulated state, so it is deterministic.
    metrics: Dict[str, dict] = field(repr=False, default_factory=dict)
    #: RunProfile.as_dict() — events, heap high-water mark, wall time,
    #: plus the event-queue backend name and its structure counters.
    #: Wall-clock derived, hence *not* deterministic (kept out of sweep
    #: cache payloads).
    profile: Dict[str, object] = field(repr=False, default_factory=dict)

    @property
    def all_completed(self) -> bool:
        return self.completed == self.total


def run_experiment(
    cfg: ExperimentConfig,
    tracer: Optional[Tracer] = None,
    spans: Optional[SpanRecorder] = None,
) -> ExperimentResult:
    """Run one configured experiment to completion.

    Pass a :class:`repro.obs.Tracer` to record the packet lifecycle on
    every switch port and the control-law updates of every sender.
    Tracing never changes the simulation (hook points only *read* state),
    so a traced run produces the same :class:`ExperimentResult` as an
    untraced one — modulo the trace-derived sojourn histogram in
    ``metrics`` — which ``tests/test_trace_determinism.py`` asserts.

    Pass a :class:`repro.obs.SpanRecorder` to additionally record the
    harness-side flight recorder: one span per ``Simulator.run`` chunk
    here (the GC-paused window, with event-queue and freelist deltas),
    and the full round-phase decomposition when the run is partitioned.
    Spans are pure observation too — ``tests/test_spans.py`` pins a
    spans-on run to the spans-off golden results.
    """
    cfg.validate()
    if cfg.workers:
        # Partitioned engine (leafspine only — validate() enforces).
        # Imported lazily: cluster.py imports this module's builders back.
        from repro.sim.parallel.cluster import run_parallel_experiment

        return run_parallel_experiment(cfg, tracer, spans)
    sim = Simulator(
        equeue=cfg.resolved_equeue, batch=cfg.batch,
        sanitize=cfg.sanitize or None,
    )
    rng = RngFactory(cfg.seed)
    topo = _build_topology(sim, cfg)
    flows = _build_flows(cfg, rng, topo)
    collector = FctCollector()
    tagger = _build_tagger(cfg)
    # mode dispatch: promoted flows never get senders/receivers — they
    # live as rates in the fluid engine and complete into the same
    # collector; `flows` (and the completion condition below) still
    # cover both populations
    packet_flows, fluid_flows = split_flows(cfg, flows)
    senders = _wire_endpoints(sim, cfg, topo, packet_flows, collector, tagger)
    fluid_net = None
    if fluid_flows:
        fluid_net = build_fluid_network(
            sim,
            cfg,
            topo,
            fluid_flows,
            collector,
            spans=spans,
            hybrid=bool(packet_flows),
        )
        fluid_net.on_start()
    switches = _switches_of(topo)
    if tracer is not None and tracer.enabled:
        # Switch egress ports carry the AQM/scheduler behaviour under
        # study; host NIC ports stay untraced to bound trace volume.
        for sw in switches:
            for port in sw.ports:
                port.tracer = tracer
        for sender in senders:
            sender.tracer = tracer

    # simlint: disable=SIM001 -- wall_s measures host runtime for RunProfile; it never feeds the simulation
    wall_start = time.time()
    deadline = _deadline_ns(cfg, flows)
    events = 0
    # run-loop-only wall clock: RunProfile's ev/s divides by time spent
    # *dispatching events*, not topology build or per-chunk bookkeeping —
    # short bench reps were under-reporting throughput by the setup cost
    run_loop_s = 0.0
    rss = RssSampler()
    spans_on = spans is not None and spans.enabled
    chunk_idx = 0
    prev_eq: Dict[str, int] = sim.equeue_stats() if spans_on else {}
    prev_alloc = prev_reuse = 0
    if spans_on:
        from repro.net.packet import freelist_stats

        prev_alloc, prev_reuse, _free = freelist_stats()
    while collector.count < len(flows) and sim.now < deadline:
        sim_from = sim.now
        t0 = wall_ns() if spans_on else 0
        # simlint: disable=SIM001 -- run-loop wall measurement for RunProfile; never feeds the simulation
        rt0 = time.perf_counter()
        executed = sim.run(until=min(sim.now + _RUN_CHUNK_NS, deadline))
        # simlint: disable=SIM001 -- closes the run-loop measurement opened above; not simulation state
        run_loop_s += time.perf_counter() - rt0
        events += executed
        # chunk boundary: the only in-run RSS observation point — the
        # sampler is strided and never sits on the event hot path
        rss.sample()
        if spans_on:
            dur = wall_ns() - t0
            assert spans is not None
            args: Dict[str, object] = {
                "chunk": chunk_idx,
                "sim_from_ns": sim_from,
                "sim_to_ns": sim.now,
                "events": executed,
                # Simulator.run disables GC for the whole chunk, so this
                # span is also the GC-pause window
                "gc_paused": True,
            }
            eq = sim.equeue_stats()
            for key, value in eq.items():
                delta = value - prev_eq.get(key, 0)
                if delta:
                    args[f"equeue.{key}"] = delta
            prev_eq = eq
            alloc, reuse, _free = freelist_stats()
            if alloc - prev_alloc:
                args["freelist_allocated"] = alloc - prev_alloc
            if reuse - prev_reuse:
                args["freelist_reused"] = reuse - prev_reuse
            prev_alloc, prev_reuse = alloc, reuse
            if rss.last_bytes:
                args["rss_bytes"] = rss.last_bytes
            spans.add("engine", "chunk", t0, dur, tid="sim", args=args)
        chunk_idx += 1
        if sim.idle:
            # The event heap is drained: with no timer or transfer pending,
            # no flow can ever complete, so chunking on toward the deadline
            # would just busy-spin.  Return with completed < total.
            break
    # simlint: disable=SIM001 -- closes the host-runtime measurement opened above; not simulation state
    wall_s = time.time() - wall_start

    small_cut = 100_000
    timeouts_small = sum(
        s.stats.timeouts for s in senders if s.flow.size_bytes <= small_cut
    )
    registry = MetricsRegistry()
    _register_run_metrics(registry, switches, collector, tracer)
    return ExperimentResult(
        config=cfg,
        summary=collector.summarize(),
        completed=collector.count,
        total=len(flows),
        timeouts=sum(s.stats.timeouts for s in senders),
        timeouts_small=timeouts_small,
        drops=sum(sw.total_drops() for sw in switches),
        marks=sum(sw.total_marks() for sw in switches),
        sim_ns=sim.now,
        wall_s=wall_s,
        events=events,
        flows=flows,
        metrics=registry.snapshot(),
        profile=RunProfile.capture(
            sim,
            run_loop_s,
            rss_floor=rss.hwm_bytes,
            fluid_stats=fluid_net.stats_dict() if fluid_net else None,
        ).as_dict(),
    )


def _register_run_metrics(
    registry: MetricsRegistry,
    switches: List,
    collector: FctCollector,
    tracer: Optional[Tracer],
) -> None:
    """Populate the run's metrics registry from final simulated state.

    Names follow ``port.<name>.<field>`` / ``port.<name>.q<i>.<field>``
    so :func:`repro.harness.report.format_port_breakdown` can group them;
    AQMs and schedulers add their own under ``aqm.*`` / ``sched.*`` via
    their ``register_metrics`` hooks.
    """
    for sw in switches:
        for port in sw.ports:
            stats = port.stats
            prefix = f"port.{port.name}"
            for fld in (
                "rx_pkts", "rx_bytes", "tx_pkts", "tx_bytes",
                "marked_pkts", "dropped_pkts", "dropped_bytes",
            ):
                registry.counter(f"{prefix}.{fld}").inc(getattr(stats, fld))
            for i, q in enumerate(port.scheduler.queues):
                qp = f"{prefix}.q{i}"
                registry.counter(f"{qp}.enqueued_pkts").inc(q.enqueued_pkts)
                registry.counter(f"{qp}.dequeued_pkts").inc(q.dequeued_pkts)
                registry.counter(f"{qp}.marked_pkts").inc(q.marked_pkts)
                registry.counter(f"{qp}.dropped_pkts").inc(q.dropped_pkts)
                registry.gauge(f"{qp}.max_bytes_seen").set(q.max_bytes_seen)
            if port.aqm is not None:
                port.aqm.register_metrics(registry, port)
            port.scheduler.register_metrics(registry, port)
    fct_hist = registry.histogram("fct_ns")
    for flow in collector.flows:
        fct_hist.record(flow.fct_ns)
    if tracer is not None and tracer.enabled:
        sojourn = registry.histogram("trace.sojourn_ns")
        for event in tracer.events:
            if event[0] == "deq":
                sojourn.record(event[7])


# -- builders ------------------------------------------------------------


def _build_topology(sim: Simulator, cfg: ExperimentConfig):
    sched_factory = lambda: SCHEDULERS[cfg.scheduler](cfg)  # noqa: E731
    aqm_factory = lambda: SCHEMES[cfg.scheme](cfg)  # noqa: E731
    if cfg.topology == "star":
        delay = (
            cfg.link_delay_ns
            if cfg.link_delay_ns is not None
            else cfg.base_rtt_ns // 4
        )
        return StarTopology(
            sim,
            cfg.n_hosts,
            cfg.link_rate_bps,
            sched_factory,
            aqm_factory,
            buffer_bytes=cfg.buffer_bytes,
            link_delay_ns=delay,
        )
    # leafspine: most of the base RTT is end-host delay (as in §6.2 where
    # 80 of 85.2 us sit at the hosts), so it rides on the host links.
    host_delay = max(1, (cfg.base_rtt_ns - 8 * 650) // 4)
    return LeafSpineTopology(
        sim,
        cfg.n_leaf,
        cfg.n_spine,
        cfg.hosts_per_leaf,
        sched_factory,
        aqm_factory,
        edge_rate_bps=cfg.link_rate_bps,
        buffer_bytes=cfg.buffer_bytes,
        host_link_delay_ns=host_delay,
        fabric_link_delay_ns=650,
        ecmp_salt=cfg.seed,
    )


def _n_services(cfg: ExperimentConfig) -> int:
    """Service queues available to workloads (low band under sp_*)."""
    if cfg.scheduler.startswith("sp_") or cfg.pias:
        return cfg.n_low
    return cfg.n_queues


def _build_flows(
    cfg: ExperimentConfig, rng: RngFactory, topo
) -> List[Flow]:
    gen = FlowGenerator(rng)
    n_services = _n_services(cfg)

    def prepare(cdf):
        if cfg.workload_clip_bytes is not None:
            return cdf.truncated(cfg.workload_clip_bytes)
        return cdf

    if cfg.topology == "star":
        cdf = prepare(workload_by_name(cfg.workload))
        flows = gen.many_to_one(
            senders=list(range(1, cfg.n_hosts)),
            receiver=0,
            cdf=cdf,
            load=cfg.load,
            link_rate_bps=cfg.link_rate_bps,
            n_flows=cfg.n_flows,
            n_services=n_services,
        )
    else:
        if cfg.workload == "mixed":
            cdfs = [
                prepare(ALL_WORKLOADS[i % len(ALL_WORKLOADS)])
                for i in range(n_services)
            ]
        else:
            cdfs = [prepare(workload_by_name(cfg.workload))] * n_services
        flows = gen.all_to_all(
            hosts=list(range(topo.n_hosts)),
            cdfs=cdfs,
            load=cfg.load,
            edge_rate_bps=cfg.link_rate_bps,
            n_flows=cfg.n_flows,
        )
    if not cfg.pias:
        # Map services past any strict-priority queues so high-priority
        # queues stay reserved (they are only used with PIAS tagging).
        offset = cfg.n_high if cfg.scheduler.startswith("sp_") else 0
        for flow in flows:
            flow.dscp = offset + flow.service
    return flows


def _build_tagger(cfg: ExperimentConfig) -> Optional[PiasTagger]:
    if not cfg.pias:
        return None
    return PiasTagger(
        threshold_bytes=cfg.pias_threshold_bytes,
        high_dscp=0,
        service_dscp_offset=cfg.n_high,
    )


class ConnectionPool:
    """Warm-window reuse over persistent connections (§5).

    The testbed client multiplexes messages over N persistent TCP
    connections per host pair; a message starting on a warm connection
    inherits the connection's converged congestion window (and is already
    past slow start).  The pool keys connections by (src, dst, k) with k
    assigned round-robin, remembers each connection's cwnd at message
    completion, and hands it to the next message on that connection.
    """

    def __init__(self, per_pair: int, max_cwnd: float) -> None:
        self.per_pair = per_pair
        self.max_cwnd = max_cwnd
        self._cwnd: Dict[tuple, float] = {}
        self._next_k: Dict[tuple, int] = {}

    def checkout(self, src: int, dst: int) -> tuple:
        """Pick the connection for a new message: (key, warm cwnd or None)."""
        pair = (src, dst)
        k = self._next_k.get(pair, 0)
        self._next_k[pair] = (k + 1) % self.per_pair
        key = (src, dst, k)
        return key, self._cwnd.get(key)

    def release(self, key: tuple, cwnd: float) -> None:
        self._cwnd[key] = min(cwnd, self.max_cwnd)


def _wire_endpoints(
    sim: Simulator,
    cfg: ExperimentConfig,
    topo,
    flows: List[Flow],
    collector: FctCollector,
    tagger: Optional[PiasTagger],
) -> List[SenderBase]:
    sender_cls = TRANSPORTS[cfg.transport]
    senders: List[SenderBase] = []
    pool = (
        ConnectionPool(cfg.connections_per_pair, cfg.max_warm_cwnd)
        if cfg.persistent_connections
        else None
    )
    from repro.units import MSS
    bdp_pkts = cfg.link_rate_bps * cfg.base_rtt_ns / (8 * MSS * SEC)
    max_cwnd = max(64.0, cfg.max_cwnd_bdp_factor * bdp_pkts)
    base_ns = sim.now
    starts = []
    for flow in flows:
        Receiver(sim, topo.hosts[flow.dst], flow, on_complete=collector.on_complete)
        sender = sender_cls(
            sim,
            topo.hosts[flow.src],
            flow,
            init_cwnd=cfg.init_cwnd,
            min_rto_ns=cfg.min_rto_ns,
            init_rto_ns=cfg.min_rto_ns,
            tagger=tagger,
            max_cwnd=max_cwnd,
        )
        senders.append(sender)
        start_cb = sender.start if pool is None else _WarmStart(pool, sender)
        starts.append((flow.start_ns - base_ns, start_cb))
    # one batched push for the whole arrival schedule
    sim.schedule_many(starts)
    return senders


class _WarmStart:
    """Defer the warm-window checkout to the flow's actual start time."""

    __slots__ = ("pool", "sender")

    def __init__(self, pool: ConnectionPool, sender: SenderBase) -> None:
        self.pool = pool
        self.sender = sender

    def __call__(self) -> None:
        sender = self.sender
        key, warm = self.pool.checkout(sender.flow.src, sender.flow.dst)
        if warm is not None:
            sender.cwnd = warm
            # a warm connection is past slow start: continue in avoidance
            sender.ssthresh = max(warm, 2.0)
        pool = self.pool
        prev_done = sender.on_done

        def record_and_chain(s: SenderBase) -> None:
            pool.release(key, s.cwnd)
            if prev_done is not None:
                prev_done(s)

        sender.on_done = record_and_chain
        sender.start()


def _switches_of(topo) -> List:
    if isinstance(topo, StarTopology):
        return [topo.switch]
    return list(topo.leaves) + list(topo.spines)


def _deadline_ns(cfg: ExperimentConfig, flows: List[Flow]) -> int:
    if cfg.max_sim_ns:
        return cfg.max_sim_ns
    last_arrival = max(f.start_ns for f in flows)
    # generous drain allowance: the whole workload again, plus 2 s of slack
    deadline = last_arrival * 3 + 2 * SEC
    if cfg.mode != "packet":
        # Fluid scenarios are chosen *because* their transfers outlast
        # the arrival window (a 25 MB flow at a contended 1 Gbps share
        # drains for seconds); bound the tail by the time the whole
        # promoted volume would take serialized through one edge link,
        # with the same generosity factor.  Epochs make the extra
        # simulated time nearly free.
        promoted = sum(
            f.size_bytes
            for f in flows
            if cfg.mode == "fluid" or f.size_bytes >= cfg.fluid_size_bytes
        )
        deadline += 4 * promoted * 8 * SEC // cfg.link_rate_bps
    return deadline
