"""Fluid-accuracy cross-validation: fluid/hybrid vs the packet engine.

The fluid solver is an approximation; this harness is the standing
measurement of *how good* an approximation, on configurations pinned
inside the model's stated validity domain (see ``docs/FLUID.md``).  For
each pinned config it runs the packet engine and the fluid/hybrid modes
over the same seeds, pools the promoted (>= 1 MB) flows' FCTs across
seeds, and compares the pooled p50/p99 and the mean per-flow goodput.
Everything is deterministic — fixed seeds, fixed configs — so the
deviations below are exact reproducible numbers, not samples.

Tolerances are per mode and deliberately different:

* ``hybrid`` (long flows fluid, shorts packet-exact) gates at 5% on
  p50, p99 and goodput — the PR acceptance bar.
* ``fluid`` (everything fluid, including the short flows the model is
  *not* built for) gates at 10% on p50/goodput and 25% on p99: pure
  fluid mode trades tail fidelity for another ~100x of speed, and the
  loose p99 bound records that trade honestly instead of hiding it.

Run it as ``python -m repro fluidcheck`` (exit 1 on any violation);
CI's fluid-smoke job uploads the ``--json`` artifact.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.metrics.fct import percentile

#: flows at least this large are the population under comparison (the
#: hybrid promotion threshold the pinned configs use)
PROMOTION_BYTES = 1_000_000

#: seeds pooled per config — pooling before taking percentiles keeps
#: the p99 estimate out of single-seed small-sample noise
SEEDS = (1, 2, 3)

#: The pinned cross-validation configs.  Both sit inside the model's
#: validity domain on purpose (moderate long-flow concurrency, two-point
#: bulk workload): the harness states how good the approximation is
#: where it is meant to be used, and docs/FLUID.md states where it is
#: not.  Do not retune these to make a regression pass.
CHECK_CONFIGS: Dict[str, Dict[str, object]] = {
    "star_bulk": dict(
        topology="star",
        n_hosts=9,
        workload="bulk",
        workload_clip_bytes=2_000_000,
        n_flows=100,
        load=0.3,
    ),
    "leafspine_bulk": dict(
        topology="leafspine",
        n_leaf=2,
        n_spine=2,
        hosts_per_leaf=4,
        workload="bulk",
        workload_clip_bytes=2_000_000,
        n_flows=80,
        load=0.1,
    ),
}

#: per-mode fractional tolerance on each metric's |deviation|
TOLERANCES: Dict[str, Dict[str, float]] = {
    "hybrid": {"p50": 0.05, "p99": 0.05, "goodput": 0.05},
    "fluid": {"p50": 0.10, "p99": 0.25, "goodput": 0.10},
}


@dataclass
class ModeCheck:
    """One (config, mode) comparison against the packet engine."""

    config: str
    mode: str
    n_flows: int
    #: fractional deviations, signed (positive = slower / higher than
    #: packet-exact)
    p50_dev: float
    p99_dev: float
    goodput_dev: float
    tolerance: Dict[str, float]
    wall_packet_s: float
    wall_mode_s: float
    ok: bool

    def as_dict(self) -> Dict[str, object]:
        return {
            "config": self.config,
            "mode": self.mode,
            "n_flows": self.n_flows,
            "p50_dev": round(self.p50_dev, 5),
            "p99_dev": round(self.p99_dev, 5),
            "goodput_dev": round(self.goodput_dev, 5),
            "tolerance": dict(self.tolerance),
            "wall_packet_s": round(self.wall_packet_s, 3),
            "wall_mode_s": round(self.wall_mode_s, 3),
            "speedup": round(
                self.wall_packet_s / self.wall_mode_s
                if self.wall_mode_s > 0
                else float("inf"),
                1,
            ),
            "ok": self.ok,
        }

    def describe(self) -> str:
        verdict = "ok" if self.ok else "VIOLATION"
        speedup = (
            self.wall_packet_s / self.wall_mode_s
            if self.wall_mode_s > 0
            else float("inf")
        )
        return (
            f"{self.config}/{self.mode}: "
            f"p50 {self.p50_dev:+.1%} p99 {self.p99_dev:+.1%} "
            f"goodput {self.goodput_dev:+.1%} "
            f"(n={self.n_flows}, {speedup:.1f}x wall) {verdict}"
        )


def _pool(
    kwargs: Mapping[str, object], mode: str, seeds: Sequence[int]
) -> tuple:
    """Pooled promoted-flow (fcts, goodputs, total wall) for one mode."""
    fcts: List[int] = []
    goodputs: List[float] = []
    wall = 0.0
    for seed in seeds:
        cfg = ExperimentConfig(
            mode=mode,
            fluid_size_bytes=PROMOTION_BYTES,
            seed=seed,
            **kwargs,  # type: ignore[arg-type]
        )
        result = run_experiment(cfg)
        wall += result.wall_s
        for flow in result.flows:
            if flow.size_bytes >= PROMOTION_BYTES and flow.completed:
                fcts.append(flow.fct_ns)
                goodputs.append(flow.size_bytes * 8e9 / flow.fct_ns)
    return fcts, goodputs, wall


def run_fluidcheck(
    configs: Optional[Sequence[str]] = None,
    modes: Sequence[str] = ("hybrid", "fluid"),
    seeds: Sequence[int] = SEEDS,
) -> List[ModeCheck]:
    """Run the cross-validation; one :class:`ModeCheck` per config/mode.

    The packet engine runs once per config and is shared by every mode's
    comparison.
    """
    names = list(configs) if configs else sorted(CHECK_CONFIGS)
    checks: List[ModeCheck] = []
    for name in names:
        kwargs = CHECK_CONFIGS[name]
        ref_fcts, ref_goodputs, ref_wall = _pool(kwargs, "packet", seeds)
        ref_p50 = percentile(ref_fcts, 50)
        ref_p99 = percentile(ref_fcts, 99)
        ref_goodput = sum(ref_goodputs) / len(ref_goodputs)
        for mode in modes:
            fcts, goodputs, wall = _pool(kwargs, mode, seeds)
            tol = TOLERANCES[mode]
            p50_dev = percentile(fcts, 50) / ref_p50 - 1.0
            p99_dev = percentile(fcts, 99) / ref_p99 - 1.0
            goodput_dev = (
                sum(goodputs) / len(goodputs) / ref_goodput - 1.0
            )
            ok = (
                len(fcts) == len(ref_fcts)
                and abs(p50_dev) <= tol["p50"]
                and abs(p99_dev) <= tol["p99"]
                and abs(goodput_dev) <= tol["goodput"]
            )
            checks.append(
                ModeCheck(
                    config=name,
                    mode=mode,
                    n_flows=len(fcts),
                    p50_dev=p50_dev,
                    p99_dev=p99_dev,
                    goodput_dev=goodput_dev,
                    tolerance=dict(tol),
                    wall_packet_s=ref_wall,
                    wall_mode_s=wall,
                    ok=ok,
                )
            )
    return checks


def write_json(checks: Sequence[ModeCheck], path: str) -> None:
    """Write the CI artifact: every check plus the pinned parameters."""
    parent = os.path.dirname(path)
    if parent:
        os.makedirs(parent, exist_ok=True)
    payload = {
        "seeds": list(SEEDS),
        "promotion_bytes": PROMOTION_BYTES,
        "violations": sum(0 if c.ok else 1 for c in checks),
        "checks": [c.as_dict() for c in checks],
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
