"""Declarative experiment configuration.

One :class:`ExperimentConfig` captures everything that varies across the
paper's figures: marking scheme, scheduler, transport, topology, workload,
load, and the threshold constants.  Thresholds left at ``None`` are derived
from Equations 1/3 (``C x RTT x lambda`` and ``RTT x lambda``); every bench
either relies on that derivation or pins the exact values the paper quotes
(30 KB for Fig. 1, 125 KB / 100 us for Fig. 3, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.thresholds import (
    standard_red_threshold_bytes,
    standard_tcn_threshold_ns,
)
from repro.units import GBPS, KB, MSEC, USEC


@dataclass
class ExperimentConfig:
    """Full description of one simulation run."""

    # scheme under test
    scheme: str = "tcn"            # key into harness.schemes.SCHEMES
    scheduler: str = "dwrr"        # key into harness.schemes.SCHEDULERS
    transport: str = "dctcp"       # key into harness.schemes.TRANSPORTS

    # topology
    topology: str = "star"         # "star" | "leafspine"
    n_hosts: int = 9               # star only
    n_leaf: int = 4                # leafspine only
    n_spine: int = 4
    hosts_per_leaf: int = 4
    link_rate_bps: int = GBPS
    buffer_bytes: int = 96 * KB
    link_delay_ns: Optional[int] = None   # default: base_rtt / 4 (star)
    base_rtt_ns: int = 250 * USEC

    # queues
    n_queues: int = 4              # total queues per port
    n_high: int = 1                # strict-priority queues (sp_* schedulers)
    quantum_bytes: int = 1500      # DWRR quantum / WFQ byte-weight basis

    # thresholds (None -> Equations 1 and 3)
    lam: float = 1.0
    red_threshold_bytes: Optional[int] = None
    tcn_threshold_ns: Optional[int] = None
    codel_target_ns: Optional[int] = None      # default rtt/5 (testbed-style tuning)
    codel_interval_ns: Optional[int] = None    # default 4 x rtt
    dq_thresh_bytes: int = 10 * KB             # Algorithm 1 (ideal scheme)
    mqecn_beta: float = 0.75

    # workload
    workload: str = "websearch"    # a workload name, or "mixed" (leafspine)
    # optional tail clip (bytes): bounds the cost of simulating the extreme
    # tail of the data-mining/Hadoop distributions at benchmark scale; the
    # clipped mass collapses onto the clip point (EmpiricalCdf.truncated)
    workload_clip_bytes: Optional[int] = None
    load: float = 0.6
    n_flows: int = 200
    pias: bool = False
    pias_threshold_bytes: int = 100 * KB

    # transport tuning
    init_cwnd: float = 16.0
    min_rto_ns: int = 10 * MSEC
    # The paper's testbed client multiplexes messages over 5 persistent
    # TCP connections per host pair (§5): a new flow on a warm connection
    # starts from the connection's converged window instead of slow
    # starting from scratch.  Enable for testbed-style experiments.
    persistent_connections: bool = False
    connections_per_pair: int = 5
    max_warm_cwnd: float = 64.0
    # Socket-buffer / TSQ equivalent: real stacks bound a flow's window to
    # a small multiple of its path BDP (receive-window autotuning, TCP
    # Small Queues), which keeps an unmarked flow from bloating its own
    # NIC FIFO by tens of milliseconds.  cwnd <= max(64, factor x BDP).
    max_cwnd_bdp_factor: float = 4.0

    # Simulation mode (repro.sim.fluid): "packet" simulates every flow
    # packet-by-packet (the default — the engine every digest pins);
    # "fluid" models every flow as a piecewise-constant rate solved at
    # epochs; "hybrid" promotes flows of at least `fluid_size_bytes` to
    # fluid while short flows stay packet-exact, with two-way coupling
    # (fluid load sets residual port rates / standing-queue delay /
    # marking; measured packet throughput feeds back into the solver).
    # Unlike equeue/workers/batch this is NOT a pure performance knob —
    # fluid results are an approximation — so the sweep cache
    # fingerprint includes both fields.  See docs/FLUID.md.
    mode: str = "packet"
    fluid_size_bytes: int = 1_000_000

    # bookkeeping
    seed: int = 1
    max_sim_ns: int = 0            # 0 -> auto (generous multiple of last arrival)
    # future-event-list backend: a repro.sim.equeue.BACKENDS name, or
    # "auto" to let resolved_equeue pick from the workload shape.  Pure
    # performance knob — every backend yields bit-identical results.
    equeue: str = "heap"
    # Parallel engine (repro.sim.parallel): 0 = the classic serial engine;
    # >= 1 shards the leaf-spine fabric into one sub-simulator per leaf
    # pod, spread over `workers` processes (1 = the same partitioned
    # computation driven in-process — useful for debugging and as the
    # scaling baseline).  Leafspine-only; equivalence with the serial
    # engine is digest-checked by tests/test_parallel.py, which is why
    # the sweep cache fingerprint excludes this knob.
    workers: int = 0
    # Batched hot path (run draining + inline transmit trains): a pure
    # performance knob, bit-identical on and off — pinned by the golden
    # digests and the batched-vs-unbatched fuzz — so, like `workers`,
    # the sweep cache fingerprint excludes it.  False = `--no-batch`.
    batch: bool = True
    # Runtime sanitizer (repro.sanitize): invariant checks with zero
    # effect on results — a sanitized run either raises or is
    # bit-identical to an unsanitized one — so the sweep cache
    # fingerprint excludes it like `equeue`/`workers`/`batch`.  False
    # still defers to the REPRO_SANITIZE environment switch at engine
    # construction, so an unmodified suite can run fully sanitized.
    sanitize: bool = False

    def validate(self) -> None:
        """Fail fast on inconsistent combinations."""
        from repro.sim.equeue import BACKENDS

        if self.topology not in ("star", "leafspine"):
            raise ValueError(f"unknown topology {self.topology!r}")
        if self.equeue != "auto" and self.equeue not in BACKENDS:
            raise ValueError(
                f"unknown equeue backend {self.equeue!r}: expected one of "
                f"{sorted(BACKENDS)} or 'auto'"
            )
        if not 0.0 < self.load < 1.0:
            raise ValueError(f"load must be in (0,1), got {self.load}")
        if self.n_flows < 1:
            raise ValueError(f"n_flows must be >= 1, got {self.n_flows}")
        if self.scheduler.startswith("sp_") and not 0 < self.n_high < self.n_queues:
            raise ValueError(
                f"sp_* schedulers need 0 < n_high < n_queues "
                f"(got {self.n_high}/{self.n_queues})"
            )
        if self.pias and not self.scheduler.startswith("sp"):
            raise ValueError("PIAS tagging needs a strict-priority high queue")
        if self.workers < 0:
            raise ValueError(f"workers must be >= 0, got {self.workers}")
        if self.workers and self.topology != "leafspine":
            raise ValueError(
                "workers >= 1 (the partitioned engine) requires the "
                f"leafspine topology, got {self.topology!r}"
            )
        if self.mode not in ("packet", "fluid", "hybrid"):
            raise ValueError(
                f"unknown mode {self.mode!r}: expected packet, fluid, "
                "or hybrid"
            )
        if self.fluid_size_bytes < 1:
            raise ValueError(
                f"fluid_size_bytes must be >= 1, got {self.fluid_size_bytes}"
            )
        if self.workers and self.mode != "packet":
            raise ValueError(
                "the partitioned engine (workers >= 1) only runs the "
                f"packet engine, got mode={self.mode!r}"
            )

    # -- derived constants -----------------------------------------------

    @property
    def effective_red_threshold_bytes(self) -> int:
        """Equation 1 unless pinned."""
        if self.red_threshold_bytes is not None:
            return self.red_threshold_bytes
        return standard_red_threshold_bytes(
            self.link_rate_bps, self.base_rtt_ns, self.lam
        )

    @property
    def effective_tcn_threshold_ns(self) -> int:
        """Equation 3 unless pinned."""
        if self.tcn_threshold_ns is not None:
            return self.tcn_threshold_ns
        return standard_tcn_threshold_ns(self.base_rtt_ns, self.lam)

    @property
    def effective_codel_target_ns(self) -> int:
        """Paper's testbed tuning: target ~= RTT x lambda / 5."""
        if self.codel_target_ns is not None:
            return self.codel_target_ns
        return max(1, self.effective_tcn_threshold_ns // 5)

    @property
    def effective_codel_interval_ns(self) -> int:
        """Paper's testbed tuning: interval ~= 4 x RTT."""
        if self.codel_interval_ns is not None:
            return self.codel_interval_ns
        return 4 * self.base_rtt_ns

    @property
    def n_low(self) -> int:
        """Low-priority (fair-queued) queues under sp_* schedulers."""
        return self.n_queues - self.n_high

    @property
    def resolved_equeue(self) -> str:
        """The concrete backend name after applying the ``auto`` heuristic.

        The heap wins at small event populations (its sifts are pure C);
        the ladder wins once the future-event list carries a few hundred
        entries.  Leaf-spine fabrics and large flow counts are the
        populations where that crossover is behind us, so ``auto`` picks
        the ladder there and stays on the heap for small star runs.
        """
        if self.equeue != "auto":
            return self.equeue
        if self.topology == "leafspine" or self.n_flows >= 100:
            return "ladder"
        return "heap"
