"""Plain-text tables: the benches print paper-vs-measured rows with these."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.harness.runner import ExperimentResult


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Fixed-width ASCII table (no external dependencies)."""
    widths = [len(h) for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
    sep = "  ".join("-" * w for w in widths)
    return "\n".join([fmt(headers), sep] + [fmt(r) for r in rows])


def _us(value_ns: Optional[float]) -> str:
    if value_ns is None:
        return "-"
    return f"{value_ns / 1000.0:.0f}us"


def format_port_breakdown(metrics: Dict[str, dict]) -> str:
    """Per-port traffic/mark/drop table from a run's metrics snapshot.

    Reads the ``port.<name>.<field>`` counters that
    ``run_experiment`` registers (per-queue ``port.<name>.q<i>.*`` keys
    are skipped here — the ``trace`` subcommand breaks queues out).
    Ports with no traffic at all are omitted.
    """
    ports: Dict[str, Dict[str, int]] = {}
    for key, snap in metrics.items():
        if not key.startswith("port."):
            continue
        # port names contain no dots, so: port-level keys split into
        # (name, field); per-queue keys into (name, q<i>, field).
        parts = key[len("port."):].split(".")
        if len(parts) != 2:
            continue
        name, fld = parts
        if isinstance(snap, dict):  # histogram snapshots don't tabulate
            continue
        ports.setdefault(name, {})[fld] = snap
    headers = ["port", "rx_pkts", "tx_pkts", "marks", "mark%", "drops", "drop%"]
    rows: List[List[str]] = []
    for name in sorted(ports):
        c = ports[name]
        rx = c.get("rx_pkts", 0)
        tx = c.get("tx_pkts", 0)
        if rx == 0 and tx == 0:
            continue
        marks = c.get("marked_pkts", 0)
        drops = c.get("dropped_pkts", 0)
        mark_pct = f"{100.0 * marks / tx:.2f}" if tx else "-"
        drop_pct = f"{100.0 * drops / rx:.2f}" if rx else "-"
        rows.append(
            [name, str(rx), str(tx), str(marks), mark_pct, str(drops), drop_pct]
        )
    if not rows:
        return "(no port traffic recorded)"
    return format_table(headers, rows)


def format_stall_table(phase_stats: Dict[str, object]) -> str:
    """Render a ``stall_table`` dict (see :mod:`repro.obs.spans`).

    One row per round phase with its share of the total recorded phase
    time, then the critical-path partition tally — the partitions the
    barrier actually waited for.  Durations come from the flight
    recorder's window of the run (``rounds`` counts every round; the
    phase rows cover the retained window).
    """
    phases = phase_stats.get("phases") or {}
    if not phases:
        return "(no round-phase spans recorded)"
    grand_total = sum(p["total_ns"] for p in phases.values())  # type: ignore[index]
    headers = ["phase", "count", "total", "share", "p50", "p95", "max"]
    rows: List[List[str]] = []
    for phase in ("compute", "serialize", "ipc_wait", "merge"):
        stats = phases.get(phase)
        if stats is None:
            continue
        share = (
            f"{100.0 * stats['total_ns'] / grand_total:.1f}%"
            if grand_total
            else "-"
        )
        rows.append([
            phase,
            str(stats["count"]),
            f"{stats['total_ns'] / 1e6:.2f}ms",
            share,
            _us(stats["p50_ns"]),
            _us(stats["p95_ns"]),
            _us(stats["max_ns"]),
        ])
    lines = [
        f"{phase_stats.get('rounds', 0)} barrier rounds",
        format_table(headers, rows),
    ]
    critical = phase_stats.get("critical_partition") or {}
    if critical:
        tally = ", ".join(
            f"{pid} x{count}" for pid, count in critical.items()
        )
        lines.append(f"critical-path partition (slowest compute): {tally}")
    return "\n".join(lines)


def format_fct_rows(results: Dict[str, ExperimentResult]) -> str:
    """One row per scheme: the paper's four FCT statistics plus counters.

    Values are also normalized to TCN (the paper's plots normalize to TCN
    = 1.0) when a ``tcn`` row is present.
    """
    tcn = results.get("tcn")
    headers = [
        "scheme",
        "avg(all)",
        "avg(small)",
        "99p(small)",
        "avg(large)",
        "norm-avg-small",
        "norm-99p-small",
        "timeouts",
        "drops",
    ]
    rows: List[List[str]] = []
    for name, res in results.items():
        s = res.summary
        def norm(field: str) -> str:
            if tcn is None:
                return "-"
            base = getattr(tcn.summary, field)
            val = getattr(s, field)
            if base is None or val is None or base == 0:
                return "-"
            return f"{val / base:.2f}"
        rows.append(
            [
                name,
                _us(s.avg_all_ns),
                _us(s.avg_small_ns),
                _us(s.p99_small_ns),
                _us(s.avg_large_ns),
                norm("avg_small_ns"),
                norm("p99_small_ns"),
                str(res.timeouts),
                str(res.drops),
            ]
        )
    return format_table(headers, rows)
