"""Named registries: marking schemes, schedulers, transports.

Every figure's bench selects by name; the factories close over an
:class:`~repro.harness.config.ExperimentConfig` so a fresh scheduler/AQM
instance is minted per switch port (exactly like per-port qdisc instances).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.aqm.base import Aqm, NoopAqm
from repro.aqm.codel import CoDel
from repro.aqm.dequeue_red import DequeueRed
from repro.aqm.ideal import IdealRed
from repro.aqm.mqecn import MqEcn
from repro.aqm.perport import PerPortRed
from repro.aqm.perqueue import PerQueueRed
from repro.aqm.pie import Pie
from repro.core.tcn import Tcn
from repro.harness.config import ExperimentConfig
from repro.sched.base import Scheduler, make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.hybrid import SpDwrrScheduler, SpWfqScheduler
from repro.sched.pifo import PifoScheduler, stfq_rank
from repro.sched.sp import StrictPriorityScheduler
from repro.sched.wfq import WfqScheduler
from repro.sched.wrr import WrrScheduler
from repro.transport.dctcp import DctcpSender
from repro.transport.tcp import EcnStarSender, RenoSender

AqmFactory = Callable[[ExperimentConfig], Optional[Aqm]]
SchedulerFactory = Callable[[ExperimentConfig], Scheduler]


# -- marking schemes ----------------------------------------------------------

def _tcn(cfg: ExperimentConfig) -> Aqm:
    return Tcn(cfg.effective_tcn_threshold_ns)


def _codel(cfg: ExperimentConfig) -> Aqm:
    return CoDel(
        target_ns=cfg.effective_codel_target_ns,
        interval_ns=cfg.effective_codel_interval_ns,
    )


def _red_std(cfg: ExperimentConfig) -> Aqm:
    return PerQueueRed(cfg.effective_red_threshold_bytes)


def _dequeue_red(cfg: ExperimentConfig) -> Aqm:
    return DequeueRed(cfg.effective_red_threshold_bytes)


def _perport_red(cfg: ExperimentConfig) -> Aqm:
    return PerPortRed(cfg.effective_red_threshold_bytes)


def _mqecn(cfg: ExperimentConfig) -> Aqm:
    return MqEcn(cfg.base_rtt_ns, lam=cfg.lam, beta=cfg.mqecn_beta)


def _ideal(cfg: ExperimentConfig) -> Aqm:
    return IdealRed(
        cfg.base_rtt_ns, lam=cfg.lam, dq_thresh_bytes=cfg.dq_thresh_bytes
    )


def _pie(cfg: ExperimentConfig) -> Aqm:
    return Pie(
        target_delay_ns=cfg.effective_tcn_threshold_ns,
        update_interval_ns=cfg.base_rtt_ns,
        dq_thresh_bytes=cfg.dq_thresh_bytes,
    )


def _none(cfg: ExperimentConfig) -> Aqm:
    return NoopAqm()


#: scheme name -> AQM factory.  Names follow the paper's terminology.
SCHEMES: Dict[str, AqmFactory] = {
    "tcn": _tcn,                    # the contribution (§4)
    "codel": _codel,                # sojourn-time competitor (§4.3)
    "mqecn": _mqecn,                # round-robin-only dynamic RED
    "red_std": _red_std,            # per-queue ECN/RED, standard threshold
    "dequeue_red": _dequeue_red,    # Wu et al. dequeue marking
    "perport_red": _perport_red,    # policy-violating per-port RED (§3.2.2)
    "ideal": _ideal,                # Equation 2 via Algorithm 1
    "pie": _pie,                    # extension
    "droptail": _none,              # no ECN at all
}


# -- schedulers -----------------------------------------------------------

def _queues(cfg: ExperimentConfig, n: int, priorities=None):
    return make_queues(
        n, quanta=[cfg.quantum_bytes] * n, priorities=priorities
    )


def _fifo(cfg: ExperimentConfig) -> Scheduler:
    return FifoScheduler()


def _sp(cfg: ExperimentConfig) -> Scheduler:
    return StrictPriorityScheduler(_queues(cfg, cfg.n_queues))


def _wrr(cfg: ExperimentConfig) -> Scheduler:
    return WrrScheduler(_queues(cfg, cfg.n_queues))


def _dwrr(cfg: ExperimentConfig) -> Scheduler:
    return DwrrScheduler(_queues(cfg, cfg.n_queues))


def _wfq(cfg: ExperimentConfig) -> Scheduler:
    return WfqScheduler(_queues(cfg, cfg.n_queues))


def _sp_dwrr(cfg: ExperimentConfig) -> Scheduler:
    return SpDwrrScheduler(_queues(cfg, cfg.n_queues), n_high=cfg.n_high)


def _sp_wfq(cfg: ExperimentConfig) -> Scheduler:
    return SpWfqScheduler(_queues(cfg, cfg.n_queues), n_high=cfg.n_high)


def _pifo(cfg: ExperimentConfig) -> Scheduler:
    return PifoScheduler(_queues(cfg, cfg.n_queues), rank_fn=stfq_rank)


#: scheduler name -> factory
SCHEDULERS: Dict[str, SchedulerFactory] = {
    "fifo": _fifo,
    "sp": _sp,
    "wrr": _wrr,
    "dwrr": _dwrr,
    "wfq": _wfq,
    "sp_dwrr": _sp_dwrr,
    "sp_wfq": _sp_wfq,
    "pifo": _pifo,
}

#: transport name -> sender class
TRANSPORTS = {
    "dctcp": DctcpSender,
    "ecnstar": EcnStarSender,
    "reno": RenoSender,
}

#: schemes that are only defined on round-robin schedulers
ROUND_ROBIN_ONLY = {"mqecn"}

#: schedulers that expose rounds
ROUND_ROBIN_SCHEDULERS = {"wrr", "dwrr", "sp_dwrr"}
