"""Experiment harness: declarative configs -> built topology -> results."""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import ExperimentResult, run_experiment
from repro.harness.schemes import SCHEMES, SCHEDULERS, TRANSPORTS
from repro.harness.report import (
    format_table,
    format_fct_rows,
    format_port_breakdown,
)
from repro.harness.sweep import (
    ResultCache,
    SweepError,
    SweepOutcome,
    SweepResult,
    SweepStats,
    config_key,
    run_sweep,
)

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_sweep",
    "ResultCache",
    "SweepError",
    "SweepOutcome",
    "SweepResult",
    "SweepStats",
    "config_key",
    "SCHEMES",
    "SCHEDULERS",
    "TRANSPORTS",
    "format_table",
    "format_fct_rows",
    "format_port_breakdown",
]
