"""Experiment harness: declarative configs -> built topology -> results."""

from repro.harness.config import ExperimentConfig
from repro.harness.runner import ExperimentResult, run_experiment
from repro.harness.schemes import SCHEMES, SCHEDULERS, TRANSPORTS
from repro.harness.report import format_table, format_fct_rows

__all__ = [
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "SCHEMES",
    "SCHEDULERS",
    "TRANSPORTS",
    "format_table",
    "format_fct_rows",
]
