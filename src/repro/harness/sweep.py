# simlint: disable-file=SIM001 -- the sweep driver times workers, budgets timeouts, and reports wall-clock throughput; none of these clocks reaches the simulation, which runs entirely inside run_experiment(cfg)
"""Parallel parameter sweeps with an on-disk result cache.

Every figure reproduction is a grid of :class:`ExperimentConfig`s —
schemes x loads x seeds — and each cell is an independent, deterministic
simulation.  This module fans such a grid across ``multiprocessing``
workers and memoises each cell on disk, so a sweep saturates the machine
the first time and is a cache hit every time after.

Design notes
------------
* **Determinism is preserved.**  A worker runs exactly the same
  ``run_experiment(cfg)`` the serial path runs; all randomness flows from
  ``cfg.seed``, so parallel and serial sweeps produce byte-identical
  result payloads (a property the test suite asserts).
* **Results are summaries, not simulations.**  Workers ship back a small
  JSON-serialisable payload (FCT summary, counters, per-flow
  ``(size, fct)`` pairs for pooling) — never the ``flows`` objects with
  their per-packet state, which would dominate IPC cost.
* **The cache key is content-addressed.**  ``sha256(code_version +
  canonical-JSON(config))``: any change to a config field *or* to any
  ``repro`` source file changes the key, so stale entries are simply
  never read and invalidation is automatic.
* **A broken worker cannot hang the sweep.**  Each config runs in its own
  process with a result pipe; a worker that crashes (EOF on the pipe) or
  exceeds ``timeout_s`` (terminated) yields a structured
  :class:`SweepError` result while the rest of the sweep proceeds.
* **Spawn-safe workers, loud fallback.**  The worker bootstrap is
  start-method agnostic: ``fork`` is preferred (cheapest), but platforms
  offering only ``spawn``/``forkserver`` (e.g. Windows, macOS defaults)
  parallelise too, because the child entry point is module-level and its
  arguments pickle.  ``processes=0`` (or 1) still runs in-process with
  identical semantics — useful under debuggers — and on the (rare)
  platform with *no* usable start method the sweep falls back to serial
  **loudly**: a stderr warning plus ``SweepStats.serial_fallback=True``,
  never an invisible loss of parallelism.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import multiprocessing
import os
import sys
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.harness.config import ExperimentConfig
from repro.metrics.fct import FctSummary
from repro.obs.spans import SpanRecorder, wall_ns

ProgressFn = Callable[[int, int, "SweepResult"], None]


# -- cache keying --------------------------------------------------------

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file; memoised per process.

    Baked into each cache key so that editing any simulator source
    invalidates every cached result without bookkeeping.
    """
    global _CODE_VERSION
    if _CODE_VERSION is None:
        import repro

        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(".py"):
                    continue
                path = os.path.join(dirpath, name)
                digest.update(os.path.relpath(path, root).encode())
                digest.update(b"\0")
                with open(path, "rb") as fh:
                    digest.update(fh.read())
                digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def config_fingerprint(cfg: ExperimentConfig) -> str:
    """Canonical JSON of every result-affecting config field.

    The event-queue backend is excluded on purpose: every backend
    produces bit-identical results (the golden-digest tests enforce it),
    so a sweep re-run with ``--equeue ladder`` still hits the cache
    entries a heap run populated.  ``workers`` is excluded for the same
    reason: the partitioned engine is digest-checked against the serial
    one (``tests/test_parallel.py``), so serial and parallel runs of one
    config share a cache entry.
    """
    fields = dataclasses.asdict(cfg)
    fields.pop("equeue", None)
    fields.pop("workers", None)
    fields.pop("batch", None)
    fields.pop("sanitize", None)
    return json.dumps(
        fields, sort_keys=True, separators=(",", ":"), default=str,
    )


def config_key(cfg: ExperimentConfig) -> str:
    """Stable content hash of config + code version: the cache key."""
    blob = code_version() + "\n" + config_fingerprint(cfg)
    return hashlib.sha256(blob.encode()).hexdigest()[:32]


# -- results -------------------------------------------------------------


@dataclass
class SweepError:
    """Structured failure of one sweep cell (never an exception)."""

    kind: str                    # "exception" | "timeout" | "crash"
    message: str
    traceback: Optional[str] = None
    exitcode: Optional[int] = None


@dataclass
class SweepResult:
    """One sweep cell: the summary slice of an ExperimentResult.

    Duck-types what the reports and benches read from an
    ``ExperimentResult`` (``summary``, the counters, ``all_completed``)
    but carries compact ``(size_bytes, fct_ns)`` pairs instead of the
    full ``flows`` payload, so it is cheap to pickle and JSON-serialise.
    """

    config: ExperimentConfig
    summary: Optional[FctSummary] = None
    completed: int = 0
    total: int = 0
    timeouts: int = 0
    timeouts_small: int = 0
    drops: int = 0
    marks: int = 0
    sim_ns: int = 0
    events: int = 0
    wall_s: float = 0.0
    flow_stats: List[Tuple[int, int]] = field(repr=False, default_factory=list)
    #: MetricsRegistry snapshot of the run (deterministic, so cacheable)
    metrics: Dict[str, dict] = field(repr=False, default_factory=dict)
    #: event-heap high-water mark — deterministic, unlike the rest of the
    #: run profile, so it travels with the payload
    heap_hwm: int = 0
    from_cache: bool = False
    error: Optional[SweepError] = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def all_completed(self) -> bool:
        return self.completed == self.total

    def payload(self) -> dict:
        """The canonical JSON-serialisable body (wall time excluded, so
        identical simulations yield identical payloads)."""
        summary = None
        if self.summary is not None:
            summary = {s: getattr(self.summary, s) for s in FctSummary.__slots__}
        return {
            "summary": summary,
            "completed": self.completed,
            "total": self.total,
            "timeouts": self.timeouts,
            "timeouts_small": self.timeouts_small,
            "drops": self.drops,
            "marks": self.marks,
            "sim_ns": self.sim_ns,
            "events": self.events,
            "flow_stats": [list(pair) for pair in self.flow_stats],
            "metrics": self.metrics,
            "heap_hwm": self.heap_hwm,
        }


@dataclass
class SweepStats:
    """Observability counters for one ``run_sweep`` call."""

    total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    errors: int = 0
    wall_s: float = 0.0
    #: simulator events executed by the runs that actually ran (cache
    #: hits contribute nothing — their simulations never happened)
    sim_events: int = 0
    #: summed per-run wall time of those runs (>= ``wall_s`` when the
    #: sweep is parallel)
    run_wall_s: float = 0.0
    #: True when parallelism was requested but no usable multiprocessing
    #: start method exists, so the sweep silently-no-more ran serially
    #: (a loud warning is also printed to stderr when this trips)
    serial_fallback: bool = False

    @property
    def hit_rate(self) -> float:
        return self.cache_hits / self.total if self.total else 0.0

    @property
    def events_per_sec(self) -> float:
        """Aggregate simulation throughput of the non-cached runs."""
        return self.sim_events / self.run_wall_s if self.run_wall_s > 0 else 0.0


@dataclass
class SweepOutcome:
    """Results (in input order) plus the sweep-level counters."""

    results: List[SweepResult]
    stats: SweepStats

    def __iter__(self):
        return iter(self.results)

    def __len__(self) -> int:
        return len(self.results)

    def __getitem__(self, index):
        return self.results[index]

    @property
    def ok(self) -> bool:
        return all(r.ok for r in self.results)

    def errors(self) -> List[SweepResult]:
        return [r for r in self.results if not r.ok]


def _result_from_payload(
    cfg: ExperimentConfig,
    payload: dict,
    wall_s: float,
    from_cache: bool,
) -> SweepResult:
    summary = None
    if payload.get("summary") is not None:
        summary = FctSummary(**payload["summary"])
    return SweepResult(
        config=cfg,
        summary=summary,
        completed=payload["completed"],
        total=payload["total"],
        timeouts=payload["timeouts"],
        timeouts_small=payload["timeouts_small"],
        drops=payload["drops"],
        marks=payload["marks"],
        sim_ns=payload["sim_ns"],
        events=payload.get("events", 0),
        wall_s=wall_s,
        flow_stats=[tuple(pair) for pair in payload["flow_stats"]],
        metrics=payload.get("metrics", {}),
        heap_hwm=payload.get("heap_hwm", 0),
        from_cache=from_cache,
    )


def _error_result(cfg: ExperimentConfig, error: SweepError, wall_s: float) -> SweepResult:
    return SweepResult(config=cfg, wall_s=wall_s, error=error)


# -- the on-disk cache ---------------------------------------------------


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` or ``benchmarks/.cache`` under the cwd."""
    return os.environ.get(
        "REPRO_CACHE_DIR", os.path.join("benchmarks", ".cache")
    )


class ResultCache:
    """Content-addressed store of sweep payloads under one directory.

    Layout: ``<root>/<key>.json`` where ``key = config_key(cfg)``.  Each
    entry records the key, the config fingerprint (for humans debugging a
    miss), and the result payload.  Writes are atomic (tmp + rename) so a
    crashed run never leaves a torn entry; unreadable entries are treated
    as misses.
    """

    def __init__(self, root: Union[str, "os.PathLike[str]", None] = None) -> None:
        self.root = os.fspath(root) if root is not None else default_cache_dir()

    def path_for(self, key: str) -> str:
        return os.path.join(self.root, key + ".json")

    def get(self, cfg: ExperimentConfig) -> Optional[dict]:
        """The stored entry dict for ``cfg``, or ``None`` on a miss."""
        key = config_key(cfg)
        try:
            with open(self.path_for(key)) as fh:
                entry = json.load(fh)
            if entry.get("key") != key or "payload" not in entry:
                return None
            return entry
        except (OSError, ValueError):
            return None

    def put(self, cfg: ExperimentConfig, payload: dict, wall_s: float) -> None:
        key = config_key(cfg)
        os.makedirs(self.root, exist_ok=True)
        entry = {
            "key": key,
            "code_version": code_version(),
            "config": config_fingerprint(cfg),
            "wall_s": wall_s,
            "payload": payload,
        }
        # Atomic publish: serialize to a same-directory temp file, flush
        # it to disk, then os.replace() into place.  A reader can only
        # ever observe the old entry or the complete new one — a worker
        # killed mid-write (e.g. by the sweep's timeout terminator) leaves
        # at worst a stale *.tmp.<pid> file, never a truncated entry that
        # would later deserialize as a cache hit.
        tmp = self.path_for(key) + f".tmp.{os.getpid()}"
        try:
            with open(tmp, "w") as fh:
                json.dump(entry, fh, sort_keys=True)
                fh.flush()
                os.fsync(fh.fileno())
            os.replace(tmp, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise


# -- execution -----------------------------------------------------------


def _execute_config(cfg: ExperimentConfig) -> Tuple[dict, float]:
    """Run one experiment and reduce it to (payload, wall seconds).

    Module-level so worker children resolve it by name — tests monkeypatch
    it to simulate crashing/hanging workers.
    """
    from repro.harness.runner import run_experiment

    res = run_experiment(cfg)
    summary = {s: getattr(res.summary, s) for s in FctSummary.__slots__}
    payload = {
        "summary": summary,
        "completed": res.completed,
        "total": res.total,
        "timeouts": res.timeouts,
        "timeouts_small": res.timeouts_small,
        "drops": res.drops,
        "marks": res.marks,
        "sim_ns": res.sim_ns,
        "events": res.events,
        "flow_stats": [
            [f.size_bytes, f.fct_ns] for f in res.flows if f.completed
        ],
        "metrics": res.metrics,
        "heap_hwm": res.profile.get("heap_hwm", 0),
    }
    return payload, res.wall_s


def _child_main(conn, cfg_dict: dict) -> None:
    """Worker entry point: run one config, ship the payload, exit."""
    try:
        cfg = ExperimentConfig(**cfg_dict)
        payload, wall_s = _execute_config(cfg)
        conn.send(("ok", payload, wall_s))
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except (BrokenPipeError, OSError):  # parent already gone
            pass
    finally:
        conn.close()


#: start methods the worker bootstrap supports, in preference order.
#: ``fork`` is cheapest; ``spawn``/``forkserver`` work because the worker
#: entry point (`_child_main`) is module-level and its arguments (a pipe
#: connection plus a plain config dict) pickle cleanly.
_START_METHODS = ("fork", "forkserver", "spawn")


def _resolve_processes(
    processes: Optional[int], n_configs: int
) -> Tuple[int, Optional[str]]:
    """Pick (worker count, start method); ``(0, None)`` means serial.

    ``0`` workers is only ever the *requested* serial mode (``processes``
    in {0, 1} or a single config) — except on a platform with no usable
    ``multiprocessing`` start method at all, where the caller must treat
    the fallback as an event worth reporting (``SweepStats.serial_fallback``),
    never silently degrade.
    """
    if processes is None:
        processes = os.cpu_count() or 1
    processes = max(0, min(processes, n_configs))
    if processes <= 1:
        return 0, None
    available = multiprocessing.get_all_start_methods()
    for method in _START_METHODS:
        if method in available:
            return processes, method
    return 0, None


DispatchFn = Callable[[int, int], None]


def _run_serial(
    configs: Sequence[Tuple[int, ExperimentConfig]],
    on_result: Callable[[int, SweepResult], None],
    on_dispatch: Optional[DispatchFn] = None,
) -> None:
    for idx, cfg in configs:
        if on_dispatch is not None:
            on_dispatch(idx, os.getpid())
        start = time.monotonic()
        try:
            payload, wall_s = _execute_config(cfg)
            result = _result_from_payload(cfg, payload, wall_s, from_cache=False)
        except Exception as exc:
            error = SweepError(
                kind="exception",
                message=f"{type(exc).__name__}: {exc}",
                traceback=traceback.format_exc(),
            )
            result = _error_result(cfg, error, time.monotonic() - start)
        on_result(idx, result)


def _run_parallel(
    configs: Sequence[Tuple[int, ExperimentConfig]],
    processes: int,
    timeout_s: Optional[float],
    on_result: Callable[[int, SweepResult], None],
    start_method: str = "fork",
    on_dispatch: Optional[DispatchFn] = None,
) -> None:
    ctx = multiprocessing.get_context(start_method)
    queue = list(configs)[::-1]          # pop() takes them in input order
    running: Dict[object, Tuple[int, ExperimentConfig, object, float]] = {}

    def reap(conn, idx, cfg, proc, started, timed_out=False):
        wall_s = time.monotonic() - started
        msg = None
        if not timed_out:
            try:
                if conn.poll(0):
                    msg = conn.recv()
            except (EOFError, OSError):
                msg = None
        conn.close()
        if timed_out or (msg is None and proc.is_alive()):
            proc.terminate()
        proc.join(timeout=10)
        if proc.is_alive():  # pragma: no cover - terminate() should suffice
            proc.kill()
            proc.join()
        if timed_out:
            error = SweepError(
                kind="timeout",
                message=f"worker exceeded {timeout_s}s and was terminated",
            )
            on_result(idx, _error_result(cfg, error, wall_s))
        elif msg is None:
            error = SweepError(
                kind="crash",
                message=f"worker died without a result (exitcode {proc.exitcode})",
                exitcode=proc.exitcode,
            )
            on_result(idx, _error_result(cfg, error, wall_s))
        elif msg[0] == "ok":
            on_result(
                idx, _result_from_payload(cfg, msg[1], msg[2], from_cache=False)
            )
        else:
            error = SweepError(
                kind="exception", message="worker raised", traceback=msg[1]
            )
            on_result(idx, _error_result(cfg, error, wall_s))

    try:
        while queue or running:
            while queue and len(running) < processes:
                idx, cfg = queue.pop()
                parent_conn, child_conn = ctx.Pipe(duplex=False)
                proc = ctx.Process(
                    target=_child_main,
                    args=(child_conn, dataclasses.asdict(cfg)),
                    daemon=True,
                )
                started = time.monotonic()
                proc.start()
                child_conn.close()
                if on_dispatch is not None:
                    on_dispatch(idx, proc.pid or 0)
                running[parent_conn] = (idx, cfg, proc, started)

            # Sleep until a worker reports (or dies: EOF also wakes us),
            # but never past the soonest per-worker deadline.
            wait_s = 0.25
            if timeout_s is not None and running:
                soonest = min(t0 + timeout_s for (_, _, _, t0) in running.values())
                wait_s = min(wait_s, max(0.0, soonest - time.monotonic()))
            ready = mp_connection.wait(list(running), timeout=wait_s)
            for conn in ready:
                idx, cfg, proc, started = running.pop(conn)
                reap(conn, idx, cfg, proc, started)
            if timeout_s is not None:
                now = time.monotonic()
                for conn in list(running):
                    idx, cfg, proc, started = running[conn]
                    if now - started > timeout_s:
                        del running[conn]
                        reap(conn, idx, cfg, proc, started, timed_out=True)
    finally:
        for conn, (idx, cfg, proc, started) in running.items():
            proc.terminate()
            proc.join(timeout=5)
            conn.close()


# -- the public runner ---------------------------------------------------


def run_sweep(
    configs: Sequence[ExperimentConfig],
    processes: Optional[int] = None,
    timeout_s: Optional[float] = None,
    cache: Optional[ResultCache] = None,
    progress: Optional[ProgressFn] = None,
    spans: Optional[SpanRecorder] = None,
) -> SweepOutcome:
    """Run a grid of experiments, in parallel and through the cache.

    Parameters
    ----------
    configs:
        The grid cells, each a full :class:`ExperimentConfig`.  Results
        come back in the same order.
    processes:
        Worker processes.  ``None`` means one per CPU (capped at the
        number of configs); ``0`` or ``1`` runs serially in-process.  Any
        available start method works (``fork`` preferred, ``spawn`` /
        ``forkserver`` otherwise); a platform with none runs serially
        with a stderr warning and ``SweepStats.serial_fallback`` set.
    timeout_s:
        Per-config wall-clock budget.  An over-budget worker is
        terminated and reported as a ``SweepError(kind="timeout")``
        (parallel mode only — a serial run cannot be interrupted).
    cache:
        A :class:`ResultCache`; hits skip the simulation entirely.  Only
        successful results are cached.
    progress:
        ``progress(done, total, result)`` called after every cell, cache
        hits included (from the coordinating process, in completion
        order).
    spans:
        A :class:`SpanRecorder`; when enabled, each cell lands as one
        ``sweep/job`` span (t0 at dispatch, duration to completion; a
        cache hit is a zero-duration span) carrying its status
        (``cached`` / ``ok`` / ``exception`` / ``timeout`` / ``crash``)
        and worker identity.  Job spans adopt in config order at the end
        of the sweep, so the export order never depends on which worker
        finished first.
    """
    configs = list(configs)
    for cfg in configs:
        cfg.validate()

    stats = SweepStats(total=len(configs))
    results: List[Optional[SweepResult]] = [None] * len(configs)
    sweep_start = time.monotonic()
    done = {"n": 0}

    spans_on = spans is not None and spans.enabled
    sweep_t0 = wall_ns() if spans_on else 0
    #: idx -> (dispatch wall_ns, worker pid); cache hits never appear
    dispatched: Dict[int, Tuple[int, int]] = {}
    #: idx -> finished job span (t0, dur, args) awaiting ordered adoption
    job_spans: Dict[int, Tuple[int, int, dict]] = {}

    def on_dispatch(idx: int, worker_pid: int) -> None:
        dispatched[idx] = (wall_ns(), worker_pid)

    def finish(idx: int, result: SweepResult) -> None:
        results[idx] = result
        done["n"] += 1
        if result.error is not None:
            stats.errors += 1
        else:
            if not result.from_cache:
                stats.sim_events += result.events
                stats.run_wall_s += result.wall_s
                if cache is not None:
                    cache.put(result.config, result.payload(), result.wall_s)
        if spans_on:
            now = wall_ns()
            t0, worker_pid = dispatched.pop(idx, (now, 0))
            if result.error is not None:
                status = result.error.kind
            elif result.from_cache:
                status = "cached"
            else:
                status = "ok"
            args = {
                "idx": idx,
                "status": status,
                "from_cache": result.from_cache,
                "events": result.events,
                "queued_ns": max(0, t0 - sweep_t0),
                "worker_pid": worker_pid,
            }
            job_spans[idx] = (t0, now - t0, args)
        if progress is not None:
            progress(done["n"], len(configs), result)

    to_run: List[Tuple[int, ExperimentConfig]] = []
    for idx, cfg in enumerate(configs):
        entry = cache.get(cfg) if cache is not None else None
        if entry is not None:
            stats.cache_hits += 1
            finish(
                idx,
                _result_from_payload(
                    cfg, entry["payload"], entry.get("wall_s", 0.0),
                    from_cache=True,
                ),
            )
        else:
            if cache is not None:
                stats.cache_misses += 1
            to_run.append((idx, cfg))

    n_workers, start_method = _resolve_processes(processes, len(to_run))
    if n_workers == 0:
        requested = processes if processes is not None else (os.cpu_count() or 1)
        if requested > 1 and len(to_run) > 1:
            # Parallelism was asked for and there is work to parallelise,
            # yet no multiprocessing start method exists on this platform.
            # Losing the machine's cores must never be invisible.
            stats.serial_fallback = True
            sys.stderr.write(
                "repro.harness.sweep: WARNING: no multiprocessing start "
                "method available on this platform — running "
                f"{len(to_run)} configs serially\n"
            )
        _run_serial(to_run, finish, on_dispatch if spans_on else None)
    else:
        _run_parallel(
            to_run, n_workers, timeout_s, finish, start_method=start_method,
            on_dispatch=on_dispatch if spans_on else None,
        )

    stats.wall_s = time.monotonic() - sweep_start
    if spans_on and spans is not None:
        for idx in sorted(job_spans):
            t0, dur, args = job_spans[idx]
            spans.add("sweep", "job", t0, dur, tid=f"job{idx}", args=args)
        spans.add(
            "sweep", "sweep", sweep_t0, wall_ns() - sweep_t0, tid="sweep",
            args={
                "configs": stats.total,
                "cache_hits": stats.cache_hits,
                "cache_misses": stats.cache_misses,
                "errors": stats.errors,
                "workers": n_workers,
                "start_method": start_method or "serial",
            },
        )
    assert all(r is not None for r in results)
    return SweepOutcome(results=results, stats=stats)
