"""The unified run report: one self-contained markdown/HTML document.

``python -m repro report`` runs an experiment with the flight recorder
on and renders everything a reader needs to judge the run — config,
profile, FCT summary, metrics snapshot, the parallel stall-attribution
table, the hottest ports by marks/drops, and a timeline digest — into a
single file with no external assets, so it attaches to a CI run or a
paper artifact as-is.

The renderer is deliberately dumb: it builds a list of named sections
whose bodies are the same fixed-width tables the CLIs print, then
serialises them as markdown (fenced code blocks) or HTML (``<pre>``
blocks with a few lines of inline CSS).  No templating engine, no
dependencies, deterministic output for deterministic inputs.
"""

from __future__ import annotations

import html
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.harness.config import ExperimentConfig
from repro.harness.report import (
    format_fct_rows,
    format_port_breakdown,
    format_stall_table,
    format_table,
)
from repro.harness.runner import ExperimentResult
from repro.obs.spans import SpanRecorder, format_span_summary

#: (heading, body) — body is preformatted fixed-width text
Section = Tuple[str, str]


def _config_lines(cfg: ExperimentConfig) -> str:
    rows = [
        ["scheme", cfg.scheme],
        ["scheduler", cfg.scheduler],
        ["transport", cfg.transport],
        ["topology", cfg.topology],
        ["workload", cfg.workload],
        ["load", f"{cfg.load:g}"],
        ["flows", str(cfg.n_flows)],
        ["seed", str(cfg.seed)],
        ["equeue", cfg.equeue],
        ["workers", str(cfg.workers)],
    ]
    return format_table(["parameter", "value"], rows)


def _run_lines(result: ExperimentResult) -> str:
    rows = [
        ["completed flows", f"{result.completed}/{result.total}"],
        ["simulated time", f"{result.sim_ns / 1e9:.3f} s"],
        ["wall time", f"{result.wall_s:.2f} s"],
        ["timeouts", str(result.timeouts)],
        ["drops", str(result.drops)],
        ["ECN marks", str(result.marks)],
    ]
    return format_table(["metric", "value"], rows)


def _profile_lines(profile: Dict[str, object]) -> str:
    rows = [
        ["events", str(profile.get("events", 0))],
        ["events/sec", f"{float(profile.get('events_per_sec', 0.0)):,.0f}"],
        ["heap high-water", str(profile.get("heap_hwm", 0))],
        [
            "RSS high-water",
            f"{int(profile.get('rss_hwm_bytes', 0)) / 2**20:.0f} MB",  # type: ignore[call-overload]
        ],
        ["event queue", str(profile.get("equeue", "heap"))],
    ]
    if profile.get("workers"):
        rows += [
            ["workers", str(profile["workers"])],
            ["start method", str(profile.get("start_method", ""))],
            ["sync rounds", str(profile.get("rounds", 0))],
            [
                "sync stall",
                f"{float(profile.get('sync_stall_s', 0.0)):.2f} s",  # type: ignore[arg-type]
            ],
        ]
    return format_table(["metric", "value"], rows)


def hottest_ports(
    metrics: Dict[str, Any], top: int = 8
) -> List[Tuple[str, int, int, int, int]]:
    """Ports ranked by (marks + drops) descending: the congestion map.

    Returns ``(port, rx_pkts, tx_pkts, marks, drops)`` rows; ports with
    neither marks nor drops are omitted (nothing to rank them by).
    """
    ports: Dict[str, Dict[str, int]] = {}
    for key, snap in metrics.items():
        if not key.startswith("port.") or isinstance(snap, dict):
            continue
        parts = key[len("port."):].split(".")
        if len(parts) != 2:
            continue
        name, fld = parts
        ports.setdefault(name, {})[fld] = snap
    ranked = []
    for name, c in ports.items():
        marks = c.get("marked_pkts", 0)
        drops = c.get("dropped_pkts", 0)
        if marks or drops:
            ranked.append(
                (name, c.get("rx_pkts", 0), c.get("tx_pkts", 0), marks, drops)
            )
    ranked.sort(key=lambda r: (-(r[3] + r[4]), r[0]))
    return ranked[:top]


def _hottest_lines(metrics: Dict[str, Any], top: int) -> str:
    ranked = hottest_ports(metrics, top)
    if not ranked:
        return "(no port recorded a mark or a drop)"
    rows = [
        [name, str(rx), str(tx), str(marks), str(drops)]
        for name, rx, tx, marks, drops in ranked
    ]
    return format_table(["port", "rx_pkts", "tx_pkts", "marks", "drops"], rows)


def build_sections(
    result: ExperimentResult,
    spans: Optional[SpanRecorder] = None,
    top_ports: int = 8,
) -> List[Section]:
    """Assemble the report sections from one finished run."""
    sections: List[Section] = [
        ("Configuration", _config_lines(result.config)),
        ("Run", _run_lines(result)),
        ("Profile", _profile_lines(result.profile)),
        ("FCT summary", format_fct_rows({result.config.scheme: result})),
    ]
    phase_stats = result.profile.get("phase_stats")
    if isinstance(phase_stats, dict):
        sections.append(
            ("Stall attribution", format_stall_table(phase_stats))
        )
    sections.append(
        ("Hottest ports", _hottest_lines(result.metrics, top_ports))
    )
    sections.append(
        ("Port breakdown", format_port_breakdown(result.metrics))
    )
    if spans is not None and len(spans):
        digest = format_span_summary(spans.iter_dicts())
        if spans.dropped_spans:
            digest += (
                f"\n({spans.dropped_spans} older spans evicted from the "
                f"ring; the digest covers the newest window)"
            )
        sections.append(("Timeline digest", digest))
    return sections


def render_markdown(title: str, sections: Sequence[Section]) -> str:
    parts = [f"# {title}", ""]
    for heading, body in sections:
        parts += [f"## {heading}", "", "```", body, "```", ""]
    return "\n".join(parts)


_HTML_STYLE = (
    "body{font-family:sans-serif;max-width:72em;margin:2em auto;"
    "padding:0 1em;color:#222}"
    "h1{border-bottom:2px solid #222;padding-bottom:.2em}"
    "h2{margin-top:1.6em;color:#444}"
    "pre{background:#f6f6f6;border:1px solid #ddd;border-radius:4px;"
    "padding:.8em;overflow-x:auto;font-size:.9em;line-height:1.35}"
)


def render_html(title: str, sections: Sequence[Section]) -> str:
    parts = [
        "<!DOCTYPE html>",
        "<html><head><meta charset=\"utf-8\">",
        f"<title>{html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style>",
        "</head><body>",
        f"<h1>{html.escape(title)}</h1>",
    ]
    for heading, body in sections:
        parts.append(f"<h2>{html.escape(heading)}</h2>")
        parts.append(f"<pre>{html.escape(body)}</pre>")
    parts.append("</body></html>")
    return "\n".join(parts)


def render_run_report(
    result: ExperimentResult,
    spans: Optional[SpanRecorder] = None,
    top_ports: int = 8,
    fmt: str = "md",
) -> str:
    """Render one run into a self-contained document (``md`` or ``html``)."""
    cfg = result.config
    title = (
        f"repro run report: {cfg.scheme}/{cfg.scheduler} "
        f"{cfg.topology} {cfg.workload} load={cfg.load:g} seed={cfg.seed}"
    )
    sections = build_sections(result, spans=spans, top_ports=top_ports)
    if fmt == "html":
        return render_html(title, sections)
    if fmt != "md":
        raise ValueError(f"unknown report format: {fmt!r}")
    return render_markdown(title, sections)
