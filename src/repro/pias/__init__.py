"""PIAS-style flow scheduling at end hosts."""

from repro.pias.tagger import PiasTagger

__all__ = ["PiasTagger"]
