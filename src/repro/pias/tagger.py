"""Two-priority PIAS tagging (Bai et al., NSDI 2015), as used in §6.1.3/§6.2.

The paper installs a Netfilter module that tags the first 100 KB of every
flow (message) into a shared strict-high-priority queue and the rest into
the flow's dedicated service queue.  Here the same rule is a per-packet
DSCP function plugged into the sender (the ``tagger`` hook): byte offsets
below the threshold map to the high-priority DSCP, later bytes to the
flow's service DSCP.

Retransmitted segments keep the tag of their original byte offset, exactly
as a byte-count-based kernel tagger behaves.
"""

from __future__ import annotations

from repro.transport.flow import Flow
from repro.units import KB, MSS


class PiasTagger:
    """Maps (flow, segment index) -> DSCP for two-priority PIAS.

    Parameters
    ----------
    threshold_bytes:
        Demotion threshold; the paper uses 100 KB.
    high_dscp:
        DSCP of the shared strict-high-priority queue.
    service_dscp_offset:
        Service queues sit at DSCP ``offset + flow.service`` (the offset is
        the number of high-priority queues, usually 1).
    """

    __slots__ = ("threshold_bytes", "high_dscp", "service_dscp_offset")

    def __init__(
        self,
        threshold_bytes: int = 100 * KB,
        high_dscp: int = 0,
        service_dscp_offset: int = 1,
    ) -> None:
        if threshold_bytes < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold_bytes}")
        self.threshold_bytes = threshold_bytes
        self.high_dscp = high_dscp
        self.service_dscp_offset = service_dscp_offset

    def __call__(self, flow: Flow, seq: int) -> int:
        sent_before = seq * MSS
        if sent_before < self.threshold_bytes:
            return self.high_dscp
        return self.service_dscp_offset + flow.service
