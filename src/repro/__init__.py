"""repro — a full reproduction of *Enabling ECN over Generic Packet
Scheduling* (TCN, CoNEXT 2016) on a pure-Python packet-level datacenter
network simulator.

Quick start::

    from repro import ExperimentConfig, run_experiment

    cfg = ExperimentConfig(scheme="tcn", scheduler="dwrr",
                           workload="websearch", load=0.6, n_flows=200)
    result = run_experiment(cfg)
    print(result.summary)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every figure.
"""

from repro.core.tcn import Tcn, ProbabilisticTcn
from repro.core.thresholds import (
    standard_red_threshold_bytes,
    standard_tcn_threshold_ns,
    ideal_red_threshold_bytes,
)
from repro.aqm import (
    Aqm,
    NoopAqm,
    CoDel,
    MqEcn,
    Pie,
    PerQueueRed,
    PerPortRed,
    PerPoolRed,
    BufferPool,
    DequeueRed,
    IdealRed,
    RateMeter,
    RedMarker,
)
from repro.sched import (
    Scheduler,
    FifoScheduler,
    StrictPriorityScheduler,
    WrrScheduler,
    DwrrScheduler,
    WfqScheduler,
    SpDwrrScheduler,
    SpWfqScheduler,
    PifoScheduler,
)
from repro.sched.base import make_queues
from repro.sim import Simulator, RngFactory
from repro.net import (
    Packet,
    PacketKind,
    PacketQueue,
    Link,
    EgressPort,
    Switch,
    Host,
    DscpClassifier,
    make_nic,
)
from repro.transport import (
    Flow,
    SenderBase,
    DctcpSender,
    DcqcnSender,
    EcnStarSender,
    RenoSender,
    Receiver,
)
from repro.workloads import (
    EmpiricalCdf,
    WEB_SEARCH,
    DATA_MINING,
    HADOOP,
    CACHE,
    ALL_WORKLOADS,
    workload_by_name,
    FlowGenerator,
)
from repro.pias import PiasTagger
from repro.apps import Pinger, IncastApp, IncastQuery
from repro.topo import StarTopology, LeafSpineTopology
from repro.metrics import (
    FctCollector,
    FctSummary,
    percentile,
    GoodputTracker,
    OccupancySampler,
)
from repro.harness import (
    ExperimentConfig,
    ExperimentResult,
    run_experiment,
    run_sweep,
    ResultCache,
    SweepError,
    SweepOutcome,
    SweepResult,
    SweepStats,
    SCHEMES,
    SCHEDULERS,
    TRANSPORTS,
    format_table,
    format_fct_rows,
    format_port_breakdown,
)
from repro.obs import (
    Tracer,
    NullTracer,
    NULL_TRACER,
    MetricsRegistry,
    Counter,
    Gauge,
    Histogram,
    RunProfile,
    TraceSummary,
    summarize_events,
    summarize_trace_file,
    format_trace_summary,
)

__version__ = "1.0.0"

__all__ = [
    # core
    "Tcn",
    "ProbabilisticTcn",
    "standard_red_threshold_bytes",
    "standard_tcn_threshold_ns",
    "ideal_red_threshold_bytes",
    # aqm
    "Aqm",
    "NoopAqm",
    "CoDel",
    "MqEcn",
    "Pie",
    "PerQueueRed",
    "PerPortRed",
    "PerPoolRed",
    "BufferPool",
    "DequeueRed",
    "IdealRed",
    "RateMeter",
    "RedMarker",
    # schedulers
    "Scheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "WrrScheduler",
    "DwrrScheduler",
    "WfqScheduler",
    "SpDwrrScheduler",
    "SpWfqScheduler",
    "PifoScheduler",
    "make_queues",
    # sim + net
    "Simulator",
    "RngFactory",
    "Packet",
    "PacketKind",
    "PacketQueue",
    "Link",
    "EgressPort",
    "Switch",
    "Host",
    "DscpClassifier",
    "make_nic",
    # transport
    "Flow",
    "SenderBase",
    "DctcpSender",
    "DcqcnSender",
    "EcnStarSender",
    "RenoSender",
    "Receiver",
    # workloads
    "EmpiricalCdf",
    "WEB_SEARCH",
    "DATA_MINING",
    "HADOOP",
    "CACHE",
    "ALL_WORKLOADS",
    "workload_by_name",
    "FlowGenerator",
    # apps / pias
    "PiasTagger",
    "Pinger",
    "IncastApp",
    "IncastQuery",
    # topologies
    "StarTopology",
    "LeafSpineTopology",
    # metrics
    "FctCollector",
    "FctSummary",
    "percentile",
    "GoodputTracker",
    "OccupancySampler",
    # harness
    "ExperimentConfig",
    "ExperimentResult",
    "run_experiment",
    "run_sweep",
    "ResultCache",
    "SweepError",
    "SweepOutcome",
    "SweepResult",
    "SweepStats",
    "SCHEMES",
    "SCHEDULERS",
    "TRANSPORTS",
    "format_table",
    "format_fct_rows",
    "format_port_breakdown",
    # observability
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "RunProfile",
    "TraceSummary",
    "summarize_events",
    "summarize_trace_file",
    "format_trace_summary",
]
