"""Measurement and traffic applications that run on hosts."""

from repro.apps.pinger import Pinger
from repro.apps.incast import IncastApp, IncastQuery

__all__ = ["Pinger", "IncastApp", "IncastQuery"]
