"""Periodic RTT probing — the paper's `ping` measurement (Fig. 5b).

A :class:`Pinger` sends small probe packets at a fixed interval through the
same switch queues as data traffic (the probe's DSCP selects the queue);
the destination host echoes each probe and the measured round-trip times
accumulate in :attr:`Pinger.rtts_ns`.
"""

from __future__ import annotations

from typing import List

from repro.net.host import Host
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator


class Pinger:
    """Sends probes from ``host`` to ``dst_host_id`` every ``interval_ns``."""

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        dst_host_id: int,
        flow_id: int,
        dscp: int = 0,
        interval_ns: int = 1_000_000,
    ) -> None:
        if interval_ns <= 0:
            raise ValueError(f"interval must be positive, got {interval_ns}")
        self.sim = sim
        self.host = host
        self.dst = dst_host_id
        self.flow_id = flow_id
        self.dscp = dscp
        self.interval_ns = interval_ns
        self.rtts_ns: List[int] = []
        self._running = False
        host.register_probe_handler(flow_id, self._on_reply)

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._send_probe()

    def stop(self) -> None:
        self._running = False

    def _send_probe(self) -> None:
        if not self._running:
            return
        probe = Packet(
            self.flow_id,
            self.host.id,
            self.dst,
            PacketKind.PROBE,
            dscp=self.dscp,
            ts=self.sim.now,
        )
        self.host.send(probe)
        self.sim.schedule(self.interval_ns, self._send_probe)

    def _on_reply(self, reply: Packet) -> None:
        self.rtts_ns.append(self.sim.now - reply.ts)
