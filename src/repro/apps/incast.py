"""Partition-aggregate query generation (the web-search pattern of §1).

An aggregator fans a query out to ``n_workers`` servers; every worker
answers with a fixed-size response *simultaneously* — the classic incast
microburst that motivates low-latency AQM in the first place.  The query
completes when the **last** response finishes, so query completion time
(QCT) is a tail-sensitive metric: one timed-out response ruins the query.

Used by the burst-tolerance ablation and the incast example.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Type

from repro.sim.engine import Simulator
from repro.transport.base import SenderBase
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver


class IncastQuery:
    """One fan-out/fan-in round."""

    __slots__ = ("query_id", "start_ns", "done_ns", "pending", "flows")

    def __init__(self, query_id: int, start_ns: int, flows: List[Flow]) -> None:
        self.query_id = query_id
        self.start_ns = start_ns
        self.done_ns: Optional[int] = None
        self.pending = len(flows)
        self.flows = flows

    @property
    def qct_ns(self) -> Optional[int]:
        """Query completion time: last response in minus query out."""
        if self.done_ns is None:
            return None
        return self.done_ns - self.start_ns


class IncastApp:
    """Issues periodic partition-aggregate queries.

    Parameters
    ----------
    aggregator:
        Host object receiving all responses.
    workers:
        Host objects that answer (each contributes one response flow).
    response_bytes:
        Size of each worker's answer.
    interval_ns:
        Gap between consecutive queries (new queries are issued even if an
        old one is still outstanding — as real aggregators do).
    sender_cls / sender_kwargs:
        Transport used for the responses (DCTCP by default).
    """

    def __init__(
        self,
        sim: Simulator,
        aggregator,
        workers: List,
        response_bytes: int,
        interval_ns: int,
        n_queries: int,
        sender_cls: Type[SenderBase] = DctcpSender,
        service: int = 0,
        first_flow_id: int = 1_000_000,
        on_query_done: Optional[Callable[[IncastQuery], None]] = None,
        **sender_kwargs,
    ) -> None:
        if not workers:
            raise ValueError("incast needs at least one worker")
        if response_bytes <= 0:
            raise ValueError(f"response size must be positive, got {response_bytes}")
        self.sim = sim
        self.aggregator = aggregator
        self.workers = workers
        self.response_bytes = response_bytes
        self.interval_ns = interval_ns
        self.n_queries = n_queries
        self.sender_cls = sender_cls
        self.service = service
        self.sender_kwargs = sender_kwargs
        self.on_query_done = on_query_done
        self.queries: List[IncastQuery] = []
        self._next_flow_id = first_flow_id
        self._issued = 0

    def start(self) -> None:
        """Issue the first query now; the rest follow every interval."""
        self._issue()

    def _issue(self) -> None:
        if self._issued >= self.n_queries:
            return
        self._issued += 1
        now = self.sim.now
        flows = []
        for worker in self.workers:
            flow = Flow(
                self._next_flow_id,
                worker.id,
                self.aggregator.id,
                self.response_bytes,
                service=self.service,
            )
            self._next_flow_id += 1
            flows.append(flow)
        query = IncastQuery(self._issued, now, flows)
        self.queries.append(query)
        for worker, flow in zip(self.workers, flows):
            Receiver(
                self.sim, self.aggregator, flow,
                on_complete=lambda fl, q=query: self._on_response(q),
            )
            sender = self.sender_cls(
                self.sim, worker, flow, **self.sender_kwargs
            )
            self.sim.schedule(0, sender.start)
        if self._issued < self.n_queries:
            self.sim.schedule(self.interval_ns, self._issue)

    def _on_response(self, query: IncastQuery) -> None:
        query.pending -= 1
        if query.pending == 0:
            query.done_ns = self.sim.now
            if self.on_query_done is not None:
                self.on_query_done(query)

    # -- results ------------------------------------------------------------

    def qcts_ns(self) -> List[int]:
        """Completion times of all finished queries."""
        return [q.qct_ns for q in self.queries if q.qct_ns is not None]

    @property
    def completed(self) -> int:
        return len(self.qcts_ns())
