"""Marking-threshold arithmetic from the paper (Equations 1-3).

* Equation 1: the *standard* queue-length threshold ``K = C x RTT x lambda``
  for a queue that owns the whole link.
* Equation 2: the *ideal* per-queue threshold ``K_i = C_i x RTT x lambda``
  where ``C_i`` is the (dynamic) per-queue capacity.
* Equation 3: TCN's sojourn-time threshold ``T = RTT x lambda`` — capacity
  cancels out, which is the whole point.

``lambda`` captures the transport's sensitivity to marks: 1.0 for ECN*
(plain ECN TCP that halves on a mark, per Wu et al.), and the DCTCP
guideline of ~0.17 x C x RTT corresponds to passing a smaller lambda.  The
paper's setups always quote concrete K values, which these helpers
reproduce exactly (125 KB for 10 Gbps x 100 us x 1.0, etc.).
"""

from __future__ import annotations

from repro.units import SEC


def standard_red_threshold_bytes(
    rate_bps: int, rtt_ns: int, lam: float = 1.0
) -> int:
    """Equation 1: ``K = C x RTT x lambda`` in bytes.

    >>> from repro.units import GBPS, USEC
    >>> standard_red_threshold_bytes(10 * GBPS, 100 * USEC)
    125000
    """
    return int(rate_bps * rtt_ns * lam / (8 * SEC))


def ideal_red_threshold_bytes(
    queue_rate_bps: float, rtt_ns: int, lam: float = 1.0
) -> int:
    """Equation 2: per-queue ``K_i = C_i x RTT x lambda`` in bytes."""
    return int(queue_rate_bps * rtt_ns * lam / (8 * SEC))


def standard_tcn_threshold_ns(rtt_ns: int, lam: float = 1.0) -> int:
    """Equation 3: TCN's sojourn threshold ``T = RTT x lambda`` in ns.

    >>> from repro.units import USEC
    >>> standard_tcn_threshold_ns(100 * USEC)
    100000
    """
    return int(rtt_ns * lam)
