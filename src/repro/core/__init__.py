"""The paper's contribution: TCN and its threshold arithmetic."""

from repro.core.tcn import Tcn, ProbabilisticTcn
from repro.core.thresholds import (
    standard_red_threshold_bytes,
    standard_tcn_threshold_ns,
    ideal_red_threshold_bytes,
)

__all__ = [
    "Tcn",
    "ProbabilisticTcn",
    "standard_red_threshold_bytes",
    "standard_tcn_threshold_ns",
    "ideal_red_threshold_bytes",
]
