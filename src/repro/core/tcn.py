"""TCN — Time-based Congestion Notification (the paper's contribution, §4).

TCN marks a departing packet when its *sojourn time* (dequeue time minus
enqueue timestamp) exceeds a single static threshold ``T = RTT x lambda``.
Because sojourn time already encodes the queue's effective drain rate, the
threshold is independent of the scheduler and of how capacity is being
shared — no rate measurement, no rounds, no per-queue state.

Two variants are provided:

* :class:`Tcn` — the headline instantaneous, stateless marker.
* :class:`ProbabilisticTcn` — the RED-like extension of §4.3 with two
  thresholds ``(T_min, T_max)`` and a maximum probability ``P_max``, for
  transports such as DCQCN that want probabilistic marking.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING, Optional

from repro.aqm.base import Aqm
from repro.net.packet import Packet
from repro.net.queue import PacketQueue

if TYPE_CHECKING:  # pragma: no cover
    from repro.net.port import EgressPort


class Tcn(Aqm):
    """Instantaneous sojourn-time marking: completely stateless.

    Parameters
    ----------
    threshold_ns:
        The sojourn-time marking threshold ``T = RTT x lambda`` (Eq. 3).

    The marking rule is a single comparison per departing packet — the
    hardware-feasibility argument of §4.2 (one 2-byte enqueue timestamp of
    metadata, one unsigned subtraction, one compare).
    """

    __slots__ = ("threshold_ns",)

    def __init__(self, threshold_ns: int) -> None:
        if threshold_ns <= 0:
            raise ValueError(f"TCN threshold must be positive, got {threshold_ns}")
        self.threshold_ns = threshold_ns

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        return now - pkt.enq_ts > self.threshold_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Tcn T={self.threshold_ns}ns>"


class ProbabilisticTcn(Aqm):
    """RED-like TCN (§4.3): linear marking probability between two thresholds.

    * sojourn <= ``tmin_ns``: never mark.
    * sojourn >= ``tmax_ns``: always mark.
    * otherwise: mark with probability
      ``P_max x (sojourn - T_min) / (T_max - T_min)``.

    Still stateless across packets; the only extra ingredient is a random
    draw, for which a seeded ``random.Random`` can be injected to keep runs
    reproducible.
    """

    __slots__ = ("tmin_ns", "tmax_ns", "pmax", "rng")

    def __init__(
        self,
        tmin_ns: int,
        tmax_ns: int,
        pmax: float = 1.0,
        rng: Optional[random.Random] = None,
    ) -> None:
        if not 0 <= tmin_ns <= tmax_ns:
            raise ValueError(f"need 0 <= tmin <= tmax, got ({tmin_ns}, {tmax_ns})")
        if not 0.0 < pmax <= 1.0:
            raise ValueError(f"pmax must be in (0, 1], got {pmax}")
        self.tmin_ns = tmin_ns
        self.tmax_ns = tmax_ns
        self.pmax = pmax
        self.rng = rng or random.Random(0)

    def on_dequeue(
        self, port: "EgressPort", queue: PacketQueue, pkt: Packet, now: int
    ) -> bool:
        sojourn = now - pkt.enq_ts
        if sojourn <= self.tmin_ns:
            return False
        if sojourn >= self.tmax_ns:
            return True
        span = self.tmax_ns - self.tmin_ns
        if span == 0:
            return True
        prob = self.pmax * (sojourn - self.tmin_ns) / span
        return self.rng.random() < prob

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ProbabilisticTcn [{self.tmin_ns},{self.tmax_ns}]ns "
            f"pmax={self.pmax}>"
        )
