"""The binary-heap backend: the engine's historical default, unchanged.

A single :mod:`heapq` array of entry tuples.  Every sift comparison runs
in C on ``(int, int)`` prefixes, which makes the heap very hard to beat
at small event populations — it stays the default, and the engine keeps
its dispatch loop inlined over :attr:`entries` (see
``Simulator.run``) so choosing the default backend costs nothing over
the pre-backend engine.

The :meth:`run_loop` here is the same loop in backend form; it only runs
when a ``HeapEventQueue`` is driven through the generic backend path
(e.g. by the cross-backend equivalence tests).
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.sim.equeue.base import NEVER, Entry, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

#: re-exported heap primitives — the engine's inlined default-backend
#: fast path uses these without importing :mod:`heapq` itself (simlint
#: SIM011 confines heapq imports to this package)
heappush = heapq.heappush
heappop = heapq.heappop


class HeapEventQueue(EventQueue):
    """Classic binary heap of entry tuples (the default backend)."""

    name = "heap"

    __slots__ = ("entries",)

    def __init__(self) -> None:
        #: the heap array — the engine's fast path reads this directly
        self.entries: List[Entry] = []

    def push(self, entry: Entry) -> int:
        entries = self.entries
        heapq.heappush(entries, entry)
        return len(entries)

    def pop(self) -> Optional[Entry]:
        entries = self.entries
        if not entries:
            return None
        return heapq.heappop(entries)

    def peek(self) -> Optional[Entry]:
        entries = self.entries
        return entries[0] if entries else None

    def peek_floor(self) -> int:
        entries = self.entries
        return entries[0][0] if entries else NEVER

    def drain_run(self, until_bound: int, limit: int) -> Optional[List[Entry]]:
        # repeated sift: for the short runs real workloads produce this
        # beats any slice-and-reheapify scheme, and each pop keeps the
        # heap truthful for re-entrant pushes
        entries = self.entries
        if not entries:
            return None
        entry = entries[0]
        time = entry[0]
        if time > until_bound:
            return None
        pop = heapq.heappop
        pop(entries)
        run = [entry]
        while entries and entries[0][0] == time and len(run) < limit:
            run.append(pop(entries))
        return run

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self.entries)

    def stats(self) -> Dict[str, int]:
        return {}

    def run_loop(
        self,
        sim: "Simulator",
        until_bound: int,
        budget: int,
        cancelled: Set[int],
    ) -> int:
        heap = self.entries
        pop = heapq.heappop
        executed = 0
        while heap:
            entry = heap[0]
            time = entry[0]
            if time > until_bound:
                break
            pop(heap)
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                continue
            sim.now = time
            if len(entry) == 3:
                entry[2]()
            else:
                entry[2](entry[3])
            executed += 1
            if executed >= budget:
                break
        return executed
