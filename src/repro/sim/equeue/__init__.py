"""Pluggable event-queue backends for :class:`repro.sim.engine.Simulator`.

Three interchangeable priority-queue structures over the engine's entry
tuples, all guaranteed to produce the exact same ``(time, seq)`` event
order (the golden-digest tests enforce this bit-for-bit):

``heap``
    The historical binary heap — the default.  Hard to beat at small
    event populations; the engine keeps an inlined fast path for it.
``ladder``
    Calendar/ladder queue with lazily resized buckets and a far-future
    overflow heap.  O(1)-amortized push; wins once the event population
    grows past a few hundred (leaf-spine sweeps, churn-heavy runs).
``wheel``
    Hierarchical 64-ary timer wheel with physical O(1) cancellation.
    Built for long-deadline, mostly-cancelled timer populations.

``auto`` resolves to a backend heuristically — at the Simulator level it
means "the ladder" (the best general-purpose structure beyond toy
scale); :func:`repro.harness.config.resolve_equeue` applies the
workload-aware version for experiments.
"""

from __future__ import annotations

from typing import Dict, Type, Union

from repro.sim.equeue.base import Entry, EventQueue
from repro.sim.equeue.heap import HeapEventQueue
from repro.sim.equeue.ladder import LadderEventQueue
from repro.sim.equeue.wheel import TimerWheelEventQueue

#: registry of selectable backends (name -> class)
BACKENDS: Dict[str, Type[EventQueue]] = {
    HeapEventQueue.name: HeapEventQueue,
    LadderEventQueue.name: LadderEventQueue,
    TimerWheelEventQueue.name: TimerWheelEventQueue,
}

#: what ``auto`` means when nothing is known about the workload
AUTO_BACKEND = LadderEventQueue.name

EQueueSpec = Union[str, EventQueue, None]


def make_equeue(spec: EQueueSpec = None) -> EventQueue:
    """Build (or pass through) an event-queue backend.

    ``spec`` may be a backend name from :data:`BACKENDS`, ``"auto"``,
    ``None`` (the default heap), or an already-constructed
    :class:`EventQueue` instance (tests inject pre-tuned ones).
    """
    if isinstance(spec, EventQueue):
        return spec
    name = spec or HeapEventQueue.name
    if name == "auto":
        name = AUTO_BACKEND
    cls = BACKENDS.get(name)
    if cls is None:
        raise ValueError(
            f"unknown event-queue backend {spec!r}: expected one of "
            f"{sorted(BACKENDS)} or 'auto'"
        )
    return cls()


__all__ = [
    "AUTO_BACKEND",
    "BACKENDS",
    "Entry",
    "EQueueSpec",
    "EventQueue",
    "HeapEventQueue",
    "LadderEventQueue",
    "TimerWheelEventQueue",
    "make_equeue",
]
