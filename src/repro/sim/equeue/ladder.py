"""Ladder/calendar queue backend: O(1)-amortized push, run-sorted pops.

The structure is the classic three-tier ladder tuned for CPython:

* **bottom** — the active sorted run: the contents of the bucket the
  clock is currently draining, in ``(time, seq)`` order, consumed by an
  index cursor (no ``pop(0)`` shifting).  Events scheduled *into* the
  active bucket (a ``schedule(0, ...)`` chain, sub-bucket link hops) are
  bisect-inserted past the cursor, which preserves the exact total order
  the golden digests pin.
* **ring** — ``nbuckets`` unsorted append-only lists covering the next
  ``nbuckets × 2^shift`` nanoseconds.  A push inside that horizon is one
  shift, one mask, one ``list.append``.  A refill sorts one bucket with
  C timsort — cheap because resizing keeps buckets short.
* **far** — a binary heap holding everything beyond the horizon (RTO
  and pacing timers, mostly).  Pushes land near the heap's bottom (they
  are far-future by definition), so they sift almost never; entries
  migrate into the ring in bulk when the window advances past them.

**Lazy resizing**: every ``_RESIZE_CHECK_EVENTS`` consumed events the
queue compares the observed run length (events drained per refill,
due-now bisect inserts included) against a hysteresis band and rebuilds
with a narrower/wider bucket width (powers of two only, so the hot path
stays shift+mask).  The decision is driven purely by simulated-event
statistics, never the wall clock, so runs stay bit-reproducible.

**Tombstones**: cancellation stays lazy (the engine's cancelled set);
the only twist is the far heap, which would otherwise accumulate every
cancelled long-deadline timer for the whole run.  When the far heap
doubles past a floor, tombstones are purged in bulk against the shared
cancelled set (discarding their seqs exactly as a lazy pop would).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.sim.equeue.base import NEVER, Entry, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

#: reconsider the bucket width after this many consumed events
_RESIZE_CHECK_EVENTS = 4096
#: narrow the buckets when the average consumed run exceeds this — long
#: runs make the bisect-insert of a due-now push shift a long tail
_TARGET_RUN_HIGH = 128.0
#: widen when the average consumed run falls below this — short runs
#: mean the per-refill overhead (scan, sort call, bookkeeping) is
#: amortized over too few events
_TARGET_RUN_LOW = 24.0
#: resize steps aim the run length at the middle of the band
_TARGET_RUN_MID = 64.0
#: bucket width bounds: 4 ns .. ~1.07 s
_MIN_SHIFT = 2
_MAX_SHIFT = 30
#: never purge the far heap below this size
_PURGE_MIN = 4096


class LadderEventQueue(EventQueue):
    """Calendar queue with an adaptive bucket width and far-heap overflow."""

    name = "ladder"

    __slots__ = (
        "_shift",
        "_nbuckets",
        "_mask",
        "_ring",
        "_bottom",
        "_bi",
        "_cur",
        "_limit",
        "_far",
        "_count",
        "_hwm",
        "_cancelled",
        "_purge_at",
        # structure statistics (stats())
        "_refills",
        "_sorted_events",
        "_run_events",
        "_empty_scans",
        "_resizes",
        "_far_pushes",
        "_migrated",
        "_purges",
        "_purged",
        # resize-window snapshots
        "_ck_run",
        "_ck_refills",
    )

    def __init__(self, shift: int = 10, nbuckets: int = 256) -> None:
        if nbuckets & (nbuckets - 1):
            raise ValueError(f"nbuckets must be a power of two, got {nbuckets}")
        if not _MIN_SHIFT <= shift <= _MAX_SHIFT:
            raise ValueError(f"shift out of range: {shift}")
        self._shift = shift
        self._nbuckets = nbuckets
        self._mask = nbuckets - 1
        self._ring: List[List[Entry]] = [[] for _ in range(nbuckets)]
        self._bottom: List[Entry] = []
        self._bi = 0
        # absolute bucket numbers: the active bucket and the (exclusive)
        # end of the ring window.  Ring holds buckets in (cur, limit);
        # far holds [limit, inf).  limit - cur <= nbuckets always.
        self._cur = -1
        self._limit = nbuckets - 1
        self._far: List[Entry] = []
        # entries stored in the ring and far heap ONLY — the bottom run
        # is counted separately via ``len(_bottom) - _bi`` (see __len__),
        # which keeps the hottest push path (a due-now bisect insert)
        # free of any counter maintenance
        self._count = 0
        # pool high-water mark, sampled at refill time; the engine folds
        # it into ``Simulator.heap_hwm`` after each run
        self._hwm = 0
        self._cancelled: Optional[Set[int]] = None
        self._purge_at = _PURGE_MIN
        self._refills = 0
        self._sorted_events = 0
        self._run_events = 0
        self._empty_scans = 0
        self._resizes = 0
        self._far_pushes = 0
        self._migrated = 0
        self._purges = 0
        self._purged = 0
        self._ck_run = 0
        self._ck_refills = 0

    # -- interface --------------------------------------------------------

    def attach(self, cancelled: Set[int]) -> None:
        self._cancelled = cancelled

    def push(self, entry: Entry) -> int:
        b = entry[0] >> self._shift
        if b > self._cur:
            if b < self._limit:
                self._ring[b & self._mask].append(entry)
            else:
                far = self._far
                heapq.heappush(far, entry)
                self._far_pushes += 1
                if len(far) >= self._purge_at:
                    self._purge()
            self._count += 1
        else:
            # lands in the bucket being drained: keep the active run sorted
            insort(self._bottom, entry, self._bi)
        return self._count + len(self._bottom) - self._bi

    def pop(self) -> Optional[Entry]:
        bi = self._bi
        bottom = self._bottom
        if bi == len(bottom):
            if not self._advance():
                return None
            bi = self._bi
        entry = bottom[bi]
        self._bi = bi + 1
        return entry

    def peek(self) -> Optional[Entry]:
        if self._bi == len(self._bottom):
            if not self._advance():
                return None
        return self._bottom[self._bi]

    def peek_floor(self) -> int:
        # strictly non-mutating (run_loop caches the bottom cursor across
        # callbacks, so this must never _advance): the active run's head,
        # else the lower edge of the first un-drained bucket — valid for
        # ring *and* far entries, which all live in buckets > _cur
        bi = self._bi
        bottom = self._bottom
        if bi < len(bottom):
            return bottom[bi][0]
        if self._count:
            return (self._cur + 1) << self._shift
        return NEVER

    def drain_run(self, until_bound: int, limit: int) -> Optional[List[Entry]]:
        # the active run is already (time, seq)-sorted: a same-timestamp
        # run is a contiguous slice starting at the cursor
        bottom = self._bottom
        bi = self._bi
        if bi == len(bottom):
            if not self._advance():
                return None
            bi = 0
        entry = bottom[bi]
        time = entry[0]
        if time > until_bound:
            return None
        # (time + 1,) is less than every entry tuple at time + 1 and
        # greater than every entry at time, so this lands exactly past
        # the run
        end = bisect_left(bottom, (time + 1,), bi)
        if end - bi > limit:
            end = bi + limit if limit > 0 else bi + 1
        run = bottom[bi:end]
        self._bi = end
        return run

    def __len__(self) -> int:
        return self._count + len(self._bottom) - self._bi

    def __iter__(self) -> Iterator[Entry]:
        yield from self._bottom[self._bi :]
        for slot in self._ring:
            yield from slot
        yield from self._far

    def stats(self) -> Dict[str, int]:
        return {
            "width_ns": 1 << self._shift,
            "nbuckets": self._nbuckets,
            "refills": self._refills,
            "sorted_events": self._sorted_events,
            "run_events": self._run_events,
            "empty_scans": self._empty_scans,
            "resizes": self._resizes,
            "far_pushes": self._far_pushes,
            "migrated": self._migrated,
            "purges": self._purges,
            "purged_tombstones": self._purged,
            "far_size": len(self._far),
        }

    # -- the hot dispatch loop -------------------------------------------

    def run_loop(
        self,
        sim: "Simulator",
        until_bound: int,
        budget: int,
        cancelled: Set[int],
    ) -> int:
        executed = 0
        bottom = self._bottom
        bi = self._bi
        blen = len(bottom)
        advance = self._advance
        if sim.batch:
            # batched dispatch: the active run is already sorted, so a
            # same-timestamp run is consumed with one until comparison
            # and one clock store at its head (`t != time` fast path) —
            # the cursor keeps entries queue-visible one at a time, so
            # re-entrant pushes and the train floor probe stay truthful
            time = -1
            run_start = 0
            runs = 0
            singles = 0
            hist = sim.run_hist
            while True:
                if bi == blen:
                    # the cached length can only be stale-low: re-entrant
                    # pushes bisect in at or after the cursor, never before
                    blen = len(bottom)
                    if bi == blen:
                        self._bi = bi
                        if not advance():
                            bi = self._bi  # advance reset the consumed run
                            break
                        bi = 0
                        blen = len(bottom)
                entry = bottom[bi]
                seq = entry[1]
                if cancelled and seq in cancelled:
                    # tombstones never advance the clock or close a run
                    # (consuming one past `until` is pure compaction,
                    # same as peek_time's)
                    cancelled.discard(seq)
                    bi += 1
                    self._bi = bi
                    continue
                t = entry[0]
                if t != time:
                    if t > until_bound:
                        break
                    if time >= 0:
                        rl = executed - run_start
                        if rl == 1:
                            singles += 1
                        else:
                            runs += 1
                            rl = rl.bit_length()
                            hist[rl if rl < 17 else 17] += 1
                        run_start = executed
                    sim.now = time = t
                bi += 1
                # keep the insort anchor current: the callback may
                # schedule into the active run
                self._bi = bi
                if len(entry) == 3:
                    entry[2]()
                else:
                    entry[2](entry[3])
                executed += 1
                if executed >= budget:
                    break
            self._bi = bi
            if time >= 0:
                rl = executed - run_start
                if rl == 1:
                    singles += 1
                else:
                    runs += 1
                    rl = rl.bit_length()
                    hist[rl if rl < 17 else 17] += 1
            hist[1] += singles
            sim.runs_drained += runs + singles
            return executed
        while True:
            if bi == blen:
                # the cached length can only be stale-low: re-entrant
                # pushes bisect in at or after the cursor, never before
                blen = len(bottom)
                if bi == blen:
                    self._bi = bi
                    if not advance():
                        bi = self._bi  # advance reset the consumed run
                        break
                    bi = 0
                    blen = len(bottom)
            entry = bottom[bi]
            time = entry[0]
            if time > until_bound:
                break
            bi += 1
            # keep the insort anchor current: the callback may schedule
            # into the active run
            self._bi = bi
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                continue
            sim.now = time
            if len(entry) == 3:
                entry[2]()
            else:
                entry[2](entry[3])
            executed += 1
            if executed >= budget:
                break
        self._bi = bi
        return executed

    # -- internals --------------------------------------------------------

    def _advance(self) -> bool:
        """Refill the active run from the next non-empty bucket.

        Precondition: the active run is fully consumed (``_bi`` at end).
        Returns ``False`` when no entry remains anywhere.
        """
        bottom = self._bottom
        consumed = len(bottom)
        if consumed:
            # run length *including* events bisect-inserted while it was
            # live — the signal the width adaptation steers on
            self._run_events += consumed
            del bottom[:]
        self._bi = 0
        ring = self._ring
        mask = self._mask
        cur = self._cur
        limit = self._limit
        far = self._far
        # the bottom run is empty here, so the ring population is just
        # the stored count minus whatever sits in the far heap — no
        # per-push counter needed
        near = self._count - len(far)
        nbuckets = self._nbuckets
        half = nbuckets >> 1
        while True:
            if near:
                cur += 1
                # keep at least half the ring ahead of the clock, so
                # near-horizon pushes land in buckets instead of paying
                # two heap operations through the far overflow
                if limit - cur <= half:
                    limit = cur + nbuckets
                    near += self._migrate(limit)
                    far = self._far  # _migrate may purge (rebuild) it
                slot = ring[cur & mask]
                if slot:
                    n = len(slot)
                    self._cur = cur
                    self._limit = limit
                    live = self._count
                    self._count = live - n
                    if live > self._hwm:
                        self._hwm = live
                    if n == 1:
                        bottom.append(slot[0])
                    else:
                        bottom.extend(slot)
                        bottom.sort()
                    del slot[:]
                    self._refills += 1
                    self._sorted_events += n
                    if self._run_events - self._ck_run >= _RESIZE_CHECK_EVENTS:
                        self._maybe_resize()
                    return True
                self._empty_scans += 1
            elif far:
                # ring empty: jump the window to the far heap's head
                head_bucket = far[0][0] >> self._shift
                cur = head_bucket - 1
                limit = cur + nbuckets
                near = self._migrate(limit)
                far = self._far
            else:
                self._cur = cur
                self._limit = limit
                return False

    def _migrate(self, limit: int) -> int:
        """Pull far-heap entries with bucket < ``limit`` into the ring.

        Returns the number of entries moved; the caller (``_advance``,
        which tracks the near count in a local) adds it to ``near``.
        """
        far = self._far
        if len(far) >= self._purge_at:
            self._purge()
            far = self._far
        if not far:
            return 0
        ring = self._ring
        mask = self._mask
        shift = self._shift
        pop = heapq.heappop
        moved = 0
        while far and (far[0][0] >> shift) < limit:
            e = pop(far)
            ring[(e[0] >> shift) & mask].append(e)
            moved += 1
        self._migrated += moved
        return moved

    def _purge(self) -> None:
        """Drop cancelled entries from the far heap in bulk.

        Mirrors a lazy pop for each dropped entry: the seq is discarded
        from the shared cancelled set, so engine semantics are unchanged.
        """
        cancelled = self._cancelled
        far = self._far
        if cancelled:
            keep: List[Entry] = []
            append = keep.append
            discard = cancelled.discard
            for e in far:
                if e[1] in cancelled:
                    discard(e[1])
                else:
                    append(e)
            dropped = len(far) - len(keep)
            if dropped:
                heapq.heapify(keep)
                self._far = far = keep
                self._count -= dropped
                self._purged += dropped
                self._purges += 1
        self._purge_at = max(_PURGE_MIN, 2 * len(far))

    def _maybe_resize(self) -> None:
        """Lazy width adaptation from observed event-horizon statistics.

        The signal is the average *consumed-run* length over the last
        window: the number of events that flowed through the bottom run
        per refill, counting both the sorted bucket contents and due-now
        pushes bisected in while the run was live.  Doubling the width
        roughly doubles the run length (for a stationary event horizon),
        so each step aims ``log2(target / observed)`` at the middle of
        the (low, high) hysteresis band.
        """
        consumed = self._run_events - self._ck_run
        refills = self._refills - self._ck_refills
        self._ck_run = self._run_events
        self._ck_refills = self._refills
        if not refills:
            return
        avg_run = consumed / refills
        shift = self._shift
        if avg_run > _TARGET_RUN_HIGH and shift > _MIN_SHIFT:
            step = max(1, int(avg_run / _TARGET_RUN_MID).bit_length() - 1)
            self._resize(shift - step)
        elif avg_run < _TARGET_RUN_LOW and shift < _MAX_SHIFT:
            step = max(1, int(_TARGET_RUN_MID / avg_run).bit_length() - 1)
            self._resize(shift + step)

    def _resize(self, new_shift: int) -> None:
        """Rebuild ring + far with a new bucket width (tombstones purged)."""
        new_shift = max(_MIN_SHIFT, min(_MAX_SHIFT, new_shift))
        if new_shift == self._shift:
            return
        # every stored (non-bottom) entry has time >= boundary
        boundary = (self._cur + 1) << self._shift
        width = 1 << new_shift
        cur = ((boundary + width - 1) >> new_shift) - 1
        limit = cur + self._nbuckets
        entries: List[Entry] = []
        for slot in self._ring:
            if slot:
                entries.extend(slot)
                del slot[:]
        entries.extend(self._far)
        del self._far[:]
        self._shift = new_shift
        self._cur = cur
        self._limit = limit
        cancelled = self._cancelled
        ring = self._ring
        mask = self._mask
        bottom = self._bottom
        bi = self._bi
        far = self._far
        for e in entries:
            if cancelled and e[1] in cancelled:
                cancelled.discard(e[1])
                self._count -= 1
                self._purged += 1
                continue
            b = e[0] >> new_shift
            if b > cur:
                if b < limit:
                    ring[b & mask].append(e)
                else:
                    far.append(e)
            else:
                # the new (wider) active bucket swallowed it: it moves
                # from counted ring/far storage into the bottom run
                insort(bottom, e, bi)
                self._count -= 1
        heapq.heapify(far)
        self._purge_at = max(_PURGE_MIN, 2 * len(far))
        self._resizes += 1
