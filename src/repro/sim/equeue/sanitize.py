"""The sanitizing event-queue wrapper: runtime twin of the order rules.

:class:`SanitizingEventQueue` wraps any concrete backend and re-checks,
on every queue transition, the invariants the static layer (SIM013,
SIM014, the batched-train proof obligations) can only argue about
lexically:

* **pop-order monotonicity** — entries must surface in strictly
  increasing ``(time, seq)`` order.  This holds for both the serial
  engine's global counter and the partitioned engine's composite keys;
  a backend (or a re-entrant callback) that breaks it has corrupted the
  total order every golden digest rests on.
* **no time regression** — a popped entry may never be earlier than the
  simulator clock (inline transmit trains advance the clock without
  popping, so this is a distinct check from pop order).
* **floor-proof validation** — :meth:`peek_floor` claims "no pending
  entry is earlier than X"; the claim is remembered and the next pop is
  checked against it (pushes after the probe lawfully lower the bar —
  the claim only ever covered entries pending at probe time).  This is
  exactly the proof the engine's inline train fast path relies on.
* **seq uniqueness and past-push** — a duplicate live ``seq`` breaks
  cancel bookkeeping and tuple-order totality; a push before ``now``
  would fire in the past.
* **run-drain shape** — :meth:`drain_run` snapshots must be same-
  timestamp, within both the time bound and the entry budget.

The wrapper is installed by ``Simulator(sanitize=True)`` *before* the
engine's backend-specialization checks, so the engine sees neither a raw
heap nor a ladder and routes every push, pop and drain through here (the
generic paths) — zero code on the fast paths when sanitizing is off.
Physical cancellation is declined (``physical_cancel = False``): lazy
tombstoning is correct for every backend and keeps removed entries
visible to the order checks.

This module lives under ``repro.sim.equeue`` so its ``pop``/``drain_run``
delegation is inside SIM013's confinement allowlist — the wrapper *is*
event-queue machinery.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set

from repro.sim.equeue.base import Entry, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sanitize import Sanitizer


class SanitizingEventQueue(EventQueue):
    """Order-checking proxy around a concrete backend (see module doc)."""

    physical_cancel = False

    __slots__ = (
        "inner",
        "san",
        "_last_time",
        "_last_seq",
        "_floor_claim",
        "_live_seqs",
    )

    def __init__(self, inner: EventQueue, san: "Sanitizer") -> None:
        self.inner = inner
        self.san = san
        # the last dispatched (time, seq) — pops must strictly exceed it
        self._last_time = -1
        self._last_seq = -1
        #: outstanding peek_floor claim (-1 = none): "nothing pending
        #: before this time"; consumed and re-checked at the next pop
        self._floor_claim = -1
        #: seqs of stored entries (tombstones included, like __len__)
        self._live_seqs: Set[int] = set()

    @property
    def name(self) -> str:  # type: ignore[override]
        return f"sanitize({self.inner.name})"

    # -- writes ----------------------------------------------------------

    def push(self, entry: Entry) -> int:
        san = self.san
        t = entry[0]
        s = entry[1]
        sim = san.sim
        if sim is not None and t < sim.now:
            san.record(
                "push-into-past",
                f"entry (t={t}, seq={s}) pushed behind the clock "
                f"(now={sim.now})",
            )
        if s in self._live_seqs:
            san.record(
                "duplicate-seq",
                f"seq {s} pushed while already live (t={t}) — cancel "
                "bookkeeping and tie-order totality are broken",
            )
        else:
            self._live_seqs.add(s)
        if self._floor_claim != -1 and t < self._floor_claim:
            # a floor claim only covers entries pending at probe time;
            # later pushes lawfully lower the bar for the next pop check
            self._floor_claim = t
        return self.inner.push(entry)

    def cancel(self, entry: Entry) -> bool:
        # decline physical removal: the tombstone stays queue-visible and
        # flows through the pop-order checks like any other entry
        return False

    def attach(self, cancelled: Set[int]) -> None:
        self.inner.attach(cancelled)

    # -- reads -----------------------------------------------------------

    def _check_popped(self, entry: Entry) -> None:
        san = self.san
        t = entry[0]
        s = entry[1]
        if t < self._last_time or (
            t == self._last_time and s <= self._last_seq
        ):
            san.record(
                "pop-order",
                f"entry (t={t}, seq={s}) surfaced after "
                f"(t={self._last_time}, seq={self._last_seq}) — "
                "(time, seq) pop order violated",
            )
        sim = san.sim
        if sim is not None and t < sim.now:
            san.record(
                "time-regression",
                f"entry (t={t}, seq={s}) popped behind the clock "
                f"(now={sim.now})",
            )
        fc = self._floor_claim
        if fc != -1:
            if t < fc:
                san.record(
                    "floor-overclaim",
                    f"peek_floor claimed nothing before t={fc}, but "
                    f"(t={t}, seq={s}) surfaced — the inline-train proof "
                    "was unsound",
                )
            self._floor_claim = -1
        self._last_time = t
        self._last_seq = s
        self._live_seqs.discard(s)

    def pop(self) -> Optional[Entry]:
        entry = self.inner.pop()
        if entry is not None:
            self._check_popped(entry)
        return entry

    def peek(self) -> Optional[Entry]:
        return self.inner.peek()

    def peek_floor(self) -> int:
        floor = self.inner.peek_floor()
        if self._floor_claim == -1 or floor < self._floor_claim:
            self._floor_claim = floor
        return floor

    def drain_run(self, until_bound: int, limit: int) -> Optional[List[Entry]]:
        run = self.inner.drain_run(until_bound, limit)
        if run is None:
            return None
        san = self.san
        if len(run) > max(limit, 1):
            san.record(
                "drain-overrun",
                f"drain_run returned {len(run)} entries against a limit "
                f"of {limit}",
            )
        t0 = run[0][0]
        if t0 > until_bound:
            san.record(
                "drain-past-bound",
                f"drain_run surfaced t={t0} past until={until_bound}",
            )
        for entry in run:
            if entry[0] != t0:
                san.record(
                    "drain-mixed-run",
                    f"drain_run mixed timestamps {t0} and {entry[0]} in "
                    "one snapshot — a run must share its least timestamp",
                )
            self._check_popped(entry)
        return run

    # -- bookkeeping ------------------------------------------------------

    def __len__(self) -> int:
        return len(self.inner)

    def __iter__(self) -> Iterator[Entry]:
        return iter(self.inner)

    def stats(self) -> Dict[str, int]:
        return self.inner.stats()
