"""The event-queue backend interface.

A backend is a priority queue over engine entries — the plain
``(time_ns, seq, fn)`` / ``(time_ns, seq, fn, arg)`` tuples
:class:`repro.sim.engine.Simulator` builds — that must hand them back in
exact ``(time, seq)`` total order.  Because ``seq`` is unique, that order
is a strict total order over entries, which is what makes every backend
**bit-interchangeable**: the golden trace digests and FCT vectors in
``tests/test_trace_determinism.py`` must come out byte-identical no
matter which backend ran the simulation.

Division of labour with the engine:

* The engine owns *lazy cancellation*: :meth:`Simulator.cancel` offers
  the entry to the backend first (:meth:`EventQueue.cancel`); a backend
  that can remove it physically — the timer wheel — returns ``True``,
  every other backend returns ``False`` and the engine records the
  sequence number in the shared tombstone set that :meth:`run_loop`
  consults when entries surface.
* The backend owns the *storage layout* and may override
  :meth:`run_loop` with an inlined dispatch loop — the generic one here
  pays two Python calls per event (``peek`` + ``pop``), which the hot
  backends avoid.

``push`` returns the entry count *after* the push so the engine can
maintain its high-water-mark profile counter without a second call.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.sim.engine import Simulator

#: one scheduled event: ``(time_ns, seq, fn)`` or ``(time_ns, seq, fn, arg)``
Entry = Tuple[Any, ...]

#: "no pending event" time bound (matches the engine's _NEVER sentinel)
NEVER = 2**63 - 1


class EventQueue:
    """Abstract event-queue backend: a ``(time, seq)``-ordered pool."""

    #: registry key and the name recorded in profiles / bench JSON
    name = "abstract"

    #: True when :meth:`cancel` can physically remove entries — the
    #: engine skips the (pointless) per-cancel backend call otherwise
    physical_cancel = False

    __slots__ = ()

    def push(self, entry: Entry) -> int:
        """Insert ``entry``; return the stored-entry count after insertion.

        Entries arrive with ``entry[0] >= now`` (the engine validates) and
        a **unique** ``entry[1]`` per live entry.  The serial engine hands
        out strictly increasing seqs; the partitioned engine
        (:mod:`repro.sim.parallel`) pushes composite seqs that are not
        monotone across pushes — backends must only rely on uniqueness
        (for ``cancel`` bookkeeping) and on full-tuple ordering, never on
        push-order monotonicity.  The count includes tombstoned entries
        the backend has not physically dropped yet — it feeds the
        ``heap_hwm`` profile counter, not correctness.
        """
        raise NotImplementedError

    def pop(self) -> Optional[Entry]:
        """Remove and return the least entry, or ``None`` when empty."""
        raise NotImplementedError

    def peek(self) -> Optional[Entry]:
        """The least entry without removing it, or ``None`` when empty.

        May reorganise internal storage (advance buckets, cascade wheels)
        — observable state (the entry sequence) never changes.
        """
        raise NotImplementedError

    def cancel(self, entry: Entry) -> bool:
        """Try to remove ``entry`` physically; ``True`` when done.

        Returning ``False`` (the default) makes the engine fall back to
        lazy tombstoning via the shared cancelled set.  Implementations
        must only return ``True`` when the entry can never surface again.
        """
        return False

    def attach(self, cancelled: Set[int]) -> None:
        """Share the engine's tombstone set (seqs of cancelled entries).

        Backends that compact storage (the ladder's overflow purge) use
        it to drop tombstones in bulk — and must ``discard`` every seq
        they drop, mirroring what the run loop does on a lazy pop.
        """

    def __len__(self) -> int:
        """Stored entries, tombstones included (mirrors ``push``'s count)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[Entry]:
        """Iterate the stored entries in no particular order.

        Only used by cold paths (``Simulator.pending``) — never by the
        dispatch loop — so backends just chain their internal pools.
        """
        raise NotImplementedError

    def peek_floor(self) -> int:
        """A lower bound on the next pending entry's time, or ``NEVER``.

        Used by the engine's inline transmit train
        (:meth:`Simulator.schedule_tx_train`) **mid-callback** to prove
        that nothing can fire at or before a candidate serializer-done
        tick.  The bound may be conservative (tombstoned heads, bucket
        boundaries) — that only denies an inline step, never corrupts
        order — but it must **never exceed** the true next entry time.

        Backends whose :meth:`run_loop` caches dispatch cursors across
        callbacks must override this with a strictly *non-mutating*
        probe: the generic implementation delegates to :meth:`peek`,
        which is allowed to reorganise storage and would invalidate
        those cursors under the caller's feet.
        """
        entry = self.peek()
        return NEVER if entry is None else entry[0]

    def drain_run(self, until_bound: int, limit: int) -> Optional[List[Entry]]:
        """Pop one whole same-timestamp run, oldest-first; ``None`` if none.

        A *run* is the maximal sequence of entries sharing the least
        pending timestamp, in ``seq`` order.  Returns ``None`` when the
        queue is empty or the least entry is later than ``until_bound``
        (the entry stays queued).  At most ``max(limit, 1)`` entries are
        popped — a run longer than the remaining event budget is split
        across calls, which is indistinguishable from one call because
        the remainder keeps the same least timestamp.  Tombstoned
        entries are **included** (the dispatcher owns the tombstone
        set); the caller must publish the snapshot length via
        ``sim._drain_left`` so inline train steps stay disabled while
        popped-but-undispatched entries are invisible to
        :meth:`peek_floor`.

        Backends override this with a native slice (heap: repeated
        sift; ladder/wheel: a bottom-run slice); the generic version
        costs two method calls per entry, same as the legacy loop.
        """
        entry = self.peek()
        if entry is None or entry[0] > until_bound:
            return None
        self.pop()
        run = [entry]
        time = entry[0]
        peek = self.peek
        pop = self.pop
        while len(run) < limit:
            entry = peek()
            if entry is None or entry[0] != time:
                break
            pop()
            run.append(entry)
        return run

    def stats(self) -> Dict[str, int]:
        """Backend-specific structure counters (buckets, resizes, ...).

        Recorded into :class:`repro.obs.profile.RunProfile` and bench
        JSON so perf trajectories can attribute wins to the structure.
        """
        return {}

    def run_loop(
        self,
        sim: "Simulator",
        until_bound: int,
        budget: int,
        cancelled: Set[int],
    ) -> int:
        """Dispatch events in order until a stop condition; return count.

        Stop conditions (checked in this order, matching the engine's
        historical heap loop): queue empty, next entry later than
        ``until_bound``, ``budget`` events executed.  ``sim.now`` is
        advanced to each entry's time before its callback runs, and
        callbacks are free to push/cancel re-entrantly.

        This generic implementation costs two method calls per event;
        hot backends override it with a loop over their own storage.
        When the simulator runs batched, whole same-timestamp runs are
        drained via :meth:`drain_run` and dispatched from the snapshot —
        ``sim._drain_left`` is kept truthful so inline train steps stay
        off while snapshot entries are invisible to :meth:`peek_floor`.
        """
        executed = 0
        if sim.batch:
            drain = self.drain_run
            hist = sim.run_hist
            runs = 0
            try:
                while True:
                    left = budget - executed
                    run = drain(until_bound, left if left > 0 else 1)
                    if run is None:
                        break
                    time = run[0][0]
                    sim._drain_left = n = len(run)
                    rl = 0
                    for entry in run:
                        sim._drain_left = n = n - 1
                        if cancelled and entry[1] in cancelled:
                            cancelled.discard(entry[1])
                            continue
                        if rl == 0:
                            # advance the clock only once a real entry
                            # dispatches: an all-tombstone run must leave
                            # `sim.now` untouched, exactly like the
                            # legacy loop (which never stores `now` for
                            # a tombstone)
                            sim.now = time
                        if len(entry) == 3:
                            entry[2]()
                        else:
                            entry[2](entry[3])
                        rl += 1
                    if rl:
                        executed += rl
                        runs += 1
                        b = rl.bit_length()
                        hist[b if b < 17 else 17] += 1
                        # budget checked only after a real dispatch (an
                        # all-tombstone run must not trip it — matters
                        # for max_events=0, matching the legacy loop)
                        if executed >= budget:
                            break
            finally:
                sim._drain_left = 0
                sim.runs_drained += runs
            return executed
        peek = self.peek
        pop = self.pop
        while True:
            entry = peek()
            if entry is None:
                break
            time = entry[0]
            if time > until_bound:
                break
            pop()
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                continue
            sim.now = time
            if len(entry) == 3:
                entry[2]()
            else:
                entry[2](entry[3])
            executed += 1
            if executed >= budget:
                break
        return executed
