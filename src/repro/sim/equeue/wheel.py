"""Hierarchical timer wheel backend: O(1) push *and* O(1) cancel.

Kernel-style hashed wheel with 64 slots per level.  Level ``l`` has a
granularity of ``2^(g0_shift + 6*l)`` nanoseconds, so with the defaults
(128 ns base, 8 levels) the wheel spans ~10 hours before the top level
starts clamping (clamped entries simply re-cascade until they fit — a
correct, rarely-taken slow path).

The wheel exists for the RTO/pacing timer population: long deadlines,
almost always cancelled before they fire.  Two properties target that
profile:

* Slots are ``{seq: entry}`` dicts and a ``_where`` side map records
  each entry's slot, so :meth:`cancel` removes the entry *physically* in
  O(1) — no tombstone ever reaches the engine's cancelled set, and a
  cancelled 200 ms RTO costs nothing at expiry time.
* Entries sort only when (if!) their slot is reached: a slot is drained
  with one C ``sorted`` call, and higher-level slots cascade top-down at
  ``64^l``-aligned boundaries into finer levels.  Per-level entry counts
  let the clock hop straight over empty revolutions instead of scanning
  64 slots at a time.

Same active-run discipline as the ladder: the drained slot becomes a
sorted bottom run consumed by index, and same-bucket re-entrant pushes
bisect in past the cursor.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Set, Tuple

from repro.sim.equeue.base import NEVER, Entry, EventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sim.engine import Simulator

_SLOT_BITS = 6
_SLOTS = 64
_SLOT_MASK = _SLOTS - 1


class TimerWheelEventQueue(EventQueue):
    """Hierarchical 64-ary timer wheel with physical O(1) cancellation."""

    name = "wheel"

    physical_cancel = True

    __slots__ = (
        "_s0",
        "_nlevels",
        "_levels",
        "_counts",
        "_where",
        "_bottom",
        "_bi",
        "_cur",
        "_count",
        # statistics
        "_cascades",
        "_cascaded",
        "_cancels",
        "_empty_scans",
    )

    def __init__(self, g0_shift: int = 7, levels: int = 8) -> None:
        if not 0 <= g0_shift <= 20:
            raise ValueError(f"g0_shift out of range: {g0_shift}")
        if not 2 <= levels <= 10:
            raise ValueError(f"levels out of range: {levels}")
        self._s0 = g0_shift
        self._nlevels = levels
        self._levels: List[List[Dict[int, Entry]]] = [
            [{} for _ in range(_SLOTS)] for _ in range(levels)
        ]
        self._counts = [0] * levels
        self._where: Dict[int, Tuple[int, Dict[int, Entry]]] = {}
        self._bottom: List[Entry] = []
        self._bi = 0
        #: absolute level-0 bucket currently being drained
        self._cur = 0
        # see LadderEventQueue._count: includes the consumed run prefix,
        # reconciled at each _advance; exact count is _count - _bi
        self._count = 0
        self._cascades = 0
        self._cascaded = 0
        self._cancels = 0
        self._empty_scans = 0

    # -- interface --------------------------------------------------------

    def push(self, entry: Entry) -> int:
        if (entry[0] >> self._s0) <= self._cur:
            insort(self._bottom, entry, self._bi)
        else:
            self._place(entry)
        self._count = n = self._count + 1
        return n

    def cancel(self, entry: Entry) -> bool:
        rec = self._where.pop(entry[1], None)
        if rec is None:
            # already in the bottom run (or already fired): let the
            # engine tombstone it lazily
            return False
        lvl, slot = rec
        del slot[entry[1]]
        self._counts[lvl] -= 1
        self._count -= 1
        self._cancels += 1
        return True

    def pop(self) -> Optional[Entry]:
        bi = self._bi
        bottom = self._bottom
        if bi == len(bottom):
            if not self._advance():
                return None
            bi = self._bi
        entry = bottom[bi]
        self._bi = bi + 1
        return entry

    def peek(self) -> Optional[Entry]:
        if self._bi == len(self._bottom):
            if not self._advance():
                return None
        return self._bottom[self._bi]

    def peek_floor(self) -> int:
        # non-mutating (run_loop caches the bottom cursor): the active
        # run's head, else the next level-0 bucket's lower edge — every
        # wheel-stored entry has a level-0 index > _cur, so the bound
        # holds across all levels (conservative for coarse ones)
        bi = self._bi
        bottom = self._bottom
        if bi < len(bottom):
            return bottom[bi][0]
        if self._count - bi:
            return (self._cur + 1) << self._s0
        return NEVER

    def drain_run(self, until_bound: int, limit: int) -> Optional[List[Entry]]:
        # identical discipline to the ladder: the bottom run is sorted,
        # so a same-timestamp run is a contiguous slice at the cursor
        bottom = self._bottom
        bi = self._bi
        if bi == len(bottom):
            if not self._advance():
                return None
            bi = 0
        entry = bottom[bi]
        time = entry[0]
        if time > until_bound:
            return None
        end = bisect_left(bottom, (time + 1,), bi)
        if end - bi > limit:
            end = bi + limit if limit > 0 else bi + 1
        run = bottom[bi:end]
        self._bi = end
        return run

    def __len__(self) -> int:
        return self._count - self._bi

    def __iter__(self) -> Iterator[Entry]:
        yield from self._bottom[self._bi :]
        for level in self._levels:
            for slot in level:
                yield from slot.values()

    def stats(self) -> Dict[str, int]:
        return {
            "g0_width_ns": 1 << self._s0,
            "levels": self._nlevels,
            "cascades": self._cascades,
            "cascaded_entries": self._cascaded,
            "physical_cancels": self._cancels,
            "empty_scans": self._empty_scans,
            "in_wheel": sum(self._counts),
        }

    # -- the hot dispatch loop -------------------------------------------

    def run_loop(
        self,
        sim: "Simulator",
        until_bound: int,
        budget: int,
        cancelled: Set[int],
    ) -> int:
        executed = 0
        bottom = self._bottom
        bi = self._bi
        blen = len(bottom)
        advance = self._advance
        if sim.batch:
            # batched dispatch (see LadderEventQueue.run_loop): one
            # until comparison and one clock store per same-timestamp
            # run, entries kept queue-visible one at a time
            time = -1
            run_start = 0
            runs = 0
            singles = 0
            hist = sim.run_hist
            while True:
                if bi == blen:
                    blen = len(bottom)
                    if bi == blen:
                        self._bi = bi
                        if not advance():
                            bi = self._bi
                            break
                        bi = 0
                        blen = len(bottom)
                entry = bottom[bi]
                seq = entry[1]
                if cancelled and seq in cancelled:
                    # tombstones never advance the clock or close a run
                    # (consuming one past `until` is pure compaction,
                    # same as peek_time's)
                    cancelled.discard(seq)
                    bi += 1
                    self._bi = bi
                    continue
                t = entry[0]
                if t != time:
                    if t > until_bound:
                        break
                    if time >= 0:
                        rl = executed - run_start
                        if rl == 1:
                            singles += 1
                        else:
                            runs += 1
                            rl = rl.bit_length()
                            hist[rl if rl < 17 else 17] += 1
                        run_start = executed
                    sim.now = time = t
                bi += 1
                self._bi = bi  # callbacks may insort into the active run
                if len(entry) == 3:
                    entry[2]()
                else:
                    entry[2](entry[3])
                executed += 1
                if executed >= budget:
                    break
            self._bi = bi
            if time >= 0:
                rl = executed - run_start
                if rl == 1:
                    singles += 1
                else:
                    runs += 1
                    rl = rl.bit_length()
                    hist[rl if rl < 17 else 17] += 1
            hist[1] += singles
            sim.runs_drained += runs + singles
            return executed
        while True:
            if bi == blen:
                # the cached length can only be stale-low: re-entrant
                # pushes bisect in at or after the cursor, never before
                blen = len(bottom)
                if bi == blen:
                    self._bi = bi
                    if not advance():
                        bi = self._bi  # advance reset the consumed run
                        break
                    bi = 0
                    blen = len(bottom)
            entry = bottom[bi]
            time = entry[0]
            if time > until_bound:
                break
            bi += 1
            self._bi = bi  # callbacks may insort into the active run
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                continue
            sim.now = time
            if len(entry) == 3:
                entry[2]()
            else:
                entry[2](entry[3])
            executed += 1
            if executed >= budget:
                break
        self._bi = bi
        return executed

    # -- internals --------------------------------------------------------

    def _place(self, entry: Entry) -> None:
        """File ``entry`` at the coarsest-needed / finest-fitting level.

        The smallest level where the slot delta fits under 64 can never
        collide with the in-progress slot (the delta would have fit one
        level down), so a placed entry always expires in the future.  At
        the clamped top level an alias is possible; cascading re-places
        those until they fit.
        """
        i = entry[0] >> self._s0
        c = self._cur
        lvl = 0
        last = self._nlevels - 1
        while lvl < last and i - c >= _SLOTS:
            i >>= _SLOT_BITS
            c >>= _SLOT_BITS
            lvl += 1
        slot = self._levels[lvl][i & _SLOT_MASK]
        slot[entry[1]] = entry
        self._where[entry[1]] = (lvl, slot)
        self._counts[lvl] += 1

    def _advance(self) -> bool:
        """Advance the clock to the next populated level-0 bucket."""
        bottom = self._bottom
        self._count -= len(bottom)  # reconcile the consumed run in bulk
        del bottom[:]
        self._bi = 0
        counts = self._counts
        level0 = self._levels[0]
        nlevels = self._nlevels
        cur = self._cur
        while True:
            lvl = 0
            while lvl < nlevels and not counts[lvl]:
                lvl += 1
            if lvl == nlevels:
                self._cur = cur
                return False
            if lvl == 0:
                # scan the rest of the current level-0 revolution
                end = cur | _SLOT_MASK
                while cur < end:
                    cur += 1
                    slot = level0[cur & _SLOT_MASK]
                    if slot:
                        self._cur = cur
                        self._drain_slot(slot)
                        return True
                    self._empty_scans += 1
                boundary = end + 1
            else:
                # nothing below level `lvl`: hop straight to the next
                # boundary aligned to that level's granularity
                span = _SLOT_BITS * lvl
                boundary = ((cur >> span) + 1) << span
            cur = boundary
            self._cur = cur
            self._cascade_chain(boundary)
            # entries due exactly at the boundary: pre-existing ones sit
            # in the level-0 slot; just-cascaded ones landed in `bottom`
            slot = level0[cur & _SLOT_MASK]
            if slot:
                self._drain_slot(slot)
            if bottom:
                return True

    def _drain_slot(self, slot: Dict[int, Entry]) -> None:
        """Move a due level-0 slot into the bottom run, sorted."""
        entries = sorted(slot.values()) if len(slot) > 1 else list(slot.values())
        slot.clear()
        where = self._where
        for e in entries:
            del where[e[1]]
        self._counts[0] -= len(entries)
        bottom = self._bottom
        if bottom:
            # merging with boundary-cascaded entries from the same bucket
            bottom.extend(entries)
            bottom.sort()
        else:
            bottom.extend(entries)

    def _cascade_chain(self, boundary: int) -> None:
        """Cascade every level whose slot starts at ``boundary``, top-down.

        Top-down so an entry settles in one pass: a level-3 entry
        cascading into a level-2 slot that also starts at ``boundary``
        is picked up by the level-2 cascade in the same chain.
        """
        nlevels = self._nlevels
        aligned = []
        lvl = 1
        while (
            lvl < nlevels
            and boundary & ((1 << (_SLOT_BITS * lvl)) - 1) == 0
        ):
            aligned.append(lvl)
            lvl += 1
        for lvl in reversed(aligned):
            slot = self._levels[lvl][
                (boundary >> (_SLOT_BITS * lvl)) & _SLOT_MASK
            ]
            if slot:
                self._cascade(lvl, slot)

    def _cascade(self, lvl: int, slot: Dict[int, Entry]) -> None:
        """Re-place a higher-level slot's entries into finer storage."""
        entries = list(slot.values())
        slot.clear()
        self._counts[lvl] -= len(entries)
        where = self._where
        cur = self._cur
        s0 = self._s0
        bottom = self._bottom
        bi = self._bi
        for e in entries:
            if (e[0] >> s0) <= cur:
                # due in the bucket being entered: goes straight to the
                # bottom run (and out of `_where` — cancellation falls
                # back to the engine's lazy path from here)
                del where[e[1]]
                insort(bottom, e, bi)
            else:
                self._place(e)  # overwrites the _where record
        self._cascades += 1
        self._cascaded += len(entries)
