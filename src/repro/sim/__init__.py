"""Discrete-event simulation core: the event heap and seeded RNG streams."""

from repro.sim.engine import Event, Simulator
from repro.sim.rng import RngFactory

__all__ = ["Event", "Simulator", "RngFactory"]
