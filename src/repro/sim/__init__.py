"""Discrete-event simulation core: the event heap and seeded RNG streams."""

from repro.sim.engine import EventHandle, Simulator
from repro.sim.rng import RngFactory

__all__ = ["EventHandle", "Simulator", "RngFactory"]
