"""The conservative synchronization protocol, as pure logic.

Nothing here touches sockets, processes or simulators — the two pieces
(:func:`min_handoff_latency_ns` and :class:`ChunkSync`) are plain integer
arithmetic, unit-tested directly, and shared verbatim by the in-process
and multiprocessing drivers in :mod:`repro.sim.parallel.cluster`.

Why it is safe
--------------
Every cross-partition packet leaves through a leaf uplink: its delivery
time is ``u + serialize(pkt) + fabric_delay`` where ``u`` is the transmit
decision time.  With ``L = serialize(min frame) + fabric_delay`` (the
**lookahead**), any handoff generated while executing events at times
``>= m̂`` (the global minimum pending-event time) lands at
``rx >= m̂ + L``.  Running every partition through horizon
``H = m̂ + L - 1`` therefore cannot miss an incoming event: all handoffs
produced during the round are strictly later than ``H``, and they are
exchanged at the barrier before the next round starts.

Why it is *bit-equivalent* to the serial runner
-----------------------------------------------
The serial runner executes ``run(until=min(now + 50ms, deadline))``
chunks, re-checking completion/deadline between chunks and breaking when
the queue drains.  :class:`ChunkSync` clips every horizon to the same
chunk boundaries and evaluates the same three stop conditions only at a
boundary, in an order that yields the identical final ``sim_ns`` for
every combination of conditions — so the partitioned run executes the
exact event set of the serial run and stops at the exact same clock.
"""

from __future__ import annotations

from repro.units import ACK_SIZE, SEC

#: "no pending event" sentinel — beyond any reachable nanosecond
#: timestamp (mirrors the engine's internal ``_NEVER``)
INF = 2**63 - 1

#: serialization constant: nanoseconds-per-second times bits-per-byte
_BITS_NS = 8 * SEC


def min_handoff_latency_ns(
    fabric_rate_bps: int,
    fabric_link_delay_ns: int,
    min_wire_bytes: int = ACK_SIZE,
) -> int:
    """The conservative lookahead ``L`` for leaf -> spine handoffs.

    A boundary transmission scheduled at time ``u`` is delivered at
    ``u + ceil(wire_size * 8 / rate) + delay``; the smallest frame the
    transport can put on the fabric is a pure ACK (``ACK_SIZE`` bytes),
    so ``L`` is that frame's serialization time plus the propagation
    delay.  The ceil-division matches ``EgressPort._transmit`` exactly —
    an underestimate would only cost extra rounds, but an overestimate
    would break the protocol, so we mirror the port's arithmetic.
    """
    if fabric_rate_bps <= 0:
        raise ValueError(f"fabric rate must be positive, got {fabric_rate_bps}")
    if fabric_link_delay_ns < 0:
        raise ValueError(
            f"fabric delay must be >= 0, got {fabric_link_delay_ns}"
        )
    tx_ns = -(-min_wire_bytes * _BITS_NS // fabric_rate_bps)
    return tx_ns + fabric_link_delay_ns


class ChunkSync:
    """Horizon schedule that replays the serial runner's chunk loop.

    One instance drives a whole run: each round the coordinator reports
    the global minimum pending time ``m̂`` (over every partition's queue
    *and* every not-yet-delivered handoff), gets back the horizon to run
    to, and — when that horizon hit the current chunk boundary — asks
    :meth:`on_boundary` whether the run is over.

    The serial loop being emulated (``repro.harness.runner``)::

        while collector.count < len(flows) and sim.now < deadline:
            events += sim.run(until=min(sim.now + CHUNK, deadline))
            if sim.idle:
                break

    which stops with ``sim.now`` on a chunk boundary in all three cases
    (completion, deadline, drained queue) — reproduced here so the
    partitioned run reports the identical ``sim_ns``.
    """

    __slots__ = (
        "deadline_ns",
        "lookahead_ns",
        "total_flows",
        "chunk_ns",
        "boundary",
        "stop_reason",
        "sim_ns",
    )

    def __init__(
        self,
        deadline_ns: int,
        lookahead_ns: int,
        total_flows: int,
        chunk_ns: int,
    ) -> None:
        if lookahead_ns < 1:
            raise ValueError(f"lookahead must be >= 1 ns, got {lookahead_ns}")
        if chunk_ns < 1:
            raise ValueError(f"chunk must be >= 1 ns, got {chunk_ns}")
        if deadline_ns < 1:
            raise ValueError(f"deadline must be >= 1 ns, got {deadline_ns}")
        self.deadline_ns = deadline_ns
        self.lookahead_ns = lookahead_ns
        self.total_flows = total_flows
        self.chunk_ns = chunk_ns
        #: the current chunk boundary — horizons never cross it
        self.boundary = min(chunk_ns, deadline_ns)
        #: why the run stopped: "completed" | "deadline" | "idle"
        self.stop_reason = ""
        #: the final simulated clock, valid once :meth:`on_boundary`
        #: returned True
        self.sim_ns = 0

    def horizon(self, m_hat: int) -> int:
        """The next safe horizon for minimum pending time ``m_hat``.

        ``m̂ + L - 1`` is the last nanosecond no in-flight handoff can
        reach (handoffs land at ``>= m̂ + L``), clipped to the chunk
        boundary so stop conditions are evaluated exactly where the
        serial runner evaluates them.  An idle fabric (``m_hat == INF``)
        fast-forwards straight to the boundary.
        """
        b = self.boundary
        if m_hat >= INF:
            return b
        h = m_hat + self.lookahead_ns - 1
        return b if h > b else h

    def at_boundary(self, h: int) -> bool:
        """True when horizon ``h`` reached the current chunk boundary."""
        return h == self.boundary

    def on_boundary(self, m_hat: int, completed: int) -> bool:
        """Evaluate the serial loop's stop conditions at the boundary.

        ``m_hat`` is the post-round global minimum (queues plus
        undelivered handoffs); ``completed`` the total completed-flow
        count.  Returns True when the run is over — ``stop_reason`` and
        ``sim_ns`` are then final — otherwise advances to the next chunk
        boundary.  All three stop cases leave the clock *on* the current
        boundary, matching the serial runner (whose ``run(until=...)``
        always parks ``sim.now`` on the chunk bound it ran to).
        """
        b = self.boundary
        if completed >= self.total_flows:
            self.stop_reason = "completed"
            self.sim_ns = b
            return True
        if b >= self.deadline_ns:
            self.stop_reason = "deadline"
            self.sim_ns = b
            return True
        if m_hat >= INF:
            self.stop_reason = "idle"
            self.sim_ns = b
            return True
        self.boundary = min(b + self.chunk_ns, self.deadline_ns)
        return False
