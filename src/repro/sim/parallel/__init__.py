"""Conservative parallel DES over a partitioned leaf-spine fabric.

The package splits the fabric into one sub-simulator per leaf pod and
synchronizes them with a conservative barrier protocol whose lookahead is
the inter-partition (leaf -> spine) link latency:

* :mod:`repro.sim.parallel.protocol` — the pure synchronization state
  machine: lookahead computation and the chunk/horizon schedule that
  makes the partitioned run evaluate its stop conditions at exactly the
  serial runner's 50 ms chunk boundaries.
* :mod:`repro.sim.parallel.partition` — :class:`PartitionSimulator`, the
  engine subclass that orders events by composite ``(time, partition,
  seq)`` keys and intercepts cross-partition transmissions at
  ``schedule_tx``.
* :mod:`repro.sim.parallel.cluster` — the drivers: partition
  construction, the in-process coordinator (``workers=1``), the
  ``multiprocessing`` coordinator (``workers>=2``), and the merge of
  per-partition FCT/metrics/trace/profile into one
  :class:`repro.harness.runner.ExperimentResult`.

Equivalence with the serial engine is digest-checked by
``tests/test_parallel.py``; the protocol and guarantees are documented in
``docs/PARALLEL.md``.
"""

from repro.sim.parallel.partition import PartitionSimulator
from repro.sim.parallel.protocol import INF, ChunkSync, min_handoff_latency_ns

__all__ = [
    "INF",
    "ChunkSync",
    "PartitionSimulator",
    "min_handoff_latency_ns",
]
