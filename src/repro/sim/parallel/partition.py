"""The per-partition engine: composite event keys and boundary capture.

:class:`PartitionSimulator` is a :class:`repro.sim.engine.Simulator` that
makes two changes, both confined to the scheduling layer so every model
object (ports, switches, transports) runs unmodified on top of it:

**Composite sequence numbers.**  The serial engine breaks same-timestamp
ties with one process-global monotone counter — meaningless across
independent partitions.  Here every entry's ``seq`` is the composite key

    ``(scheduling_time << 24) | flags | payload``

* locally scheduled events: ``(sched_time << 24) | counter`` where the
  counter resets whenever ``now`` advances (bit 23 clear, so locals sort
  before same-``sched_time`` arrivals);
* cross-partition arrivals: ``(send_time << 24) | ARRIVAL | (src_pid <<
  14) | handoff_counter`` assigned by the *sending* partition.

Since ``now`` never decreases and counters reset per timestamp, keys are
unique — all any backend needs (see ``EventQueue.push``) — and two
events whose scheduling times differ order exactly as the serial
engine's global counter would have ordered them.  Only the interleaving
of *same fire-time, same scheduling-time* events from different
partitions can differ from a serial run; the equivalence suite pins the
resulting digests.

**Boundary capture.**  ``schedule_tx`` is the single point every
transmitted packet passes through.  When the delivery callback belongs
to a registered boundary sink (a leaf uplink rewired to a
:class:`repro.net.boundary.BoundaryMux`), the serializer-done tick is
still scheduled locally — the uplink port's pacing is partition-local
state — but the delivery becomes an outbox record ``(rx_time, seq,
spine, fields)`` for the coordinator to route, and the frame itself is
surrendered to the sink (exported to plain fields, released to the
freelist).  The receiving partition rebuilds the packet and inserts the
delivery with :meth:`insert_arrival` — one event, exactly like the
serial engine's ``rx_fn(pkt)`` entry, so event counts match.

Partitions always run the **heap** backend: per-partition event
populations are a fraction of the global run's (below the heap/ladder
crossover the ``auto`` heuristic encodes), and the heap keeps these
overrides as single inlined ``heappush`` calls.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Protocol,
    Tuple,
)

from repro.sim.engine import EventHandle, Simulator
from repro.sim.equeue.heap import heappush

#: composite-key layout: time in the high bits, then one arrival flag,
#: 9 bits of source partition, 14 bits of per-timestamp counter
TIME_SHIFT = 24
ARRIVAL_BIT = 1 << 23
SRC_SHIFT = 14
MAX_PARTITIONS = 1 << (23 - SRC_SHIFT)      # 512
HANDOFF_LIMIT = 1 << SRC_SHIFT              # per (timestamp, partition)
LOCAL_LIMIT = ARRIVAL_BIT                   # per-timestamp local events

#: one captured cross-partition delivery:
#: ``(rx_time_ns, composite_seq, spine_id, packed packet fields)``
Handoff = Tuple[int, int, int, Tuple[Any, ...]]


class BoundarySink(Protocol):
    """What ``schedule_tx`` needs from a boundary endpoint.

    Implemented by :class:`repro.net.boundary.BoundaryMux`; kept as a
    protocol so this module (and the ``repro.sim`` layer) never imports
    packet machinery.
    """

    #: index of the spine whose replica receives in the destination
    #: partition
    spine_id: int

    def export(self, pkt: Any) -> Tuple[Any, ...]:
        """Serialize ``pkt`` to plain fields and surrender the frame."""
        ...


class PartitionSimulator(Simulator):
    """One partition's event loop (see module docstring)."""

    __slots__ = (
        "pid",
        "outbox",
        "_events",
        "_sinks",
        "_seq_time",
        "_seq_cnt",
        "_handoff_cnt",
    )

    def __init__(
        self, pid: int, batch: bool = True, sanitize: Any = None
    ) -> None:
        if not 0 <= pid < MAX_PARTITIONS:
            raise ValueError(
                f"partition id {pid} outside [0, {MAX_PARTITIONS})"
            )
        super().__init__(equeue="heap", batch=batch, sanitize=sanitize)
        self.pid = pid
        #: handoffs captured since the coordinator last drained them
        self.outbox: List[Handoff] = []
        #: delivery callback -> boundary sink (identity/equality keyed)
        self._sinks: Dict[Any, BoundarySink] = {}
        # the heap backend's raw entry list.  The constructor above pinned
        # the heap backend, so this is only None when the sanitizer wrapped
        # it — then the wrapped heap's list still serves the *read-only*
        # train floor probe, while writes go through the checked wrapper
        # push (see _push/schedule_many).
        events = self._heap
        if events is None:
            inner = getattr(self._equeue, "inner", None)
            assert inner is not None, "partition backend is not a heap"
            events = inner.entries
        self._events: List[EventHandle] = events
        #: timestamp the counters below are valid for
        self._seq_time = -1
        self._seq_cnt = 0
        self._handoff_cnt = 0

    # -- boundary wiring -------------------------------------------------

    def register_boundary(self, rx_fn: Any, sink: BoundarySink) -> None:
        """Mark ``rx_fn`` (a boundary node's ``receive``) for capture."""
        self._sinks[rx_fn] = sink

    # -- composite keys --------------------------------------------------

    def _alloc(self, n: int) -> int:
        """Reserve ``n`` consecutive local counters; return the first key."""
        now = self.now
        if now != self._seq_time:
            self._seq_time = now
            self._seq_cnt = 0
            self._handoff_cnt = 0
        c = self._seq_cnt
        nc = c + n
        if nc > LOCAL_LIMIT:
            raise RuntimeError(
                f"partition {self.pid}: more than {LOCAL_LIMIT} events "
                f"scheduled at t={now} — composite key space exhausted"
            )
        self._seq_cnt = nc
        return (now << TIME_SHIFT) | c

    def _push(self, entry: EventHandle) -> None:
        if self._san is not None:
            self._eq_push(entry)
        else:
            heappush(self._events, entry)
        n = len(self._events)
        if n > self.heap_hwm:
            self.heap_hwm = n

    # -- scheduling overrides --------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> EventHandle:
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        entry = (self.now + delay_ns, self._alloc(1), fn)
        self._push(entry)
        return entry

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> EventHandle:
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} before now ({self.now})"
            )
        entry = (time_ns, self._alloc(1), fn)
        self._push(entry)
        return entry

    def schedule_call(
        self, delay_ns: int, fn: Callable[[Any], None], arg: Any
    ) -> EventHandle:
        entry = (self.now + delay_ns, self._alloc(1), fn, arg)
        self._push(entry)
        return entry

    def schedule_many(
        self, items: Iterable[Tuple[int, Callable[[], None]]]
    ) -> None:
        now = self.now
        events = self._events
        if self._san is not None:
            push = self._eq_push
            for delay_ns, fn in items:
                push((now + delay_ns, self._alloc(1), fn))
        else:
            for delay_ns, fn in items:
                heappush(events, (now + delay_ns, self._alloc(1), fn))
        n = len(events)
        if n > self.heap_hwm:
            self.heap_hwm = n

    def schedule_tx(
        self,
        tx_ns: int,
        done_fn: Callable[[], None],
        rx_ns: int,
        rx_fn: Callable[[Any], None],
        pkt: Any,
    ) -> None:
        """Transmit pair with boundary capture (see module docstring).

        The boundary branch assumes the caller never touches ``pkt``
        after this call — true of ``EgressPort._transmit``, the sole
        transmit path — because the frame is exported and released here.
        """
        sink = self._sinks.get(rx_fn)
        now = self.now
        if now != self._seq_time:
            self._seq_time = now
            self._seq_cnt = 0
            self._handoff_cnt = 0
        c = self._seq_cnt
        base = now << TIME_SHIFT
        if sink is None:
            if c + 2 > LOCAL_LIMIT:
                raise RuntimeError(
                    f"partition {self.pid}: composite key space exhausted "
                    f"at t={now}"
                )
            self._seq_cnt = c + 2
            self._push((now + tx_ns, base | c, done_fn))
            self._push((now + rx_ns, base | (c + 1), rx_fn, pkt))
            return
        if c + 1 > LOCAL_LIMIT:
            raise RuntimeError(
                f"partition {self.pid}: composite key space exhausted "
                f"at t={now}"
            )
        self._seq_cnt = c + 1
        self._push((now + tx_ns, base | c, done_fn))
        h = self._handoff_cnt
        if h >= HANDOFF_LIMIT:
            raise RuntimeError(
                f"partition {self.pid}: more than {HANDOFF_LIMIT} handoffs "
                f"at t={now} — composite key space exhausted"
            )
        self._handoff_cnt = h + 1
        aseq = base | ARRIVAL_BIT | (self.pid << SRC_SHIFT) | h
        self.outbox.append((now + rx_ns, aseq, sink.spine_id, sink.export(pkt)))

    def schedule_tx_train(
        self,
        tx_ns: int,
        done_fn: Callable[[], None],
        rx_ns: int,
        rx_fn: Callable[[Any], None],
        pkt: Any,
    ) -> bool:
        """Batched boundary capture: the inline train, composite-keyed.

        Same proof obligation as the serial engine's
        :meth:`Simulator.schedule_tx_train` — the done tick runs inline
        only when nothing else can fire at or before it and the tick is
        inside the coordinator's horizon (``run(until=...)`` sets
        ``_run_bound``), so partitioned runs stay bit-identical.  The
        composite key the done event would have carried is burned by
        reserving its per-timestamp counter, exactly as ``schedule_tx``
        would have: local deliveries take the next counter, boundary
        deliveries become outbox handoffs stamped at the *scheduling*
        time, so arrival keys — and therefore the merged digests — are
        unchanged.  Lookahead is preserved: the clock only moves up to
        the horizon, and arrivals are strictly later than it.
        """
        t_next = self.now + tx_ns
        if t_next <= self._run_bound and not self._drain_left:
            events = self._events
            if not events or events[0][0] > t_next:
                sink = self._sinks.get(rx_fn)
                now = self.now
                if now != self._seq_time:
                    self._seq_time = now
                    self._seq_cnt = 0
                    self._handoff_cnt = 0
                c = self._seq_cnt
                base = now << TIME_SHIFT
                if sink is None:
                    if c + 2 > LOCAL_LIMIT:
                        raise RuntimeError(
                            f"partition {self.pid}: composite key space "
                            f"exhausted at t={now}"
                        )
                    self._seq_cnt = c + 2
                    self._push((now + rx_ns, base | (c + 1), rx_fn, pkt))
                else:
                    if c + 1 > LOCAL_LIMIT:
                        raise RuntimeError(
                            f"partition {self.pid}: composite key space "
                            f"exhausted at t={now}"
                        )
                    self._seq_cnt = c + 1
                    h = self._handoff_cnt
                    if h >= HANDOFF_LIMIT:
                        raise RuntimeError(
                            f"partition {self.pid}: more than "
                            f"{HANDOFF_LIMIT} handoffs at t={now} — "
                            f"composite key space exhausted"
                        )
                    self._handoff_cnt = h + 1
                    aseq = base | ARRIVAL_BIT | (self.pid << SRC_SHIFT) | h
                    self.outbox.append(
                        (now + rx_ns, aseq, sink.spine_id, sink.export(pkt))
                    )
                self.now = t_next
                self._inline_ct += 1
                return True
        self.schedule_tx(tx_ns, done_fn, rx_ns, rx_fn, pkt)
        return False

    # -- coordinator interface -------------------------------------------

    def insert_arrival(
        self, time_ns: int, seq: int, fn: Callable[[Any], None], arg: Any
    ) -> None:
        """Insert a routed cross-partition delivery.

        ``seq`` is the composite key the sending partition stamped on the
        handoff.  The lookahead guarantee makes every arrival strictly
        later than the horizon the partition has run to; violating that
        means the sync protocol is broken, so it is checked hard.
        """
        if time_ns <= self.now:
            raise RuntimeError(
                f"partition {self.pid}: arrival at t={time_ns} not after "
                f"now={self.now} — lookahead violated"
            )
        san = self._san
        if san is not None:
            # ownership handoff checks: the composite key must say
            # "arrival, stamped by a *different* partition, sent no
            # later than it is delivered" — SIM014's runtime twin
            if not seq & ARRIVAL_BIT:
                san.record(
                    "boundary-ownership",
                    f"partition {self.pid}: arrival key {seq:#x} lacks "
                    "the ARRIVAL bit — a local event was injected "
                    "through the boundary interface",
                )
            elif (seq >> SRC_SHIFT) & (MAX_PARTITIONS - 1) == self.pid:
                san.record(
                    "arrival-from-self",
                    f"partition {self.pid}: arrival key {seq:#x} names "
                    "this partition as its own sender",
                )
            if seq >> TIME_SHIFT > time_ns:
                san.record(
                    "send-after-delivery",
                    f"partition {self.pid}: arrival stamped at send time "
                    f"{seq >> TIME_SHIFT} but delivered at {time_ns}",
                )
        self._push((time_ns, seq, fn, arg))

    def drain_outbox(self) -> List[Handoff]:
        """Hand the captured handoffs to the coordinator (and reset)."""
        out = self.outbox
        self.outbox = []
        return out
