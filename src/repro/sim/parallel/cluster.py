"""Drivers for the partitioned leaf-spine engine.

One partition per leaf pod, always — ``cfg.workers`` only chooses how
the fixed set of partitions is *hosted*:

* ``workers=1``: every partition lives in this process and the
  coordinator calls it directly.  No ``multiprocessing`` anywhere —
  the debuggable reference driver, and the scaling baseline.
* ``workers>=2``: partitions are spread round-robin over child
  processes (fork preferred, spawn-safe) and rounds travel over
  ``multiprocessing`` pipes.

Because the partitioning is fixed and the round protocol is a barrier,
the computation is *identical* for every worker count by construction —
only serial-vs-partitioned equivalence needs empirical pinning, which
``tests/test_parallel.py`` does with golden digests.

Construction mirrors :mod:`repro.harness.runner` deliberately: each
partition builds the **full** topology and flow list (both deterministic
functions of the config), then wires only the endpoints it owns — the
senders of flows sourced in its pod and the receivers of flows sinking
there.  Ownership of switch state follows traffic: a partition's leaf
and hosts, plus every spine replica's ``down`` port toward that leaf,
see exactly the packets the serial run would put through them; every
other replicated object stays idle at zero, which is what makes the
metric merge a plain sum.
"""

from __future__ import annotations

import os
import time
import traceback
from types import SimpleNamespace
from typing import Any, Dict, List, Optional, Sequence, Tuple

import multiprocessing

from repro.harness.config import ExperimentConfig
from repro.harness.runner import (
    _RUN_CHUNK_NS,
    ConnectionPool,
    ExperimentResult,
    _WarmStart,
    _build_flows,
    _build_tagger,
    _build_topology,
    _deadline_ns,
    _register_run_metrics,
    _switches_of,
)
from repro.harness.schemes import TRANSPORTS
from repro.metrics.fct import FctCollector
from repro.net.boundary import BoundaryMux, import_packet
from repro.net.link import Link
from repro.obs import MetricsRegistry, RssSampler, SpanRecorder, Tracer
from repro.obs.profile import _rss_high_water
from repro.obs.spans import round_merge_key, stall_table, wall_ns
from repro.sim.parallel.partition import Handoff, PartitionSimulator
from repro.sim.parallel.protocol import INF, ChunkSync, min_handoff_latency_ns
from repro.sim.rng import RngFactory
from repro.transport.receiver import Receiver
from repro.units import MSS, SEC

#: matches the literal in runner._build_topology — the propagation delay
#: of every leaf<->spine wire, and hence part of the lookahead
_FABRIC_DELAY_NS = 650

#: matches the small-flow cut in runner.run_experiment
_SMALL_CUT_BYTES = 100_000

#: per-partition round report:
#: ``(next_pending_ns_or_INF, outbox, completed_cum, executed_delta)``
Report = Tuple[int, List[Handoff], int, int]


# -- one partition --------------------------------------------------------


def _wire_partition_endpoints(
    sim: PartitionSimulator,
    cfg: ExperimentConfig,
    topo: Any,
    flows: List[Any],
    collector: FctCollector,
    tagger: Any,
    pid: int,
) -> List[Any]:
    """``runner._wire_endpoints`` with an ownership filter.

    Receivers go where the flow sinks, senders where it sources; a
    same-pod flow gets both (and never crosses a boundary).  The
    connection pool's state is keyed by ``(src, dst, k)`` with ``k``
    advanced per ``(src, dst)`` — all source-local — so a per-partition
    pool replays exactly the serial pool's decisions for owned flows.
    """
    sender_cls = TRANSPORTS[cfg.transport]
    hpl = cfg.hosts_per_leaf
    senders: List[Any] = []
    pool = (
        ConnectionPool(cfg.connections_per_pair, cfg.max_warm_cwnd)
        if cfg.persistent_connections
        else None
    )
    bdp_pkts = cfg.link_rate_bps * cfg.base_rtt_ns / (8 * MSS * SEC)
    max_cwnd = max(64.0, cfg.max_cwnd_bdp_factor * bdp_pkts)
    base_ns = sim.now
    starts = []
    for flow in flows:
        if flow.dst // hpl == pid:
            Receiver(
                sim, topo.hosts[flow.dst], flow,
                on_complete=collector.on_complete,
            )
        if flow.src // hpl == pid:
            sender = sender_cls(
                sim,
                topo.hosts[flow.src],
                flow,
                init_cwnd=cfg.init_cwnd,
                min_rto_ns=cfg.min_rto_ns,
                init_rto_ns=cfg.min_rto_ns,
                tagger=tagger,
                max_cwnd=max_cwnd,
            )
            senders.append(sender)
            start_cb = sender.start if pool is None else _WarmStart(pool, sender)
            starts.append((flow.start_ns - base_ns, start_cb))
    sim.schedule_many(starts)
    return senders


class _Partition:
    """One leaf pod's sub-simulator plus its result-collection state.

    With ``spans_on`` the partition carries its own
    :class:`SpanRecorder` (pid label ``p<N>``) and stamps the round's
    merge / compute / serialize phases; its hosting worker adds the
    ``ipc_wait`` phase.  The recorder ships home with :meth:`final`.
    """

    def __init__(
        self,
        cfg: ExperimentConfig,
        pid: int,
        trace_capacity: Optional[int],
        spans_on: bool = False,
    ) -> None:
        self.pid = pid
        sim = PartitionSimulator(pid, batch=cfg.batch, sanitize=cfg.sanitize or None)
        self.sim = sim
        rng = RngFactory(cfg.seed)
        topo = _build_topology(sim, cfg)
        flows = _build_flows(cfg, rng, topo)
        self.collector = FctCollector()
        tagger = _build_tagger(cfg)
        self.senders = _wire_partition_endpoints(
            sim, cfg, topo, flows, self.collector, tagger, pid
        )
        # Rewire this pod's uplinks to boundary muxes: the egress port
        # keeps its rate/pacing (partition-local state), but delivery
        # becomes an outbox handoff captured at schedule_tx.
        delay = topo.fabric_link_delay_ns
        for spine_id, up in enumerate(topo._uplinks[pid]):
            mux = BoundaryMux(spine_id, name=f"{up.name}:boundary")
            up.link = Link(mux, delay)
            sim.register_boundary(mux.receive, mux)
        # Stable bound methods for arrival insertion — one per spine
        # replica, mirroring the `dst.receive` the serial engine would
        # have scheduled.
        self._spine_rx = [spine.receive for spine in topo.spines]
        self.switches = _switches_of(topo)
        self.tracer: Optional[Tracer] = None
        if trace_capacity != 0:
            tracer = Tracer(capacity=trace_capacity)
            for sw in self.switches:
                for port in sw.ports:
                    port.tracer = tracer
            for sender in self.senders:
                sender.tracer = tracer
            self.tracer = tracer
        self.busy_s = 0.0
        self.spans: Optional[SpanRecorder] = (
            SpanRecorder(pid=f"p{pid}") if spans_on else None
        )
        self.rss = RssSampler()
        self._round = 0

    def initial_report(self) -> Report:
        peek = self.sim.peek_time()
        return (INF if peek is None else peek, [], 0, 0)

    def apply_and_run(self, horizon: int, handoffs: Sequence[Handoff]) -> Report:
        sim = self.sim
        spans = self.spans
        rnd = self._round
        self._round = rnd + 1
        spine_rx = self._spine_rx
        t_merge = wall_ns() if spans is not None else 0
        for rx, aseq, spine_id, fields in handoffs:
            sim.insert_arrival(rx, aseq, spine_rx[spine_id], import_packet(fields))
        if spans is not None:
            spans.add(
                "round", "merge", t_merge, wall_ns() - t_merge,
                tid="phases",
                args={"round": rnd, "handoffs": len(handoffs)},
            )
        t_compute = wall_ns() if spans is not None else 0
        # simlint: disable=SIM001 -- busy_s measures host runtime for the profile; it never feeds the simulation
        t0 = time.perf_counter()
        executed = sim.run(until=horizon)
        # simlint: disable=SIM001 -- closes the host-runtime measurement opened above; not simulation state
        self.busy_s += time.perf_counter() - t0
        if spans is not None:
            spans.add(
                "round", "compute", t_compute, wall_ns() - t_compute,
                tid="phases",
                args={
                    "round": rnd,
                    "horizon_ns": horizon,
                    "executed": executed,
                },
            )
        t_serialize = wall_ns() if spans is not None else 0
        peek = sim.peek_time()
        outbox = sim.drain_outbox()
        # round boundary: the only in-run RSS observation point in this
        # (possibly child) process — how short-lived worker peaks reach
        # the merged profile's rss_hwm_bytes
        self.rss.sample()
        if spans is not None:
            spans.add(
                "round", "serialize", t_serialize, wall_ns() - t_serialize,
                tid="phases",
                args={"round": rnd, "handoffs_out": len(outbox)},
            )
        return (
            INF if peek is None else peek,
            outbox,
            self.collector.count,
            executed,
        )

    def final(self) -> Dict[str, Any]:
        registry = MetricsRegistry()
        _register_run_metrics(registry, self.switches, self.collector, self.tracer)
        senders = self.senders
        tracer = self.tracer
        return {
            "fcts": [(f.id, f.fct_ns) for f in self.collector.flows],
            "timeouts": sum(s.stats.timeouts for s in senders),
            "timeouts_small": sum(
                s.stats.timeouts
                for s in senders
                if s.flow.size_bytes <= _SMALL_CUT_BYTES
            ),
            "drops": sum(sw.total_drops() for sw in self.switches),
            "marks": sum(sw.total_marks() for sw in self.switches),
            "metrics": registry.snapshot(),
            "trace": (
                (list(tracer.events), tracer.dropped_events)
                if tracer is not None
                else None
            ),
            "spans": (
                (list(self.spans.spans), self.spans.dropped_spans)
                if self.spans is not None
                else None
            ),
            "profile": {
                "pid": self.pid,
                "events": self.sim.events_executed,
                "heap_hwm": self.sim.heap_hwm,
                "busy_s": self.busy_s,
                # this process's peak: getrusage at completion, floored
                # by the in-run round-boundary samples
                "rss_hwm_bytes": max(_rss_high_water(), self.rss.hwm_bytes),
                "runs_drained": self.sim.runs_drained,
                "run_hist": list(self.sim.run_hist),
                "trains": self.sim.trains,
                "train_pkts": self.sim.train_pkts,
                "train_hist": list(self.sim.train_hist),
                "train_fallbacks": self.sim.train_fallbacks,
            },
        }


# -- worker hosting --------------------------------------------------------


class _InProcessWorkers:
    """All partitions in this process — ``workers=1`` and the fallback.

    No pipes, so no ``ipc_wait`` spans: the in-process timeline shows
    merge/compute/serialize only, which is the honest decomposition.
    """

    def __init__(
        self,
        cfg: ExperimentConfig,
        pids: List[int],
        trace_capacity: Optional[int],
        spans_on: bool = False,
    ) -> None:
        self._parts = {
            pid: _Partition(cfg, pid, trace_capacity, spans_on)
            for pid in pids
        }
        self.stall_s = 0.0

    def initial_reports(self) -> Dict[int, Report]:
        return {pid: p.initial_report() for pid, p in self._parts.items()}

    def run_round(
        self, horizon: int, route: Dict[int, List[Handoff]]
    ) -> Dict[int, Report]:
        return {
            pid: part.apply_and_run(horizon, route.get(pid, ()))
            for pid, part in sorted(self._parts.items())
        }

    def finals(self) -> Dict[int, Dict[str, Any]]:
        return {pid: p.final() for pid, p in self._parts.items()}

    def close(self) -> None:
        pass


def _worker_main(
    conn: Any,
    cfg: ExperimentConfig,
    pids: List[int],
    trace_capacity: Optional[int],
    spans_on: bool = False,
) -> None:
    """Child-process loop: build partitions, then serve barrier rounds.

    Module-level (and fed only picklable arguments) so it bootstraps
    under every ``multiprocessing`` start method, including spawn.
    Replies are ``("ok", payload)`` or ``("error", traceback)``.

    With ``spans_on``, the blocking ``conn.recv()`` before each round is
    stamped as that round's ``ipc_wait`` phase onto every hosted
    partition's recorder — the time this worker's partitions sat idle
    at the barrier while the coordinator collected the other workers
    and computed the next horizon.
    """
    try:
        parts = {
            pid: _Partition(cfg, pid, trace_capacity, spans_on)
            for pid in pids
        }
        conn.send(("ok", {pid: p.initial_report() for pid, p in parts.items()}))
        rnd = 0
        while True:
            t_wait = wall_ns() if spans_on else 0
            msg = conn.recv()
            op = msg[0]
            if op == "run":
                if spans_on:
                    waited = wall_ns() - t_wait
                    for pid in pids:
                        part_spans = parts[pid].spans
                        assert part_spans is not None
                        part_spans.add(
                            "round", "ipc_wait", t_wait, waited,
                            tid="phases", args={"round": rnd},
                        )
                rnd += 1
                _, horizon, route = msg
                conn.send((
                    "ok",
                    {
                        pid: parts[pid].apply_and_run(horizon, route.get(pid, ()))
                        for pid in pids
                    },
                ))
            elif op == "final":
                conn.send(("ok", {pid: parts[pid].final() for pid in pids}))
            else:
                break
    except EOFError:
        pass
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:
            pass
    finally:
        conn.close()


class _ProcessWorkers:
    """Partitions spread over child processes, rounds over pipes."""

    def __init__(
        self,
        cfg: ExperimentConfig,
        pids: List[int],
        trace_capacity: Optional[int],
        n_workers: int,
        start_method: str,
        spans: Optional[SpanRecorder] = None,
    ) -> None:
        ctx = multiprocessing.get_context(start_method)
        #: round-robin partition placement — any placement yields the
        #: same results (the round protocol is a barrier); round-robin
        #: just balances pod load
        self.pids_by_worker = [pids[w::n_workers] for w in range(n_workers)]
        self._conns = []
        self._procs = []
        self.stall_s = 0.0
        #: coordinator-side recorder: its ipc_wait spans decompose
        #: sync_stall_s per barrier (initial reports, each round, finals)
        self.spans = spans
        self._recv_calls = 0
        spans_on = spans is not None
        for worker_pids in self.pids_by_worker:
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(child_conn, cfg, worker_pids, trace_capacity, spans_on),
                daemon=True,
            )
            proc.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._procs.append(proc)

    def _recv_all(self) -> Dict[int, Any]:
        spans = self.spans
        t_wait = wall_ns() if spans is not None else 0
        out: Dict[int, Any] = {}
        for conn in self._conns:
            # simlint: disable=SIM001 -- sync_stall_s measures coordinator blocking (host runtime); never simulation state
            t0 = time.perf_counter()
            try:
                tag, payload = conn.recv()
            except EOFError:
                raise RuntimeError(
                    "parallel worker died without reporting an error "
                    "(see stderr for the child traceback)"
                ) from None
            # simlint: disable=SIM001 -- closes the stall measurement opened above
            self.stall_s += time.perf_counter() - t0
            if tag == "error":
                raise RuntimeError(f"parallel worker failed:\n{payload}")
            out.update(payload)
        if spans is not None:
            barrier = self._recv_calls
            self._recv_calls = barrier + 1
            spans.add(
                "round", "ipc_wait", t_wait, wall_ns() - t_wait,
                tid="coord",
                args={"barrier": barrier, "workers": len(self._conns)},
            )
        return out

    def initial_reports(self) -> Dict[int, Report]:
        return self._recv_all()

    def run_round(
        self, horizon: int, route: Dict[int, List[Handoff]]
    ) -> Dict[int, Report]:
        for conn, worker_pids in zip(self._conns, self.pids_by_worker):
            sub = {pid: route[pid] for pid in worker_pids if pid in route}
            conn.send(("run", horizon, sub))
        return self._recv_all()

    def finals(self) -> Dict[int, Dict[str, Any]]:
        for conn in self._conns:
            conn.send(("final",))
        return self._recv_all()

    def close(self) -> None:
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (OSError, BrokenPipeError):
                pass
            conn.close()
        for proc in self._procs:
            proc.join(timeout=5)
            if proc.is_alive():  # pragma: no cover - defensive teardown
                proc.terminate()
                proc.join(timeout=5)


def _pick_start_method() -> Optional[str]:
    """Fork when the platform has it (cheap, shares the warm import
    state), else the first spawn-safe method — mirroring the sweep's
    preference order."""
    available = multiprocessing.get_all_start_methods()
    for method in ("fork", "forkserver", "spawn"):
        if method in available:
            return method
    return None


# -- the coordinator -------------------------------------------------------


def _digest_reports(
    reports: Dict[int, Report], hosts_per_leaf: int
) -> Tuple[int, int, Dict[int, List[Handoff]]]:
    """Fold a report set into ``(m̂, completed, route)``.

    ``m̂`` is the global minimum over every partition's next pending
    event *and* every undelivered handoff — exactly the set of events
    that can still fire — and the route maps each handoff to the
    partition owning its destination pod.  Pure: calling it twice on the
    same reports (the boundary check does) is safe.
    """
    m_hat = INF
    completed = 0
    route: Dict[int, List[Handoff]] = {}
    for pid in sorted(reports):
        peek, outbox, done, _executed = reports[pid]
        if peek < m_hat:
            m_hat = peek
        completed += done
        for rec in outbox:
            if rec[0] < m_hat:
                m_hat = rec[0]
            # fields[2] is the packet's destination host
            route.setdefault(rec[3][2] // hosts_per_leaf, []).append(rec)
    return m_hat, completed, route


def run_parallel_experiment(
    cfg: ExperimentConfig,
    tracer: Optional[Tracer] = None,
    spans: Optional[SpanRecorder] = None,
) -> ExperimentResult:
    """Run one experiment on the partitioned engine.

    Drop-in for :func:`repro.harness.runner.run_experiment` when
    ``cfg.workers >= 1`` (leafspine only — ``cfg.validate`` enforces).
    The returned result carries the flows with their completion state,
    the merged metrics/trace, the summed event count, and a profile dict
    that is a superset of ``RunProfile.as_dict()`` (extra keys:
    ``workers``, ``start_method``, ``partitions``, ``rounds``,
    ``sync_stall_s``, ``cpu_count``, ``per_partition``, and — when the
    flight recorder is on — ``phase_stats``, the stall-attribution
    table from :func:`repro.obs.spans.stall_table`).

    With a :class:`SpanRecorder`, every partition stamps its round
    phases (merge/compute/serialize, plus ipc_wait from its hosting
    worker), the coordinator stamps per-round ``sync`` spans and its own
    pipe waits, and the per-partition recorders are merged into ``spans``
    in pid order after the coordinator's own spans — a deterministic
    order, so the deterministic JSONL export is byte-identical across
    same-seed runs at any worker count.

    Caveat vs. the serial runner: sender-side ``Flow`` mutations stay in
    the worker partitions — the parent's flow objects carry generator
    state plus ``completed``/``fct_ns``, which is everything the FCT
    summary, digests and sweep payloads consume.
    """
    cfg.validate()
    n_parts = cfg.n_leaf
    requested = max(1, cfg.workers)
    n_workers = min(requested, n_parts)
    # simlint: disable=SIM001 -- wall_s measures host runtime for the profile; it never feeds the simulation
    wall_start = time.time()

    # Parent-side replica of the deterministic inputs: the flow list (for
    # result.flows and the deadline) needs only the host count.
    flows = _build_flows(
        cfg,
        RngFactory(cfg.seed),
        SimpleNamespace(n_hosts=cfg.n_leaf * cfg.hosts_per_leaf),
    )
    deadline = _deadline_ns(cfg, flows)
    lookahead = min_handoff_latency_ns(cfg.link_rate_bps, _FABRIC_DELAY_NS)
    sync = ChunkSync(deadline, lookahead, len(flows), _RUN_CHUNK_NS)

    traced = tracer is not None and tracer.enabled
    trace_capacity: Optional[int] = tracer.capacity if traced else 0
    spans_on = spans is not None and spans.enabled
    coord_spans: Optional[SpanRecorder] = None
    if spans_on:
        assert spans is not None
        # coordinator spans get their own pid track; merged into the
        # caller's recorder (before the partitions) at the end
        coord_spans = SpanRecorder(capacity=spans.capacity, pid="coord")

    pids = list(range(n_parts))
    start_method: Optional[str] = None
    if n_workers >= 2:
        start_method = _pick_start_method()
    backend: Any
    if start_method is None:
        # workers=1, or no multiprocessing start method on this platform
        # (results are identical either way; only wall time differs —
        # the profile records how the run was actually hosted)
        n_workers = 1
        backend = _InProcessWorkers(cfg, pids, trace_capacity, spans_on)
    else:
        backend = _ProcessWorkers(
            cfg, pids, trace_capacity, n_workers, start_method,
            spans=coord_spans,
        )

    rounds = 0
    total_events = 0
    hpl = cfg.hosts_per_leaf
    try:
        reports = backend.initial_reports()
        while True:
            m_hat, _completed, route = _digest_reports(reports, hpl)
            horizon = sync.horizon(m_hat)
            t_round = wall_ns() if coord_spans is not None else 0
            reports = backend.run_round(horizon, route)
            if coord_spans is not None:
                coord_spans.add(
                    "sync", "round", t_round, wall_ns() - t_round,
                    tid="rounds",
                    args={
                        "round": rounds,
                        "horizon_ns": horizon,
                        # INF means "no pending event anywhere" — exported
                        # as -1 to keep the JSON readable
                        "m_hat_ns": -1 if m_hat == INF else m_hat,
                        "handoffs": sum(len(h) for h in route.values()),
                    },
                )
            rounds += 1
            total_events += sum(r[3] for r in reports.values())
            if sync.at_boundary(horizon):
                m_post, completed, _ = _digest_reports(reports, hpl)
                if sync.on_boundary(m_post, completed):
                    break
        finals = backend.finals()
        stall_s = backend.stall_s
    finally:
        backend.close()
    # simlint: disable=SIM001 -- closes the host-runtime measurement opened above; not simulation state
    wall_s = time.time() - wall_start

    return _merge_results(
        cfg=cfg,
        flows=flows,
        finals=finals,
        sync=sync,
        total_events=total_events,
        wall_s=wall_s,
        tracer=tracer if traced else None,
        n_workers=n_workers,
        start_method=start_method,
        rounds=rounds,
        stall_s=stall_s,
        spans=spans if spans_on else None,
        coord_spans=coord_spans,
    )


# -- result merge ----------------------------------------------------------


def _merge_metrics(
    snapshots: List[Dict[str, Any]],
) -> Dict[str, Any]:
    """Union per-partition registry snapshots into one.

    Every simulated object is uniquely owned by one partition, so for
    any metric name at most one snapshot carries a non-trivial value and
    the rest report the registered-but-idle replica: plain counters sum
    (idle replicas contribute zero), ``*.max_bytes_seen`` gauges take
    the max (same result, but max is the gauge's own semantic), and
    histograms combine bucket-wise.
    """
    out: Dict[str, Any] = {}
    for snap in snapshots:
        for name, val in snap.items():
            cur = out.get(name)
            if isinstance(val, dict):  # histogram snapshot
                if cur is None:
                    merged = dict(val)
                    merged["buckets"] = dict(val["buckets"])
                    out[name] = merged
                    continue
                cur["count"] += val["count"]
                cur["sum"] += val["sum"]
                for bound in ("min", "max"):
                    a, b = cur[bound], val[bound]
                    if b is not None:
                        pick = min if bound == "min" else max
                        cur[bound] = b if a is None else pick(a, b)
                buckets = cur["buckets"]
                for idx, n in val["buckets"].items():
                    buckets[idx] = buckets.get(idx, 0) + n
            elif cur is None:
                out[name] = val
            elif name.endswith("max_bytes_seen"):
                out[name] = max(cur, val)
            else:
                out[name] = cur + val
    return dict(sorted(out.items()))


def _merge_results(
    cfg: ExperimentConfig,
    flows: List[Any],
    finals: Dict[int, Dict[str, Any]],
    sync: ChunkSync,
    total_events: int,
    wall_s: float,
    tracer: Optional[Tracer],
    n_workers: int,
    start_method: Optional[str],
    rounds: int,
    stall_s: float,
    spans: Optional[SpanRecorder] = None,
    coord_spans: Optional[SpanRecorder] = None,
) -> ExperimentResult:
    order = sorted(finals)
    collector = FctCollector()
    by_id = {f.id: f for f in flows}
    for pid in order:
        for fid, fct in finals[pid]["fcts"]:
            flow = by_id[fid]
            flow.completed = True
            flow.fct_ns = fct
            collector.on_complete(flow)

    metrics = _merge_metrics([finals[pid]["metrics"] for pid in order])

    if tracer is not None:
        merged: List[Tuple[Any, ...]] = []
        dropped = 0
        for pid in order:
            part_trace = finals[pid]["trace"]
            if part_trace is not None:
                merged.extend(part_trace[0])
                dropped += part_trace[1]
        # stable sort by timestamp: same-time events stay grouped by
        # (partition, local order) — deterministic, though not the
        # serial interleaving (compare digests on *sorted* lines)
        merged.sort(key=lambda e: e[1])
        cap = tracer.capacity
        if cap is not None:
            overflow = len(tracer.events) + len(merged) - cap
            if overflow > 0:
                dropped += overflow
        tracer.events.extend(merged)
        tracer.dropped_events += dropped

    if spans is not None:
        # deterministic per-round interleave: collect the coordinator's
        # ring and every partition's ring (they travel home inside the
        # final reports), then sort by (round, pid, phase).  Sorting by
        # round — never wall time — keeps the export order a pure
        # function of the run, and means the caller's bounded ring
        # evicts the *oldest rounds uniformly across partitions* rather
        # than silently discarding whole partitions.
        merged_spans: List[Any] = []
        dropped_spans = 0
        if coord_spans is not None and coord_spans is not spans:
            merged_spans.extend(coord_spans.spans)
            dropped_spans += coord_spans.dropped_spans
        for pid in order:
            shipped = finals[pid].get("spans")
            if shipped is not None:
                merged_spans.extend(shipped[0])
                dropped_spans += shipped[1]
        merged_spans.sort(key=round_merge_key)
        spans.adopt(merged_spans, dropped_spans)

    per_partition = [finals[pid]["profile"] for pid in order]
    part_events = sum(p["events"] for p in per_partition)
    if part_events != total_events:  # pragma: no cover - protocol guard
        raise RuntimeError(
            f"event accounting mismatch: rounds summed {total_events}, "
            f"partitions report {part_events}"
        )
    profile: Dict[str, object] = {
        "events": total_events,
        "heap_hwm": max((p["heap_hwm"] for p in per_partition), default=0),
        "wall_s": wall_s,
        "events_per_sec": total_events / wall_s if wall_s > 0 else 0.0,
        # the parent's own peak, floored by every partition process's
        # peak (getrusage + in-run round-boundary samples) — this is
        # what makes short-lived worker peaks visible
        "rss_hwm_bytes": max(
            _rss_high_water(),
            max(
                (p.get("rss_hwm_bytes", 0) for p in per_partition),
                default=0,
            ),
        ),
        "equeue": "parallel:heap",
        "equeue_stats": {},
        "runs_drained": sum(p.get("runs_drained", 0) for p in per_partition),
        "run_hist": [
            sum(h) for h in zip(*(p.get("run_hist", [0] * 18) for p in per_partition))
        ] if per_partition else [0] * 18,
        "trains": sum(p.get("trains", 0) for p in per_partition),
        "train_pkts": sum(p.get("train_pkts", 0) for p in per_partition),
        "train_hist": [
            sum(h)
            for h in zip(*(p.get("train_hist", [0] * 18) for p in per_partition))
        ] if per_partition else [0] * 18,
        "train_fallbacks": sum(
            p.get("train_fallbacks", 0) for p in per_partition
        ),
        "workers": n_workers,
        "start_method": start_method or "in-process",
        "partitions": cfg.n_leaf,
        "rounds": rounds,
        "sync_stall_s": stall_s,
        "cpu_count": os.cpu_count() or 1,
        "per_partition": per_partition,
    }
    if spans is not None:
        phase_stats = stall_table(spans.iter_dicts())
        if phase_stats is not None:
            profile["phase_stats"] = phase_stats
    return ExperimentResult(
        config=cfg,
        summary=collector.summarize(),
        completed=collector.count,
        total=len(flows),
        timeouts=sum(finals[pid]["timeouts"] for pid in order),
        timeouts_small=sum(finals[pid]["timeouts_small"] for pid in order),
        drops=sum(finals[pid]["drops"] for pid in order),
        marks=sum(finals[pid]["marks"] for pid in order),
        sim_ns=sync.sim_ns,
        wall_s=wall_s,
        events=total_events,
        flows=flows,
        metrics=metrics,
        profile=profile,
    )
