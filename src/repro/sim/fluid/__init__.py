"""Fluid-flow simulation: long flows as rates, not packets.

Long-lived flows dominate event counts (a 25 MB transfer is ~17k data
packets, each costing several events) while their behaviour is the part
of the system analytical models describe best: DCTCP drives every
long flow to its max-min fair share and holds the bottleneck queue at
the marking threshold.  This package models exactly that — flows become
piecewise-constant rates solved per link, re-evaluated only at
*rate-change epochs* (flow start/finish, share change, AQM threshold
crossing), so a second of simulated time costs hundreds of events
instead of millions.

Three pieces:

* :mod:`repro.sim.fluid.solver` — progressive water-filling max-min
  fair shares (the classical fluid abstraction; the analytical ECN
  treatment follows PCN's admission model, arxiv 1208.2314).
* :mod:`repro.sim.fluid.model` — per-flow / per-link fluid state.
* :mod:`repro.sim.fluid.network` — the epoch engine riding the normal
  :class:`~repro.sim.engine.Simulator` event queue, plus the hybrid
  coupling to packet-mode :class:`~repro.net.port.EgressPort` s.

See ``docs/FLUID.md`` for the model, its invariants, and its known
error bounds (and when *not* to trust it).
"""

from repro.sim.fluid.build import build_fluid_network, split_flows
from repro.sim.fluid.model import FluidFlow, FluidLink
from repro.sim.fluid.network import FluidNetwork
from repro.sim.fluid.solver import max_min_shares

__all__ = [
    "FluidFlow",
    "FluidLink",
    "FluidNetwork",
    "build_fluid_network",
    "max_min_shares",
    "split_flows",
]
