"""Max-min fair share solver: progressive water-filling.

The classical fluid abstraction of long-lived TCP: every flow gets the
largest rate such that no flow can be increased without decreasing a
smaller one.  DCTCP converges to exactly this allocation (its marking
law equalises windows among flows sharing a bottleneck), which is why
the fluid engine can state a flow's steady-state goodput in closed form
instead of simulating 17k packets to discover it.

The solver is deliberately pure: plain sequences in, plain lists out,
no simulator state — so it is unit-testable against analytic shares and
trivially deterministic (links are scanned in index order and ties pick
the lowest index; all arithmetic is IEEE-754 double, identical on every
platform).
"""

from __future__ import annotations

from typing import List, Sequence, Set, Tuple


def max_min_shares(
    capacities: Sequence[float],
    paths: Sequence[Sequence[int]],
) -> Tuple[List[float], Set[int], int]:
    """Water-fill ``len(paths)`` flows over ``len(capacities)`` links.

    ``capacities`` are link rates in bits/s; ``paths`` give, per flow,
    the link indices it crosses (each must be non-empty — every real
    flow crosses at least its sender's NIC).

    Returns ``(rates_bps, bottleneck_links, iterations)``:

    * ``rates_bps`` — the max-min fair rate of each flow;
    * ``bottleneck_links`` — the links whose capacity the allocation
      exhausts (each water-filling round freezes one);
    * ``iterations`` — water-filling rounds executed (at most the
      number of distinct bottleneck links), reported up into
      ``fluid_stats`` so epoch cost stays observable.

    >>> max_min_shares([10.0], [[0], [0]])[0]
    [5.0, 5.0]
    >>> rates, bn, _ = max_min_shares([10.0, 4.0], [[0], [0, 1]])
    >>> rates
    [6.0, 4.0]
    >>> sorted(bn)
    [0, 1]
    """
    n_links = len(capacities)
    n_flows = len(paths)
    rates = [0.0] * n_flows
    if not n_flows:
        return rates, set(), 0
    cap_left = [float(c) for c in capacities]
    counts = [0] * n_links
    link_flows: List[List[int]] = [[] for _ in range(n_links)]
    for f, path in enumerate(paths):
        if not path:
            raise ValueError(f"flow {f} has an empty path")
        for li in path:
            counts[li] += 1
            link_flows[li].append(f)
    frozen = [False] * n_flows
    bottlenecks: Set[int] = set()
    unfrozen = n_flows
    iterations = 0
    while unfrozen:
        iterations += 1
        best = -1
        fair = 0.0
        for li in range(n_links):
            c = counts[li]
            if not c:
                continue
            share = cap_left[li] / c
            if best < 0 or share < fair:
                best = li
                fair = share
        if best < 0:  # pragma: no cover - unreachable while unfrozen > 0
            break
        if fair < 0.0:
            fair = 0.0
        bottlenecks.add(best)
        for f in link_flows[best]:
            if frozen[f]:
                continue
            frozen[f] = True
            unfrozen -= 1
            rates[f] = fair
            for li in paths[f]:
                cap_left[li] -= fair
                counts[li] -= 1
    return rates, bottlenecks, iterations
