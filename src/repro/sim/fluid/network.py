"""The fluid epoch engine, riding the normal event queue.

A :class:`FluidNetwork` owns the promoted flows and the fluid view of
the links they cross.  Between *epochs* nothing happens: every flow
transfers at a constant rate, so simulated time is free.  At an epoch —
flow start, flow finish, a hybrid measurement tick that moved residual
capacity — the engine settles the elapsed interval (each active flow's
remaining bytes drop by ``rate × dt``), re-solves max-min fair shares,
and re-arms the next earliest finish as an ordinary simulator event.

Epoch-boundary discipline (enforced statically by simlint SIM018): all
fluid state mutation lives in ``on_*`` event entry points and
``_epoch*`` helpers.  Anything else in this package only *reads* state,
so a future refactor cannot accidentally mutate shares mid-interval
where the settled accounting would not see it.

Hybrid coupling (both directions, applied in :meth:`_epoch_apply`):

* **fluid → packet:** each saturated link's port has its ``rate_bps``
  set to the residual capacity left by fluid flows (the per-size
  serialization cache is invalidated), its link delay extended by the
  standing-queue delay the AQM would hold, and its ``fluid`` slot
  pointed at the :class:`~repro.sim.fluid.model.FluidLink` so the port
  CE-marks transiting ECT packets at the fluid marking rate.
* **packet → fluid:** a periodic ``on_tick`` samples each port's
  transmitted bytes into a packet-rate EWMA; the solver sees
  ``capacity − packet_rate`` and re-solves when any link's measured
  rate moved more than 1% of capacity.
"""

from __future__ import annotations

from math import sqrt
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.obs.spans import wall_ns
from repro.units import MSS, SEC

from repro.sim.fluid.model import FluidFlow, FluidLink
from repro.sim.fluid.solver import max_min_shares

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.metrics.fct import FctCollector
    from repro.obs.spans import SpanRecorder
    from repro.sim.engine import EventHandle, Simulator

_BITS_NS = 8 * SEC

#: completion slack, bytes — settles within half a byte of zero count as
#: done (float integration error over thousands of epochs stays far
#: below this; the finish event is scheduled from the same arithmetic)
_EPS_BYTES = 0.5

#: floor on the residual rate handed to the packet ports and the solver
#: (fraction of nominal capacity) — keeps serialization times finite
#: and the water-filling well-conditioned even on saturated links
_MIN_RATE_FRAC = 0.01

#: EWMA gain for the measured packet rate (DCTCP's own g)
_PKT_EWMA_G = 0.5

#: re-solve when a link's measured packet rate moves by more than this
#: fraction of nominal capacity since the last solve
_RESOLVE_FRAC = 0.01

#: Share-increase ramp deficit scale.  A DCTCP flow claims a raised
#: share at +1 MSS of window per RTT; versus the solver's step jump the
#: pure congestion-avoidance model under-transfers
#: ``dr^2 * rtt^2 / (2 * 8 * MSS)`` bits during the ramp.  But the
#: bottleneck port work-conserves: the standing queue built before the
#: share rose keeps the link busy for much of that window deficit, so
#: charging the full CA deficit overshoots badly (measured +20..+80% on
#: the cross-validation tails).  0.125 — i.e. the link actually idles
#: for about an eighth of the CA ramp deficit — is the measured
#: calibration on the bulk cross-validation configs (a {0, 0.125, 0.25,
#: 0.5} scan, pooled promoted-flow FCTs over seeds 1-3; 0.125 alone
#: holds both p50 and p99 within 5% on both pinned configs); see
#: docs/FLUID.md for the experiment.
_RAMP_DEFICIT_SCALE = 0.125


class FluidNetwork:
    """Epoch-driven rate evolution for the promoted flows."""

    __slots__ = (
        "sim",
        "flows",
        "links",
        "collector",
        "spans",
        "hybrid",
        "tick_ns",
        "epochs",
        "solver_iterations",
        "threshold_crossings",
        "completed",
        "_active",
        "_finish_handle",
        "_last_settle_ns",
        "_pkt_at_solve",
        "_done",
    )

    def __init__(
        self,
        sim: "Simulator",
        flows: Sequence[FluidFlow],
        links: Sequence[FluidLink],
        collector: "FctCollector",
        spans: Optional["SpanRecorder"] = None,
        hybrid: bool = False,
        tick_ns: int = 0,
    ) -> None:
        self.sim = sim
        self.flows: List[FluidFlow] = list(flows)
        self.links: List[FluidLink] = list(links)
        self.collector = collector
        self.spans = spans
        #: True when packet flows coexist: couple rates/delay/marking
        #: into the ports and sample packet throughput back
        self.hybrid = hybrid
        #: measurement-tick interval (hybrid only; 0 disables)
        self.tick_ns = tick_ns
        # -- counters surfaced as fluid_stats --------------------------
        self.epochs = 0
        self.solver_iterations = 0
        #: links whose saturated flag flipped across an epoch (the AQM
        #: standing queue forming or draining)
        self.threshold_crossings = 0
        self.completed = 0
        # -- private epoch state ---------------------------------------
        self._active: List[int] = []
        self._finish_handle: Optional["EventHandle"] = None
        self._last_settle_ns = 0
        #: per-link packet rate the current allocation was solved with
        self._pkt_at_solve: List[float] = [0.0] * len(self.links)
        self._done = not self.flows

    # -- event entry points (scheduled on the simulator) ---------------

    def on_start(self) -> None:
        """Arm every flow start (and the hybrid tick) on the queue."""
        if self._done:
            return
        sim = self.sim
        now = sim.now
        self._last_settle_ns = now
        for i, fl in enumerate(self.flows):
            delay = fl.flow.start_ns - now
            if delay < 0:
                delay = 0
            sim.schedule_call(delay, self.on_flow_start, i)
        if self.hybrid and self.tick_ns > 0:
            sim.schedule(self.tick_ns, self.on_tick)

    def on_flow_start(self, i: int) -> None:
        """Epoch: flow ``i`` becomes active; shares shift."""
        if self._done:  # pragma: no cover - starts precede completion
            return
        self._epoch_settle()
        fl = self.flows[i]
        fl.active = True
        self._active.append(i)
        self._epoch_resolve("start")

    def on_finish_due(self) -> None:
        """Epoch: the earliest-finishing flow has drained its bytes."""
        if self._done:  # pragma: no cover - handle is cancelled on done
            return
        self._finish_handle = None
        self._epoch_settle()
        now = self.sim.now
        still: List[int] = []
        for i in self._active:
            fl = self.flows[i]
            if fl.remaining_bytes <= _EPS_BYTES:
                fl.remaining_bytes = 0.0
                fl.active = False
                fl.done = True
                flow = fl.flow
                flow.fct_ns = now - flow.start_ns + fl.path_delay_ns
                flow.completed = True
                self.completed += 1
                self.collector.on_complete(flow)
            else:
                still.append(i)
        self._active = still
        if still or self.completed < len(self.flows):
            self._epoch_resolve("finish")
        else:
            self._epoch_restore()

    def on_tick(self) -> None:
        """Hybrid measurement tick: fold packet throughput back in."""
        if self._done:
            return
        moved = False
        for li, link in enumerate(self.links):
            port = link.port
            if port is None:
                continue
            cur = port.stats.tx_bytes
            inst = (cur - link.pkt_bytes_prev) * _BITS_NS / self.tick_ns
            link.pkt_bytes_prev = cur
            link.pkt_rate_bps = (
                (1.0 - _PKT_EWMA_G) * link.pkt_rate_bps + _PKT_EWMA_G * inst
            )
            if (
                abs(link.pkt_rate_bps - self._pkt_at_solve[li])
                > _RESOLVE_FRAC * link.capacity_bps
            ):
                moved = True
        if moved:
            self._epoch_settle()
            self._epoch_resolve("tick")
        self.sim.schedule(self.tick_ns, self.on_tick)

    # -- epoch helpers (the only other mutation sites) ------------------

    def _epoch_settle(self) -> None:
        """Integrate the constant-rate interval since the last epoch."""
        now = self.sim.now
        dt = now - self._last_settle_ns
        self._last_settle_ns = now
        if dt <= 0:
            return
        for i in self._active:
            fl = self.flows[i]
            fl.remaining_bytes -= fl.rate_bps * dt / _BITS_NS
            if fl.remaining_bytes < 0.0:
                fl.remaining_bytes = 0.0

    def _epoch_resolve(self, why: str) -> None:
        """Re-solve shares, update link/marking state, re-arm finish."""
        t0 = wall_ns()
        links = self.links
        active = self._active
        caps: List[float] = []
        for li, link in enumerate(links):
            residual = link.capacity_bps - link.pkt_rate_bps
            floor = _MIN_RATE_FRAC * link.capacity_bps
            caps.append(residual if residual > floor else floor)
            self._pkt_at_solve[li] = link.pkt_rate_bps
        paths = [self.flows[i].path for i in active]
        rates, bottlenecks, iters = max_min_shares(caps, paths)
        self.epochs += 1
        self.solver_iterations += iters
        # per-flow rate + DCTCP-style alpha at the new share
        for k, i in enumerate(active):
            fl = self.flows[i]
            new_rate = rates[k]
            old_rate = fl.rate_bps
            # effective RTT: propagation both ways plus the standing
            # queues currently held on the path (assumed symmetric for
            # the ACK direction, as in the bulk scenarios)
            rtt_ns = 2 * fl.path_delay_ns
            for li in fl.path:
                rtt_ns += 2 * links[li].q_delay_ns
            if 0.0 < old_rate < new_rate:
                # Congestion-avoidance ramp deficit: a real DCTCP flow
                # claims a raised share at +1 MSS of window per RTT
                # (linear), not instantly.  Versus the solver's step
                # jump it under-transfers (dr)^2 * RTT^2 / (2 * MSS)
                # bits during the ramp; charge that back as remaining
                # bytes so completion times carry the convergence lag.
                # Flows *starting* are exempt: slow start is
                # exponential and reaches these shares within a few
                # RTTs (a documented error bound, not worth modelling).
                # bits: dr^2 rtt^2 / (2 * 8*MSS); /8 again for bytes
                dr = new_rate - old_rate
                rtt_s = rtt_ns / 1e9
                fl.remaining_bytes += _RAMP_DEFICIT_SCALE * (
                    dr * dr * rtt_s * rtt_s / (128.0 * MSS)
                )
            fl.rate_bps = new_rate
            w_pkts = new_rate * rtt_ns / (8e9 * MSS)
            if w_pkts < 1.0:
                w_pkts = 1.0
            fl.alpha = min(1.0, sqrt(2.0 / w_pkts))
        # per-link totals, saturation, standing queue, marking fraction
        for li, link in enumerate(links):
            total = 0.0
            alpha_sum = 0.0
            n_crossing = 0
            for k, i in enumerate(active):
                fl = self.flows[i]
                if li in fl.path:
                    total += rates[k]
                    alpha_sum += fl.alpha
                    n_crossing += 1
            link.fluid_rate_bps = total
            sat = li in bottlenecks
            if sat != link.saturated:
                self.threshold_crossings += 1
                link.saturated = sat
            if sat and n_crossing:
                link.q_delay_ns = link.q_delay_cap_ns
                link.mark_frac = alpha_sum / n_crossing
            else:
                link.q_delay_ns = 0
                link.mark_frac = 0.0
                link.mark_acc = 0.0
        if self.hybrid:
            self._epoch_apply()
        self._epoch_arm()
        spans = self.spans
        if spans is not None:
            spans.add(
                "fluid",
                "epoch",
                t0,
                wall_ns() - t0,
                tid="sim",
                args={
                    "why": why,
                    "sim_ns": self.sim.now,
                    "active": len(active),
                    "iters": iters,
                },
            )

    def _epoch_apply(self) -> None:
        """Couple the new allocation into the packet-mode ports.

        Deliberately *not* by reducing ``port.rate_bps``: the port
        serializes packets at line rate even when fluid load saturates
        the link — a transiting burst interleaves with the fluid
        packets, it is not clocked out at the residual rate (an early
        version did exactly that and starved every short flow: the
        throttled port capped their measured throughput, which the
        solver then read as "no packet demand" — a grant/measurement
        deadlock).  Contention is expressed the way the real system
        expresses it: extra sojourn equal to the AQM standing queue,
        and CE marks at the fluid flows' own marking rate, which makes
        packet DCTCP senders converge onto the same fair share the
        solver gave the fluid flows.  Capacity conservation holds on
        the measurement-tick timescale through the reverse coupling
        (the solver sees ``capacity − measured packet rate``), not
        instantaneously — see docs/FLUID.md for the error bound.
        """
        for link in self.links:
            port = link.port
            if port is None:
                continue
            port._link_delay = link.base_delay_ns + link.q_delay_ns
            port.fluid = link if link.mark_frac > 0.0 else None

    def _epoch_arm(self) -> None:
        """(Re-)schedule the earliest projected flow finish."""
        sim = self.sim
        if self._finish_handle is not None:
            sim.cancel(self._finish_handle)
            self._finish_handle = None
        best = -1
        for i in self._active:
            fl = self.flows[i]
            if fl.rate_bps <= 0.0:
                continue
            left = fl.remaining_bytes * _BITS_NS
            delay = int(-(-left // fl.rate_bps))
            if delay < 1:
                delay = 1
            if best < 0 or delay < best:
                best = delay
        if best >= 0:
            self._finish_handle = sim.schedule(best, self.on_finish_due)

    def _epoch_restore(self) -> None:
        """All fluid flows done: hand the ports back untouched."""
        self._done = True
        if self._finish_handle is not None:
            self.sim.cancel(self._finish_handle)
            self._finish_handle = None
        if not self.hybrid:
            return
        for link in self.links:
            port = link.port
            if port is None:
                continue
            port._link_delay = link.base_delay_ns
            port.fluid = None

    # -- read-only reporting --------------------------------------------

    @property
    def done(self) -> bool:
        return self._done

    def stats_dict(self) -> Dict[str, int]:
        """The ``fluid_stats`` payload for RunProfile / bench results."""
        return {
            "flows": len(self.flows),
            "completed": self.completed,
            "epochs": self.epochs,
            "solver_iterations": self.solver_iterations,
            "threshold_crossings": self.threshold_crossings,
        }
