"""Per-flow and per-link fluid state.

Plain state holders with ``__slots__``; every mutation after
construction happens inside :class:`~repro.sim.fluid.network.
FluidNetwork`'s epoch-boundary entry points (simlint SIM018 enforces
that discipline statically, so fluid state can never drift between
epochs where the solver would not see it).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - annotation-only (avoids cycle)
    from repro.net.port import EgressPort
    from repro.transport.flow import Flow


class FluidFlow:
    """One promoted flow: a rate and a byte count, not packets."""

    __slots__ = (
        "flow",
        "path",
        "path_delay_ns",
        "rate_bps",
        "remaining_bytes",
        "alpha",
        "active",
        "done",
    )

    def __init__(
        self, flow: "Flow", path: Tuple[int, ...], path_delay_ns: int
    ) -> None:
        #: the transport-layer Flow record (id/src/dst/size/fct slots);
        #: completion writes ``fct_ns``/``completed`` exactly as the
        #: packet-mode Receiver would
        self.flow = flow
        #: link indices into ``FluidNetwork.links``, source to sink
        self.path = path
        #: one-way propagation delay of the path (last-byte delivery)
        self.path_delay_ns = path_delay_ns
        #: current goodput, bits/s (piecewise constant between epochs)
        self.rate_bps = 0.0
        self.remaining_bytes = float(flow.size_bytes)
        #: DCTCP-style marking estimate at the current share (the
        #: steady-state fixed point alpha ~ sqrt(2/W); starts at 1.0
        #: like DctcpSender)
        self.alpha = 1.0
        self.active = False
        self.done = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FluidFlow {self.flow.id} rate={self.rate_bps / 1e6:.1f}Mbps "
            f"left={self.remaining_bytes:.0f}B>"
        )


class FluidLink:
    """One directed link in the fluid graph (usually one EgressPort)."""

    __slots__ = (
        "port",
        "capacity_bps",
        "base_delay_ns",
        "q_delay_cap_ns",
        "fluid_rate_bps",
        "pkt_rate_bps",
        "pkt_bytes_prev",
        "saturated",
        "q_delay_ns",
        "mark_frac",
        "mark_acc",
    )

    def __init__(
        self,
        port: Optional["EgressPort"],
        capacity_bps: float,
        base_delay_ns: int = 0,
        q_delay_cap_ns: int = 0,
    ) -> None:
        #: the packet-mode port this link shadows (None in pure-fluid
        #: unit tests, where links are abstract capacities)
        self.port = port
        #: nominal capacity, bits/s
        self.capacity_bps = capacity_bps
        #: propagation delay of the attached wire
        self.base_delay_ns = base_delay_ns
        #: standing-queue delay when saturated: the AQM holds a DCTCP
        #: fluid queue at its threshold, so packets crossing the link
        #: wait this long behind the fluid backlog (0 disables)
        self.q_delay_cap_ns = q_delay_cap_ns
        #: total fluid rate allocated across this link, bits/s
        self.fluid_rate_bps = 0.0
        #: EWMA of measured packet throughput (hybrid residual input)
        self.pkt_rate_bps = 0.0
        #: port.stats.tx_bytes at the last measurement
        self.pkt_bytes_prev = 0
        #: True while the max-min allocation exhausts this link
        self.saturated = False
        #: currently applied standing-queue delay
        self.q_delay_ns = 0
        #: fraction of transiting ECT packets to CE-mark (deterministic
        #: accumulator thinning, applied by EgressPort.receive)
        self.mark_frac = 0.0
        self.mark_acc = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        name = self.port.name if self.port is not None else "abstract"
        return (
            f"<FluidLink {name} fluid={self.fluid_rate_bps / 1e6:.1f}Mbps"
            f"{' saturated' if self.saturated else ''}>"
        )
