"""Assembling a :class:`FluidNetwork` from an experiment.

``split_flows`` applies the mode/threshold policy (which generated flows
are promoted to fluid), and ``build_fluid_network`` walks each promoted
flow's forward path through the topology — via the topologies'
``fluid_path`` hook — building one :class:`FluidLink` per traversed
:class:`~repro.net.port.EgressPort` (ECMP keeps a flow, and its fluid
abstraction, on a single deterministic path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from repro.sim.fluid.model import FluidFlow, FluidLink
from repro.sim.fluid.network import FluidNetwork
from repro.units import ACK_SIZE, HEADER, MSS, SEC

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.harness.config import ExperimentConfig
    from repro.metrics.fct import FctCollector
    from repro.net.port import EgressPort
    from repro.obs.spans import SpanRecorder
    from repro.sim.engine import Simulator
    from repro.transport.flow import Flow

    # both topologies satisfy this shape; a Protocol would be overkill
    # for two call sites
    from repro.topo.leafspine import LeafSpineTopology
    from repro.topo.star import StarTopology
    from typing import Union

    Topology = Union[StarTopology, LeafSpineTopology]

_BITS_NS = 8 * SEC

#: Goodput share of the line rate the packet engine can actually
#: deliver: every MSS of payload costs ``MSS + HEADER`` wire bytes in
#: the data direction plus one ``ACK_SIZE`` pure ACK riding the reverse
#: direction — which, under the symmetric traffic the fluid scenarios
#: model (all-to-all), shares the same links.  1460/1540 ~= 0.948.
#: For strictly one-way patterns the true ceiling is MSS/(MSS+HEADER)
#: (~0.973) and this factor under-grants by ~2.6% — a documented error
#: bound, not a tuning knob (see docs/FLUID.md).
GOODPUT_FACTOR = MSS / (MSS + HEADER + ACK_SIZE)


def split_flows(
    cfg: "ExperimentConfig", flows: Sequence["Flow"]
) -> Tuple[List["Flow"], List["Flow"]]:
    """Partition generated flows into (packet, fluid) per ``cfg.mode``.

    ``packet`` keeps everything packet-exact; ``fluid`` promotes every
    flow; ``hybrid`` promotes flows of at least ``fluid_size_bytes`` —
    the long-lived transfers whose steady state the fluid model
    describes — and leaves the latency-sensitive short flows on the
    packet engine.
    """
    mode = cfg.mode
    if mode == "packet":
        return list(flows), []
    if mode == "fluid":
        return [], list(flows)
    threshold = cfg.fluid_size_bytes
    packet: List["Flow"] = []
    fluid: List["Flow"] = []
    for flow in flows:
        (fluid if flow.size_bytes >= threshold else packet).append(flow)
    return packet, fluid


def standing_queue_delay_ns(cfg: "ExperimentConfig", rate_bps: int) -> int:
    """The queueing delay a saturated link's AQM standing queue adds.

    DCTCP fluid load holds the bottleneck queue at the marking
    threshold; packets crossing that link wait the threshold's drain
    time behind it.  Sojourn-threshold schemes state that delay
    directly; byte-threshold schemes divide by the line rate; droptail
    (no AQM) lets the buffer itself fill.
    """
    scheme = cfg.scheme
    if scheme in ("tcn", "pie"):
        return cfg.effective_tcn_threshold_ns
    if scheme == "codel":
        return cfg.effective_codel_target_ns
    if scheme == "droptail":
        return cfg.buffer_bytes * _BITS_NS // rate_bps
    # queue-length-threshold family: red_std, dequeue_red, perport_red,
    # mqecn, ideal
    return cfg.effective_red_threshold_bytes * _BITS_NS // rate_bps


def build_fluid_network(
    sim: "Simulator",
    cfg: "ExperimentConfig",
    topo: "Topology",
    flows: Sequence["Flow"],
    collector: "FctCollector",
    spans: Optional["SpanRecorder"] = None,
    hybrid: bool = False,
) -> FluidNetwork:
    """Build the fluid engine for the promoted ``flows``.

    ``hybrid`` arms the port coupling (residual rates, standing-queue
    delay, marking) and the packet-throughput measurement tick; leave
    it False when no packet flows share the fabric.
    """
    links: List[FluidLink] = []
    index_of: Dict[int, int] = {}
    fluid_flows: List[FluidFlow] = []
    for flow in flows:
        hops: List[Tuple["EgressPort", int]] = topo.fluid_path(flow)
        path: List[int] = []
        path_delay = 0
        for port, delay_ns in hops:
            li = index_of.get(id(port))
            if li is None:
                li = len(links)
                index_of[id(port)] = li
                links.append(
                    FluidLink(
                        port,
                        port.rate_bps * GOODPUT_FACTOR,
                        delay_ns,
                        standing_queue_delay_ns(cfg, port.rate_bps),
                    )
                )
            path.append(li)
            path_delay += delay_ns
        fluid_flows.append(FluidFlow(flow, tuple(path), path_delay))
    return FluidNetwork(
        sim,
        fluid_flows,
        links,
        collector,
        spans=spans,
        hybrid=hybrid,
        tick_ns=4 * cfg.base_rtt_ns if hybrid else 0,
    )
