"""A small, fast discrete-event engine with pluggable event queues.

A scheduled callback is stored as a plain ``(time, seq, fn)`` tuple (or
``(time, seq, fn, arg)`` for the argument-carrying fast path), so every
ordering comparison runs on machine integers in C — no ``Event`` object
is allocated and no Python-level ``__lt__`` ever runs.  Events at the
same timestamp fire in scheduling order (the monotonically increasing
``seq`` breaks ties, and because it is unique the comparison never
reaches the callback slot, which is why mixed 3- and 4-tuples can share
one structure).

The future-event list itself is a pluggable backend from
:mod:`repro.sim.equeue`: the default binary heap, a ladder/calendar
queue, or a hierarchical timer wheel — all guaranteed to dispatch in the
exact same ``(time, seq)`` total order, so the choice is purely a
performance knob (``Simulator(equeue="ladder")``).  When the default
heap is selected the engine keeps its historical *inlined* dispatch and
push paths over the raw heap list, so the default costs nothing over the
pre-backend engine; other backends supply their own
:meth:`~repro.sim.equeue.base.EventQueue.run_loop`.

Cancellation is handle-based and (by default) lazy: ``schedule`` returns
the pushed tuple as an opaque handle, and :meth:`Simulator.cancel` first
offers the entry to the backend — the timer wheel removes it physically
in O(1) — falling back to a side set of cancelled sequence numbers that
the run loop consults (and drains) when the entry surfaces.  The common
case — no cancellation outstanding — costs one truthiness check per
event.

Design notes
------------
* Time is an **integer nanosecond** count (see :mod:`repro.units`), so there
  are no floating-point ordering surprises and runs are bit-reproducible.
* Callbacks receive no arguments; closures, ``functools.partial`` or the
  ``schedule_call`` fast path bind whatever state they need.
* The engine knows nothing about packets or networks; everything above it
  (links, queues, transports) is built from ``schedule`` calls.
"""

from __future__ import annotations

import gc
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from bisect import insort

from repro.sim.equeue import EQueueSpec, EventQueue, make_equeue
from repro.sim.equeue.heap import HeapEventQueue, heappop, heappush
from repro.sim.equeue.ladder import LadderEventQueue

#: The opaque handle returned by ``schedule``/``schedule_at``/``schedule_call``
#: — the queue entry itself.  ``handle[0]`` is the absolute fire time (ns);
#: treat everything else as private and pass the handle to
#: :meth:`Simulator.cancel` to cancel it.
EventHandle = Tuple[Any, ...]

#: "no bound" sentinel for run(): beyond any reachable time or event count
#: (~292 years of simulated nanoseconds), while keeping the per-event stop
#: comparisons int-vs-int
_NEVER = 2**63 - 1


class Simulator:
    """The event loop.

    ``equeue`` selects the future-event-list backend: a name from
    :data:`repro.sim.equeue.BACKENDS` (``"heap"``, ``"ladder"``,
    ``"wheel"``), ``"auto"``, a pre-built
    :class:`~repro.sim.equeue.base.EventQueue` instance, or ``None`` for
    the default heap.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, lambda: fired.append(sim.now))
    >>> sim.run()
    1
    >>> fired
    [100]
    """

    __slots__ = (
        "now",
        "_equeue",
        "_eq_push",
        "_eq_cancel",
        "_heap",
        "_ladder",
        "_seq",
        "_cancelled",
        "_running",
        "events_executed",
        "heap_hwm",
    )

    def __init__(self, equeue: EQueueSpec = None) -> None:
        self.now: int = 0
        self._seq: int = 0
        #: seqs of entries cancelled but not physically removed (lazy deletion)
        self._cancelled: Set[int] = set()
        eq = make_equeue(equeue)
        self._equeue: EventQueue = eq
        eq.attach(self._cancelled)
        #: bound push — single-attribute hot path for non-heap backends
        self._eq_push: Callable[[EventHandle], int] = eq.push
        #: bound cancel for backends with physical removal, else ``None``
        #: (saves a guaranteed-False Python call per lazy cancellation)
        self._eq_cancel: Optional[Callable[[EventHandle], bool]] = (
            eq.cancel if eq.physical_cancel else None
        )
        #: the raw heap list when the default backend is active (the
        #: inlined fast paths below key off this), else ``None``
        self._heap: Optional[List[EventHandle]] = (
            eq.entries if isinstance(eq, HeapEventQueue) else None
        )
        #: the ladder, when active — its bucket routing is cheap enough
        #: that the per-push method call would dominate it, so the
        #: schedule methods inline it exactly like the heap's heappush
        self._ladder: Optional[LadderEventQueue] = (
            eq if isinstance(eq, LadderEventQueue) else None
        )
        self._running = False
        #: lifetime count of executed (non-cancelled) events — profiling
        self.events_executed: int = 0
        #: high-water mark of the pending-event pool (cancelled included)
        self.heap_hwm: int = 0

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay_ns`` nanoseconds from now.

        Returns a handle usable with :meth:`cancel`.
        """
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        self._seq = seq = self._seq + 1
        entry = (self.now + delay_ns, seq, fn)
        heap = self._heap
        if heap is not None:
            heappush(heap, entry)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                n = self._eq_push(entry)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push, cheapest case first: a
                # due-now entry bisects straight into the active run with
                # no counter or high-water-mark work (the ladder samples
                # its pool hwm at refill; run() folds it back in)
                b = entry[0] >> lad._shift
                if b <= lad._cur:
                    insort(lad._bottom, entry, lad._bi)
                elif b < lad._limit:
                    lad._ring[b & lad._mask].append(entry)
                    lad._count += 1
                else:
                    lad.push(entry)
        return entry

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at absolute time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} before now ({self.now})"
            )
        self._seq = seq = self._seq + 1
        entry = (time_ns, seq, fn)
        heap = self._heap
        if heap is not None:
            heappush(heap, entry)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                n = self._eq_push(entry)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push, cheapest case first: a
                # due-now entry bisects straight into the active run with
                # no counter or high-water-mark work (the ladder samples
                # its pool hwm at refill; run() folds it back in)
                b = entry[0] >> lad._shift
                if b <= lad._cur:
                    insort(lad._bottom, entry, lad._bi)
                elif b < lad._limit:
                    lad._ring[b & lad._mask].append(entry)
                    lad._count += 1
                else:
                    lad.push(entry)
        return entry

    def schedule_call(
        self, delay_ns: int, fn: Callable[[Any], None], arg: Any
    ) -> EventHandle:
        """Hot-path scheduling: ``fn(arg)`` in ``delay_ns`` nanoseconds.

        This is the monotonic fast path used by ports and links: the delay
        is trusted to be non-negative (serialization and propagation delays
        are by construction), and the single argument rides in the queue
        entry itself, so no closure or callable wrapper is allocated per
        event.  ``fn`` must accept exactly one positional argument.
        """
        self._seq = seq = self._seq + 1
        entry = (self.now + delay_ns, seq, fn, arg)
        heap = self._heap
        if heap is not None:
            heappush(heap, entry)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                n = self._eq_push(entry)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push, cheapest case first: a
                # due-now entry bisects straight into the active run with
                # no counter or high-water-mark work (the ladder samples
                # its pool hwm at refill; run() folds it back in)
                b = entry[0] >> lad._shift
                if b <= lad._cur:
                    insort(lad._bottom, entry, lad._bi)
                elif b < lad._limit:
                    lad._ring[b & lad._mask].append(entry)
                    lad._count += 1
                else:
                    lad.push(entry)
        return entry

    def schedule_tx(
        self,
        tx_ns: int,
        done_fn: Callable[[], None],
        rx_ns: int,
        rx_fn: Callable[[Any], None],
        pkt: Any,
    ) -> None:
        """Hot-path scheduling of a transmit pair.

        Every transmitted packet schedules exactly two events — the
        serializer-done tick at ``tx_ns`` and the propagated delivery
        ``rx_fn(pkt)`` at ``rx_ns`` — so one call covers both, paying the
        call and queue-routing prologue once.  Delays are trusted to be
        non-negative and ``rx_ns >= tx_ns``; no handles are returned
        (ports never cancel these).  The done tick takes the lower seq,
        exactly as two back-to-back ``schedule``/``schedule_call`` calls
        would order it.
        """
        seq = self._seq + 1
        self._seq = seq + 1
        now = self.now
        e1 = (now + tx_ns, seq, done_fn)
        e2 = (now + rx_ns, seq + 1, rx_fn, pkt)
        heap = self._heap
        if heap is not None:
            heappush(heap, e1)
            heappush(heap, e2)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                self._eq_push(e1)
                n = self._eq_push(e2)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push twice (see schedule_call)
                shift = lad._shift
                cur = lad._cur
                limit = lad._limit
                b = e1[0] >> shift
                if b <= cur:
                    insort(lad._bottom, e1, lad._bi)
                elif b < limit:
                    lad._ring[b & lad._mask].append(e1)
                    lad._count += 1
                else:
                    lad.push(e1)
                b = e2[0] >> shift
                if b <= cur:
                    insort(lad._bottom, e2, lad._bi)
                elif b < limit:
                    lad._ring[b & lad._mask].append(e2)
                    lad._count += 1
                else:
                    lad.push(e2)

    def schedule_many(
        self, items: Iterable[Tuple[int, Callable[[], None]]]
    ) -> None:
        """Batch-schedule ``(delay_ns, fn)`` pairs in one call.

        Amortizes attribute lookups and the high-water-mark update across
        the batch; no handles are returned, so batched events cannot be
        cancelled.  Delays are trusted to be non-negative.
        """
        now = self.now
        seq = self._seq
        heap = self._heap
        if heap is not None:
            push = heappush
            for delay_ns, fn in items:
                seq += 1
                push(heap, (now + delay_ns, seq, fn))
            n = len(heap)
        else:
            eq_push = self._eq_push
            n = 0
            for delay_ns, fn in items:
                seq += 1
                n = eq_push((now + delay_ns, seq, fn))
        self._seq = seq
        if n > self.heap_hwm:
            self.heap_hwm = n

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event.

        The backend gets first refusal — the timer wheel removes the
        entry physically in O(1); every other backend declines, and the
        sequence number goes into the lazy side set that dispatch skips
        (and drains) when the entry surfaces.  Cancelling an event that
        has already fired is a harmless no-op in practice — the stale
        sequence number simply sits in the side set — but callers should
        not rely on that as a pattern.
        """
        cancel = self._eq_cancel
        if cancel is None or not cancel(handle):
            self._cancelled.add(handle[1])

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Stops when the queue is empty, when the next event is later than
        ``until``, or after ``max_events`` events.  Returns the number of
        events executed.

        Boundary contract (pinned by ``tests/test_run_boundaries.py`` on
        every backend):

        * ``until`` is **inclusive**: an event whose timestamp exactly
          equals ``until`` executes in this call; the first event strictly
          later stays queued.
        * The clock is advanced to ``until`` only when no event remains at
          or before it — if the run stopped on ``max_events`` with such
          events still pending, the clock stays put (at the last executed
          event's time) so the next ``run()``/``step()`` never moves time
          backwards, and a later ``run(until=...)`` call resumes exactly
          where the budget cut in.
        * ``max_events`` counts executed (non-cancelled) events only, and
          the run stops *after* the event that exhausts the budget.
        """
        heap = self._heap
        cancelled = self._cancelled
        # hoist the stop conditions out of the loop: compare against
        # integer sentinels instead of re-testing `is not None` (or
        # paying an int/float comparison) per event
        until_bound = _NEVER if until is None else until
        budget = _NEVER if max_events is None else max_events
        executed = 0
        self._running = True
        # Pause the cyclic collector for the duration of the loop: the
        # hot path allocates nothing but short-lived event tuples and
        # freelisted packets — all acyclic, reclaimed by refcounting the
        # moment they are dropped — so generation-0 passes triggered by
        # that churn only scan for cycles that never exist.  Cyclic
        # garbage created by callbacks keeps accumulating until the
        # collector resumes below, which bounds the drift to one run call.
        # The disable itself sits inside the try: the matching gc.enable()
        # in the finally block must run even when a callback raises (or an
        # async exception lands between the disable and the loop), or the
        # process is left with the cyclic collector permanently off.
        gc_was_enabled = False
        try:
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            if heap is not None:
                pop = heappop
                while heap:
                    entry = heap[0]
                    time = entry[0]
                    if time > until_bound:
                        break
                    pop(heap)
                    if cancelled and entry[1] in cancelled:
                        cancelled.discard(entry[1])
                        continue
                    self.now = time
                    if len(entry) == 3:
                        entry[2]()
                    else:
                        entry[2](entry[3])
                    executed += 1
                    if executed >= budget:
                        break
            else:
                executed = self._equeue.run_loop(
                    self, until_bound, budget, cancelled
                )
        finally:
            self._running = False
            self.events_executed += executed
            lad = self._ladder
            if lad is not None and lad._hwm > self.heap_hwm:
                self.heap_hwm = lad._hwm
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                self.now = until
        return executed

    def step(self) -> bool:
        """Execute the single next (non-cancelled) event.

        Returns ``False`` when no event remains.
        """
        heap = self._heap
        cancelled = self._cancelled
        if heap is not None:
            while heap:
                entry = heappop(heap)
                if cancelled and entry[1] in cancelled:
                    cancelled.discard(entry[1])
                    continue
                self.now = entry[0]
                if len(entry) == 3:
                    entry[2]()
                else:
                    entry[2](entry[3])
                self.events_executed += 1
                return True
            return False
        eq_pop = self._equeue.pop
        while True:
            popped = eq_pop()
            if popped is None:
                return False
            if cancelled and popped[1] in cancelled:
                cancelled.discard(popped[1])
                continue
            self.now = popped[0]
            if len(popped) == 3:
                popped[2]()
            else:
                popped[2](popped[3])
            self.events_executed += 1
            return True

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle.

        Compacts cancelled entries off the queue head as a side effect
        (the lazy-deletion mechanic); the answer is unaffected, and the
        high-water mark can only have been set at push time, so profiling
        counters are not perturbed.
        """
        heap = self._heap
        cancelled = self._cancelled
        if heap is not None:
            while heap and cancelled and heap[0][1] in cancelled:
                cancelled.discard(heap[0][1])
                heappop(heap)
            return heap[0][0] if heap else None
        eq = self._equeue
        while True:
            entry = eq.peek()
            if entry is None:
                return None
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                eq.pop()
                continue
            return entry[0]

    # -- introspection --------------------------------------------------

    @property
    def equeue_name(self) -> str:
        """The active event-queue backend's registry name."""
        return self._equeue.name

    def equeue_stats(self) -> Dict[str, int]:
        """The backend's structure counters (see ``EventQueue.stats``)."""
        return self._equeue.stats()

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled.

        Purely a read: unlike :meth:`peek_time`, this never compacts the
        queue, so profiling or debugging reads cannot perturb engine
        state.  Lazily-cancelled events linger until popped and are
        excluded from the count.  O(n) in queue size; for a boolean
        check prefer :attr:`idle`.
        """
        cancelled = self._cancelled
        eq = self._equeue
        if not cancelled:
            return len(eq)
        return sum(1 for entry in eq if entry[1] not in cancelled)

    @property
    def idle(self) -> bool:
        """True when no live event remains — nothing can ever fire again."""
        return self.peek_time() is None
