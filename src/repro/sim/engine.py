"""A small, fast discrete-event engine.

The engine is a classic binary-heap event loop tuned for CPython: a
scheduled callback is stored as a plain ``(time, seq, fn)`` tuple (or
``(time, seq, fn, arg)`` for the argument-carrying fast path), so every
heap sift compares machine integers in C — no ``Event`` object is
allocated and no Python-level ``__lt__`` ever runs.  Events at the same
timestamp fire in scheduling order (the monotonically increasing ``seq``
breaks ties, and because it is unique the comparison never reaches the
callback slot, which is why mixed 3- and 4-tuples can share the heap).

Cancellation is handle-based and lazy: ``schedule`` returns the pushed
tuple as an opaque handle, and :meth:`Simulator.cancel` records its
sequence number in a side set that the run loop consults (and drains)
when the entry surfaces.  The heap never needs re-organising, and the
common case — no cancellation outstanding — costs one truthiness check
per event.

Design notes
------------
* Time is an **integer nanosecond** count (see :mod:`repro.units`), so there
  are no floating-point ordering surprises and runs are bit-reproducible.
* Callbacks receive no arguments; closures, ``functools.partial`` or the
  ``schedule_call`` fast path bind whatever state they need.
* The engine knows nothing about packets or networks; everything above it
  (links, queues, transports) is built from ``schedule`` calls.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, List, Optional, Set, Tuple

#: The opaque handle returned by ``schedule``/``schedule_at``/``schedule_call``
#: — the heap entry itself.  ``handle[0]`` is the absolute fire time (ns);
#: treat everything else as private and pass the handle to
#: :meth:`Simulator.cancel` to cancel it.
EventHandle = Tuple[Any, ...]


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, lambda: fired.append(sim.now))
    >>> sim.run()
    1
    >>> fired
    [100]
    """

    __slots__ = (
        "now",
        "_heap",
        "_seq",
        "_cancelled",
        "_running",
        "events_executed",
        "heap_hwm",
    )

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[EventHandle] = []
        self._seq: int = 0
        #: seqs of heap entries cancelled but not yet popped (lazy deletion)
        self._cancelled: Set[int] = set()
        self._running = False
        #: lifetime count of executed (non-cancelled) events — profiling
        self.events_executed: int = 0
        #: high-water mark of the pending-event heap (cancelled included)
        self.heap_hwm: int = 0

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay_ns`` nanoseconds from now.

        Returns a handle usable with :meth:`cancel`.
        """
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        self._seq = seq = self._seq + 1
        entry = (self.now + delay_ns, seq, fn)
        heap = self._heap
        heapq.heappush(heap, entry)
        if len(heap) > self.heap_hwm:
            self.heap_hwm = len(heap)
        return entry

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at absolute time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} before now ({self.now})"
            )
        self._seq = seq = self._seq + 1
        entry = (time_ns, seq, fn)
        heap = self._heap
        heapq.heappush(heap, entry)
        if len(heap) > self.heap_hwm:
            self.heap_hwm = len(heap)
        return entry

    def schedule_call(
        self, delay_ns: int, fn: Callable[[Any], None], arg: Any
    ) -> EventHandle:
        """Hot-path scheduling: ``fn(arg)`` in ``delay_ns`` nanoseconds.

        This is the monotonic fast path used by ports and links: the delay
        is trusted to be non-negative (serialization and propagation delays
        are by construction), and the single argument rides in the heap
        entry itself, so no closure or callable wrapper is allocated per
        event.  ``fn`` must accept exactly one positional argument.
        """
        self._seq = seq = self._seq + 1
        entry = (self.now + delay_ns, seq, fn, arg)
        heap = self._heap
        heapq.heappush(heap, entry)
        if len(heap) > self.heap_hwm:
            self.heap_hwm = len(heap)
        return entry

    def schedule_many(
        self, items: Iterable[Tuple[int, Callable[[], None]]]
    ) -> None:
        """Batch-schedule ``(delay_ns, fn)`` pairs in one call.

        Amortizes attribute lookups and the high-water-mark update across
        the batch; no handles are returned, so batched events cannot be
        cancelled.  Delays are trusted to be non-negative.
        """
        now = self.now
        heap = self._heap
        seq = self._seq
        push = heapq.heappush
        for delay_ns, fn in items:
            seq += 1
            push(heap, (now + delay_ns, seq, fn))
        self._seq = seq
        if len(heap) > self.heap_hwm:
            self.heap_hwm = len(heap)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a scheduled event (lazy: skipped when popped).

        Cancelling an event that has already fired is a harmless no-op in
        practice — the stale sequence number simply sits in the side set —
        but callers should not rely on that as a pattern.
        """
        self._cancelled.add(handle[1])

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Stops when the heap is empty, when the next event is later than
        ``until``, or after ``max_events`` events.  The clock is advanced
        to ``until`` only when no event remains at or before it — if the
        run stopped on ``max_events`` with earlier events still pending,
        the clock stays put so the next ``run()``/``step()`` never moves
        time backwards.  Returns the number of events executed.
        """
        heap = self._heap
        pop = heapq.heappop
        cancelled = self._cancelled
        # hoist the stop conditions out of the loop: compare against
        # sentinels instead of re-testing `is not None` per event
        until_bound = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        executed = 0
        self._running = True
        try:
            while heap:
                entry = heap[0]
                time = entry[0]
                if time > until_bound:
                    break
                pop(heap)
                if cancelled and entry[1] in cancelled:
                    cancelled.discard(entry[1])
                    continue
                self.now = time
                if len(entry) == 3:
                    entry[2]()
                else:
                    entry[2](entry[3])
                executed += 1
                if executed >= budget:
                    break
        finally:
            self._running = False
            self.events_executed += executed
        if until is not None and self.now < until:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                self.now = until
        return executed

    def step(self) -> bool:
        """Execute the single next (non-cancelled) event.

        Returns ``False`` when no event remains.
        """
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            entry = heapq.heappop(heap)
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                continue
            self.now = entry[0]
            if len(entry) == 3:
                entry[2]()
            else:
                entry[2](entry[3])
            self.events_executed += 1
            return True
        return False

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle.

        Compacts cancelled entries off the heap top as a side effect (the
        lazy-deletion mechanic); the answer is unaffected, and the heap
        high-water mark can only have been set at push time, so profiling
        counters are not perturbed.
        """
        heap = self._heap
        cancelled = self._cancelled
        while heap and cancelled and heap[0][1] in cancelled:
            cancelled.discard(heap[0][1])
            heapq.heappop(heap)
        return heap[0][0] if heap else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled.

        Purely a read: unlike :meth:`peek_time`, this never compacts the
        heap, so profiling or debugging reads cannot perturb engine state.
        Cancelled events linger in the heap until popped (cancellation is
        lazy) and are excluded from the count.  O(n) in heap size; for a
        boolean check prefer :attr:`idle`.
        """
        cancelled = self._cancelled
        if not cancelled:
            return len(self._heap)
        return sum(1 for entry in self._heap if entry[1] not in cancelled)

    @property
    def idle(self) -> bool:
        """True when no live event remains — nothing can ever fire again."""
        return self.peek_time() is None
