"""A small, fast discrete-event engine.

The engine is a classic binary-heap event loop.  It is deliberately minimal:
an :class:`Event` is a time plus a callback, events at the same timestamp
fire in scheduling order (a monotonically increasing sequence number breaks
ties), and cancellation is done lazily by flagging the event so the heap
never needs re-organising.

Design notes
------------
* Time is an **integer nanosecond** count (see :mod:`repro.units`), so there
  are no floating-point ordering surprises and runs are bit-reproducible.
* Callbacks receive no arguments; closures or ``functools.partial`` bind
  whatever state they need.  This keeps the per-event overhead to one tuple
  and one call.
* The engine knows nothing about packets or networks; everything above it
  (links, queues, transports) is built from ``schedule`` calls.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Holding on to the returned event allows cancellation (used for
    retransmission timers).  Events are single-shot.
    """

    __slots__ = ("time", "seq", "fn", "cancelled")

    def __init__(self, time: int, seq: int, fn: Callable[[], None]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.cancelled = False

    def cancel(self) -> None:
        """Mark the event so it will be skipped when popped."""
        self.cancelled = True

    def __lt__(self, other: "Event") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = " cancelled" if self.cancelled else ""
        return f"<Event t={self.time} seq={self.seq}{state}>"


class Simulator:
    """The event loop.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, lambda: fired.append(sim.now))
    >>> sim.run()
    1
    >>> fired
    [100]
    """

    __slots__ = ("now", "_heap", "_seq", "_running", "events_executed", "heap_hwm")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: List[Event] = []
        self._seq: int = 0
        self._running = False
        #: lifetime count of executed (non-cancelled) events — profiling
        self.events_executed: int = 0
        #: high-water mark of the pending-event heap (cancelled included)
        self.heap_hwm: int = 0

    # -- scheduling -----------------------------------------------------

    def schedule(self, delay_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` to run ``delay_ns`` nanoseconds from now."""
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, fn)

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> Event:
        """Schedule ``fn`` at absolute time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} before now ({self.now})"
            )
        self._seq += 1
        ev = Event(time_ns, self._seq, fn)
        heapq.heappush(self._heap, ev)
        if len(self._heap) > self.heap_hwm:
            self.heap_hwm = len(self._heap)
        return ev

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Stops when the heap is empty, when the next event is later than
        ``until``, or after ``max_events`` events.  The clock is advanced
        to ``until`` only when no event remains at or before it — if the
        run stopped on ``max_events`` with earlier events still pending,
        the clock stays put so the next ``run()``/``step()`` never moves
        time backwards.  Returns the number of events executed.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        self._running = True
        try:
            while heap:
                ev = heap[0]
                if until is not None and ev.time > until:
                    break
                pop(heap)
                if ev.cancelled:
                    continue
                self.now = ev.time
                ev.fn()
                executed += 1
                if max_events is not None and executed >= max_events:
                    break
        finally:
            self._running = False
            self.events_executed += executed
        if until is not None and self.now < until:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                self.now = until
        return executed

    def step(self) -> bool:
        """Execute the single next (non-cancelled) event.

        Returns ``False`` when no event remains.
        """
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                continue
            self.now = ev.time
            ev.fn()
            self.events_executed += 1
            return True
        return False

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return heap[0].time if heap else None

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled.

        Cancelled events linger in the heap until popped (cancellation is
        lazy), so this compacts cancelled heads and skips cancelled
        entries when counting — callers polling "is the sim idle?" must
        not see phantom work.  O(n) in heap size; for a boolean check
        prefer :attr:`idle`.
        """
        heap = self._heap
        while heap and heap[0].cancelled:
            heapq.heappop(heap)
        return sum(1 for ev in heap if not ev.cancelled)

    @property
    def idle(self) -> bool:
        """True when no live event remains — nothing can ever fire again."""
        return self.peek_time() is None
