"""A small, fast discrete-event engine with pluggable event queues.

A scheduled callback is stored as a plain ``(time, seq, fn)`` tuple (or
``(time, seq, fn, arg)`` for the argument-carrying fast path), so every
ordering comparison runs on machine integers in C — no ``Event`` object
is allocated and no Python-level ``__lt__`` ever runs.  Events at the
same timestamp fire in scheduling order (the monotonically increasing
``seq`` breaks ties, and because it is unique the comparison never
reaches the callback slot, which is why mixed 3- and 4-tuples can share
one structure).

The future-event list itself is a pluggable backend from
:mod:`repro.sim.equeue`: the default binary heap, a ladder/calendar
queue, or a hierarchical timer wheel — all guaranteed to dispatch in the
exact same ``(time, seq)`` total order, so the choice is purely a
performance knob (``Simulator(equeue="ladder")``).  When the default
heap is selected the engine keeps its historical *inlined* dispatch and
push paths over the raw heap list, so the default costs nothing over the
pre-backend engine; other backends supply their own
:meth:`~repro.sim.equeue.base.EventQueue.run_loop`.

Cancellation is handle-based and (by default) lazy: ``schedule`` returns
the pushed tuple as an opaque handle, and :meth:`Simulator.cancel` first
offers the entry to the backend — the timer wheel removes it physically
in O(1) — falling back to a side set of cancelled sequence numbers that
the run loop consults (and drains) when the entry surfaces.  The common
case — no cancellation outstanding — costs one truthiness check per
event.

Design notes
------------
* Time is an **integer nanosecond** count (see :mod:`repro.units`), so there
  are no floating-point ordering surprises and runs are bit-reproducible.
* Callbacks receive no arguments; closures, ``functools.partial`` or the
  ``schedule_call`` fast path bind whatever state they need.
* The engine knows nothing about packets or networks; everything above it
  (links, queues, transports) is built from ``schedule`` calls.
"""

from __future__ import annotations

import gc
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Set,
    Tuple,
)

from bisect import insort

from repro.sim.equeue import EQueueSpec, EventQueue, make_equeue
from repro.sim.equeue.heap import HeapEventQueue, heappop, heappush
from repro.sim.equeue.ladder import LadderEventQueue

#: The opaque handle returned by ``schedule``/``schedule_at``/``schedule_call``
#: — the queue entry itself.  ``handle[0]`` is the absolute fire time (ns);
#: treat everything else as private and pass the handle to
#: :meth:`Simulator.cancel` to cancel it.
EventHandle = Tuple[Any, ...]

#: "no bound" sentinel for run(): beyond any reachable time or event count
#: (~292 years of simulated nanoseconds), while keeping the per-event stop
#: comparisons int-vs-int
_NEVER = 2**63 - 1


class Simulator:
    """The event loop.

    ``equeue`` selects the future-event-list backend: a name from
    :data:`repro.sim.equeue.BACKENDS` (``"heap"``, ``"ladder"``,
    ``"wheel"``), ``"auto"``, a pre-built
    :class:`~repro.sim.equeue.base.EventQueue` instance, or ``None`` for
    the default heap.

    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.schedule(100, lambda: fired.append(sim.now))
    >>> sim.run()
    1
    >>> fired
    [100]
    """

    __slots__ = (
        "now",
        # hot entry points, bound per instance by _bind_hot_paths():
        # each simulator carries callables specialized to its backend,
        # so the per-call backend dispatch (heap? ladder? generic?) is
        # paid once at construction instead of on every schedule/cancel
        "schedule",
        "schedule_call",
        "schedule_tx",
        "schedule_tx_train",
        "cancel",
        "_equeue",
        "_eq_push",
        "_eq_cancel",
        "_heap",
        "_ladder",
        "_seq",
        "_cancelled",
        "_running",
        "events_executed",
        "heap_hwm",
        "batch",
        "_run_bound",
        "_drain_left",
        "_inline_ct",
        "_floor_cache",
        "runs_drained",
        "run_hist",
        "trains",
        "train_pkts",
        "train_hist",
        "train_fallbacks",
        "_san",
    )

    def __init__(
        self,
        equeue: EQueueSpec = None,
        batch: bool = True,
        sanitize: Optional[bool] = None,
    ) -> None:
        self.now: int = 0
        self._seq: int = 0
        #: seqs of entries cancelled but not physically removed (lazy deletion)
        self._cancelled: Set[int] = set()
        eq = make_equeue(equeue)
        #: the runtime sanitizer (repro.sanitize.Sanitizer) when armed —
        #: ``sanitize=None`` defers to the REPRO_SANITIZE env switch, so
        #: an unmodified test suite can run fully sanitized.  Arming wraps
        #: the backend *before* the specialization probes below: the
        #: wrapped queue is neither a raw heap nor a ladder, so every
        #: schedule/pop/drain routes through the checked generic paths.
        self._san = None
        if sanitize is None:
            from repro.sanitize import env_enabled

            sanitize = env_enabled()
        if sanitize:
            from repro.sanitize import Sanitizer, SanitizingEventQueue

            san = Sanitizer(sim=self)
            san.attach_freelist()
            eq = SanitizingEventQueue(eq, san)
            self._san = san
        self._equeue: EventQueue = eq
        eq.attach(self._cancelled)
        #: bound push — single-attribute hot path for non-heap backends
        self._eq_push: Callable[[EventHandle], int] = eq.push
        #: bound cancel for backends with physical removal, else ``None``
        #: (saves a guaranteed-False Python call per lazy cancellation)
        self._eq_cancel: Optional[Callable[[EventHandle], bool]] = (
            eq.cancel if eq.physical_cancel else None
        )
        #: the raw heap list when the default backend is active (the
        #: inlined fast paths below key off this), else ``None``
        self._heap: Optional[List[EventHandle]] = (
            eq.entries if isinstance(eq, HeapEventQueue) else None
        )
        #: the ladder, when active — its bucket routing is cheap enough
        #: that the per-push method call would dominate it, so the
        #: schedule methods inline it exactly like the heap's heappush
        self._ladder: Optional[LadderEventQueue] = (
            eq if isinstance(eq, LadderEventQueue) else None
        )
        self._running = False
        #: lifetime count of executed (non-cancelled) events — profiling
        self.events_executed: int = 0
        #: high-water mark of the pending-event pool (cancelled included)
        self.heap_hwm: int = 0
        #: batched hot path: same-timestamp run draining in the dispatch
        #: loop plus inline transmit trains via :meth:`schedule_tx_train`.
        #: ``False`` restores the per-event dispatch loop and makes
        #: ``schedule_tx_train`` an alias for ``schedule_tx`` — the
        #: ``--no-batch`` A/B escape hatch.  Both modes are bit-identical.
        self.batch: bool = batch
        #: inclusive ``until`` bound of the run() call in progress when
        #: batching, else -1 — inline train steps may never advance the
        #: clock past it (that would break the run(until=...) contract)
        self._run_bound: int = -1
        #: events of the current drained-run snapshot still undispatched
        #: (generic backend path only; native loops keep entries queue-
        #: visible, so this stays 0).  Non-zero blocks inline train steps:
        #: a snapshot entry is invisible to the queue floor probe.
        self._drain_left: int = 0
        #: inline train steps executed by the run() call in progress;
        #: folded into its return value and ``events_executed``
        self._inline_ct: int = 0
        #: denied-train memo: the queue floor observed by the last train
        #: probe that denied an inline step.  While ``now`` has not
        #: reached it, that event is still pending (lazy-tombstone
        #: backends never remove entries early), so any train tick at or
        #: after it can be denied without re-probing the queue.  Denials
        #: are always safe — the fallback path is the per-frame engine —
        #: so a stale-low memo costs speed, never correctness.  -1 (past)
        #: means no valid memo.
        self._floor_cache: int = -1
        # -- batch counters (profiling; zero when batch is off) ---------
        #: same-timestamp runs dispatched by the batched loops
        self.runs_drained: int = 0
        #: run-length histogram: index = bit_length(run_len), capped
        self.run_hist: List[int] = [0] * 18
        #: transmit trains: port done-tick anchors that ran at least one
        #: serializer tick inline
        self.trains: int = 0
        #: frames carried by those trains (>= trains)
        self.train_pkts: int = 0
        #: train-length histogram: index = bit_length(train_len), capped
        self.train_hist: List[int] = [0] * 18
        #: inline train steps denied because a competing event at or
        #: before the serializer-done tick could not be ruled out (each
        #: denial schedules the pair normally and ends any live train)
        self.train_fallbacks: int = 0
        self._bind_hot_paths()

    def _bind_hot_paths(self) -> None:
        """Bind the hot entry points, specialized to the active backend.

        The names are instance slots (see ``__slots__``): the default
        heap backend gets closures over the raw entry list, so every
        ``schedule``/``schedule_tx`` call skips the backend dispatch and
        the ``self._heap`` indirection the generic bodies pay; other
        backends bind the generic ``_*_any`` methods.  A subclass that
        defines any of these names as a real method (the partitioned
        engine's composite-key schedule family) shadows the slot — the
        bind raises ``AttributeError`` for that name and is skipped, so
        the method stays in charge.
        """
        heap = self._heap
        if heap is None:
            schedule = self._schedule_any
            schedule_call = self._schedule_call_any
            schedule_tx = self._schedule_tx_any
            schedule_tx_train = self._schedule_tx_train_any
        else:
            sim = self
            push = heappush

            def schedule(
                delay_ns: int, fn: Callable[[], None]
            ) -> EventHandle:
                """Schedule ``fn`` in ``delay_ns`` ns (heap fast path)."""
                if delay_ns < 0:
                    raise ValueError(
                        f"cannot schedule in the past (delay={delay_ns})"
                    )
                sim._seq = seq = sim._seq + 1
                entry = (sim.now + delay_ns, seq, fn)
                push(heap, entry)
                n = len(heap)
                if n > sim.heap_hwm:
                    sim.heap_hwm = n
                return entry

            def schedule_call(
                delay_ns: int, fn: Callable[[Any], None], arg: Any
            ) -> EventHandle:
                """Schedule ``fn(arg)`` in ``delay_ns`` ns (heap fast path)."""
                sim._seq = seq = sim._seq + 1
                entry = (sim.now + delay_ns, seq, fn, arg)
                push(heap, entry)
                n = len(heap)
                if n > sim.heap_hwm:
                    sim.heap_hwm = n
                return entry

            def schedule_tx(
                tx_ns: int,
                done_fn: Callable[[], None],
                rx_ns: int,
                rx_fn: Callable[[Any], None],
                pkt: Any,
            ) -> None:
                """Schedule a transmit pair: done tick then delivery."""
                seq = sim._seq + 1
                sim._seq = seq + 1
                now = sim.now
                push(heap, (now + tx_ns, seq, done_fn))
                push(heap, (now + rx_ns, seq + 1, rx_fn, pkt))
                n = len(heap)
                if n > sim.heap_hwm:
                    sim.heap_hwm = n

            def schedule_tx_train(
                tx_ns: int,
                done_fn: Callable[[], None],
                rx_ns: int,
                rx_fn: Callable[[Any], None],
                pkt: Any,
            ) -> bool:
                """Transmit pair with the inline-train fast path.

                See :meth:`Simulator._schedule_tx_train_any` for the
                proof obligations; this is its heap specialization with
                the fallback pair-push inlined.  The denied-floor memo
                of the generic body is deliberately absent here: the
                heap's floor probe is one list index, cheaper than the
                memo compare is worth.
                """
                now = sim.now
                t_next = now + tx_ns
                if (
                    t_next <= sim._run_bound
                    and not sim._drain_left
                    and (heap[0][0] if heap else _NEVER) > t_next
                ):
                    sim._seq = seq = sim._seq + 2
                    push(heap, (now + rx_ns, seq, rx_fn, pkt))
                    n = len(heap)
                    if n > sim.heap_hwm:
                        sim.heap_hwm = n
                    sim.now = t_next
                    sim._inline_ct += 1
                    return True
                seq = sim._seq + 1
                sim._seq = seq + 1
                push(heap, (t_next, seq, done_fn))
                push(heap, (now + rx_ns, seq + 1, rx_fn, pkt))
                n = len(heap)
                if n > sim.heap_hwm:
                    sim.heap_hwm = n
                return False

        if self._eq_cancel is not None:
            cancel = self._cancel_any
        else:
            cancelled_add = self._cancelled.add

            def cancel(handle: EventHandle) -> None:
                """Cancel a scheduled event (lazy tombstone path)."""
                cancelled_add(handle[1])

        for name, fn in (
            ("schedule", schedule),
            ("schedule_call", schedule_call),
            ("schedule_tx", schedule_tx),
            ("schedule_tx_train", schedule_tx_train),
            ("cancel", cancel),
        ):
            try:
                setattr(self, name, fn)
            except AttributeError:
                # shadowed by a subclass method — keep the method
                pass

    # -- scheduling -----------------------------------------------------
    #
    # ``schedule`` / ``schedule_call`` / ``schedule_tx`` /
    # ``schedule_tx_train`` / ``cancel`` are instance slots bound by
    # :meth:`_bind_hot_paths`: the default heap backend gets closures
    # over the raw entry list, every other backend gets the ``_*_any``
    # methods below (whose bodies keep the historical three-way backend
    # dispatch).  Subclasses that define these names as real methods —
    # the partitioned engine overrides the schedule family for composite
    # sequence keys — shadow the slot and keep their methods.

    def _schedule_any(self, delay_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` to run ``delay_ns`` nanoseconds from now.

        Returns a handle usable with :meth:`cancel`.
        """
        if delay_ns < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay_ns})")
        self._seq = seq = self._seq + 1
        entry = (self.now + delay_ns, seq, fn)
        heap = self._heap
        if heap is not None:
            heappush(heap, entry)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                n = self._eq_push(entry)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push, cheapest case first: a
                # due-now entry bisects straight into the active run with
                # no counter or high-water-mark work (the ladder samples
                # its pool hwm at refill; run() folds it back in)
                b = entry[0] >> lad._shift
                if b <= lad._cur:
                    insort(lad._bottom, entry, lad._bi)
                elif b < lad._limit:
                    lad._ring[b & lad._mask].append(entry)
                    lad._count += 1
                else:
                    lad.push(entry)
        return entry

    def schedule_at(self, time_ns: int, fn: Callable[[], None]) -> EventHandle:
        """Schedule ``fn`` at absolute time ``time_ns``."""
        if time_ns < self.now:
            raise ValueError(
                f"cannot schedule at {time_ns} before now ({self.now})"
            )
        self._seq = seq = self._seq + 1
        entry = (time_ns, seq, fn)
        heap = self._heap
        if heap is not None:
            heappush(heap, entry)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                n = self._eq_push(entry)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push, cheapest case first: a
                # due-now entry bisects straight into the active run with
                # no counter or high-water-mark work (the ladder samples
                # its pool hwm at refill; run() folds it back in)
                b = entry[0] >> lad._shift
                if b <= lad._cur:
                    insort(lad._bottom, entry, lad._bi)
                elif b < lad._limit:
                    lad._ring[b & lad._mask].append(entry)
                    lad._count += 1
                else:
                    lad.push(entry)
        return entry

    def _schedule_call_any(
        self, delay_ns: int, fn: Callable[[Any], None], arg: Any
    ) -> EventHandle:
        """Hot-path scheduling: ``fn(arg)`` in ``delay_ns`` nanoseconds.

        This is the monotonic fast path used by ports and links: the delay
        is trusted to be non-negative (serialization and propagation delays
        are by construction), and the single argument rides in the queue
        entry itself, so no closure or callable wrapper is allocated per
        event.  ``fn`` must accept exactly one positional argument.
        """
        self._seq = seq = self._seq + 1
        entry = (self.now + delay_ns, seq, fn, arg)
        heap = self._heap
        if heap is not None:
            heappush(heap, entry)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                n = self._eq_push(entry)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push, cheapest case first: a
                # due-now entry bisects straight into the active run with
                # no counter or high-water-mark work (the ladder samples
                # its pool hwm at refill; run() folds it back in)
                b = entry[0] >> lad._shift
                if b <= lad._cur:
                    insort(lad._bottom, entry, lad._bi)
                elif b < lad._limit:
                    lad._ring[b & lad._mask].append(entry)
                    lad._count += 1
                else:
                    lad.push(entry)
        return entry

    def _schedule_tx_any(
        self,
        tx_ns: int,
        done_fn: Callable[[], None],
        rx_ns: int,
        rx_fn: Callable[[Any], None],
        pkt: Any,
    ) -> None:
        """Hot-path scheduling of a transmit pair.

        Every transmitted packet schedules exactly two events — the
        serializer-done tick at ``tx_ns`` and the propagated delivery
        ``rx_fn(pkt)`` at ``rx_ns`` — so one call covers both, paying the
        call and queue-routing prologue once.  Delays are trusted to be
        non-negative and ``rx_ns >= tx_ns``; no handles are returned
        (ports never cancel these).  The done tick takes the lower seq,
        exactly as two back-to-back ``schedule``/``schedule_call`` calls
        would order it.
        """
        seq = self._seq + 1
        self._seq = seq + 1
        now = self.now
        e1 = (now + tx_ns, seq, done_fn)
        e2 = (now + rx_ns, seq + 1, rx_fn, pkt)
        heap = self._heap
        if heap is not None:
            heappush(heap, e1)
            heappush(heap, e2)
            n = len(heap)
            if n > self.heap_hwm:
                self.heap_hwm = n
        else:
            lad = self._ladder
            if lad is None:
                self._eq_push(e1)
                n = self._eq_push(e2)
                if n > self.heap_hwm:
                    self.heap_hwm = n
            else:
                # inlined LadderEventQueue.push twice (see schedule_call)
                shift = lad._shift
                cur = lad._cur
                limit = lad._limit
                b = e1[0] >> shift
                if b <= cur:
                    insort(lad._bottom, e1, lad._bi)
                elif b < limit:
                    lad._ring[b & lad._mask].append(e1)
                    lad._count += 1
                else:
                    lad.push(e1)
                b = e2[0] >> shift
                if b <= cur:
                    insort(lad._bottom, e2, lad._bi)
                elif b < limit:
                    lad._ring[b & lad._mask].append(e2)
                    lad._count += 1
                else:
                    lad.push(e2)

    def _schedule_tx_train_any(
        self,
        tx_ns: int,
        done_fn: Callable[[], None],
        rx_ns: int,
        rx_fn: Callable[[Any], None],
        pkt: Any,
    ) -> bool:
        """Transmit-pair scheduling with an inline fast path for trains.

        Semantically identical to :meth:`schedule_tx`, but when the
        engine can *prove* that nothing else fires at or before the
        serializer-done tick — the queue's floor is strictly later, the
        tick is inside the current ``run(until=...)`` bound, and no
        drained-run snapshot is mid-dispatch — the tick is executed
        inline instead of round-tripping through the event queue: the
        sequence number the done event would have consumed is burned (so
        the delivery event, and every later event in the simulation,
        gets the exact ``(time, seq)`` tuple the per-frame path would
        have produced), the delivery is pushed, and the clock advances
        to the tick.  Returns ``True`` in that case — the caller (the
        port's transmit train) loops and transmits the next frame
        directly, skipping one full dispatch round-trip per frame.

        Returns ``False`` when the proof fails; the pair has then been
        scheduled exactly as :meth:`schedule_tx` would, and ``done_fn``
        will fire through the normal loop.  Because the inline path
        advances the clock only when no other event could observe the
        intermediate states, both outcomes are bit-identical to the
        per-frame engine — pinned by the golden digests and the
        batched-vs-unbatched fuzz.

        A denial memoizes the floor it observed in ``_floor_cache``:
        train ticks attempted at or before that time which also reach
        past it are denied without re-probing the backend (the floor
        probe is the expensive part of a denial on non-heap backends —
        the timer wheel walks buckets to answer it).  The common hit is
        the handler of the denying event itself: it runs with the clock
        *equal* to the memo and immediately attempts the next train.
        At that instant the memoized event has already fired, so a
        fresh probe might have allowed the step — the memo trades those
        (rare, ~2% of attempts at the memoized timestamp) inline wins
        for skipping the probe on the ~98% denial traffic.  Results are
        bit-identical either way: a denial takes exactly the per-frame
        path; only the ``trains``/``train_pkts`` observability counters
        and wall time can move.
        """
        now = self.now
        t_next = now + tx_ns
        if now <= self._floor_cache <= t_next:
            self.schedule_tx(tx_ns, done_fn, rx_ns, rx_fn, pkt)
            return False
        if t_next <= self._run_bound and not self._drain_left:
            heap = self._heap
            lad = self._ladder
            # non-mutating lower bound on the next pending event's time;
            # tombstoned heads only make it conservative (a denied inline
            # falls back to the per-frame path, never a wrong one)
            if heap is not None:
                floor = heap[0][0] if heap else _NEVER
            elif lad is not None:
                bottom = lad._bottom
                bi = lad._bi
                if bi < len(bottom):
                    floor = bottom[bi][0]
                elif lad._count:
                    floor = (lad._cur + 1) << lad._shift
                else:
                    floor = _NEVER
            else:
                floor = self._equeue.peek_floor()
            if floor > t_next:
                self._seq = seq = self._seq + 2
                entry = (self.now + rx_ns, seq, rx_fn, pkt)
                if heap is not None:
                    heappush(heap, entry)
                    n = len(heap)
                    if n > self.heap_hwm:
                        self.heap_hwm = n
                elif lad is not None:
                    # inlined LadderEventQueue.push (see schedule_call)
                    b = entry[0] >> lad._shift
                    if b <= lad._cur:
                        insort(lad._bottom, entry, lad._bi)
                    elif b < lad._limit:
                        lad._ring[b & lad._mask].append(entry)
                        lad._count += 1
                    else:
                        lad.push(entry)
                else:
                    n = self._eq_push(entry)
                    if n > self.heap_hwm:
                        self.heap_hwm = n
                self.now = t_next
                self._inline_ct += 1
                return True
            self._floor_cache = floor
        self.schedule_tx(tx_ns, done_fn, rx_ns, rx_fn, pkt)
        return False

    def schedule_many(
        self, items: Iterable[Tuple[int, Callable[[], None]]]
    ) -> None:
        """Batch-schedule ``(delay_ns, fn)`` pairs in one call.

        Amortizes attribute lookups and the high-water-mark update across
        the batch; no handles are returned, so batched events cannot be
        cancelled.  Delays are trusted to be non-negative.
        """
        now = self.now
        seq = self._seq
        heap = self._heap
        if heap is not None:
            push = heappush
            for delay_ns, fn in items:
                seq += 1
                push(heap, (now + delay_ns, seq, fn))
            n = len(heap)
        else:
            eq_push = self._eq_push
            n = 0
            for delay_ns, fn in items:
                seq += 1
                n = eq_push((now + delay_ns, seq, fn))
        self._seq = seq
        if n > self.heap_hwm:
            self.heap_hwm = n

    def _cancel_any(self, handle: EventHandle) -> None:
        """Cancel a scheduled event.

        The backend gets first refusal — the timer wheel removes the
        entry physically in O(1); every other backend declines, and the
        sequence number goes into the lazy side set that dispatch skips
        (and drains) when the entry surfaces.  Cancelling an event that
        has already fired is a harmless no-op in practice — the stale
        sequence number simply sits in the side set — but callers should
        not rely on that as a pattern.
        """
        cancel = self._eq_cancel
        if cancel is None or not cancel(handle):
            self._cancelled.add(handle[1])

    # -- execution ------------------------------------------------------

    def run(self, until: Optional[int] = None, max_events: Optional[int] = None) -> int:
        """Run events in order.

        Stops when the queue is empty, when the next event is later than
        ``until``, or after ``max_events`` events.  Returns the number of
        events executed.

        Boundary contract (pinned by ``tests/test_run_boundaries.py`` on
        every backend):

        * ``until`` is **inclusive**: an event whose timestamp exactly
          equals ``until`` executes in this call; the first event strictly
          later stays queued.
        * The clock is advanced to ``until`` only when no event remains at
          or before it — if the run stopped on ``max_events`` with such
          events still pending, the clock stays put (at the last executed
          event's time) so the next ``run()``/``step()`` never moves time
          backwards, and a later ``run(until=...)`` call resumes exactly
          where the budget cut in.
        * ``max_events`` counts engine-dispatched (non-cancelled) events
          only, and the run stops *after* the event that exhausts the
          budget.  Inline transmit-train steps (see
          :meth:`schedule_tx_train`) ride inside their anchor event's
          dispatch: they are included in the return value and in
          ``events_executed``, but a budget check cannot cut a train
          mid-flight any more than it could interrupt a callback.
        """
        heap = self._heap
        cancelled = self._cancelled
        # hoist the stop conditions out of the loop: compare against
        # integer sentinels instead of re-testing `is not None` (or
        # paying an int/float comparison) per event
        until_bound = _NEVER if until is None else until
        budget = _NEVER if max_events is None else max_events
        executed = 0
        batch = self.batch
        if batch:
            # inline train steps may advance the clock up to (and
            # including) this bound without breaking the until contract
            self._run_bound = until_bound
        self._inline_ct = 0
        self._running = True
        # Pause the cyclic collector for the duration of the loop: the
        # hot path allocates nothing but short-lived event tuples and
        # freelisted packets — all acyclic, reclaimed by refcounting the
        # moment they are dropped — so generation-0 passes triggered by
        # that churn only scan for cycles that never exist.  Cyclic
        # garbage created by callbacks keeps accumulating until the
        # collector resumes below, which bounds the drift to one run call.
        # The disable itself sits inside the try: the matching gc.enable()
        # in the finally block must run even when a callback raises (or an
        # async exception lands between the disable and the loop), or the
        # process is left with the cyclic collector permanently off.
        gc_was_enabled = False
        try:
            gc_was_enabled = gc.isenabled()
            if gc_was_enabled:
                gc.disable()
            if heap is not None and batch:
                # batched dispatch: pop-first with a same-timestamp fast
                # path.  Every event of a run after the first skips the
                # until comparison and the clock store, and popping
                # before the tombstone check saves the separate heap[0]
                # peek the legacy loop paid per event (tombstones
                # included).  Entries stay queue-visible until popped
                # one at a time, so callbacks — and the train floor
                # probe — always see a truthful queue.  Singleton runs
                # (the overwhelming majority in timer-churn workloads)
                # fold into one counter at the boundary; the histogram
                # write happens only for multi-event runs.
                pop = heappop
                time = -1
                hist = self.run_hist
                # Run accounting rides the *rare* path only: a singleton
                # run (the overwhelming majority in timer-churn
                # workloads) pays two predictable compares and nothing
                # else; `mlen` tracks the multi-event run in progress
                # (0 = none) and `multi` the events those runs carried,
                # so singles fall out as `executed - multi` at the end.
                mlen = 0
                multi = 0
                runs = 0
                if until_bound == _NEVER and budget == _NEVER:
                    # free-running run() (no until, no max_events): the
                    # per-event budget compare and per-run until compare
                    # drop out of the loop entirely, and the empty check
                    # rides on heappop's IndexError (free until it fires
                    # once, at the end) instead of a per-event truthiness
                    # test
                    while True:
                        try:
                            entry = pop(heap)
                        except IndexError:
                            break
                        if cancelled and entry[1] in cancelled:
                            # tombstones never advance the clock or
                            # close a run
                            cancelled.discard(entry[1])
                            continue
                        t = entry[0]
                        if t != time:
                            if mlen:
                                runs += 1
                                multi += mlen
                                b = mlen.bit_length()
                                hist[b if b < 17 else 17] += 1
                                mlen = 0
                            self.now = time = t
                        else:
                            mlen = mlen + 1 if mlen else 2
                        if len(entry) == 3:
                            entry[2]()
                        else:
                            entry[2](entry[3])
                        executed += 1
                else:
                    while True:
                        try:
                            entry = pop(heap)
                        except IndexError:
                            break
                        if cancelled and entry[1] in cancelled:
                            # tombstones never advance the clock or close
                            # a run — dropping one past `until` here
                            # (instead of leaving it queued like the
                            # peek-first loop would) is pure compaction,
                            # the same the legacy engine performs in
                            # peek_time()
                            cancelled.discard(entry[1])
                            continue
                        t = entry[0]
                        if t != time:
                            if t > until_bound:
                                heappush(heap, entry)
                                break
                            if mlen:
                                runs += 1
                                multi += mlen
                                b = mlen.bit_length()
                                hist[b if b < 17 else 17] += 1
                                mlen = 0
                            self.now = time = t
                        else:
                            mlen = mlen + 1 if mlen else 2
                        if len(entry) == 3:
                            entry[2]()
                        else:
                            entry[2](entry[3])
                        executed += 1
                        if executed >= budget:
                            break
                if mlen:
                    runs += 1
                    multi += mlen
                    b = mlen.bit_length()
                    hist[b if b < 17 else 17] += 1
                singles = executed - multi
                hist[1] += singles
                self.runs_drained += runs + singles
            elif heap is not None:
                pop = heappop
                while heap:
                    entry = heap[0]
                    time = entry[0]
                    if time > until_bound:
                        break
                    pop(heap)
                    if cancelled and entry[1] in cancelled:
                        cancelled.discard(entry[1])
                        continue
                    self.now = time
                    if len(entry) == 3:
                        entry[2]()
                    else:
                        entry[2](entry[3])
                    executed += 1
                    if executed >= budget:
                        break
            else:
                executed = self._equeue.run_loop(
                    self, until_bound, budget, cancelled
                )
        finally:
            self._running = False
            self._run_bound = -1
            self._drain_left = 0
            executed += self._inline_ct
            self._inline_ct = 0
            self.events_executed += executed
            lad = self._ladder
            if lad is not None and lad._hwm > self.heap_hwm:
                self.heap_hwm = lad._hwm
            if gc_was_enabled:
                gc.enable()
        if until is not None and self.now < until:
            nxt = self.peek_time()
            if nxt is None or nxt > until:
                self.now = until
        return executed

    def step(self) -> bool:
        """Execute the single next (non-cancelled) event.

        Returns ``False`` when no event remains.
        """
        heap = self._heap
        cancelled = self._cancelled
        if heap is not None:
            while heap:
                entry = heappop(heap)
                if cancelled and entry[1] in cancelled:
                    cancelled.discard(entry[1])
                    continue
                self.now = entry[0]
                if len(entry) == 3:
                    entry[2]()
                else:
                    entry[2](entry[3])
                self.events_executed += 1
                return True
            return False
        eq_pop = self._equeue.pop
        while True:
            popped = eq_pop()
            if popped is None:
                return False
            if cancelled and popped[1] in cancelled:
                cancelled.discard(popped[1])
                continue
            self.now = popped[0]
            if len(popped) == 3:
                popped[2]()
            else:
                popped[2](popped[3])
            self.events_executed += 1
            return True

    def peek_time(self) -> Optional[int]:
        """Timestamp of the next pending event, or ``None`` if idle.

        Compacts cancelled entries off the queue head as a side effect
        (the lazy-deletion mechanic); the answer is unaffected, and the
        high-water mark can only have been set at push time, so profiling
        counters are not perturbed.
        """
        heap = self._heap
        cancelled = self._cancelled
        if heap is not None:
            while heap and cancelled and heap[0][1] in cancelled:
                cancelled.discard(heap[0][1])
                heappop(heap)
            return heap[0][0] if heap else None
        eq = self._equeue
        while True:
            entry = eq.peek()
            if entry is None:
                return None
            if cancelled and entry[1] in cancelled:
                cancelled.discard(entry[1])
                eq.pop()
                continue
            return entry[0]

    # -- introspection --------------------------------------------------

    @property
    def equeue_name(self) -> str:
        """The active event-queue backend's registry name."""
        return self._equeue.name

    def equeue_stats(self) -> Dict[str, int]:
        """The backend's structure counters (see ``EventQueue.stats``)."""
        return self._equeue.stats()

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) events still scheduled.

        Purely a read: unlike :meth:`peek_time`, this never compacts the
        queue, so profiling or debugging reads cannot perturb engine
        state.  Lazily-cancelled events linger until popped and are
        excluded from the count.  O(n) in queue size; for a boolean
        check prefer :attr:`idle`.
        """
        cancelled = self._cancelled
        eq = self._equeue
        if not cancelled:
            return len(eq)
        return sum(1 for entry in eq if entry[1] not in cancelled)

    @property
    def idle(self) -> bool:
        """True when no live event remains — nothing can ever fire again."""
        return self.peek_time() is None
