"""Deterministic random-number streams.

Every experiment owns a single :class:`RngFactory` seeded once.  Components
(the flow generator, ECMP hashing salt, per-service workload samplers, ...)
ask the factory for an independent named stream, so adding a new consumer of
randomness never perturbs the draws seen by existing ones.  This is what
makes A/B comparisons between AQM schemes use identical workloads.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict


class RngFactory:
    """Hands out independent, reproducible ``random.Random`` streams.

    >>> f1, f2 = RngFactory(7), RngFactory(7)
    >>> f1.stream("flows").random() == f2.stream("flows").random()
    True
    >>> f1.stream("flows") is f1.stream("flows")
    True
    """

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use."""
        rng = self._streams.get(name)
        if rng is None:
            digest = hashlib.sha256(f"{self.seed}:{name}".encode()).digest()
            rng = random.Random(int.from_bytes(digest[:8], "big"))
            self._streams[name] = rng
        return rng
