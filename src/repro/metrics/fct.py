"""Flow-completion-time statistics, binned the way the paper reports them.

The evaluation reports, per scheme and load: average FCT over all flows,
average and 99th-percentile FCT for *small* flows (0, 100 KB], and average
FCT for *large* flows (10 MB, inf); results are normalized to TCN's.  This
module reproduces exactly those statistics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.transport.flow import Flow
from repro.units import KB, MB

SMALL_MAX_BYTES = 100 * KB
LARGE_MIN_BYTES = 10 * MB


def percentile(values: List[int], p: float) -> float:
    """Nearest-rank percentile (``p`` in [0, 100]) of a non-empty list."""
    if not values:
        raise ValueError("percentile of empty list")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0,100], got {p}")
    ordered = sorted(values)
    if p == 0:
        return float(ordered[0])
    rank = max(1, -(-int(p * len(ordered)) // 100))  # ceil(p/100 * n)
    rank = min(rank, len(ordered))
    return float(ordered[rank - 1])


class FctSummary:
    """The paper's four headline numbers (ns), plus counts."""

    __slots__ = (
        "n_flows",
        "avg_all_ns",
        "avg_small_ns",
        "p99_small_ns",
        "avg_medium_ns",
        "avg_large_ns",
        "n_small",
        "n_medium",
        "n_large",
    )

    def __init__(
        self,
        n_flows: int,
        avg_all_ns: float,
        avg_small_ns: Optional[float],
        p99_small_ns: Optional[float],
        avg_medium_ns: Optional[float],
        avg_large_ns: Optional[float],
        n_small: int,
        n_medium: int,
        n_large: int,
    ) -> None:
        self.n_flows = n_flows
        self.avg_all_ns = avg_all_ns
        self.avg_small_ns = avg_small_ns
        self.p99_small_ns = p99_small_ns
        self.avg_medium_ns = avg_medium_ns
        self.avg_large_ns = avg_large_ns
        self.n_small = n_small
        self.n_medium = n_medium
        self.n_large = n_large

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        us = 1000.0
        small = f"{self.avg_small_ns / us:.0f}" if self.avg_small_ns else "-"
        return (
            f"<FctSummary n={self.n_flows} avg={self.avg_all_ns / us:.0f}us "
            f"small_avg={small}us>"
        )


class FctCollector:
    """Accumulates completed flows; ``on_complete`` plugs into receivers."""

    def __init__(self) -> None:
        self.flows: List[Flow] = []

    def on_complete(self, flow: Flow) -> None:
        self.flows.append(flow)

    @property
    def count(self) -> int:
        return len(self.flows)

    def summarize(
        self,
        small_max: int = SMALL_MAX_BYTES,
        large_min: int = LARGE_MIN_BYTES,
    ) -> FctSummary:
        """Compute the paper's FCT statistics over completed flows."""
        if not self.flows:
            raise ValueError("no completed flows to summarize")
        all_fcts = [f.fct_ns for f in self.flows]
        small = [f.fct_ns for f in self.flows if f.size_bytes <= small_max]
        large = [f.fct_ns for f in self.flows if f.size_bytes > large_min]
        medium = [
            f.fct_ns
            for f in self.flows
            if small_max < f.size_bytes <= large_min
        ]
        return FctSummary(
            n_flows=len(all_fcts),
            avg_all_ns=_mean(all_fcts),
            avg_small_ns=_mean(small) if small else None,
            p99_small_ns=percentile(small, 99.0) if small else None,
            avg_medium_ns=_mean(medium) if medium else None,
            avg_large_ns=_mean(large) if large else None,
            n_small=len(small),
            n_medium=len(medium),
            n_large=len(large),
        )


def _mean(values: Iterable[int]) -> float:
    values = list(values)
    return sum(values) / len(values)


def normalized(
    summaries: Dict[str, FctSummary], baseline: str, field: str
) -> Dict[str, Optional[float]]:
    """Each scheme's ``field`` divided by the baseline scheme's (the paper
    normalizes all FCT plots to TCN = 1.0)."""
    base = getattr(summaries[baseline], field)
    out: Dict[str, Optional[float]] = {}
    for name, summary in summaries.items():
        value = getattr(summary, field)
        if value is None or base is None or base == 0:
            out[name] = None
        else:
            out[name] = value / base
    return out
