"""Time-series instrumentation: goodput curves and buffer occupancy traces.

* :class:`GoodputTracker` records application bytes delivered per key
  (service, queue, host...) and bins them into rate curves — the data
  behind Fig. 1 and Fig. 5a.
* :class:`OccupancySampler` snapshots a port's buffered bytes on every
  enqueue/dequeue (event-driven, via the port's ``occupancy_tracker`` hook)
  or on a fixed period — the data behind Fig. 3.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.net.port import EgressPort
from repro.sim.engine import Simulator
from repro.units import SEC


class GoodputTracker:
    """Accumulates (time, bytes) deliveries per key."""

    def __init__(self) -> None:
        self._events: Dict[int, List[Tuple[int, int]]] = defaultdict(list)

    def record(self, key: int, nbytes: int, now: int) -> None:
        self._events[key].append((now, nbytes))

    def total_bytes(self, key: int) -> int:
        return sum(b for _, b in self._events[key])

    def goodput_bps(self, key: int, t_from_ns: int, t_to_ns: int) -> float:
        """Average delivery rate for ``key`` over a window."""
        if t_to_ns <= t_from_ns:
            raise ValueError("empty window")
        total = sum(
            b for t, b in self._events[key] if t_from_ns < t <= t_to_ns
        )
        return total * 8 * SEC / (t_to_ns - t_from_ns)

    def series_bps(
        self, key: int, bin_ns: int, t_end_ns: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """Binned rate curve: [(bin_end_time, rate_bps), ...]."""
        events = self._events[key]
        if not events:
            return []
        end = t_end_ns if t_end_ns is not None else max(t for t, _ in events)
        n_bins = -(-end // bin_ns)
        acc = [0] * n_bins
        for t, b in events:
            idx = min((t - 1) // bin_ns, n_bins - 1) if t > 0 else 0
            acc[idx] += b
        return [
            ((i + 1) * bin_ns, acc[i] * 8 * SEC / bin_ns) for i in range(n_bins)
        ]

    def keys(self) -> List[int]:
        return list(self._events)


class OccupancySampler:
    """Traces one port's buffer occupancy over time."""

    def __init__(self, port: EgressPort, event_driven: bool = True) -> None:
        self.port = port
        self.samples: List[Tuple[int, int]] = []
        if event_driven:
            port.occupancy_tracker = self._on_change

    def _on_change(self, now: int, occupancy: int) -> None:
        self.samples.append((now, occupancy))

    def start_periodic(self, sim: Simulator, period_ns: int) -> None:
        """Alternative to event-driven tracing: fixed-period snapshots."""

        def snap() -> None:
            self.samples.append((sim.now, self.port.occupancy))
            sim.schedule(period_ns, snap)

        sim.schedule(period_ns, snap)

    @property
    def peak_bytes(self) -> int:
        return max((occ for _, occ in self.samples), default=0)

    def max_in_window(self, t_from_ns: int, t_to_ns: int) -> int:
        return max(
            (occ for t, occ in self.samples if t_from_ns <= t <= t_to_ns),
            default=0,
        )

    def mean_in_window(self, t_from_ns: int, t_to_ns: int) -> float:
        vals = [occ for t, occ in self.samples if t_from_ns <= t <= t_to_ns]
        return sum(vals) / len(vals) if vals else 0.0
