"""Time-series instrumentation: goodput curves and buffer occupancy traces.

* :class:`GoodputTracker` records application bytes delivered per key
  (service, queue, host...) and bins them into rate curves — the data
  behind Fig. 1 and Fig. 5a.
* :class:`OccupancySampler` snapshots a port's buffered bytes on every
  enqueue/dequeue (event-driven, via the port's ``occupancy_tracker`` hook)
  or on a fixed period — the data behind Fig. 3.

Both record in simulated-time order (the event loop only moves forward),
which the query paths exploit: timestamps and cumulative prefix sums live
in parallel arrays, so a windowed query is two ``bisect`` calls and a
subtraction — O(log n) — instead of a scan over every sample ever taken.
The Fig. 5 benches take hundreds of thousands of samples and query dozens
of windows; per-call scans made the queries rival the simulation itself.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

from repro.net.port import EgressPort
from repro.sim.engine import Simulator
from repro.units import SEC


class _CumSeries:
    """Parallel arrays (time, per-event value, cumulative value)."""

    __slots__ = ("times", "values", "cum")

    def __init__(self) -> None:
        self.times: List[int] = []
        self.values: List[int] = []
        self.cum: List[int] = []

    def append(self, t: int, value: int) -> None:
        self.times.append(t)
        self.values.append(value)
        self.cum.append(value + (self.cum[-1] if self.cum else 0))

    def total(self) -> int:
        return self.cum[-1] if self.cum else 0

    def sum_half_open(self, t_from: int, t_to: int) -> int:
        """Sum of values with timestamp in ``(t_from, t_to]``."""
        lo = bisect_right(self.times, t_from)
        hi = bisect_right(self.times, t_to)
        if hi <= lo:
            return 0
        return self.cum[hi - 1] - (self.cum[lo - 1] if lo else 0)


class GoodputTracker:
    """Accumulates (time, bytes) deliveries per key.

    ``record`` must be called with non-decreasing ``now`` (true for any
    simulation-driven caller); queries are then O(log n) bisects over
    cumulative byte counts.
    """

    def __init__(self) -> None:
        self._events: Dict[int, _CumSeries] = defaultdict(_CumSeries)

    def record(self, key: int, nbytes: int, now: int) -> None:
        self._events[key].append(now, nbytes)

    def total_bytes(self, key: int) -> int:
        return self._events[key].total()

    def goodput_bps(self, key: int, t_from_ns: int, t_to_ns: int) -> float:
        """Average delivery rate for ``key`` over a window."""
        if t_to_ns <= t_from_ns:
            raise ValueError("empty window")
        total = self._events[key].sum_half_open(t_from_ns, t_to_ns)
        return total * 8 * SEC / (t_to_ns - t_from_ns)

    def series_bps(
        self, key: int, bin_ns: int, t_end_ns: Optional[int] = None
    ) -> List[Tuple[int, float]]:
        """Binned rate curve: [(bin_end_time, rate_bps), ...]."""
        series = self._events[key]
        if not series.times:
            return []
        end = t_end_ns if t_end_ns is not None else series.times[-1]
        n_bins = -(-end // bin_ns)
        acc = [0] * n_bins
        for t, b in zip(series.times, series.values):
            idx = min((t - 1) // bin_ns, n_bins - 1) if t > 0 else 0
            acc[idx] += b
        return [
            ((i + 1) * bin_ns, acc[i] * 8 * SEC / bin_ns) for i in range(n_bins)
        ]

    def keys(self) -> List[int]:
        return list(self._events)


class OccupancySampler:
    """Traces one port's buffer occupancy over time.

    Samples arrive in time order, so windowed queries bisect the
    timestamp array; means additionally use a cumulative-occupancy prefix
    array, making ``mean_in_window`` O(log n) and ``peak_bytes`` O(1).
    (``max_in_window`` still scans the — bisect-bounded — window: the
    steady-state windows the benches query are a small slice of the
    trace.)
    """

    def __init__(self, port: EgressPort, event_driven: bool = True) -> None:
        self.port = port
        self._times: List[int] = []
        self._occs: List[int] = []
        self._cum: List[int] = []
        self._peak = 0
        if event_driven:
            port.occupancy_tracker = self._on_change

    @property
    def samples(self) -> List[Tuple[int, int]]:
        """The recorded ``(time, occupancy)`` pairs, oldest first."""
        return list(zip(self._times, self._occs))

    @samples.setter
    def samples(self, pairs: List[Tuple[int, int]]) -> None:
        self._times = []
        self._occs = []
        self._cum = []
        self._peak = 0
        for t, occ in pairs:
            self._on_change(t, occ)

    def _on_change(self, now: int, occupancy: int) -> None:
        self._times.append(now)
        self._occs.append(occupancy)
        self._cum.append(occupancy + (self._cum[-1] if self._cum else 0))
        if occupancy > self._peak:
            self._peak = occupancy

    def start_periodic(self, sim: Simulator, period_ns: int) -> None:
        """Alternative to event-driven tracing: fixed-period snapshots."""

        def snap() -> None:
            self._on_change(sim.now, self.port.occupancy)
            sim.schedule(period_ns, snap)

        sim.schedule(period_ns, snap)

    @property
    def peak_bytes(self) -> int:
        return self._peak

    def _window(self, t_from_ns: int, t_to_ns: int) -> Tuple[int, int]:
        """Index range [lo, hi) of samples with ``t_from <= t <= t_to``."""
        lo = bisect_left(self._times, t_from_ns)
        hi = bisect_right(self._times, t_to_ns)
        return lo, hi

    def max_in_window(self, t_from_ns: int, t_to_ns: int) -> int:
        lo, hi = self._window(t_from_ns, t_to_ns)
        if hi <= lo:
            return 0
        return max(self._occs[lo:hi])

    def mean_in_window(self, t_from_ns: int, t_to_ns: int) -> float:
        lo, hi = self._window(t_from_ns, t_to_ns)
        if hi <= lo:
            return 0.0
        total = self._cum[hi - 1] - (self._cum[lo - 1] if lo else 0)
        return total / (hi - lo)
