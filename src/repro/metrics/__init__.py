"""Result collection: FCT statistics, goodput and occupancy time series."""

from repro.metrics.fct import FctCollector, FctSummary, percentile
from repro.metrics.timeseries import GoodputTracker, OccupancySampler

__all__ = [
    "FctCollector",
    "FctSummary",
    "percentile",
    "GoodputTracker",
    "OccupancySampler",
]
