"""DSCP-based packet classification (the qdisc prototype's first stage).

The paper's switch classifies packets to queues on the DSCP field set by
end hosts (§5).  The default mapping is the identity, clamped to the number
of queues; an explicit table can express anything else (e.g. many services
folded onto fewer queues).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.net.packet import Packet


class DscpClassifier:
    """Maps ``pkt.dscp`` to a queue index.

    >>> cls = DscpClassifier(4)
    >>> pkt = Packet(0, 0, 1, kind=1, seq=0)  # doctest: +SKIP
    """

    __slots__ = ("n_queues", "table")

    def __init__(self, n_queues: int, table: Optional[Dict[int, int]] = None) -> None:
        if n_queues < 1:
            raise ValueError(f"need at least one queue, got {n_queues}")
        self.n_queues = n_queues
        self.table = table
        if table is not None:
            bad = {d: q for d, q in table.items() if not 0 <= q < n_queues}
            if bad:
                raise ValueError(f"table maps outside [0,{n_queues}): {bad}")

    def __call__(self, pkt: Packet) -> int:
        if self.table is not None:
            return self.table.get(pkt.dscp, self.n_queues - 1)
        dscp = pkt.dscp
        return dscp if dscp < self.n_queues else self.n_queues - 1
