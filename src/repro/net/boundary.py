"""Boundary-port proxies: where a partition's wires leave the building.

In the partitioned engine (:mod:`repro.sim.parallel`) a leaf's uplinks
are rewired from ``Link(spine, delay)`` to ``Link(BoundaryMux(spine_id),
delay)``.  The mux *looks like* a downstream node to the egress port, but
its ``receive`` must never fire: the :class:`~repro.sim.parallel.
partition.PartitionSimulator` intercepts the delivery at ``schedule_tx``
(matching on the mux's ``receive`` — an instance attribute, so the
per-packet ``dst.receive`` lookup in ``EgressPort._transmit`` always
yields the same object) and turns it into an outbox handoff instead.  A
firing ``receive`` therefore means a transmission bypassed the
interception point, which would silently break the lookahead guarantee —
it raises immediately.

Packets cross the boundary as plain tuples of their wire-visible fields
(:meth:`BoundaryMux.export` / :func:`import_packet`): cheap to pickle
over a ``multiprocessing`` pipe, and by construction free of object
identity, so per-partition freelists stay independent.  ``enq_ts`` is
deliberately not carried — it is switch-internal metadata re-stamped at
the next enqueue, and the packet is mid-wire while crossing.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.net import packet as _packet
from repro.net.packet import Packet, PacketKind, release

#: a packet flattened for the wire between partitions
PackedPacket = Tuple[Any, ...]


class BoundaryMux:
    """Stand-in link destination for a cross-partition uplink."""

    __slots__ = ("spine_id", "name", "receive")

    def __init__(self, spine_id: int, name: str = "") -> None:
        #: which spine's replica receives in the destination partition
        self.spine_id = spine_id
        self.name = name or f"boundary:spine{spine_id}"

        def _misdelivered(pkt: Packet) -> None:
            raise RuntimeError(
                f"{self.name}: BoundaryMux.receive fired — a cross-"
                "partition transmission bypassed the schedule_tx "
                "interception (was the mux registered with "
                "PartitionSimulator.register_boundary?)"
            )

        # an instance attribute (not a method) so every `dst.receive`
        # lookup returns the identical object the sink registry keys on
        self.receive = _misdelivered

    def export(self, pkt: Packet) -> PackedPacket:
        """Flatten ``pkt`` for the handoff and release the local frame.

        The caller (``PartitionSimulator.schedule_tx``) owns the last
        reference: ``EgressPort._transmit`` never touches a packet after
        handing it to ``schedule_tx``, so the frame can go straight back
        to the freelist.
        """
        san = _packet._san
        if san is not None:
            # a poisoned frame reaching the boundary means a released
            # packet is still in circulation inside this partition
            san.check_frame(pkt, where=self.name)
        fields = (
            pkt.flow_id,
            pkt.src,
            pkt.dst,
            int(pkt.kind),
            pkt.seq,
            pkt.payload,
            pkt.ect,
            pkt.dscp,
            pkt.ts,
            pkt.ce,
            pkt.ece,
            pkt.ts_echo,
            pkt.is_retx,
        )
        release(pkt)
        return fields


def import_packet(fields: PackedPacket) -> Packet:
    """Rebuild a packet from :meth:`BoundaryMux.export` fields.

    Allocates directly (not via the ``make_*`` freelist constructors):
    imports happen once per fabric crossing, and the rebuilt frame joins
    the receiving partition's freelist at delivery like any other.
    ``wire_size`` is re-derived by the constructor from kind/payload —
    identical to the original by construction.
    """
    (
        flow_id, src, dst, kind, seq, payload,
        ect, dscp, ts, ce, ece, ts_echo, is_retx,
    ) = fields
    pkt = Packet(
        flow_id, src, dst, PacketKind(kind),
        seq=seq, payload=payload, ect=ect, dscp=dscp, ts=ts,
    )
    pkt.ce = ce
    pkt.ece = ece
    pkt.ts_echo = ts_echo
    pkt.is_retx = is_retx
    return pkt
