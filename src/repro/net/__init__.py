"""Network substrate: packets, queues, links, switch ports, hosts.

This package is the reproduction's stand-in for both the paper's
server-emulated Linux qdisc switch and its ns-2 simulation substrate.  Every
object here is driven purely by :class:`repro.sim.Simulator` events.
"""

from repro.net.packet import Packet, PacketKind
from repro.net.queue import PacketQueue
from repro.net.link import Link
from repro.net.port import EgressPort, PortStats
from repro.net.classifier import DscpClassifier
from repro.net.switch import Switch
from repro.net.host import Host
from repro.net.nic import make_nic

__all__ = [
    "Packet",
    "PacketKind",
    "PacketQueue",
    "Link",
    "EgressPort",
    "PortStats",
    "DscpClassifier",
    "Switch",
    "Host",
    "make_nic",
]
