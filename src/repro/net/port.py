"""The switch egress port: buffer admission, scheduling, marking, pacing.

This object is the software analogue of one port of the paper's
server-emulated switch (§5): a shared per-port buffer feeding a pluggable
multi-queue scheduler, with AQM hooks on both sides of the scheduler and a
serializer that models the output link (the qdisc prototype's token-bucket
rate limiter collapses into exact per-packet serialization here, since we
control the whole pipeline).

Lifecycle of a packet through a port::

    receive(pkt)
      -> classifier: dscp -> queue index
      -> admission: drop if port occupancy + pkt > buffer (shared,
         first-in-first-serve, as in the paper's testbed switch)
      -> stamp enq_ts; AQM.on_enqueue may set CE
      -> scheduler.enqueue
    _transmit loop (whenever link idle and scheduler non-empty)
      -> scheduler.dequeue -> AQM.on_dequeue may set CE
      -> serialize for wire_size*8/rate, then propagate for link.delay
      -> link.dst.receive(pkt)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler
from repro.sim.engine import Simulator
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids cycle)
    from repro.aqm.base import Aqm


class PortStats:
    """Aggregate counters for one egress port."""

    __slots__ = (
        "rx_pkts",
        "rx_bytes",
        "tx_pkts",
        "tx_bytes",
        "dropped_pkts",
        "dropped_bytes",
        "marked_pkts",
    )

    def __init__(self) -> None:
        self.rx_pkts = 0
        self.rx_bytes = 0
        self.tx_pkts = 0
        self.tx_bytes = 0
        self.dropped_pkts = 0
        self.dropped_bytes = 0
        self.marked_pkts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PortStats rx={self.rx_pkts} tx={self.tx_pkts} "
            f"drop={self.dropped_pkts} mark={self.marked_pkts}>"
        )


class EgressPort:
    """One output port: shared buffer + scheduler + AQM + output link."""

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "buffer_bytes",
        "scheduler",
        "aqm",
        "link",
        "classify",
        "occupancy",
        "busy",
        "stats",
        "pool",
        "occupancy_tracker",
        "tracer",
        "_qindex",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int,
        buffer_bytes: int,
        scheduler: Scheduler,
        aqm: Optional["Aqm"] = None,
        link: Optional[Link] = None,
        classify: Optional[Callable[[Packet], int]] = None,
        name: str = "port",
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.buffer_bytes = buffer_bytes
        self.scheduler = scheduler
        self.aqm = aqm
        self.link = link
        self.classify = classify or (lambda pkt: 0)
        self.occupancy = 0
        self.busy = False
        self.stats = PortStats()
        #: optional shared service pool (per-pool buffering / marking)
        self.pool = None
        #: optional callable(now, occupancy) sampled on every change
        self.occupancy_tracker: Optional[Callable[[int, int], None]] = None
        #: optional repro.obs.Tracer; None keeps the hot path branch-only
        self.tracer = None
        # Stable queue-object -> global-index map for trace labels: hybrid
        # schedulers rewrite queue.index to band-local values, so position
        # in scheduler.queues is the only trustworthy global identity.
        self._qindex = {id(q): i for i, q in enumerate(scheduler.queues)}
        if aqm is not None:
            aqm.setup(self)

    # -- ingress ---------------------------------------------------------

    def receive(self, pkt: Packet) -> None:
        """Classify, admit, (maybe) mark, and enqueue an arriving packet.

        Classification happens exactly once, before the admission check:
        a stateful classifier must not be stepped twice for a packet that
        is then dropped (and the drop must be charged to the queue the
        packet was headed for).
        """
        stats = self.stats
        stats.rx_pkts += 1
        size = pkt.wire_size
        stats.rx_bytes += size
        qidx = self.classify(pkt)
        if self.occupancy + size > self.buffer_bytes:
            self._drop(pkt, qidx, "buffer")
            return
        if self.pool is not None and not self.pool.admit(size):
            self._drop(pkt, qidx, "pool")
            return
        queue = self.scheduler.queues[qidx]
        now = self.sim.now
        pkt.enq_ts = now
        if self.aqm is not None and self.aqm.on_enqueue(self, queue, pkt, now):
            self._mark(pkt, queue, "enq")
        self.occupancy += size
        if self.pool is not None:
            self.pool.occupancy += size
        self.scheduler.enqueue(pkt, qidx, now)
        if self.tracer is not None:
            self.tracer.enqueue(now, self.name, qidx, pkt)
        if self.occupancy_tracker is not None:
            self.occupancy_tracker(now, self.occupancy)
        if not self.busy:
            self._transmit()

    # -- egress ----------------------------------------------------------

    def _transmit(self) -> None:
        result = self.scheduler.dequeue(self.sim.now)
        if result is None:
            return
        pkt, queue = result
        now = self.sim.now
        if self.tracer is not None:
            self.tracer.dequeue(
                now, self.name, self._qindex[id(queue)], pkt, now - pkt.enq_ts
            )
        if self.aqm is not None and self.aqm.on_dequeue(self, queue, pkt, now):
            self._mark(pkt, queue, "deq")
        size = pkt.wire_size
        self.occupancy -= size
        if self.pool is not None:
            self.pool.occupancy -= size
        if self.occupancy_tracker is not None:
            self.occupancy_tracker(now, self.occupancy)
        self.busy = True
        tx_ns = -(-size * 8 * SEC // self.rate_bps)
        self.sim.schedule(tx_ns, self._tx_done)
        if self.link is not None:
            self.sim.schedule(tx_ns + self.link.delay_ns, _Delivery(self.link.dst, pkt))
        self.stats.tx_pkts += 1
        self.stats.tx_bytes += size

    def _tx_done(self) -> None:
        self.busy = False
        if not self.scheduler.is_empty:
            self._transmit()

    # -- helpers -----------------------------------------------------------

    def _mark(self, pkt: Packet, queue: PacketQueue, where: str) -> None:
        if pkt.ect and not pkt.ce:
            pkt.ce = True
            queue.marked_pkts += 1
            self.stats.marked_pkts += 1
            if self.tracer is not None:
                self.tracer.mark(
                    self.sim.now, self.name, self._qindex[id(queue)], pkt, where
                )

    def _drop(self, pkt: Packet, qidx: int, cause: str = "buffer") -> None:
        self.stats.dropped_pkts += 1
        self.stats.dropped_bytes += pkt.wire_size
        self.scheduler.queues[qidx].dropped_pkts += 1
        if self.tracer is not None:
            self.tracer.drop(self.sim.now, self.name, qidx, pkt, cause)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EgressPort {self.name} {self.occupancy}B buffered>"


class _Delivery:
    """Pre-bound delivery callback — cheaper than a closure per packet."""

    __slots__ = ("dst", "pkt")

    def __init__(self, dst, pkt: Packet) -> None:
        self.dst = dst
        self.pkt = pkt

    def __call__(self) -> None:
        self.dst.receive(self.pkt)
