"""The switch egress port: buffer admission, scheduling, marking, pacing.

This object is the software analogue of one port of the paper's
server-emulated switch (§5): a shared per-port buffer feeding a pluggable
multi-queue scheduler, with AQM hooks on both sides of the scheduler and a
serializer that models the output link (the qdisc prototype's token-bucket
rate limiter collapses into exact per-packet serialization here, since we
control the whole pipeline).

Lifecycle of a packet through a port::

    receive(pkt)
      -> classifier: dscp -> queue index
      -> admission: drop if port occupancy + pkt > buffer (shared,
         first-in-first-serve, as in the paper's testbed switch)
      -> stamp enq_ts; AQM.on_enqueue may set CE
      -> scheduler.enqueue
    _transmit loop (whenever link idle and scheduler non-empty)
      -> scheduler.dequeue -> AQM.on_dequeue may set CE
      -> serialize for wire_size*8/rate, then propagate for link.delay
      -> link.dst.receive(pkt)
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, Optional

from repro.net.classifier import DscpClassifier
from repro.net.link import Link
from repro.net.packet import Packet
from repro.net.queue import PacketQueue
from repro.sched.base import Scheduler
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.units import SEC

if TYPE_CHECKING:  # pragma: no cover - annotation-only import (avoids cycle)
    from repro.aqm.base import Aqm

#: nanoseconds-per-second times bits-per-byte — serialization constant
_BITS_NS = 8 * SEC


class PortStats:
    """Aggregate counters for one egress port."""

    __slots__ = (
        "rx_pkts",
        "rx_bytes",
        "tx_pkts",
        "tx_bytes",
        "dropped_pkts",
        "dropped_bytes",
        "marked_pkts",
    )

    def __init__(self) -> None:
        self.rx_pkts = 0
        self.rx_bytes = 0
        self.tx_pkts = 0
        self.tx_bytes = 0
        self.dropped_pkts = 0
        self.dropped_bytes = 0
        self.marked_pkts = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<PortStats rx={self.rx_pkts} tx={self.tx_pkts} "
            f"drop={self.dropped_pkts} mark={self.marked_pkts}>"
        )


class EgressPort:
    """One output port: shared buffer + scheduler + AQM + output link."""

    __slots__ = (
        "sim",
        "name",
        "rate_bps",
        "buffer_bytes",
        "scheduler",
        "aqm",
        "classify",
        "occupancy",
        "busy",
        "stats",
        "pool",
        "occupancy_tracker",
        "tracer",
        "fluid",
        "_qindex",
        "_fifo",
        "_tx_done_cb",
        "_classify",
        "_cls_get",
        "_cls_max",
        "_aqm_enq",
        "_aqm_deq",
        "_link",
        "_link_dst",
        "_link_delay",
        "_tx_cache",
        "_batch",
    )

    def __init__(
        self,
        sim: Simulator,
        rate_bps: int,
        buffer_bytes: int,
        scheduler: Scheduler,
        aqm: Optional["Aqm"] = None,
        link: Optional[Link] = None,
        classify: Optional[Callable[[Packet], int]] = None,
        name: str = "port",
    ) -> None:
        self.sim = sim
        self.name = name
        self.rate_bps = rate_bps
        self.buffer_bytes = buffer_bytes
        self.scheduler = scheduler
        self.aqm = aqm
        # per-size serialization-time cache: wire sizes are few and the
        # rate is fixed at construction, so the ceil-division runs once
        # per distinct size instead of once per packet
        self._tx_cache: Dict[int, int] = {}
        self.link = link
        self.classify = classify or (lambda pkt: 0)
        # hot-path cache: None means "everything to queue 0", no call made
        self._classify = classify
        # DSCP-classifier bypass: the standard classifier's decision is a
        # dict probe or a clamp, so receive() inlines it instead of
        # paying a Python call per packet (_cls_max < 0 = not applicable)
        self._cls_get = None
        self._cls_max = -1
        if isinstance(classify, DscpClassifier):
            self._classify = None
            self._cls_max = classify.n_queues - 1
            if classify.table is not None:
                self._cls_get = classify.table.get
        self.occupancy = 0
        self.busy = False
        self.stats = PortStats()
        #: optional shared service pool (per-pool buffering / marking)
        self.pool = None
        #: optional callable(now, occupancy) sampled on every change
        self.occupancy_tracker: Optional[Callable[[int, int], None]] = None
        #: optional repro.obs.Tracer; None keeps the hot path branch-only
        self.tracer = None
        #: hybrid fluid-mode coupling: when the port carries fluid
        #: background load across a saturated link, this holds the
        #: repro.sim.fluid FluidLink whose ``mark_frac`` sets the CE
        #: probability packet flows should see on top of it.  None (the
        #: default, and the only value outside hybrid runs) keeps the
        #: ingress path to a single predicted-not-taken branch.
        self.fluid = None
        # Stable queue-object -> global-index map for trace labels: hybrid
        # schedulers rewrite queue.index to band-local values, so position
        # in scheduler.queues is the only trustworthy global identity.
        self._qindex = {id(q): i for i, q in enumerate(scheduler.queues)}
        # batched transmit trains (see _tx_done): follows the engine's
        # --no-batch escape hatch; cached because the flag never changes
        # mid-run and the check sits on the per-frame path
        self._batch = sim.batch
        # Single-queue FIFO bypass: host NICs (the most numerous ports)
        # run a plain FIFO, where the generic dequeue indirection buys
        # nothing — _transmit pops the queue directly instead.
        self._fifo = (
            scheduler.queues[0] if type(scheduler) is FifoScheduler else None
        )
        self._tx_done_cb = self._tx_done  # bound once, scheduled per packet
        # Hot-path AQM hook cache: a hook left as the Aqm base-class no-op
        # is stored as None so the per-packet call is skipped entirely
        # (e.g. TCN never looks at enqueue, queue-length ECN never at
        # dequeue).  Instance-level hook overrides are still honoured —
        # only methods literally inherited from Aqm are elided.
        if aqm is not None:
            from repro.aqm.base import Aqm

            enq = aqm.on_enqueue
            deq = aqm.on_dequeue
            self._aqm_enq = (
                None
                if getattr(enq, "__func__", None) is Aqm.on_enqueue
                else enq
            )
            self._aqm_deq = (
                None
                if getattr(deq, "__func__", None) is Aqm.on_dequeue
                else deq
            )
            aqm.setup(self)
        else:
            self._aqm_enq = None
            self._aqm_deq = None

    @property
    def link(self) -> Optional[Link]:
        """The output link; assignable (topologies wire ports up late)."""
        return self._link

    @link.setter
    def link(self, link: Optional[Link]) -> None:
        # cache the destination node and delay so the per-packet transmit
        # path skips the link indirection (the node's ``receive`` is
        # still looked up per packet — tests patch it on instances)
        self._link = link
        self._link_dst = link.dst if link is not None else None
        self._link_delay = link.delay_ns if link is not None else 0

    # -- ingress ---------------------------------------------------------

    def receive(self, pkt: Packet) -> None:
        """Classify, admit, (maybe) mark, and enqueue an arriving packet.

        Classification happens exactly once, before the admission check:
        a stateful classifier must not be stepped twice for a packet that
        is then dropped (and the drop must be charged to the queue the
        packet was headed for).
        """
        stats = self.stats
        stats.rx_pkts += 1
        size = pkt.wire_size
        stats.rx_bytes += size
        cmax = self._cls_max
        if cmax >= 0:
            get = self._cls_get
            if get is not None:
                qidx = get(pkt.dscp, cmax)
            else:
                qidx = pkt.dscp
                if qidx > cmax:
                    qidx = cmax
        else:
            classify = self._classify
            qidx = classify(pkt) if classify is not None else 0
        occ = self.occupancy
        if occ + size > self.buffer_bytes:
            self._drop(pkt, qidx, "buffer")
            return
        pool = self.pool
        if pool is not None and not pool.admit(size):
            self._drop(pkt, qidx, "pool")
            return
        scheduler = self.scheduler
        now = self.sim.now
        pkt.enq_ts = now
        fl = self.fluid
        if fl is not None and pkt.ect:
            # hybrid coupling: the fluid background load holds this
            # link's queue at the AQM threshold, so transiting packet
            # flows must see its marking rate.  Deterministic
            # accumulator thinning — every 1/mark_frac-th ECT packet is
            # CE-marked — keeps runs bit-reproducible (no RNG).
            acc = fl.mark_acc + fl.mark_frac
            if acc >= 1.0:
                acc -= 1.0
                self._mark(pkt, scheduler.queues[qidx], "enq")
            fl.mark_acc = acc
        aqm_enq = self._aqm_enq
        if aqm_enq is not None:
            queue = scheduler.queues[qidx]
            if aqm_enq(self, queue, pkt, now):
                self._mark(pkt, queue, "enq")
        self.occupancy = occ + size
        if pool is not None:
            pool.occupancy += size
        fifo = self._fifo
        if fifo is not None:
            # single-queue FIFO bypass (enqueue side): inlined
            # PacketQueue.push + byte accounting
            fifo._pkts.append(pkt)
            fifo.bytes = fbytes = fifo.bytes + size
            fifo.enqueued_pkts += 1
            if fbytes > fifo.max_bytes_seen:
                fifo.max_bytes_seen = fbytes
            scheduler.total_bytes += size
        else:
            scheduler.enqueue(pkt, qidx, now)
        if self.tracer is not None:
            self.tracer.enqueue(now, self.name, qidx, pkt)
        if self.occupancy_tracker is not None:
            self.occupancy_tracker(now, self.occupancy)
        if not self.busy:
            self._transmit()

    # -- egress ----------------------------------------------------------

    def _transmit(self) -> None:
        sim = self.sim
        now = sim.now
        fifo = self._fifo
        if fifo is not None:
            # single-queue FIFO bypass: skip the scheduler's dequeue
            # indirection and its (packet, queue) tuple; inlined
            # PacketQueue.pop + byte accounting
            pkts = fifo._pkts
            if not pkts:
                return
            pkt = pkts.popleft()
            queue = fifo
            size = pkt.wire_size
            fifo.bytes -= size
            fifo.dequeued_pkts += 1
            fifo.dequeued_bytes += size
            self.scheduler.total_bytes -= size
        else:
            result = self.scheduler.dequeue(now)
            if result is None:
                return
            pkt, queue = result
            size = pkt.wire_size
        if self.tracer is not None:
            self.tracer.dequeue(
                now, self.name, self._qindex[id(queue)], pkt, now - pkt.enq_ts
            )
        aqm_deq = self._aqm_deq
        if aqm_deq is not None and aqm_deq(self, queue, pkt, now):
            self._mark(pkt, queue, "deq")
        self.occupancy -= size
        pool = self.pool
        if pool is not None:
            pool.occupancy -= size
        if self.occupancy_tracker is not None:
            self.occupancy_tracker(now, self.occupancy)
        self.busy = True
        try:
            tx_ns = self._tx_cache[size]
        except KeyError:
            tx_ns = -(-size * _BITS_NS // self.rate_bps)
            self._tx_cache[size] = tx_ns
        dst = self._link_dst
        if dst is not None:
            sim.schedule_tx(
                tx_ns,
                self._tx_done_cb,
                tx_ns + self._link_delay,
                dst.receive,
                pkt,
            )
        else:
            sim.schedule(tx_ns, self._tx_done_cb)
        stats = self.stats
        stats.tx_pkts += 1
        stats.tx_bytes += size

    def _tx_done(self) -> None:
        """Serializer-done tick: transmit the next queued frame, if any.

        On the batched path this is the *anchor* of a potential transmit
        train: the first frame is processed with exactly ``_transmit``'s
        body (no hoisting — in a busy fabric the global event queue
        almost always denies the inline step, so the attempt must cost
        nothing beyond a floor probe), and only when the engine proves
        the frame's done tick safe and runs it inline does the hoisted
        train loop (:meth:`_tx_train`) take over for the rest.
        """
        scheduler = self.scheduler
        if not scheduler.total_bytes:
            self.busy = False
            return
        if not self._batch or self._link_dst is None:
            self.busy = False
            self._transmit()
            return
        # -- frame 1: _transmit's body, minus the redundant busy store
        #    (busy is already True on every done tick), with the
        #    schedule_tx -> schedule_tx_train swap at the end
        sim = self.sim
        now = sim.now
        fifo = self._fifo
        if fifo is not None:
            # single-queue FIFO bypass (see _transmit)
            pkts = fifo._pkts
            pkt = pkts.popleft()
            queue = fifo
            size = pkt.wire_size
            fifo.bytes -= size
            fifo.dequeued_pkts += 1
            fifo.dequeued_bytes += size
            scheduler.total_bytes -= size
        else:
            result = scheduler.dequeue(now)
            if result is None:
                # non-work-conserving corner: mirrors _transmit's early
                # return with the link left idle
                self.busy = False
                return
            pkt, queue = result
            size = pkt.wire_size
        if self.tracer is not None:
            self.tracer.dequeue(
                now, self.name, self._qindex[id(queue)], pkt, now - pkt.enq_ts
            )
        aqm_deq = self._aqm_deq
        if aqm_deq is not None and aqm_deq(self, queue, pkt, now):
            self._mark(pkt, queue, "deq")
        self.occupancy -= size
        pool = self.pool
        if pool is not None:
            pool.occupancy -= size
        if self.occupancy_tracker is not None:
            self.occupancy_tracker(now, self.occupancy)
        try:
            tx_ns = self._tx_cache[size]
        except KeyError:
            tx_ns = -(-size * _BITS_NS // self.rate_bps)
            self._tx_cache[size] = tx_ns
        stats = self.stats
        stats.tx_pkts += 1
        stats.tx_bytes += size
        if sim.schedule_tx_train(
            tx_ns,
            self._tx_done_cb,
            tx_ns + self._link_delay,
            self._link_dst.receive,
            pkt,
        ):
            # the done tick ran inline: the train is live, keep feeding
            # it frames from the (now advanced) clock
            self._tx_train(scheduler)
        else:
            # the pair was scheduled normally; the done tick will
            # re-enter _tx_done through the queue (busy stays True,
            # exactly as _transmit would have left it)
            sim.train_fallbacks += 1

    def _tx_train(self, scheduler: Scheduler) -> None:
        """Continue the transmit train whose first frame just ran inline.

        The serializer-done tick of frame 1 was executed inside the
        anchor event (:meth:`_tx_done`), so the next transmission starts
        *now* — and as long as the engine keeps proving no competing
        event fires before each frame's done tick
        (:meth:`Simulator.schedule_tx_train`), the whole train runs
        inside this one event: dequeue → AQM-on-dequeue → serialize,
        advancing the clock frame by frame.  Every per-frame observable
        — sojourn time, mark decision, trace record, occupancy sample —
        is produced at exactly the timestamp the per-frame path would
        have used, because the clock *is* at that timestamp when the
        frame is processed.  The first frame whose done tick cannot be
        proven safe falls back to a normally scheduled pair and the
        train ends; per-frame dispatch resumes at that tick.
        """
        sim = self.sim
        fifo = self._fifo
        tracer = self.tracer
        aqm_deq = self._aqm_deq
        pool = self.pool
        occ_tracker = self.occupancy_tracker
        tx_cache = self._tx_cache
        delay = self._link_delay
        done_cb = self._tx_done_cb
        rx_fn = self._link_dst.receive
        train = sim.schedule_tx_train
        stats = self.stats
        n = 1  # frame 1 already rode this event (its done tick ran inline)
        while scheduler.total_bytes:
            now = sim.now
            if fifo is not None:
                # single-queue FIFO bypass (see _transmit)
                pkt = fifo._pkts.popleft()
                queue = fifo
                size = pkt.wire_size
                fifo.bytes -= size
                fifo.dequeued_pkts += 1
                fifo.dequeued_bytes += size
                scheduler.total_bytes -= size
            else:
                result = scheduler.dequeue(now)
                if result is None:
                    # non-work-conserving corner: mirrors _transmit's
                    # early return with the link left idle
                    self.busy = False
                    break
                pkt, queue = result
                size = pkt.wire_size
            if tracer is not None:
                tracer.dequeue(
                    now,
                    self.name,
                    self._qindex[id(queue)],
                    pkt,
                    now - pkt.enq_ts,
                )
            if aqm_deq is not None and aqm_deq(self, queue, pkt, now):
                self._mark(pkt, queue, "deq")
            self.occupancy -= size
            if pool is not None:
                pool.occupancy -= size
            if occ_tracker is not None:
                occ_tracker(now, self.occupancy)
            try:
                tx_ns = tx_cache[size]
            except KeyError:
                tx_ns = -(-size * _BITS_NS // self.rate_bps)
                tx_cache[size] = tx_ns
            stats.tx_pkts += 1
            stats.tx_bytes += size
            n += 1
            if not train(tx_ns, done_cb, tx_ns + delay, rx_fn, pkt):
                # fallback: the pair was scheduled normally, the done
                # tick re-enters _tx_done through the queue (busy stays
                # True, exactly as _transmit would have left it)
                sim.train_fallbacks += 1
                break
        else:
            # every queued frame's done tick ran inline: the link goes
            # idle at the clock's current (advanced) time, just as the
            # last scheduled tick would have left it
            self.busy = False
        sim.trains += 1
        sim.train_pkts += n
        h = n.bit_length()
        hist = sim.train_hist
        hist[h if h < 17 else 17] += 1

    # -- helpers -----------------------------------------------------------

    def _mark(self, pkt: Packet, queue: PacketQueue, where: str) -> None:
        if pkt.ect and not pkt.ce:
            pkt.ce = True
            queue.marked_pkts += 1
            self.stats.marked_pkts += 1
            if self.tracer is not None:
                self.tracer.mark(
                    self.sim.now, self.name, self._qindex[id(queue)], pkt, where
                )

    def _drop(self, pkt: Packet, qidx: int, cause: str = "buffer") -> None:
        self.stats.dropped_pkts += 1
        self.stats.dropped_bytes += pkt.wire_size
        self.scheduler.queues[qidx].dropped_pkts += 1
        if self.tracer is not None:
            self.tracer.drop(self.sim.now, self.name, qidx, pkt, cause)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<EgressPort {self.name} {self.occupancy}B buffered>"
