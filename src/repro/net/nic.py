"""Host NIC construction.

A NIC is just an egress port with a single FIFO, no AQM, and a generous
buffer: end-host queueing discipline is not under study, so hosts never
drop and never mark.  (The paper's testbed shaped qdisc output at 99.5% of
line rate purely to keep queueing visible inside the emulated switch; in
the simulator the switch ports serialize exactly, so no shaving is needed.)
"""

from __future__ import annotations

from repro.net.link import Link
from repro.net.port import EgressPort
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.units import MB


def make_nic(
    sim: Simulator,
    rate_bps: int,
    link: Link,
    buffer_bytes: int = 16 * MB,
    name: str = "nic",
) -> EgressPort:
    """Build a host NIC: FIFO, no AQM, large buffer."""
    return EgressPort(
        sim,
        rate_bps=rate_bps,
        buffer_bytes=buffer_bytes,
        scheduler=FifoScheduler(),
        aqm=None,
        link=link,
        name=name,
    )
