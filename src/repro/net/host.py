"""An end host: a NIC plus a demultiplexer to transport endpoints.

The host owns one NIC egress port toward its switch and a table of
connection halves keyed by flow id.  Data packets go to the registered
receiver half, ACKs to the sender half, and probes are echoed back (the
ping responder used for the paper's RTT measurements, Fig. 5b).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict

from repro.net.packet import Packet, PacketKind, release
from repro.net.port import EgressPort
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover
    from repro.transport.base import SenderBase
    from repro.transport.receiver import Receiver

# hoisted enum members: receive() compares against these per packet, and
# a module global is one dict probe vs. the Enum class-attribute protocol
_DATA = PacketKind.DATA
_ACK = PacketKind.ACK
_PROBE = PacketKind.PROBE
_PROBE_REPLY = PacketKind.PROBE_REPLY


class Host:
    """One server: NIC + flow demux.

    Deliberately *not* ``__slots__``-ed: there is one Host per server (a
    few dozen per topology, vs. thousands of packets), and the test suite
    instruments delivery by patching ``receive`` on instances.
    """

    def __init__(self, sim: Simulator, host_id: int, nic: EgressPort) -> None:
        self.sim = sim
        self.id = host_id
        self.nic = nic
        self._senders: Dict[int, "SenderBase"] = {}
        self._receivers: Dict[int, "Receiver"] = {}
        self._probe_handlers: Dict[int, Callable[[Packet], None]] = {}

    # -- registration ------------------------------------------------------

    def register_sender(self, flow_id: int, sender: "SenderBase") -> None:
        self._senders[flow_id] = sender

    def register_receiver(self, flow_id: int, receiver: "Receiver") -> None:
        self._receivers[flow_id] = receiver

    def register_probe_handler(
        self, flow_id: int, handler: Callable[[Packet], None]
    ) -> None:
        self._probe_handlers[flow_id] = handler

    def unregister_flow(self, flow_id: int) -> None:
        """Drop endpoint state for a finished flow (keeps memory flat)."""
        self._senders.pop(flow_id, None)
        self._receivers.pop(flow_id, None)

    # -- data path -----------------------------------------------------------

    def send(self, pkt: Packet) -> None:
        """Push a packet into the NIC toward the network."""
        self.nic.receive(pkt)

    def receive(self, pkt: Packet) -> None:
        """Deliver a packet arriving from the network.

        The host is the packet's terminal hop: once the endpoint handler
        returns, no queue, link or scheduler can still reference the
        frame, so it is released to the packet freelist for reuse.
        """
        kind = pkt.kind
        if kind == _DATA:
            receiver = self._receivers.get(pkt.flow_id)
            if receiver is not None:
                receiver.on_data(pkt)
        elif kind == _ACK:
            sender = self._senders.get(pkt.flow_id)
            if sender is not None:
                sender.on_ack(pkt)
        elif kind == _PROBE:
            self._echo_probe(pkt)
        elif kind == _PROBE_REPLY:
            handler = self._probe_handlers.get(pkt.flow_id)
            if handler is not None:
                handler(pkt)
        release(pkt)

    def _echo_probe(self, probe: Packet) -> None:
        reply = Packet(
            probe.flow_id,
            self.id,
            probe.src,
            PacketKind.PROBE_REPLY,
            dscp=probe.dscp,
            ts=probe.ts,
        )
        self.send(reply)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.id}>"
