"""A single FIFO packet queue with byte accounting and statistics.

Schedulers own a list of these; AQMs read their length (in bytes) and record
marks/drops on them.  The queue itself never makes policy decisions.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.net.packet import Packet


class PacketQueue:
    """One egress queue of a switch port.

    Attributes
    ----------
    index:
        Position within the owning scheduler (also the DSCP it serves under
        the default classifier).
    weight:
        Relative share for fair-queueing schedulers (WFQ/WRR).
    quantum:
        Bytes served per round for deficit round robin.
    priority:
        Strict-priority level (lower value = served first).
    bytes:
        Current backlog in bytes (wire sizes).
    """

    __slots__ = (
        "index",
        "weight",
        "quantum",
        "priority",
        "bytes",
        "_pkts",
        "enqueued_pkts",
        "dequeued_pkts",
        "dequeued_bytes",
        "marked_pkts",
        "dropped_pkts",
        "max_bytes_seen",
    )

    def __init__(
        self,
        index: int,
        weight: float = 1.0,
        quantum: int = 1500,
        priority: int = 0,
    ) -> None:
        self.index = index
        self.weight = weight
        self.quantum = quantum
        self.priority = priority
        self.bytes = 0
        self._pkts: Deque[Packet] = deque()
        # statistics
        self.enqueued_pkts = 0
        self.dequeued_pkts = 0
        self.dequeued_bytes = 0
        self.marked_pkts = 0
        self.dropped_pkts = 0
        self.max_bytes_seen = 0

    def push(self, pkt: Packet) -> None:
        """Append ``pkt`` and account for its bytes."""
        self._pkts.append(pkt)
        self.bytes += pkt.wire_size
        self.enqueued_pkts += 1
        if self.bytes > self.max_bytes_seen:
            self.max_bytes_seen = self.bytes

    def pop(self) -> Packet:
        """Remove and return the head packet.  Raises ``IndexError`` if empty."""
        pkt = self._pkts.popleft()
        self.bytes -= pkt.wire_size
        self.dequeued_pkts += 1
        self.dequeued_bytes += pkt.wire_size
        return pkt

    def head(self) -> Optional[Packet]:
        """Peek at the head packet without removing it."""
        return self._pkts[0] if self._pkts else None

    def __len__(self) -> int:
        return len(self._pkts)

    def __bool__(self) -> bool:
        return bool(self._pkts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Queue {self.index} {len(self._pkts)}p/{self.bytes}B "
            f"w={self.weight} q={self.quantum} prio={self.priority}>"
        )
