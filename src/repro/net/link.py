"""A unidirectional wire: where a port's packets go, and how long they take.

Serialization delay lives in the transmitting :class:`~repro.net.port.
EgressPort` (it depends on the port rate); the link only contributes fixed
propagation delay and the destination node.
"""

from __future__ import annotations

from typing import Protocol

from repro.net.packet import Packet


class Node(Protocol):
    """Anything that can accept a packet: a host or a switch."""

    def receive(self, pkt: Packet) -> None:  # pragma: no cover - protocol
        ...


class Link:
    """Connects an egress port to its downstream node.

    The transmitting port schedules ``dst.receive`` directly via the
    engine's argument-carrying fast path — delivery costs no per-packet
    closure.  ``dst.receive`` is looked up at transmit time (not cached
    here) so tests and instrumentation can substitute a node's
    ``receive`` after wiring.

    >>> # a 10us one-way wire into some node
    >>> # Link(node, 10 * USEC)
    """

    __slots__ = ("dst", "delay_ns")

    def __init__(self, dst: "Node", delay_ns: int) -> None:
        if delay_ns < 0:
            raise ValueError(f"propagation delay must be >= 0, got {delay_ns}")
        self.dst = dst
        self.delay_ns = delay_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Link -> {self.dst!r} {self.delay_ns}ns>"
