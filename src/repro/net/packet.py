"""The packet: the single unit that flows through the whole simulator.

A :class:`Packet` models one wire frame.  Data segments carry a payload and
the ECN ECT codepoint; pure ACKs carry the cumulative acknowledgement plus
the ECN-Echo (ECE) bit the receiver reflects back; probes model ping.

``enq_ts`` is the enqueue-time timestamp metadata that §4.2 of the paper
describes attaching in hardware — the switch egress port stamps it on
enqueue, and sojourn-time AQMs (TCN, CoDel, PIE) read it on dequeue.

Allocation
----------
Packets are by far the most-allocated objects in a run (one per segment
plus one per ACK), so the constructors route through a **freelist**:
:meth:`~repro.net.host.Host.receive` releases a packet once it has been
delivered to its endpoint (the single point at which no queue, link or
scheduler can still reference it), and ``make_data``/``make_ack`` re-use
released frames instead of allocating.  Reuse fully re-initialises every
field, so it is invisible to the simulation — asserted by the trace
determinism guard tests.
"""

from __future__ import annotations

from enum import IntEnum
from typing import List, Tuple

from repro.units import ACK_SIZE, HEADER, PROBE_SIZE


class PacketKind(IntEnum):
    """What role a packet plays on the wire."""

    DATA = 0
    ACK = 1
    PROBE = 2
    PROBE_REPLY = 3


class Packet:
    """One frame in flight.

    Attributes
    ----------
    flow_id:
        Identifier of the owning flow (ECMP hashes on this).
    src, dst:
        Host ids; switches route on ``dst``.
    kind:
        A :class:`PacketKind`.
    seq:
        Data: segment index within the flow (0-based, in MSS units).
        ACK: the cumulative acknowledgement (next expected segment).
    payload:
        Data payload bytes (0 for ACKs/probes).
    wire_size:
        Total bytes occupying buffers and the wire (payload + header).
    ect / ce / ece:
        The ECN machinery: ECN-Capable Transport codepoint, Congestion
        Experienced mark set by AQMs, and the receiver's ECN-Echo on ACKs.
    dscp:
        Service tag used by the switch classifier to pick an egress queue.
    ts:
        Sender timestamp (ns) echoed back in ``ts_echo`` for RTT estimation.
    enq_ts:
        Set by the egress port at enqueue; read at dequeue for sojourn time.
    """

    __slots__ = (
        "flow_id",
        "src",
        "dst",
        "kind",
        "seq",
        "payload",
        "wire_size",
        "ect",
        "ce",
        "ece",
        "dscp",
        "ts",
        "ts_echo",
        "enq_ts",
        "is_retx",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        kind: PacketKind,
        seq: int = 0,
        payload: int = 0,
        ect: bool = False,
        dscp: int = 0,
        ts: int = 0,
    ) -> None:
        self.flow_id = flow_id
        self.src = src
        self.dst = dst
        self.kind = kind
        self.seq = seq
        self.payload = payload
        if kind == PacketKind.DATA:
            self.wire_size = payload + HEADER
        elif kind == PacketKind.ACK:
            self.wire_size = ACK_SIZE
        else:
            self.wire_size = PROBE_SIZE
        self.ect = ect
        self.ce = False
        self.ece = False
        self.dscp = dscp
        self.ts = ts
        self.ts_echo: int = 0
        self.enq_ts: int = 0
        self.is_retx = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flags = "".join(
            f for f, on in (("E", self.ect), ("C", self.ce), ("e", self.ece)) if on
        )
        return (
            f"<Pkt f{self.flow_id} {self.kind.name} seq={self.seq} "
            f"{self.src}->{self.dst} {self.wire_size}B dscp={self.dscp} {flags}>"
        )


# -- freelist ------------------------------------------------------------

#: released frames awaiting reuse (process-wide; the simulator is
#: single-threaded and reset is total, so sharing across runs is safe)
_free: List[Packet] = []

# hoisted enum members for the freelist constructors (a module global is
# one dict probe vs. the Enum class-attribute protocol, per packet)
_KIND_DATA = PacketKind.DATA
_KIND_ACK = PacketKind.ACK
#: bound on retained frames — beyond this, released packets are simply
#: left to the garbage collector (covers pathological fan-in bursts)
FREELIST_MAX = 8192
# lifetime counters (read via freelist_stats; reset via reset_freelist)
_allocated = 0
_reused = 0

#: the installed runtime sanitizer (repro.sanitize.Sanitizer), or None.
#: When set, release() poisons frames and the make_* constructors verify
#: the poison on reuse — the hooks cost one global None-check when off.
_san = None


def set_sanitizer(san) -> None:
    """Install (or remove, with ``None``) the freelist sanitizer hook.

    Retained frames are dropped so the poisoning invariant holds for
    everything handed out from here on; the lifetime counters survive.
    """
    global _san
    _san = san
    _free.clear()


def release(pkt: Packet) -> None:
    """Return a dead frame to the freelist.

    Only call this when nothing can reference the packet any more — in
    practice, exactly once, from the delivery endpoint.  A released packet
    must be treated as gone: the next ``make_data``/``make_ack`` may hand
    it out again with every field rewritten.
    """
    san = _san
    if san is not None and not san.on_release(pkt):
        return
    free = _free
    if len(free) < FREELIST_MAX:
        free.append(pkt)


def freelist_stats() -> Tuple[int, int, int]:
    """``(allocated, reused, free)`` counters since the last reset.

    ``allocated`` counts fresh ``Packet`` objects built by the ``make_*``
    constructors; ``reused`` counts frames recycled from the freelist;
    ``free`` is the current freelist depth.  The benchmark harness reports
    the deltas of these around a run.
    """
    return _allocated, _reused, len(_free)


def reset_freelist() -> None:
    """Drop retained frames and zero the counters (test/bench isolation)."""
    global _allocated, _reused
    _free.clear()
    _allocated = 0
    _reused = 0


def make_data(
    flow_id: int,
    src: int,
    dst: int,
    seq: int,
    payload: int,
    ect: bool,
    dscp: int,
    ts: int,
) -> Packet:
    """Build a data segment (recycling a released frame when possible)."""
    global _allocated, _reused
    free = _free
    if free:
        _reused += 1
        pkt = free.pop()
        if _san is not None:
            _san.on_reuse(pkt)
        pkt.flow_id = flow_id
        pkt.src = src
        pkt.dst = dst
        pkt.kind = _KIND_DATA
        pkt.seq = seq
        pkt.payload = payload
        pkt.wire_size = payload + HEADER
        pkt.ect = ect
        pkt.ce = False
        pkt.ece = False
        pkt.dscp = dscp
        pkt.ts = ts
        pkt.ts_echo = 0
        pkt.enq_ts = 0
        pkt.is_retx = False
        return pkt
    _allocated += 1
    return Packet(
        flow_id, src, dst, PacketKind.DATA, seq=seq, payload=payload,
        ect=ect, dscp=dscp, ts=ts,
    )


def make_data_run(
    flow_id: int,
    src: int,
    dst: int,
    seq: int,
    n: int,
    payload: int,
    ect: bool,
    dscp: int,
    ts: int,
) -> List[Packet]:
    """Build ``n`` data segments ``seq .. seq+n-1`` sharing one payload size.

    The bulk-send fast path of ``SenderBase._send_window``: recycled
    frames leave the freelist in a single slice instead of ``n`` pops,
    and the shared field values are bound once for the whole run.  The
    frames are reused newest-first, exactly the order ``n`` successive
    :func:`make_data` calls would pop them, so the recycling pattern
    (and the allocated/reused counters) are identical to the unbatched
    path.
    """
    global _allocated, _reused
    free = _free
    k = len(free)
    if k > n:
        k = n
    wire = payload + HEADER
    if k:
        _reused += k
        run = free[-k:]
        del free[-k:]
        run.reverse()
        if _san is not None:
            for pkt in run:
                _san.on_reuse(pkt)
        s = seq
        for pkt in run:
            pkt.flow_id = flow_id
            pkt.src = src
            pkt.dst = dst
            pkt.kind = _KIND_DATA
            pkt.seq = s
            pkt.payload = payload
            pkt.wire_size = wire
            pkt.ect = ect
            pkt.ce = False
            pkt.ece = False
            pkt.dscp = dscp
            pkt.ts = ts
            pkt.ts_echo = 0
            pkt.enq_ts = 0
            pkt.is_retx = False
            s += 1
    else:
        run = []
    if k < n:
        _allocated += n - k
        for s in range(seq + k, seq + n):
            run.append(
                Packet(
                    flow_id, src, dst, _KIND_DATA, seq=s, payload=payload,
                    ect=ect, dscp=dscp, ts=ts,
                )
            )
    return run


def make_ack(
    data: Packet, ack: int, ece: bool, now: int, ect: bool = False,
) -> Packet:
    """Build the cumulative ACK triggered by ``data``.

    The ACK travels the reverse path in the same service class as the data
    it acknowledges, echoes the data packet's CE bit as ECE (per-packet ECN
    echo, as DCTCP requires), and echoes the sender timestamp for RTT
    estimation.
    """
    global _allocated, _reused
    free = _free
    if free:
        _reused += 1
        pkt = free.pop()
        if _san is not None:
            _san.on_reuse(pkt)
        pkt.flow_id = data.flow_id
        pkt.src = data.dst
        pkt.dst = data.src
        pkt.kind = _KIND_ACK
        pkt.seq = ack
        pkt.payload = 0
        pkt.wire_size = ACK_SIZE
        pkt.ect = ect
        pkt.ce = False
        pkt.ece = ece
        pkt.dscp = data.dscp
        pkt.ts = now
        pkt.ts_echo = data.ts
        pkt.enq_ts = 0
        pkt.is_retx = False
        return pkt
    _allocated += 1
    pkt = Packet(
        data.flow_id, data.dst, data.src, PacketKind.ACK,
        seq=ack, ect=ect, dscp=data.dscp, ts=now,
    )
    pkt.ece = ece
    pkt.ts_echo = data.ts
    return pkt
