"""A multi-port output-queued switch.

Forwarding is an arbitrary routing function ``(packet) -> egress port``;
topologies install static destination-based tables (star) or ECMP-hashed
ones (leaf-spine).  The switch fabric itself is modelled as instantaneous
(output-queued), which matches ns-2's default node model and keeps all
queueing at the egress ports where the paper's schemes operate.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.net.packet import Packet
from repro.net.port import EgressPort
from repro.sim.engine import Simulator


class Switch:
    """Output-queued switch: ports plus a routing function.

    Deliberately *not* ``__slots__``-ed: a topology holds a handful of
    switches (vs. thousands of packets), and the test suite instruments
    forwarding by patching ``receive`` on instances.
    """

    def __init__(self, sim: Simulator, name: str = "sw") -> None:
        self.sim = sim
        self.name = name
        self.ports: List[EgressPort] = []
        #: routing override; when None, the destination table is used
        self.route_fn: Optional[Callable[[Packet], EgressPort]] = None
        self._dst_table: Dict[int, EgressPort] = {}

    def add_port(self, port: EgressPort) -> EgressPort:
        """Register an egress port (created by the topology builder)."""
        self.ports.append(port)
        return port

    def set_route(self, dst_host: int, port: EgressPort) -> None:
        """Static destination route: packets to ``dst_host`` leave via ``port``."""
        self._dst_table[dst_host] = port

    def receive(self, pkt: Packet) -> None:
        """Forward an arriving packet to its egress port."""
        if self.route_fn is not None:
            port = self.route_fn(pkt)
        else:
            port = self._dst_table.get(pkt.dst)
            if port is None:
                raise LookupError(
                    f"switch {self.name}: no route for destination {pkt.dst}"
                )
        port.receive(pkt)

    # -- aggregate statistics --------------------------------------------

    @property
    def total_occupancy(self) -> int:
        """Bytes buffered across all ports (used by per-pool ECN/RED)."""
        return sum(p.occupancy for p in self.ports)

    def total_drops(self) -> int:
        return sum(p.stats.dropped_pkts for p in self.ports)

    def total_marks(self) -> int:
        return sum(p.stats.marked_pkts for p in self.ports)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Switch {self.name} {len(self.ports)} ports>"
