"""The runtime sanitizer: dynamic twin of simlint's project rules.

``Simulator(sanitize=True)`` — or ``REPRO_SANITIZE=1`` in the
environment, or ``--sanitize`` on the ``run``/``bench`` CLIs — arms a
:class:`Sanitizer` that enforces, while the simulation runs, the same
invariants the static layer (SIM014–SIM017, ``docs/STATIC_ANALYSIS.md``)
checks before it:

* **freelist discipline** (SIM010/SIM015's twin) — released frames are
  *poisoned* (``ts``/``enq_ts`` stamped with an impossible sentinel), so
  a double ``release()`` is caught at the second call, a poisoned frame
  crossing a partition boundary is caught at export, and a frame found
  un-poisoned on the freelist exposes direct ``_free`` tampering.  The
  ``make_*`` constructors rewrite every field of a recycled frame, so
  poisoning is invisible to a correct simulation — bit-identical
  results, asserted by ``tests/test_sanitize.py``.
* **event-queue order** (SIM013 and the batched-train proofs) — the
  :class:`~repro.sim.equeue.sanitize.SanitizingEventQueue` wrapper
  checks monotone ``(time, seq)`` pop order, clock regressions,
  ``peek_floor`` honesty and ``drain_run`` shape on every transition.
* **partition ownership at handoff** (SIM014's twin) —
  ``PartitionSimulator.insert_arrival`` validates the composite arrival
  key: the ARRIVAL bit must be set, the source partition must be remote,
  and the stamped send time must not postdate the delivery.

Everything is **zero overhead when off**: the engine wraps its backend
only when sanitizing, and the freelist hooks are one module-global
``None`` check per call.  Violations raise :class:`SanitizeError` by
default (``raise_on_violation=False`` collects them instead) and are
recorded with simulated-time context — pass a
:class:`repro.obs.spans.SpanRecorder` to also land each violation on the
flight-recorder timeline.

The freelist hook is process-global (the freelist itself is), attached
by the most recently constructed sanitizing ``Simulator``; use
:func:`detach` for explicit cleanup in tests.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING, Any, List, NamedTuple, Optional

from repro.sim.equeue.sanitize import SanitizingEventQueue

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.spans import SpanRecorder
    from repro.sim.engine import Simulator

__all__ = [
    "POISON",
    "SanitizeError",
    "SanitizingEventQueue",
    "Sanitizer",
    "Violation",
    "detach",
    "env_enabled",
]

#: the poison stamp written into released frames' ``ts``/``enq_ts`` —
#: legitimate values are non-negative nanosecond counts, so the sentinel
#: can never collide with live data
POISON = -(2**62)


class SanitizeError(RuntimeError):
    """A sanitizer invariant was violated (the default reaction)."""


class Violation(NamedTuple):
    """One recorded invariant violation."""

    kind: str
    message: str
    time_ns: int


def env_enabled() -> bool:
    """The ``REPRO_SANITIZE`` environment switch (unset/``0`` = off)."""
    return os.environ.get("REPRO_SANITIZE", "") not in ("", "0")


class Sanitizer:
    """Violation collector and freelist-poisoning protocol.

    One instance per sanitizing :class:`~repro.sim.engine.Simulator`;
    the engine threads it into the event-queue wrapper and (via
    :meth:`attach_freelist`) into the packet freelist hooks.
    """

    __slots__ = ("sim", "violations", "raise_on_violation", "spans")

    def __init__(
        self,
        sim: Optional["Simulator"] = None,
        raise_on_violation: bool = True,
        spans: Optional["SpanRecorder"] = None,
    ) -> None:
        self.sim = sim
        self.violations: List[Violation] = []
        self.raise_on_violation = raise_on_violation
        self.spans = spans

    # -- reporting --------------------------------------------------------

    def record(self, kind: str, message: str) -> None:
        """Record one violation; raise unless configured to collect."""
        now = self.sim.now if self.sim is not None else -1
        violation = Violation(kind, message, now)
        self.violations.append(violation)
        spans = self.spans
        if spans is not None and spans.enabled:
            from repro.obs.spans import wall_ns

            spans.add(
                "sanitize",
                kind,
                wall_ns(),
                0,
                tid="sanitize",
                args={"message": message, "sim_ns": now},
            )
        if self.raise_on_violation:
            raise SanitizeError(f"[{kind}] t={now}ns: {message}")

    # -- freelist protocol ------------------------------------------------

    def attach_freelist(self) -> None:
        """Install this sanitizer as the process-wide freelist hook.

        Clears retained frames so the "everything on the freelist is
        poisoned" invariant holds from here on (counters are preserved).
        """
        from repro.net import packet

        packet.set_sanitizer(self)

    def on_release(self, pkt: Any) -> bool:
        """``release()`` hook: catch double-release, then poison.

        Returns ``False`` when the frame must *not* rejoin the freelist
        (it is already there — appending again would hand one frame to
        two owners).
        """
        if pkt.ts == POISON and pkt.enq_ts == POISON:
            self.record(
                "double-release",
                f"frame released twice (flow={pkt.flow_id} "
                f"seq={pkt.seq} kind={int(pkt.kind)})",
            )
            return False
        pkt.ts = POISON
        pkt.enq_ts = POISON
        return True

    def on_reuse(self, pkt: Any) -> None:
        """``make_*`` hook: every recycled frame must carry the poison."""
        if pkt.ts != POISON or pkt.enq_ts != POISON:
            self.record(
                "freelist-corruption",
                "un-poisoned frame found on the freelist — something "
                "bypassed release() (direct _free access?)",
            )

    def check_frame(self, pkt: Any, where: str) -> None:
        """Assert ``pkt`` is live — used at partition-boundary export."""
        if pkt.ts == POISON and pkt.enq_ts == POISON:
            self.record(
                "use-after-release",
                f"{where}: released frame is still in circulation "
                f"(flow={pkt.flow_id} seq={pkt.seq})",
            )


def detach() -> None:
    """Remove any installed freelist sanitizer (test cleanup)."""
    from repro.net import packet

    packet.set_sanitizer(None)
