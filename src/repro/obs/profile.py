"""Run profiling: how hard did the engine work, and how fast.

The simulator keeps two always-on counters (``events_executed`` and
``heap_hwm`` — both a single compare-and-store per event, measured in the
noise on the benchmarks); :class:`RunProfile` packages them with wall
time into the record every perf PR cites as its before/after evidence.
"""

from __future__ import annotations

import os
import sys
from dataclasses import dataclass, field
from typing import Dict, List

from repro.sim.engine import Simulator


@dataclass
class RunProfile:
    """Profiling counters for one simulation run.

    ``events`` and ``heap_hwm`` are deterministic properties of the run;
    ``wall_s`` / ``events_per_sec`` / ``rss_hwm_bytes`` describe the host
    executing it and vary between machines (the sweep cache therefore
    persists only the deterministic fields).  ``equeue`` names the
    future-event-list backend that ran the simulation and
    ``equeue_stats`` carries its structure counters (bucket refills,
    resizes, overflow migrations, ...), so perf trajectories can
    attribute an events/sec move to the right data structure.
    """

    events: int = 0
    heap_hwm: int = 0
    wall_s: float = 0.0
    events_per_sec: float = 0.0
    #: process high-water RSS (bytes), 0 where the platform can't say
    rss_hwm_bytes: int = 0
    #: event-queue backend name (repro.sim.equeue registry key)
    equeue: str = "heap"
    #: backend structure counters (EventQueue.stats(); empty for the heap)
    equeue_stats: Dict[str, int] = field(default_factory=dict)
    # -- batched hot path (all zero when batching is off) ----------------
    #: same-timestamp runs dispatched by the batched run loops
    runs_drained: int = 0
    #: run-length histogram, bucketed by bit_length(run_len)
    run_hist: List[int] = field(default_factory=lambda: [0] * 18)
    #: back-to-back transmit trains executed by ports
    trains: int = 0
    #: frames those trains carried
    train_pkts: int = 0
    #: train-length histogram, bucketed by bit_length(train_len)
    train_hist: List[int] = field(default_factory=lambda: [0] * 18)
    #: trains cut short by an unsafe inline step (competing event)
    train_fallbacks: int = 0
    # -- fluid/hybrid mode (empty for pure packet runs) ------------------
    #: FluidNetwork.stats_dict(): promoted flows, epochs, solver
    #: iterations, threshold crossings — deterministic properties of the
    #: run, reported so fluid epoch cost stays observable in benches
    fluid_stats: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def capture(
        cls,
        sim: Simulator,
        wall_s: float,
        rss_floor: int = 0,
        fluid_stats: "Dict[str, int] | None" = None,
    ) -> "RunProfile":
        """Snapshot the run's counters.

        ``rss_floor`` is a lower bound on the RSS high-water mark, fed
        by an :class:`RssSampler` that observed the process *during* the
        run — within one process ``ru_maxrss`` already dominates it, but
        the floor keeps the accounting honest on platforms where
        ``getrusage`` is unavailable (the sampler's ``/proc`` reads then
        carry the number alone).
        """
        events = sim.events_executed
        return cls(
            events=events,
            heap_hwm=sim.heap_hwm,
            wall_s=wall_s,
            events_per_sec=events / wall_s if wall_s > 0 else 0.0,
            rss_hwm_bytes=max(_rss_high_water(), rss_floor),
            equeue=sim.equeue_name,
            equeue_stats=sim.equeue_stats(),
            runs_drained=sim.runs_drained,
            run_hist=list(sim.run_hist),
            trains=sim.trains,
            train_pkts=sim.train_pkts,
            train_hist=list(sim.train_hist),
            train_fallbacks=sim.train_fallbacks,
            fluid_stats=dict(fluid_stats) if fluid_stats else {},
        )

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "RunProfile":
        """Rebuild from :meth:`as_dict` output, ignoring unknown keys.

        Profile dicts travel through caches and results produced by
        newer or richer engines (the partitioned runner adds keys like
        ``workers`` and ``per_partition``); consumers that only want the
        common counters use this instead of ``RunProfile(**d)`` so extra
        keys degrade gracefully.
        """
        known = {
            f: d[f]
            for f in (
                "events",
                "heap_hwm",
                "wall_s",
                "events_per_sec",
                "rss_hwm_bytes",
                "equeue",
                "equeue_stats",
                "runs_drained",
                "run_hist",
                "trains",
                "train_pkts",
                "train_hist",
                "train_fallbacks",
                "fluid_stats",
            )
            if f in d
        }
        return cls(**known)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "heap_hwm": self.heap_hwm,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "rss_hwm_bytes": self.rss_hwm_bytes,
            "equeue": self.equeue,
            "equeue_stats": dict(self.equeue_stats),
            "runs_drained": self.runs_drained,
            "run_hist": list(self.run_hist),
            "trains": self.trains,
            "train_pkts": self.train_pkts,
            "train_hist": list(self.train_hist),
            "train_fallbacks": self.train_fallbacks,
            "fluid_stats": dict(self.fluid_stats),
        }

    def describe(self) -> str:
        """One human line for CLIs and sweep progress output."""
        parts = [
            f"{self.events} events",
            f"{self.events_per_sec / 1e3:.0f}k ev/s",
            f"heap high-water {self.heap_hwm}",
        ]
        if self.equeue != "heap":
            parts.append(f"equeue {self.equeue}")
        if self.rss_hwm_bytes:
            parts.append(f"rss high-water {self.rss_hwm_bytes / 2**20:.0f} MB")
        if self.fluid_stats:
            parts.append(
                f"fluid {self.fluid_stats.get('completed', 0)}"
                f"/{self.fluid_stats.get('flows', 0)} flows "
                f"in {self.fluid_stats.get('epochs', 0)} epochs"
            )
        return ", ".join(parts)


def _rss_high_water() -> int:
    """Peak RSS of this process in bytes (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes
    return peak * 1024 if sys.platform != "darwin" else peak


def current_rss_bytes() -> int:
    """Resident set size of this process right now, in bytes (0 if unknown).

    Read from ``/proc/self/statm`` — one small pread, a few microseconds
    — so it is cheap enough to call at chunk/round boundaries.
    """
    try:
        with open("/proc/self/statm") as fh:
            resident_pages = int(fh.read().split()[1])
        return resident_pages * (os.sysconf("SC_PAGE_SIZE") or 4096)
    except (OSError, ValueError, IndexError):  # pragma: no cover - non-Linux
        return 0


#: environment knob for the sampling stride (every Nth boundary samples)
RSS_STRIDE_ENV = "REPRO_RSS_STRIDE"


class RssSampler:
    """Strided RSS high-water sampling at run-loop boundaries.

    ``ru_maxrss`` only reports a process's *own* peak, and only when
    asked — the parallel coordinator asking at completion misses every
    short-lived peak inside its worker processes.  Each worker (and the
    serial run loop) instead carries one of these and calls
    :meth:`sample` at chunk/round boundaries; the profile merge then
    takes the max over all observed high waters.

    The stride (default 1: every boundary — boundaries are rare, ~20/s
    of simulated time) is configurable via ``$REPRO_RSS_STRIDE`` or the
    constructor, for runs where even the boundary rate is too chatty.
    The sampler never sits on the event hot path.
    """

    __slots__ = ("stride", "hwm_bytes", "last_bytes", "samples", "_tick")

    def __init__(self, stride: int = 0) -> None:
        if stride <= 0:
            try:
                stride = int(os.environ.get(RSS_STRIDE_ENV, "1"))
            except ValueError:
                stride = 1
        self.stride = max(1, stride)
        self.hwm_bytes = 0
        self.last_bytes = 0
        self.samples = 0
        self._tick = 0

    def sample(self) -> None:
        """Take a sample if this boundary falls on the stride."""
        self._tick += 1
        if self._tick % self.stride:
            return
        rss = current_rss_bytes()
        if rss:
            self.samples += 1
            self.last_bytes = rss
            if rss > self.hwm_bytes:
                self.hwm_bytes = rss
