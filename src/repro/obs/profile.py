"""Run profiling: how hard did the engine work, and how fast.

The simulator keeps two always-on counters (``events_executed`` and
``heap_hwm`` — both a single compare-and-store per event, measured in the
noise on the benchmarks); :class:`RunProfile` packages them with wall
time into the record every perf PR cites as its before/after evidence.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass, field
from typing import Dict

from repro.sim.engine import Simulator


@dataclass
class RunProfile:
    """Profiling counters for one simulation run.

    ``events`` and ``heap_hwm`` are deterministic properties of the run;
    ``wall_s`` / ``events_per_sec`` / ``rss_hwm_bytes`` describe the host
    executing it and vary between machines (the sweep cache therefore
    persists only the deterministic fields).  ``equeue`` names the
    future-event-list backend that ran the simulation and
    ``equeue_stats`` carries its structure counters (bucket refills,
    resizes, overflow migrations, ...), so perf trajectories can
    attribute an events/sec move to the right data structure.
    """

    events: int = 0
    heap_hwm: int = 0
    wall_s: float = 0.0
    events_per_sec: float = 0.0
    #: process high-water RSS (bytes), 0 where the platform can't say
    rss_hwm_bytes: int = 0
    #: event-queue backend name (repro.sim.equeue registry key)
    equeue: str = "heap"
    #: backend structure counters (EventQueue.stats(); empty for the heap)
    equeue_stats: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def capture(cls, sim: Simulator, wall_s: float) -> "RunProfile":
        events = sim.events_executed
        return cls(
            events=events,
            heap_hwm=sim.heap_hwm,
            wall_s=wall_s,
            events_per_sec=events / wall_s if wall_s > 0 else 0.0,
            rss_hwm_bytes=_rss_high_water(),
            equeue=sim.equeue_name,
            equeue_stats=sim.equeue_stats(),
        )

    @classmethod
    def from_dict(cls, d: Dict[str, object]) -> "RunProfile":
        """Rebuild from :meth:`as_dict` output, ignoring unknown keys.

        Profile dicts travel through caches and results produced by
        newer or richer engines (the partitioned runner adds keys like
        ``workers`` and ``per_partition``); consumers that only want the
        common counters use this instead of ``RunProfile(**d)`` so extra
        keys degrade gracefully.
        """
        known = {
            f: d[f]
            for f in (
                "events",
                "heap_hwm",
                "wall_s",
                "events_per_sec",
                "rss_hwm_bytes",
                "equeue",
                "equeue_stats",
            )
            if f in d
        }
        return cls(**known)  # type: ignore[arg-type]

    def as_dict(self) -> Dict[str, object]:
        return {
            "events": self.events,
            "heap_hwm": self.heap_hwm,
            "wall_s": self.wall_s,
            "events_per_sec": self.events_per_sec,
            "rss_hwm_bytes": self.rss_hwm_bytes,
            "equeue": self.equeue,
            "equeue_stats": dict(self.equeue_stats),
        }

    def describe(self) -> str:
        """One human line for CLIs and sweep progress output."""
        parts = [
            f"{self.events} events",
            f"{self.events_per_sec / 1e3:.0f}k ev/s",
            f"heap high-water {self.heap_hwm}",
        ]
        if self.equeue != "heap":
            parts.append(f"equeue {self.equeue}")
        if self.rss_hwm_bytes:
            parts.append(f"rss high-water {self.rss_hwm_bytes / 2**20:.0f} MB")
        return ", ".join(parts)


def _rss_high_water() -> int:
    """Peak RSS of this process in bytes (0 if unavailable)."""
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return 0
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes
    return peak * 1024 if sys.platform != "darwin" else peak
