"""Flight recorder: wall-clock span timelines across the harness layers.

A :class:`SpanRecorder` collects *spans* — named wall-clock intervals
with a category, a process/track label, and a dict of deterministic
annotations — into a bounded ring, mirroring :class:`repro.obs.Tracer`'s
design: components hold a ``spans`` attribute (or take a ``spans``
parameter) that is ``None`` by default, so the un-instrumented path pays
exactly one ``is not None`` test per hook point and the simulation hot
path is never touched at all.

Three layers record spans:

=========  ======  =========================================================
``cat``    name    emitted by
=========  ======  =========================================================
engine     chunk   ``harness.runner.run_experiment`` — one span per
                   ``Simulator.run`` chunk (the GC-paused window), with
                   sim-time bounds, executed events, event-queue backend
                   structure-counter deltas (resizes / cascades / purges),
                   and packet-freelist pressure deltas
round      merge   ``parallel.cluster._Partition`` — applying the round's
                   boundary handoffs into the partition's event queue
round      compute ``_Partition`` — the ``sim.run(until=horizon)`` slice
round      serialize  ``_Partition`` — draining the outbox and flattening
                   the round report for the pipe
round      ipc_wait   worker processes (waiting for the coordinator's next
                   horizon) and the coordinator (waiting on worker pipes,
                   ``tid="coord"``)
sync       round   the coordinator — one span per barrier round with the
                   horizon, ``m̂``, and routed-handoff count
sweep      job     ``harness.sweep.run_sweep`` — one span per grid cell
                   (queued → dispatched → finished) with cache/crash status
=========  ======  =========================================================

Wall-clock reads happen **only** in :func:`wall_ns` below, behind a
justified SIM001 pragma: span timestamps describe the host executing the
simulation and never feed back into simulated state (asserted by
``tests/test_spans.py``, which pins traced == untraced golden results).

Exports:

* :meth:`SpanRecorder.export_jsonl` — one sorted-key JSON object per
  line.  With ``deterministic=True`` the wall-clock fields (``t0_ns``,
  ``dur_ns``) are zeroed and host-dependent annotation keys
  (:data:`NONDETERMINISTIC_ARGS`) stripped, so two same-seed runs export
  byte-identical files at any worker count — the span *structure*
  (rounds, phases, handoff counts, executed events) is a deterministic
  property of the run.
* :meth:`SpanRecorder.export_chrome` / :func:`chrome_trace` — Chrome
  trace-event JSON (``traceEvents`` array of ``ph: "X"`` slices), which
  https://ui.perfetto.dev loads directly.
* :func:`trace_events_to_chrome` — converts a packet-lifecycle trace
  (``repro run --trace``) into the same format, so packet sojourns can
  be overlaid with harness spans in one Perfetto view.

Cross-process merge: worker-side recorders ship ``(spans, dropped)``
back with the final report and the coordinator interleaves them by
:func:`round_merge_key` — ``(round, pid, phase)`` — before adopting
(:meth:`SpanRecorder.adopt`).  The merged ring therefore has a
reproducible line order *and* evicts the oldest rounds uniformly across
partitions when full, instead of silently discarding whole partitions.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import (
    IO,
    Any,
    Deque,
    Dict,
    Iterable,
    Iterator,
    List,
    Optional,
    Tuple,
    Union,
)

from repro.metrics.fct import percentile

#: default ring capacity.  The barrier protocol is communication-bound
#: (sub-µs lookahead), so a real parallel run takes 10^5-10^6 rounds and
#: emits 4 phase spans per round per partition — far more than any
#: sane export.  A flight recorder keeps the *newest* window: the ring
#: evicts oldest-first (oldest rounds first, after the deterministic
#: merge interleave) and counts ``dropped_spans``, exactly like the
#: event tracer's ring.
DEFAULT_SPAN_CAPACITY = 1 << 16

#: span-annotation keys stripped by the deterministic JSONL export:
#: ``rss_bytes``/``worker_pid``/``wall_s`` describe the host, and the
#: freelist deltas depend on process-lifetime freelist state (a prior
#: run in the same process leaves packets to reuse), so none is a
#: deterministic property of the run alone
NONDETERMINISTIC_ARGS = frozenset(
    {"rss_bytes", "worker_pid", "wall_s", "queued_ns",
     "freelist_allocated", "freelist_reused"}
)

#: the four per-partition round phases the stall table attributes
ROUND_PHASES = ("compute", "serialize", "ipc_wait", "merge")

#: internal span record:
#: ``(pid_label, tid_label, cat, name, t0_ns, dur_ns, args_dict)``
SpanTuple = Tuple[str, str, str, str, int, int, Dict[str, Any]]


def wall_ns() -> int:
    """Monotonic wall-clock nanoseconds — the recorder's only clock.

    Centralised so the flight recorder has exactly one wall-clock call
    site; on Linux ``perf_counter_ns`` is CLOCK_MONOTONIC, which is
    system-wide, so spans stamped in forked worker processes share the
    coordinator's timebase and align on one Perfetto timeline.
    """
    # simlint: disable=SIM001 -- span timestamps measure host runtime for the flight recorder; they are observability output and never feed the simulation
    return time.perf_counter_ns()


class _SpanCtx:
    """Context manager stamping one span; ``args`` may be filled inside."""

    __slots__ = ("_rec", "cat", "name", "tid", "args", "_t0")

    def __init__(
        self,
        rec: "SpanRecorder",
        cat: str,
        name: str,
        tid: str,
        args: Optional[Dict[str, Any]],
    ) -> None:
        self._rec = rec
        self.cat = cat
        self.name = name
        self.tid = tid
        self.args = args if args is not None else {}
        self._t0 = 0

    def __enter__(self) -> "_SpanCtx":
        self._t0 = wall_ns()
        return self

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        t0 = self._t0
        self._rec.add(
            self.cat, self.name, t0, wall_ns() - t0,
            tid=self.tid, args=self.args,
        )


class SpanRecorder:
    """Bounded ring of wall-clock spans with Chrome/JSONL export.

    ``pid`` labels the track every span from this recorder lands on
    (``"run"`` for the serial harness, ``"coord"`` / ``"p<N>"`` for the
    parallel layers, ``"sweep"`` for the pool); ``tid`` sub-tracks
    within it.  Like the event tracer, a full ring evicts oldest-first
    and counts :attr:`dropped_spans` instead of growing unbounded.
    """

    #: quick feature test mirroring ``Tracer.enabled``
    enabled = True

    __slots__ = ("spans", "capacity", "dropped_spans", "pid")

    def __init__(
        self,
        capacity: Optional[int] = DEFAULT_SPAN_CAPACITY,
        pid: str = "run",
    ) -> None:
        self.capacity = capacity
        self.pid = pid
        self.spans: Deque[SpanTuple] = deque(maxlen=capacity)
        self.dropped_spans = 0

    def __len__(self) -> int:
        return len(self.spans)

    # -- recording --------------------------------------------------------

    def add(
        self,
        cat: str,
        name: str,
        t0_ns: int,
        dur_ns: int,
        tid: str = "main",
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        spans = self.spans
        if spans.maxlen is not None and len(spans) == spans.maxlen:
            self.dropped_spans += 1
        spans.append(
            (self.pid, tid, cat, name, t0_ns, dur_ns, args or {})
        )

    def span(
        self,
        cat: str,
        name: str,
        tid: str = "main",
        args: Optional[Dict[str, Any]] = None,
    ) -> _SpanCtx:
        """``with rec.span(...) as s:`` — stamps entry/exit wall time.

        Annotations discovered inside the block go into ``s.args``.
        """
        return _SpanCtx(self, cat, name, tid, args)

    def adopt(
        self, spans: Iterable[SpanTuple], dropped: int = 0
    ) -> None:
        """Merge spans shipped from another recorder (pid kept as-is).

        Callers append shipped payloads in a deterministic order (the
        parallel merge goes coordinator first, then partitions by pid),
        which fixes the export line order.
        """
        ring = self.spans
        for record in spans:
            if ring.maxlen is not None and len(ring) == ring.maxlen:
                self.dropped_spans += 1
            ring.append(record)
        self.dropped_spans += dropped

    def clear(self) -> None:
        self.spans.clear()
        self.dropped_spans = 0

    # -- export -----------------------------------------------------------

    def iter_dicts(self) -> Iterator[Dict[str, Any]]:
        for pid, tid, cat, name, t0, dur, args in self.spans:
            yield {
                "pid": pid, "tid": tid, "cat": cat, "name": name,
                "t0_ns": t0, "dur_ns": dur, "args": args,
            }

    def export_jsonl(
        self,
        destination: Union[str, IO[str]],
        deterministic: bool = False,
    ) -> int:
        """Write one JSON object per line; returns the line count.

        ``deterministic=True`` zeroes the wall-clock fields and strips
        host-dependent annotations so same-seed exports are
        byte-identical (see the module docstring).
        """
        if isinstance(destination, str):
            with open(destination, "w") as fh:
                return self.export_jsonl(fh, deterministic=deterministic)
        n = 0
        for d in self.iter_dicts():
            if deterministic:
                d = dict(d)
                d["t0_ns"] = 0
                d["dur_ns"] = 0
                d["args"] = {
                    k: v
                    for k, v in d["args"].items()
                    if k not in NONDETERMINISTIC_ARGS
                }
            destination.write(
                json.dumps(d, sort_keys=True, separators=(",", ":"))
            )
            destination.write("\n")
            n += 1
        return n

    def export_chrome(self, destination: Union[str, IO[str]]) -> int:
        """Write Chrome trace-event JSON; returns the slice-event count."""
        return write_chrome(list(self.iter_dicts()), destination)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<SpanRecorder pid={self.pid!r} {len(self.spans)} spans"
            f"{f' ({self.dropped_spans} evicted)' if self.dropped_spans else ''}>"
        )


def load_spans_jsonl(path: str) -> List[Dict[str, Any]]:
    """Read a span JSONL export back into dicts (blank lines skipped)."""
    out: List[Dict[str, Any]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(json.loads(line))
    return out


# -- Chrome trace-event (Perfetto) export ---------------------------------


def chrome_trace(span_dicts: Iterable[Dict[str, Any]]) -> Dict[str, Any]:
    """Span dicts -> a Chrome trace-event JSON document.

    Timestamps are rebased to the earliest span and converted to the
    format's microseconds; ``pid``/``tid`` labels become small integers
    with ``process_name`` / ``thread_name`` metadata events so Perfetto
    shows the human labels.
    """
    spans = list(span_dicts)
    base = min((s["t0_ns"] for s in spans), default=0)
    pid_ids: Dict[str, int] = {}
    tid_ids: Dict[Tuple[str, str], int] = {}
    events: List[Dict[str, Any]] = []
    meta: List[Dict[str, Any]] = []
    for s in spans:
        pid_label, tid_label = s["pid"], s["tid"]
        pid = pid_ids.get(pid_label)
        if pid is None:
            pid = pid_ids[pid_label] = len(pid_ids) + 1
            meta.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": pid_label},
            })
        tkey = (pid_label, tid_label)
        tid = tid_ids.get(tkey)
        if tid is None:
            tid = tid_ids[tkey] = (
                sum(1 for k in tid_ids if k[0] == pid_label) + 1
            )
            meta.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": tid_label},
            })
        events.append({
            "ph": "X",
            "pid": pid,
            "tid": tid,
            "cat": s["cat"],
            "name": s["name"],
            "ts": (s["t0_ns"] - base) / 1e3,
            "dur": s["dur_ns"] / 1e3,
            "args": s["args"],
        })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome(
    span_dicts: Iterable[Dict[str, Any]],
    destination: Union[str, IO[str]],
) -> int:
    """Serialize :func:`chrome_trace` output; returns the slice count."""
    if isinstance(destination, str):
        with open(destination, "w") as fh:
            return write_chrome(span_dicts, fh)
    doc = chrome_trace(span_dicts)
    json.dump(doc, destination, sort_keys=True, separators=(",", ":"))
    destination.write("\n")
    return sum(1 for e in doc["traceEvents"] if e["ph"] == "X")


def trace_events_to_chrome(
    event_dicts: Iterable[Dict[str, Any]],
) -> Dict[str, Any]:
    """Packet-lifecycle trace events -> Chrome trace-event JSON.

    Input is the ``Tracer.iter_dicts()`` / ``run --trace`` JSONL schema
    (see :mod:`repro.obs.trace`).  The mapping (all on one ``"sim"``
    process track, timestamps in simulated ns shown as trace µs):

    * ``dequeue`` — an ``"X"`` slice per packet on its ``port[q<i>]``
      thread, spanning the queue sojourn (``ts = t - sojourn_ns``);
    * ``enqueue`` / ``mark`` / ``drop`` — instant events on the same
      thread;
    * ``cwnd`` / ``alpha`` / ``rate`` — counter (``"C"``) series per
      flow, so the control laws plot alongside the queues.
    """
    tid_ids: Dict[str, int] = {}
    meta: List[Dict[str, Any]] = [{
        "ph": "M", "name": "process_name", "pid": 1, "tid": 0,
        "args": {"name": "sim"},
    }]
    events: List[Dict[str, Any]] = []

    def tid_for(label: str) -> int:
        tid = tid_ids.get(label)
        if tid is None:
            tid = tid_ids[label] = len(tid_ids) + 1
            meta.append({
                "ph": "M", "name": "thread_name", "pid": 1, "tid": tid,
                "args": {"name": label},
            })
        return tid

    for ev in event_dicts:
        kind = ev["ev"]
        t_us = ev["t"] / 1e3
        if kind in ("enqueue", "dequeue", "mark", "drop"):
            tid = tid_for(f"{ev['port']}[q{ev['q']}]")
            args = {
                "flow": ev["flow"], "seq": ev["seq"], "size": ev["size"],
            }
            if kind == "dequeue":
                sojourn = ev["sojourn_ns"]
                events.append({
                    "ph": "X", "pid": 1, "tid": tid, "cat": "packet",
                    "name": f"flow{ev['flow']}",
                    "ts": (ev["t"] - sojourn) / 1e3, "dur": sojourn / 1e3,
                    "args": args,
                })
            else:
                if kind == "mark":
                    args["where"] = ev["where"]
                elif kind == "drop":
                    args["cause"] = ev["cause"]
                events.append({
                    "ph": "i", "pid": 1, "tid": tid, "cat": "packet",
                    "name": kind, "ts": t_us, "s": "t", "args": args,
                })
        elif kind in ("cwnd", "alpha", "rate"):
            value = ev["cwnd" if kind == "cwnd" else
                       "alpha" if kind == "alpha" else "rate_bps"]
            events.append({
                "ph": "C", "pid": 1, "tid": 0, "cat": "control",
                "name": f"{kind}.flow{ev['flow']}",
                "ts": t_us, "args": {kind: value},
            })
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_doc(
    doc: Dict[str, Any], destination: Union[str, IO[str]]
) -> int:
    """Serialize a prepared trace document; returns its event count.

    The writer behind ``repro trace --format chrome``: takes the output
    of :func:`trace_events_to_chrome` (or :func:`chrome_trace`) as-is.
    """
    if isinstance(destination, str):
        with open(destination, "w") as fh:
            return write_chrome_doc(doc, fh)
    json.dump(doc, destination, sort_keys=True, separators=(",", ":"))
    destination.write("\n")
    return sum(1 for e in doc["traceEvents"] if e["ph"] != "M")


_PHASE_ORDER = {
    "ipc_wait": 0, "merge": 1, "compute": 2, "serialize": 3, "round": 4,
}


def round_merge_key(record: SpanTuple) -> Tuple[int, str, int]:
    """Deterministic interleave key for merging parallel span rings.

    Orders by (round, pid, phase) so that when the merged bounded ring
    evicts, it drops the *oldest rounds uniformly across partitions* —
    never one whole partition — and the export line order is a pure
    function of the run (wall timestamps play no part).  Coordinator
    spans carry ``round`` (sync spans) or ``barrier`` (pipe waits;
    barrier ``b`` precedes round ``b``, with the initial-report wait
    mapping to -1).
    """
    pid, _tid, _cat, name, _t0, _dur, args = record
    rnd = args.get("round")
    if rnd is None:
        barrier = args.get("barrier")
        rnd = barrier - 1 if barrier is not None else -1
    return (rnd, pid, _PHASE_ORDER.get(name, 9))


# -- stall attribution -----------------------------------------------------


def stall_table(
    span_dicts: Iterable[Dict[str, Any]],
) -> Optional[Dict[str, Any]]:
    """Fold round-phase spans into the per-round stall attribution.

    Returns ``None`` when no round spans are present (a serial run).
    Otherwise::

        {
          "rounds": <count>,
          "phases": {phase: {count, total_ns, p50_ns, p95_ns, max_ns}},
          "critical_partition": {pid_label: rounds_it_was_slowest_in},
        }

    The critical-path partition of a round is the one whose ``compute``
    phase took longest — the partition the barrier actually waited for.
    """
    durs: Dict[str, List[int]] = {p: [] for p in ROUND_PHASES}
    slowest: Dict[int, Tuple[int, str]] = {}
    n_rounds = 0
    for s in span_dicts:
        if s["cat"] != "round":
            continue
        name = s["name"]
        bucket = durs.get(name)
        if bucket is None:
            continue
        dur = s["dur_ns"]
        bucket.append(dur)
        rnd = s["args"].get("round")
        if rnd is None:
            continue
        if rnd + 1 > n_rounds:
            n_rounds = rnd + 1
        if name == "compute":
            cur = slowest.get(rnd)
            if cur is None or dur > cur[0]:
                slowest[rnd] = (dur, s["pid"])
    if not any(durs.values()):
        return None
    critical: Dict[str, int] = {}
    for _dur, pid in slowest.values():
        critical[pid] = critical.get(pid, 0) + 1
    phases: Dict[str, Dict[str, int]] = {}
    for phase, values in durs.items():
        if not values:
            continue
        phases[phase] = {
            "count": len(values),
            "total_ns": sum(values),
            "p50_ns": int(percentile(values, 50)),
            "p95_ns": int(percentile(values, 95)),
            "max_ns": max(values),
        }
    return {
        "rounds": n_rounds,
        "phases": phases,
        "critical_partition": dict(
            sorted(critical.items(), key=lambda kv: (-kv[1], kv[0]))
        ),
    }


def format_span_summary(span_dicts: Iterable[Dict[str, Any]]) -> str:
    """Plain-text timeline digest: per (cat, name) counts and durations."""
    groups: Dict[Tuple[str, str], List[int]] = {}
    for s in span_dicts:
        groups.setdefault((s["cat"], s["name"]), []).append(s["dur_ns"])
    if not groups:
        return "(no spans recorded)"
    lines = [
        f"{'cat':<8}  {'name':<10}  {'count':>6}  {'total':>10}  "
        f"{'p50':>9}  {'p95':>9}  {'max':>9}"
    ]
    for (cat, name), values in sorted(groups.items()):
        lines.append(
            f"{cat:<8}  {name:<10}  {len(values):>6}  "
            f"{sum(values) / 1e6:>8.2f}ms  "
            f"{percentile(values, 50) / 1e3:>7.1f}us  "
            f"{percentile(values, 95) / 1e3:>7.1f}us  "
            f"{max(values) / 1e3:>7.1f}us"
        )
    return "\n".join(lines)
