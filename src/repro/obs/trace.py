"""Typed event tracing for the simulation pipeline.

A :class:`Tracer` records the packet lifecycle (enqueue / dequeue / mark /
drop, with queue index and sojourn time), AQM marking decisions, and
transport control-law updates (cwnd cuts, DCTCP alpha, DCQCN rate) into a
bounded ring buffer.  Components hold a ``tracer`` attribute that is
``None`` by default — the untraced hot path pays exactly one attribute
load and an ``is not None`` test per hook point — and a
:class:`NullTracer` is provided for call sites that prefer a null object
over a branch.

Events are stored as compact tuples and only formatted on export, so a
traced run stays cheap; :meth:`Tracer.export_jsonl` writes one JSON
object per line with sorted keys and no wall-clock fields, which makes
traces of deterministic simulations byte-identical across runs (asserted
by ``tests/test_trace_determinism.py``).

Event schema (JSONL field sets by ``ev`` kind):

=========  =============================================================
``ev``     fields
=========  =============================================================
enqueue    ``t, port, q, flow, seq, size``
dequeue    ``t, port, q, flow, seq, size, sojourn_ns``
mark       ``t, port, q, flow, seq, size, where`` (``"enq"``/``"deq"``)
drop       ``t, port, q, flow, seq, size, cause`` (``"buffer"``/``"pool"``)
cwnd       ``t, flow, cwnd, reason`` (``"ecn"``/``"fast_retx"``/``"timeout"``)
alpha      ``t, flow, alpha`` (DCTCP marking-fraction EWMA)
rate       ``t, flow, rate_bps`` (DCQCN current rate after a cut)
=========  =============================================================

``t`` is integer simulated nanoseconds.  One ``mark`` event is emitted
per *applied* CE mark, so ``ev == "mark"`` counts match
``PortStats.marked_pkts`` exactly (unless the ring wrapped — see
:attr:`Tracer.dropped_events`).
"""

from __future__ import annotations

import json
from collections import deque
from typing import IO, Deque, Dict, Iterator, Optional, Tuple, Union

#: default ring capacity — roomy for benchmark-scale runs, bounded for
#: production-scale ones (at ~8 tuple slots per event this is ~100s of MB
#: worst case, never unbounded growth)
DEFAULT_CAPACITY = 1 << 20


class Tracer:
    """Bounded ring buffer of simulation events with JSONL export."""

    #: quick feature test: ``if tracer.enabled`` (NullTracer sets False)
    enabled = True

    __slots__ = ("events", "capacity", "dropped_events")

    def __init__(self, capacity: Optional[int] = DEFAULT_CAPACITY) -> None:
        self.capacity = capacity
        self.events: Deque[Tuple] = deque(maxlen=capacity)
        #: events evicted from the ring (oldest-first) once it filled up
        self.dropped_events = 0

    def __len__(self) -> int:
        return len(self.events)

    # -- hot-path recorders (called from port / transport hook points) ----

    def _record(self, event: Tuple) -> None:
        events = self.events
        if events.maxlen is not None and len(events) == events.maxlen:
            self.dropped_events += 1
        events.append(event)

    def enqueue(self, now: int, port: str, qidx: int, pkt) -> None:
        self._record(("enq", now, port, qidx, pkt.flow_id, pkt.seq, pkt.wire_size))

    def dequeue(
        self, now: int, port: str, qidx: int, pkt, sojourn_ns: int
    ) -> None:
        self._record(
            ("deq", now, port, qidx, pkt.flow_id, pkt.seq, pkt.wire_size,
             sojourn_ns)
        )

    def mark(self, now: int, port: str, qidx: int, pkt, where: str) -> None:
        self._record(
            ("mark", now, port, qidx, pkt.flow_id, pkt.seq, pkt.wire_size,
             where)
        )

    def drop(self, now: int, port: str, qidx: int, pkt, cause: str) -> None:
        self._record(
            ("drop", now, port, qidx, pkt.flow_id, pkt.seq, pkt.wire_size,
             cause)
        )

    def cwnd(self, now: int, flow_id: int, cwnd: float, reason: str) -> None:
        self._record(("cwnd", now, flow_id, cwnd, reason))

    def alpha(self, now: int, flow_id: int, alpha: float) -> None:
        self._record(("alpha", now, flow_id, alpha))

    def rate(self, now: int, flow_id: int, rate_bps: float) -> None:
        self._record(("rate", now, flow_id, rate_bps))

    # -- export -----------------------------------------------------------

    def iter_dicts(self) -> Iterator[Dict]:
        """The recorded events as JSON-ready dicts, in record order."""
        for event in self.events:
            yield _to_dict(event)

    def export_jsonl(self, destination: Union[str, IO[str]]) -> int:
        """Write one JSON object per line; returns the line count.

        Keys are sorted and no wall-clock field is emitted, so two traces
        of the same deterministic run are byte-identical.
        """
        if isinstance(destination, str):
            with open(destination, "w") as fh:
                return self.export_jsonl(fh)
        n = 0
        for event_dict in self.iter_dicts():
            destination.write(
                json.dumps(event_dict, sort_keys=True, separators=(",", ":"))
            )
            destination.write("\n")
            n += 1
        return n

    def clear(self) -> None:
        self.events.clear()
        self.dropped_events = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Tracer {len(self.events)} events"
            f"{f' ({self.dropped_events} evicted)' if self.dropped_events else ''}>"
        )


class NullTracer(Tracer):
    """Null object: accepts every hook call, records nothing.

    For call sites that would rather hold a no-op tracer than branch on
    ``None``; components in the packet hot path use the ``None`` guard
    instead, which is one attribute load cheaper.
    """

    enabled = False

    def __init__(self) -> None:
        super().__init__(capacity=0)

    def _record(self, event: Tuple) -> None:
        pass

    def enqueue(self, now, port, qidx, pkt) -> None:
        pass

    def dequeue(self, now, port, qidx, pkt, sojourn_ns) -> None:
        pass

    def mark(self, now, port, qidx, pkt, where) -> None:
        pass

    def drop(self, now, port, qidx, pkt, cause) -> None:
        pass

    def cwnd(self, now, flow_id, cwnd, reason) -> None:
        pass

    def alpha(self, now, flow_id, alpha) -> None:
        pass

    def rate(self, now, flow_id, rate_bps) -> None:
        pass


#: shared no-op instance (stateless, so safe to share)
NULL_TRACER = NullTracer()

_KIND_NAMES = {
    "enq": "enqueue",
    "deq": "dequeue",
    "mark": "mark",
    "drop": "drop",
    "cwnd": "cwnd",
    "alpha": "alpha",
    "rate": "rate",
}


def _to_dict(event: Tuple) -> Dict:
    kind = event[0]
    if kind in ("enq", "deq", "mark", "drop"):
        d = {
            "ev": _KIND_NAMES[kind],
            "t": event[1],
            "port": event[2],
            "q": event[3],
            "flow": event[4],
            "seq": event[5],
            "size": event[6],
        }
        if kind == "deq":
            d["sojourn_ns"] = event[7]
        elif kind == "mark":
            d["where"] = event[7]
        elif kind == "drop":
            d["cause"] = event[7]
        return d
    if kind == "cwnd":
        return {
            "ev": "cwnd", "t": event[1], "flow": event[2],
            "cwnd": event[3], "reason": event[4],
        }
    if kind == "alpha":
        return {"ev": "alpha", "t": event[1], "flow": event[2], "alpha": event[3]}
    if kind == "rate":
        return {"ev": "rate", "t": event[1], "flow": event[2], "rate_bps": event[3]}
    raise ValueError(f"unknown trace event kind {kind!r}")
