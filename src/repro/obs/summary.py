"""Summarize a trace: per-queue mark rates, sojourn percentiles, drops.

Works from any iterable of event dicts (a live :class:`~repro.obs.trace.
Tracer` via ``iter_dicts()``, or a JSONL file written by
``export_jsonl``), so ``python -m repro trace out.jsonl`` and in-process
analysis share one code path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.metrics.fct import percentile

SOJOURN_PERCENTILES = (50.0, 90.0, 99.0)


@dataclass
class QueueSummary:
    """Per-(port, queue) lifecycle counts from a trace."""

    enqueued: int = 0
    dequeued: int = 0
    marked: int = 0
    dropped: int = 0

    @property
    def mark_rate(self) -> Optional[float]:
        """Marks per dequeued packet (None before any dequeue)."""
        return self.marked / self.dequeued if self.dequeued else None


@dataclass
class TraceSummary:
    """Everything ``python -m repro trace`` reports."""

    n_events: int = 0
    by_kind: Dict[str, int] = field(default_factory=dict)
    queues: Dict[Tuple[str, int], QueueSummary] = field(default_factory=dict)
    drop_causes: Dict[str, int] = field(default_factory=dict)
    sojourns_ns: List[int] = field(repr=False, default_factory=list)
    t_first_ns: Optional[int] = None
    t_last_ns: Optional[int] = None

    @property
    def total_marks(self) -> int:
        return sum(q.marked for q in self.queues.values())

    @property
    def total_drops(self) -> int:
        return sum(q.dropped for q in self.queues.values())

    def sojourn_percentile(self, p: float) -> Optional[float]:
        return percentile(self.sojourns_ns, p) if self.sojourns_ns else None

    @property
    def sojourn_mean_ns(self) -> Optional[float]:
        if not self.sojourns_ns:
            return None
        return sum(self.sojourns_ns) / len(self.sojourns_ns)


def summarize_events(events: Iterable[Dict]) -> TraceSummary:
    """Fold an event-dict stream into a :class:`TraceSummary`."""
    summary = TraceSummary()
    for event in events:
        summary.n_events += 1
        kind = event["ev"]
        summary.by_kind[kind] = summary.by_kind.get(kind, 0) + 1
        t = event["t"]
        if summary.t_first_ns is None:
            summary.t_first_ns = t
        summary.t_last_ns = t
        if kind in ("enqueue", "dequeue", "mark", "drop"):
            key = (event["port"], event["q"])
            queue = summary.queues.get(key)
            if queue is None:
                queue = summary.queues[key] = QueueSummary()
            if kind == "enqueue":
                queue.enqueued += 1
            elif kind == "dequeue":
                queue.dequeued += 1
                summary.sojourns_ns.append(event["sojourn_ns"])
            elif kind == "mark":
                queue.marked += 1
            else:
                queue.dropped += 1
                cause = event["cause"]
                summary.drop_causes[cause] = (
                    summary.drop_causes.get(cause, 0) + 1
                )
    return summary


def summarize_trace_file(path: str) -> TraceSummary:
    """Summarize a JSONL trace written by ``Tracer.export_jsonl``."""

    def events():
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    yield json.loads(line)

    return summarize_events(events())


def format_trace_summary(summary: TraceSummary) -> str:
    """Render the plain-text report the ``trace`` subcommand prints."""
    lines: List[str] = []
    span = ""
    if summary.t_first_ns is not None:
        span = (
            f" spanning {(summary.t_last_ns - summary.t_first_ns) / 1e6:.2f} ms"
            f" of simulated time"
        )
    lines.append(f"{summary.n_events} events{span}")
    if summary.by_kind:
        kinds = ", ".join(
            f"{kind}={n}" for kind, n in sorted(summary.by_kind.items())
        )
        lines.append(f"  by kind: {kinds}")

    if summary.queues:
        lines.append("")
        lines.append("per-queue lifecycle:")
        header = f"  {'queue':<16} {'enq':>8} {'deq':>8} {'marks':>7} {'drops':>7} {'mark-rate':>9}"
        lines.append(header)
        lines.append("  " + "-" * (len(header) - 2))
        for (port, qidx), q in sorted(summary.queues.items()):
            rate = f"{q.mark_rate:.3f}" if q.mark_rate is not None else "-"
            lines.append(
                f"  {f'{port}[q{qidx}]':<16} {q.enqueued:>8} {q.dequeued:>8} "
                f"{q.marked:>7} {q.dropped:>7} {rate:>9}"
            )

    if summary.sojourns_ns:
        lines.append("")
        pcts = "  ".join(
            f"p{p:g}={summary.sojourn_percentile(p) / 1e3:.1f}us"
            for p in SOJOURN_PERCENTILES
        )
        lines.append(
            f"sojourn ({len(summary.sojourns_ns)} samples): "
            f"mean={summary.sojourn_mean_ns / 1e3:.1f}us  {pcts}  "
            f"max={max(summary.sojourns_ns) / 1e3:.1f}us"
        )

    if summary.drop_causes:
        causes = ", ".join(
            f"{cause}={n}" for cause, n in sorted(summary.drop_causes.items())
        )
        lines.append(f"drop causes: {causes}")
    return "\n".join(lines)
