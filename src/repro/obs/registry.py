"""A small metrics registry: counters, gauges, log-bucketed histograms.

Components register named metrics into one :class:`MetricsRegistry` per
run; the harness snapshots the registry into ``ExperimentResult.metrics``
(a plain JSON-serialisable dict), which rides through sweep worker
payloads and the on-disk result cache unchanged.

Design notes
------------
* Metric names are dotted paths (``port.sw0:p0.marked_pkts``); the last
  dot separates the field from its owner, so reports can group per-port
  breakdowns without a schema.
* Histograms are **log2-bucketed**: a value lands in bucket
  ``value.bit_length()``, i.e. bucket *i* covers ``[2^(i-1), 2^i)``.
  This keeps memory O(64) per histogram regardless of sample count while
  preserving exact ``count``/``sum``/``min``/``max`` and percentile
  estimates within a factor of two — ample for sojourn/FCT/occupancy
  distributions that span six decades.
* Everything here is deterministic: snapshots of two identical runs are
  equal, so cached sweep payloads stay byte-identical.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

Number = Union[int, float]


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        self.value += amount

    def snapshot(self) -> int:
        return self.value


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "help", "value")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def snapshot(self) -> Number:
        return self.value


class Histogram:
    """Log2-bucketed distribution of non-negative integers."""

    __slots__ = ("name", "help", "buckets", "count", "sum", "min", "max")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.sum = 0
        self.min: Optional[int] = None
        self.max: Optional[int] = None

    def record(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"histogram {self.name} takes values >= 0, got {value}")
        value = int(value)
        idx = value.bit_length()
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def percentile(self, p: float) -> Optional[float]:
        """Upper bound of the bucket holding the p-th percentile sample.

        Nearest-rank over buckets; exact to within the bucket's factor-of
        -two width (and exact at the extremes via ``min``/``max``).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0,100], got {p}")
        if self.count == 0:
            return None
        rank = max(1, -(-int(p * self.count) // 100))  # ceil(p/100 * n)
        rank = min(rank, self.count)
        seen = 0
        for idx in sorted(self.buckets):
            seen += self.buckets[idx]
            if seen >= rank:
                upper = (1 << idx) - 1 if idx else 0
                # clamp the edge buckets to the exact observed extremes
                if self.max is not None:
                    upper = min(upper, self.max)
                if self.min is not None:
                    upper = max(upper, self.min)
                return float(upper)
        raise AssertionError("unreachable: rank <= count")  # pragma: no cover

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def snapshot(self) -> Dict:
        return {
            "type": "histogram",
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {str(idx): n for idx, n in sorted(self.buckets.items())},
        }


class MetricsRegistry:
    """Named metrics, get-or-create semantics, JSON-able snapshots."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Union[Counter, Gauge, Histogram]] = {}

    def _get_or_create(self, cls, name: str, help: str):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help)
            self._metrics[name] = metric
        elif type(metric) is not cls:
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(Counter, name, help)

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(Gauge, name, help)

    def histogram(self, name: str, help: str = "") -> Histogram:
        return self._get_or_create(Histogram, name, help)

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def __len__(self) -> int:
        return len(self._metrics)

    def items(self) -> Iterator[Tuple[str, Union[Counter, Gauge, Histogram]]]:
        return iter(self._metrics.items())

    def snapshot(self) -> Dict[str, Union[int, float, Dict]]:
        """Plain dict of every metric's current value (JSON-serialisable,
        deterministic for deterministic runs)."""
        return {name: m.snapshot() for name, m in sorted(self._metrics.items())}
