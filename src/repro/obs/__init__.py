"""Observability: event tracing, metrics registry, run profiling.

Zero-overhead-when-off instrumentation for the whole pipeline:

* :class:`Tracer` — bounded ring buffer of typed packet-lifecycle /
  AQM / transport events with deterministic JSONL export (and
  :class:`NullTracer`, the explicit no-op).
* :class:`MetricsRegistry` — counters, gauges, log-bucketed histograms
  that components register into and the harness snapshots into results.
* :class:`RunProfile` — events processed, events/sec, heap and RSS
  high-water marks per run.
* :func:`summarize_events` / :func:`summarize_trace_file` /
  :func:`format_trace_summary` — the analysis behind
  ``python -m repro trace``.

See ``docs/OBSERVABILITY.md`` for the event schema and extension guide.
"""

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    Tracer,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import RunProfile
from repro.obs.summary import (
    QueueSummary,
    TraceSummary,
    format_trace_summary,
    summarize_events,
    summarize_trace_file,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DEFAULT_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunProfile",
    "QueueSummary",
    "TraceSummary",
    "summarize_events",
    "summarize_trace_file",
    "format_trace_summary",
]
