"""Observability: event tracing, metrics registry, run profiling.

Zero-overhead-when-off instrumentation for the whole pipeline:

* :class:`Tracer` — bounded ring buffer of typed packet-lifecycle /
  AQM / transport events with deterministic JSONL export (and
  :class:`NullTracer`, the explicit no-op).
* :class:`MetricsRegistry` — counters, gauges, log-bucketed histograms
  that components register into and the harness snapshots into results.
* :class:`RunProfile` — events processed, events/sec, heap and RSS
  high-water marks per run (with :class:`RssSampler` feeding in-run
  RSS high-water samples at chunk/round boundaries).
* :class:`SpanRecorder` — the flight recorder: wall-clock span
  timelines of the serial run loop, the parallel round protocol, and
  the sweep pool, exported as Chrome trace-event JSON (Perfetto) or
  deterministic JSONL, with :func:`stall_table` attributing parallel
  wall time to compute/serialize/ipc_wait/merge phases.
* :func:`summarize_events` / :func:`summarize_trace_file` /
  :func:`format_trace_summary` — the analysis behind
  ``python -m repro trace``.

See ``docs/OBSERVABILITY.md`` for the event schema and extension guide.
"""

from repro.obs.trace import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NullTracer,
    Tracer,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.profile import RssSampler, RunProfile, current_rss_bytes
from repro.obs.spans import (
    DEFAULT_SPAN_CAPACITY,
    ROUND_PHASES,
    SpanRecorder,
    chrome_trace,
    format_span_summary,
    load_spans_jsonl,
    stall_table,
    trace_events_to_chrome,
    write_chrome,
)
from repro.obs.summary import (
    QueueSummary,
    TraceSummary,
    format_trace_summary,
    summarize_events,
    summarize_trace_file,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "DEFAULT_CAPACITY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RunProfile",
    "RssSampler",
    "current_rss_bytes",
    "SpanRecorder",
    "DEFAULT_SPAN_CAPACITY",
    "ROUND_PHASES",
    "chrome_trace",
    "write_chrome",
    "trace_events_to_chrome",
    "stall_table",
    "format_span_summary",
    "load_spans_jsonl",
    "QueueSummary",
    "TraceSummary",
    "summarize_events",
    "summarize_trace_file",
    "format_trace_summary",
]
