"""Units and conversions used throughout the simulator.

Conventions (see DESIGN.md):

* **Time** is an integer number of nanoseconds.  Integer time makes event
  ordering exact and reproducible (no floating-point ties).
* **Rates** are bits per second (plain ints such as ``1 * GBPS``).
* **Sizes** are bytes.  ``KB = 1000`` bytes, matching the paper's usage
  (a 1.5 KB DWRR quantum is exactly one 1500 B MTU).

The helpers below are deliberately tiny, pure functions so the hot packet
path can also inline the arithmetic directly where profiling demands it.
"""

from __future__ import annotations

# --- time ------------------------------------------------------------------

NSEC = 1
USEC = 1_000
MSEC = 1_000_000
SEC = 1_000_000_000

# --- size ------------------------------------------------------------------

BYTE = 1
KB = 1_000
MB = 1_000_000
GB = 1_000_000_000

# --- rate (bits per second) ------------------------------------------------

BPS = 1
KBPS = 1_000
MBPS = 1_000_000
GBPS = 1_000_000_000

# --- packet framing --------------------------------------------------------

MTU = 1_500          # bytes on the wire for a full-size data packet
HEADER = 40          # TCP/IP header bytes
MSS = MTU - HEADER   # maximum segment payload
ACK_SIZE = 40        # wire size of a pure ACK
PROBE_SIZE = 64      # wire size of an RTT probe (ping)


def tx_time_ns(size_bytes: int, rate_bps: int) -> int:
    """Serialization delay of ``size_bytes`` on a ``rate_bps`` link, in ns.

    Rounds up so that back-to-back transmissions never overlap.

    >>> tx_time_ns(1500, 10 * GBPS)
    1200
    >>> tx_time_ns(1500, GBPS)
    12000
    """
    if rate_bps <= 0:
        raise ValueError(f"rate must be positive, got {rate_bps}")
    bits = size_bytes * 8
    return -(-bits * SEC // rate_bps)  # ceil division


def bytes_in_flight(rate_bps: int, duration_ns: int) -> int:
    """Number of bytes a ``rate_bps`` link carries in ``duration_ns``.

    Useful for bandwidth-delay products:

    >>> bytes_in_flight(10 * GBPS, 100 * USEC)
    125000
    """
    return rate_bps * duration_ns // (8 * SEC)


def rate_bps_from(bytes_count: int, duration_ns: int) -> float:
    """Average rate in bits/s for ``bytes_count`` bytes over ``duration_ns``."""
    if duration_ns <= 0:
        raise ValueError(f"duration must be positive, got {duration_ns}")
    return bytes_count * 8 * SEC / duration_ns


def fmt_time(t_ns: int) -> str:
    """Human-readable time, e.g. ``fmt_time(1500) == '1.500us'``."""
    if t_ns >= SEC:
        return f"{t_ns / SEC:.3f}s"
    if t_ns >= MSEC:
        return f"{t_ns / MSEC:.3f}ms"
    if t_ns >= USEC:
        return f"{t_ns / USEC:.3f}us"
    return f"{t_ns}ns"


def fmt_rate(rate_bps: float) -> str:
    """Human-readable rate, e.g. ``fmt_rate(5e9) == '5.00Gbps'``."""
    if rate_bps >= GBPS:
        return f"{rate_bps / GBPS:.2f}Gbps"
    if rate_bps >= MBPS:
        return f"{rate_bps / MBPS:.2f}Mbps"
    if rate_bps >= KBPS:
        return f"{rate_bps / KBPS:.2f}Kbps"
    return f"{rate_bps:.0f}bps"
