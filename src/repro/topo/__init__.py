"""Topology builders: the testbed star and the leaf-spine fabric."""

from repro.topo.star import StarTopology
from repro.topo.leafspine import LeafSpineTopology

__all__ = ["StarTopology", "LeafSpineTopology"]
