"""Star topology: N hosts on one switch — the paper's testbed shape (§6.1).

Every switch egress port gets a fresh scheduler and AQM from the supplied
factories (mirroring the per-NIC qdisc instances of the prototype); host
NICs are plain FIFOs.  The base RTT of the topology is
``4 x link_delay_ns`` plus serialization, matching how the paper quotes its
250 us testbed / 100 us simulation base RTTs.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.aqm.base import Aqm
from repro.net.classifier import DscpClassifier
from repro.net.host import Host
from repro.net.link import Link
from repro.net.nic import make_nic
from repro.net.port import EgressPort
from repro.net.switch import Switch
from repro.sched.base import Scheduler
from repro.sim.engine import Simulator
from repro.units import KB

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.transport.flow import Flow

SchedFactory = Callable[[], Scheduler]
AqmFactory = Callable[[], Optional[Aqm]]


class StarTopology:
    """N hosts, one switch, symmetric links."""

    def __init__(
        self,
        sim: Simulator,
        n_hosts: int,
        link_rate_bps: int,
        sched_factory: SchedFactory,
        aqm_factory: AqmFactory,
        buffer_bytes: int = 96 * KB,
        link_delay_ns: int = 62_500,
        classifier_table: Optional[dict] = None,
    ) -> None:
        if n_hosts < 2:
            raise ValueError(f"need at least 2 hosts, got {n_hosts}")
        self.sim = sim
        self.link_rate_bps = link_rate_bps
        self.link_delay_ns = link_delay_ns
        self.switch = Switch(sim, name="sw0")
        self.hosts: List[Host] = []
        for host_id in range(n_hosts):
            scheduler = sched_factory()
            n_queues = len(scheduler.queues)
            port = EgressPort(
                sim,
                rate_bps=link_rate_bps,
                buffer_bytes=buffer_bytes,
                scheduler=scheduler,
                aqm=aqm_factory(),
                classify=DscpClassifier(n_queues, classifier_table),
                name=f"sw0:p{host_id}",
            )
            self.switch.add_port(port)
            self.switch.set_route(host_id, port)
            nic = make_nic(
                sim,
                rate_bps=link_rate_bps,
                link=Link(self.switch, link_delay_ns),
                name=f"h{host_id}:nic",
            )
            host = Host(sim, host_id, nic)
            port.link = Link(host, link_delay_ns)
            self.hosts.append(host)

    @property
    def base_rtt_ns(self) -> int:
        """Propagation-only RTT between two hosts through the switch."""
        return 4 * self.link_delay_ns

    def port_to(self, host_id: int) -> EgressPort:
        """The switch egress port facing ``host_id`` (the bottleneck for
        traffic toward that host)."""
        return self.switch.ports[host_id]

    def fluid_path(self, flow: "Flow") -> List[Tuple[EgressPort, int]]:
        """Forward-path ports a fluid abstraction of ``flow`` crosses.

        Each entry is ``(port, wire_delay_ns)``; the fluid engine turns
        the ports into capacity constraints and sums the delays into
        the path's propagation latency.
        """
        return [
            (self.hosts[flow.src].nic, self.link_delay_ns),
            (self.switch.ports[flow.dst], self.link_delay_ns),
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<StarTopology {len(self.hosts)} hosts @{self.link_rate_bps}bps>"
