"""Leaf-spine fabric with per-flow ECMP — the §6.2 simulation topology.

Hosts hang off leaf (ToR) switches; every leaf connects to every spine.
Up-traffic picks a spine by hashing the flow id (per-flow ECMP, so a flow —
and its reverse ACK stream — sticks to one path and never reorders), down-
traffic routes by destination.  The paper's full scale is 12 leaves x 12
spines x 144 hosts; the builder takes arbitrary dimensions so benchmarks
can run a scaled-down fabric with identical structure.

All fabric egress ports (leaf->host, leaf->spine, spine->leaf) receive the
same scheduler/AQM configuration, as in the ns-2 setup where every switch
port runs the scheme under test.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, List, Optional, Tuple

from repro.aqm.base import Aqm
from repro.net.classifier import DscpClassifier
from repro.net.host import Host
from repro.net.link import Link
from repro.net.nic import make_nic
from repro.net.packet import Packet
from repro.net.port import EgressPort
from repro.net.switch import Switch
from repro.sched.base import Scheduler
from repro.sim.engine import Simulator
from repro.units import KB

if TYPE_CHECKING:  # pragma: no cover - annotation-only
    from repro.transport.flow import Flow

SchedFactory = Callable[[], Scheduler]
AqmFactory = Callable[[], Optional[Aqm]]

_HASH_MULT = 2654435761  # Knuth multiplicative hash


class LeafSpineTopology:
    """A (possibly scaled-down) leaf-spine datacenter fabric."""

    def __init__(
        self,
        sim: Simulator,
        n_leaf: int,
        n_spine: int,
        hosts_per_leaf: int,
        sched_factory: SchedFactory,
        aqm_factory: AqmFactory,
        edge_rate_bps: int,
        fabric_rate_bps: Optional[int] = None,
        buffer_bytes: int = 300 * KB,
        host_link_delay_ns: int = 20_000,
        fabric_link_delay_ns: int = 650,
        classifier_table: Optional[dict] = None,
        ecmp_salt: int = 0,
    ) -> None:
        if n_leaf < 1 or n_spine < 1 or hosts_per_leaf < 1:
            raise ValueError(
                f"invalid fabric dimensions "
                f"({n_leaf} leaves, {n_spine} spines, {hosts_per_leaf} hosts/leaf)"
            )
        self.sim = sim
        self.n_leaf = n_leaf
        self.n_spine = n_spine
        self.hosts_per_leaf = hosts_per_leaf
        self.edge_rate_bps = edge_rate_bps
        self.fabric_rate_bps = fabric_rate_bps or edge_rate_bps
        self.host_link_delay_ns = host_link_delay_ns
        self.fabric_link_delay_ns = fabric_link_delay_ns
        self.ecmp_salt = ecmp_salt
        self.hosts: List[Host] = []
        self.leaves: List[Switch] = []
        self.spines: List[Switch] = []

        def new_port(sw: Switch, rate: int, name: str) -> EgressPort:
            scheduler = sched_factory()
            port = EgressPort(
                sim,
                rate_bps=rate,
                buffer_bytes=buffer_bytes,
                scheduler=scheduler,
                aqm=aqm_factory(),
                classify=DscpClassifier(len(scheduler.queues), classifier_table),
                name=name,
            )
            return sw.add_port(port)

        for leaf_id in range(n_leaf):
            leaf = Switch(sim, name=f"leaf{leaf_id}")
            self.leaves.append(leaf)
        for spine_id in range(n_spine):
            spine = Switch(sim, name=f"spine{spine_id}")
            self.spines.append(spine)

        # hosts and leaf->host ports
        for leaf_id, leaf in enumerate(self.leaves):
            for slot in range(hosts_per_leaf):
                host_id = leaf_id * hosts_per_leaf + slot
                port = new_port(leaf, edge_rate_bps, f"leaf{leaf_id}:h{slot}")
                nic = make_nic(
                    sim,
                    rate_bps=edge_rate_bps,
                    link=Link(leaf, host_link_delay_ns),
                    name=f"h{host_id}:nic",
                )
                host = Host(sim, host_id, nic)
                port.link = Link(host, host_link_delay_ns)
                leaf.set_route(host_id, port)
                self.hosts.append(host)

        # leaf<->spine ports
        self._uplinks: List[List[EgressPort]] = []
        for leaf_id, leaf in enumerate(self.leaves):
            ups = []
            for spine_id, spine in enumerate(self.spines):
                up = new_port(leaf, self.fabric_rate_bps, f"leaf{leaf_id}:up{spine_id}")
                up.link = Link(spine, fabric_link_delay_ns)
                ups.append(up)
                down = new_port(
                    spine, self.fabric_rate_bps, f"spine{spine_id}:down{leaf_id}"
                )
                down.link = Link(leaf, fabric_link_delay_ns)
                for slot in range(hosts_per_leaf):
                    spine.set_route(leaf_id * hosts_per_leaf + slot, down)
            self._uplinks.append(ups)

        for leaf_id, leaf in enumerate(self.leaves):
            leaf.route_fn = self._make_leaf_router(leaf_id, leaf)

    # -- routing -------------------------------------------------------------

    def leaf_of(self, host_id: int) -> int:
        return host_id // self.hosts_per_leaf

    def ecmp_spine(self, flow_id: int) -> int:
        """Deterministic per-flow spine choice."""
        return ((flow_id + self.ecmp_salt) * _HASH_MULT & 0xFFFFFFFF) % self.n_spine

    def fluid_path(self, flow: "Flow") -> List[Tuple[EgressPort, int]]:
        """Forward-path ports a fluid abstraction of ``flow`` crosses.

        Each entry is ``(port, wire_delay_ns)``.  Per-flow ECMP makes
        the path deterministic and single-valued — the same spine the
        packet engine would hash this flow onto.
        """
        src, dst = flow.src, flow.dst
        src_leaf = src // self.hosts_per_leaf
        dst_leaf = dst // self.hosts_per_leaf
        hops: List[Tuple[EgressPort, int]] = [
            (self.hosts[src].nic, self.host_link_delay_ns)
        ]
        if src_leaf != dst_leaf:
            spine_id = self.ecmp_spine(flow.id)
            hops.append(
                (self._uplinks[src_leaf][spine_id], self.fabric_link_delay_ns)
            )
            hops.append(
                (
                    self.spines[spine_id]._dst_table[dst],
                    self.fabric_link_delay_ns,
                )
            )
        hops.append(
            (self.leaves[dst_leaf]._dst_table[dst], self.host_link_delay_ns)
        )
        return hops

    def _make_leaf_router(self, leaf_id: int, leaf: Switch):
        # Everything the per-packet decision needs is bound as closure
        # locals: the router runs for every packet crossing the leaf, so
        # it must not chase attributes or call helper methods.  The
        # arithmetic mirrors ecmp_spine() exactly.
        uplinks = self._uplinks[leaf_id]
        hosts_per_leaf = self.hosts_per_leaf
        n_spine = self.n_spine
        salt = self.ecmp_salt
        dst_table = leaf._dst_table

        def route(pkt: Packet) -> EgressPort:
            dst = pkt.dst
            if dst // hosts_per_leaf == leaf_id:
                return dst_table[dst]
            return uplinks[
                ((pkt.flow_id + salt) * _HASH_MULT & 0xFFFFFFFF) % n_spine
            ]

        # Sealed fast path: the same decision with the delivery folded in,
        # installed as an instance-level ``receive``.  This drops one
        # Python frame per leaf hop; instrumentation that patches
        # ``leaf.receive`` after construction still wins (it overwrites
        # this closure exactly as it would the class method).
        def receive(pkt: Packet) -> None:
            dst = pkt.dst
            if dst // hosts_per_leaf == leaf_id:
                dst_table[dst].receive(pkt)
            else:
                uplinks[
                    ((pkt.flow_id + salt) * _HASH_MULT & 0xFFFFFFFF) % n_spine
                ].receive(pkt)

        leaf.receive = receive  # type: ignore[method-assign]
        return route

    # -- conveniences --------------------------------------------------------

    @property
    def n_hosts(self) -> int:
        return self.n_leaf * self.hosts_per_leaf

    @property
    def base_rtt_ns(self) -> int:
        """Propagation-only RTT between hosts under different leaves
        (host links + 2 fabric hops each way)."""
        return 4 * self.host_link_delay_ns + 8 * self.fabric_link_delay_ns

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<LeafSpine {self.n_leaf}x{self.n_spine} "
            f"{self.n_hosts} hosts @{self.edge_rate_bps}bps>"
        )
