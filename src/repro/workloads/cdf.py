"""Empirical flow-size distributions (piecewise-linear inverse CDF).

The same representation ns-2 workload generators use: an ordered list of
``(size_bytes, cumulative_probability)`` points, sampled by drawing a
uniform variate and interpolating linearly within the enclosing segment.
Analytic helpers (mean, quantiles, byte shares) let tests pin down the
skewness properties the paper cites — e.g. "~60% of the web search
workload's bytes come from flows smaller than 10 MB".
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import Sequence, Tuple


class EmpiricalCdf:
    """A flow-size CDF given as ``(size_bytes, cdf)`` knots.

    >>> cdf = EmpiricalCdf("tiny", [(1000, 0.0), (2000, 1.0)])
    >>> cdf.mean()
    1500.0
    >>> cdf.quantile(1.0)
    2000.0
    """

    def __init__(self, name: str, points: Sequence[Tuple[float, float]]) -> None:
        if len(points) < 2:
            raise ValueError(f"{name}: need at least 2 CDF points")
        sizes = [float(s) for s, _ in points]
        probs = [float(p) for _, p in points]
        if probs[0] != 0.0 or probs[-1] != 1.0:
            raise ValueError(f"{name}: CDF must start at 0 and end at 1")
        for i in range(1, len(points)):
            if sizes[i] < sizes[i - 1] or probs[i] < probs[i - 1]:
                raise ValueError(f"{name}: CDF points must be non-decreasing")
        if sizes[0] <= 0:
            raise ValueError(f"{name}: sizes must be positive")
        self.name = name
        self.sizes = sizes
        self.probs = probs

    # -- sampling -------------------------------------------------------------

    def sample(self, rng: random.Random) -> int:
        """Draw one flow size (bytes, >= 1)."""
        return max(1, int(round(self.quantile(rng.random()))))

    def quantile(self, p: float) -> float:
        """Inverse CDF with linear interpolation between knots."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0,1], got {p}")
        probs = self.probs
        i = bisect_left(probs, p)
        if i == 0:
            return self.sizes[0]
        if i >= len(probs):
            return self.sizes[-1]
        p0, p1 = probs[i - 1], probs[i]
        s0, s1 = self.sizes[i - 1], self.sizes[i]
        if p1 == p0:
            return s1
        frac = (p - p0) / (p1 - p0)
        return s0 + frac * (s1 - s0)

    # -- analytics --------------------------------------------------------------

    def mean(self) -> float:
        """Expected flow size under piecewise-linear interpolation."""
        total = 0.0
        for i in range(1, len(self.sizes)):
            dp = self.probs[i] - self.probs[i - 1]
            total += dp * (self.sizes[i] + self.sizes[i - 1]) / 2.0
        return total

    def byte_fraction_below(self, size_bytes: float) -> float:
        """Fraction of all *bytes* contributed by flows of size <= ``size_bytes``."""
        total = self.mean()
        if total <= 0:
            return 0.0
        acc = 0.0
        for i in range(1, len(self.sizes)):
            s0, s1 = self.sizes[i - 1], self.sizes[i]
            dp = self.probs[i] - self.probs[i - 1]
            if dp == 0:
                continue
            if s1 <= size_bytes:
                acc += dp * (s0 + s1) / 2.0
            elif s0 < size_bytes:
                # partial segment: sizes are uniform on [s0, s1] within it
                frac = (size_bytes - s0) / (s1 - s0)
                acc += dp * frac * (s0 + size_bytes) / 2.0
            else:
                break
        return acc / total

    def fraction_below(self, size_bytes: float) -> float:
        """CDF evaluated at ``size_bytes`` (fraction of *flows*)."""
        sizes = self.sizes
        i = bisect_left(sizes, size_bytes)
        if i == 0:
            return 0.0 if size_bytes < sizes[0] else self.probs[0]
        if i >= len(sizes):
            return 1.0
        s0, s1 = sizes[i - 1], sizes[i]
        p0, p1 = self.probs[i - 1], self.probs[i]
        if s1 == s0:
            return p1
        return p0 + (size_bytes - s0) / (s1 - s0) * (p1 - p0)

    def truncated(self, max_size_bytes: float) -> "EmpiricalCdf":
        """A copy with the tail clipped at ``max_size_bytes``.

        Probability mass above the clip collapses onto the clip point.
        Used by the scaled-down benchmarks: a single gigabyte flow costs
        millions of simulator events, and clipping the extreme tail keeps
        the heavy-tailed *shape* while bounding per-flow cost (the clip is
        always documented next to its use).
        """
        if max_size_bytes <= self.sizes[0]:
            raise ValueError(
                f"clip {max_size_bytes} below the smallest size {self.sizes[0]}"
            )
        points = [
            (s, p) for s, p in zip(self.sizes, self.probs) if s < max_size_bytes
        ]
        points.append((max_size_bytes, 1.0))
        return EmpiricalCdf(f"{self.name}<=clip", points)

    def __repr__(self) -> str:
        return (
            f"<EmpiricalCdf {self.name}: {len(self.sizes)} knots, "
            f"mean={self.mean():.0f}B>"
        )
