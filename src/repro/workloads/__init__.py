"""Traffic workloads: empirical flow-size CDFs and Poisson flow generation."""

from repro.workloads.cdf import EmpiricalCdf
from repro.workloads.distributions import (
    WEB_SEARCH,
    DATA_MINING,
    HADOOP,
    CACHE,
    ALL_WORKLOADS,
    workload_by_name,
)
from repro.workloads.generator import FlowGenerator

__all__ = [
    "EmpiricalCdf",
    "WEB_SEARCH",
    "DATA_MINING",
    "HADOOP",
    "CACHE",
    "ALL_WORKLOADS",
    "workload_by_name",
    "FlowGenerator",
]
