"""The four production workloads of Figure 4.

The paper's Figure 4 plots flow-size CDFs measured in production
datacenters: a web search workload (DCTCP, Alizadeh et al.), a data mining
workload (VL2, Greenberg et al.), and Hadoop and cache workloads from
Facebook (Roy et al.).  The original figure is an image; the knot tables
below are the widely-circulated reconstructions used by the ns-2 scripts of
this research line (PIAS / MQ-ECN / TCN), and they preserve the properties
the paper text relies on:

* all four are heavy-tailed (most flows small, most bytes in large flows);
* web search is the least skewed — roughly 60% of its bytes come from
  flows smaller than 10 MB, so many flows are concurrently active
  (``tests/test_workloads.py`` pins these properties down).

Sizes are bytes; the web search table is the classic packet-denominated
table multiplied out at 1460 B per packet.
"""

from __future__ import annotations

from typing import Dict, List

from repro.units import KB, MB
from repro.workloads.cdf import EmpiricalCdf

_PKT = 1460  # the web-search table is denominated in full segments

#: Web search (DCTCP): query/response traffic, least skewed of the four.
WEB_SEARCH = EmpiricalCdf(
    "websearch",
    [
        (1 * _PKT, 0.0),
        (2 * _PKT, 0.15),
        (3 * _PKT, 0.20),
        (5 * _PKT, 0.30),
        (7 * _PKT, 0.40),
        (40 * _PKT, 0.53),
        (72 * _PKT, 0.60),
        (137 * _PKT, 0.70),
        (667 * _PKT, 0.80),
        (1462 * _PKT, 0.90),
        (3255 * _PKT, 0.95),
        (6849 * _PKT, 0.98),
        (20000 * _PKT, 1.0),
    ],
)

#: Data mining (VL2): extremely skewed — tiny control messages plus a
#: gigabyte-scale tail.
DATA_MINING = EmpiricalCdf(
    "datamining",
    [
        (100, 0.0),
        (180, 0.10),
        (250, 0.20),
        (560, 0.30),
        (900, 0.40),
        (1100, 0.50),
        (1870, 0.60),
        (3160, 0.70),
        (10 * KB, 0.80),
        (400 * KB, 0.90),
        (3160 * KB, 0.95),
        (100 * MB, 0.98),
        (1000 * MB, 1.0),
    ],
)

#: Hadoop (Facebook): bimodal shuffle traffic.
HADOOP = EmpiricalCdf(
    "hadoop",
    [
        (150, 0.0),
        (300, 0.20),
        (1 * KB, 0.40),
        (10 * KB, 0.60),
        (100 * KB, 0.75),
        (1 * MB, 0.85),
        (10 * MB, 0.95),
        (100 * MB, 0.99),
        (1000 * MB, 1.0),
    ],
)

#: Cache (Facebook): key-value traffic, almost all flows small with a
#: moderate tail.
CACHE = EmpiricalCdf(
    "cache",
    [
        (100, 0.0),
        (300, 0.10),
        (500, 0.20),
        (700, 0.30),
        (1 * KB, 0.40),
        (2 * KB, 0.55),
        (5 * KB, 0.70),
        (10 * KB, 0.80),
        (20 * KB, 0.90),
        (50 * KB, 0.95),
        (100 * KB, 0.975),
        (500 * KB, 0.99),
        (10 * MB, 1.0),
    ],
)

#: Bulk transfer: a synthetic two-point mix for the fluid/hybrid mode —
#: 30% short request/response messages (30 KB) and 70% long bulk
#: transfers (25 MB), so most *flows above any reasonable promotion
#: threshold are identical long transfers* whose steady state the fluid
#: model describes exactly.  Not a paper workload; built for the
#: `leafspine_fluid` bench scenario and the fluid accuracy harness,
#: where a controlled long-flow population keeps the packet-vs-fluid
#: comparison free of heavy-tail sampling noise.
BULK = EmpiricalCdf(
    "bulk",
    [
        (30 * KB, 0.0),
        (30 * KB, 0.3),
        (25 * MB, 0.3),
        (25 * MB, 1.0),
    ],
)

#: All four, in the order the paper lists them (Fig. 4).
ALL_WORKLOADS: List[EmpiricalCdf] = [WEB_SEARCH, DATA_MINING, HADOOP, CACHE]

_BY_NAME: Dict[str, EmpiricalCdf] = {w.name: w for w in ALL_WORKLOADS}
_BY_NAME[BULK.name] = BULK


def workload_by_name(name: str) -> EmpiricalCdf:
    """Look a workload up by its canonical name.

    >>> workload_by_name("websearch").name
    'websearch'
    """
    try:
        return _BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown workload {name!r}; choose from {sorted(_BY_NAME)}"
        ) from None
