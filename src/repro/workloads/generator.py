"""Open-loop Poisson flow generation at a target load.

Reproduces the paper's client/server traffic pattern: flow arrivals form a
Poisson process whose rate is chosen so the expected offered traffic equals
``load`` x bottleneck capacity, flow sizes are drawn from an empirical CDF,
and each flow is assigned to a service (switch queue).

Two shapes cover all the experiments:

* :meth:`FlowGenerator.many_to_one` — the testbed pattern (§6.1.2): many
  senders fetch toward one receiver, load defined on the receiver's access
  link.
* :meth:`FlowGenerator.all_to_all` — the leaf-spine pattern (§6.2): every
  host originates flows at ``load`` x its edge rate toward uniformly random
  other hosts; communication pairs are partitioned into services, each
  service optionally drawing sizes from its own workload (Fig. 10's "7
  services with different traffic distributions").
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.sim.rng import RngFactory
from repro.transport.flow import Flow
from repro.units import SEC
from repro.workloads.cdf import EmpiricalCdf


class FlowGenerator:
    """Builds deterministic flow schedules from a seeded RNG factory."""

    def __init__(self, rng: RngFactory) -> None:
        self.rng = rng

    # -- patterns ----------------------------------------------------------

    def many_to_one(
        self,
        senders: Sequence[int],
        receiver: int,
        cdf: EmpiricalCdf,
        load: float,
        link_rate_bps: int,
        n_flows: int,
        n_services: int = 1,
        start_ns: int = 0,
        first_flow_id: int = 0,
    ) -> List[Flow]:
        """Poisson flows from random senders to one receiver.

        Load is measured on the receiver's access link; each flow is mapped
        to a uniformly random service queue, as in §6.1.2 ("a flow is
        randomly mapped to one of the 4 service queues").
        """
        _check_load(load)
        stream = self.rng.stream("flows")
        arrival_gap_ns = _mean_gap_ns(cdf, load, link_rate_bps)
        flows: List[Flow] = []
        t = start_ns
        for i in range(n_flows):
            t += _exp_ns(stream, arrival_gap_ns)
            src = senders[stream.randrange(len(senders))]
            service = stream.randrange(n_services)
            flows.append(
                Flow(
                    first_flow_id + i,
                    src,
                    receiver,
                    cdf.sample(stream),
                    start_ns=t,
                    service=service,
                )
            )
        return flows

    def all_to_all(
        self,
        hosts: Sequence[int],
        cdfs: Sequence[EmpiricalCdf],
        load: float,
        edge_rate_bps: int,
        n_flows: int,
        start_ns: int = 0,
        first_flow_id: int = 0,
    ) -> List[Flow]:
        """Poisson flows between uniformly random host pairs.

        The service of a flow is derived from its (src, dst) pair —
        ``(src + dst) % n_services`` — which evenly partitions the
        ``n x (n-1)`` communication pairs into services exactly as §6.2
        prescribes, and each service samples its own workload CDF.

        The aggregate arrival rate equals ``n_hosts x load x edge_rate /
        (8 x mean_size)`` with the mean averaged over the per-service
        workloads, so every host's expected egress load is ``load``.
        """
        _check_load(load)
        if len(hosts) < 2:
            raise ValueError("all_to_all needs at least two hosts")
        stream = self.rng.stream("flows")
        n_services = len(cdfs)
        mean_size = sum(c.mean() for c in cdfs) / n_services
        per_host_gap_ns = mean_size * 8 * SEC / (load * edge_rate_bps)
        aggregate_gap_ns = per_host_gap_ns / len(hosts)
        flows: List[Flow] = []
        t = start_ns
        for i in range(n_flows):
            t += _exp_ns(stream, aggregate_gap_ns)
            src = hosts[stream.randrange(len(hosts))]
            dst = src
            while dst == src:
                dst = hosts[stream.randrange(len(hosts))]
            service = (src + dst) % n_services
            flows.append(
                Flow(
                    first_flow_id + i,
                    src,
                    dst,
                    cdfs[service].sample(stream),
                    start_ns=t,
                    service=service,
                )
            )
        return flows


def _check_load(load: float) -> None:
    if not 0.0 < load < 1.0:
        raise ValueError(f"load must be in (0, 1), got {load}")


def _mean_gap_ns(cdf: EmpiricalCdf, load: float, rate_bps: int) -> float:
    """Mean Poisson inter-arrival so offered bytes match load x rate."""
    return cdf.mean() * 8 * SEC / (load * rate_bps)


def _exp_ns(stream: random.Random, mean_ns: float) -> int:
    return max(1, int(stream.expovariate(1.0 / mean_ns)))
