"""``python -m repro bench``: run the pinned scenarios, emit JSON, gate.

Examples::

    # run everything, write BENCH_*.json into the current directory
    python -m repro bench

    # two scenarios, best-of-3, results under out/
    python -m repro bench -s engine_churn -s incast --repeat 3 --out out/

    # CI gate: fail (exit 1) if any scenario lost >30% events/sec
    python -m repro bench --compare benchmarks/baselines
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.runner import (
    DEFAULT_THRESHOLD,
    compare_results,
    load_results,
    run_scenario,
    write_result,
)
from repro.bench.scenarios import SCENARIOS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Run the pinned hot-path microbenchmarks and write one "
            "BENCH_<scenario>.json per scenario."
        ),
    )
    parser.add_argument(
        "-s",
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="repetitions per scenario; the fastest is kept (default 1)",
    )
    parser.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for BENCH_*.json files (default: cwd)",
    )
    parser.add_argument(
        "--compare",
        metavar="PATH",
        default=None,
        help=(
            "baseline BENCH_*.json file or directory; exit 1 when any "
            "scenario regressed beyond the threshold"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=(
            "fractional events/sec loss that counts as a regression "
            f"(default {DEFAULT_THRESHOLD:g} = fail below "
            f"{100 * (1 - DEFAULT_THRESHOLD):.0f}%% of baseline)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list scenarios and exit",
    )
    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            print(f"{name}: {SCENARIOS[name].description}")
        return 0
    names = args.scenario or sorted(SCENARIOS)
    results = []
    for name in names:
        result = run_scenario(name, repeat=args.repeat)
        results.append(result)
        path = write_result(result, args.out)
        print(f"{result.describe()} -> {path}")
    if args.compare is None:
        return 0
    try:
        baseline = load_results(args.compare)
    except (OSError, KeyError, ValueError) as exc:
        print(f"error: cannot load baseline: {exc}", file=sys.stderr)
        return 2
    comparisons = compare_results(
        results, baseline, threshold=args.threshold
    )
    print()
    regressed = False
    for comparison in comparisons:
        print(comparison.describe())
        regressed = regressed or comparison.regressed
    missing = [r.scenario for r in results if r.scenario not in baseline]
    if missing:
        print(f"(no baseline for: {', '.join(missing)})")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
