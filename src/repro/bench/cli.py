"""``python -m repro bench``: run the pinned scenarios, emit JSON, gate.

Examples::

    # run everything, write BENCH_*.json into the current directory
    python -m repro bench

    # two scenarios, best-of-3, results under out/
    python -m repro bench -s engine_churn -s incast --repeat 3 --out out/

    # CI gate: fail (exit 1) if any scenario lost >30% events/sec
    python -m repro bench --compare benchmarks/baselines

    # same gate on the ladder event-queue backend, comparison as JSON
    python -m repro bench -s engine_churn --equeue ladder \\
        --compare benchmarks/baselines --compare-json compare.json
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys
from typing import Dict, Optional

from repro.obs.spans import SpanRecorder

from repro.bench.runner import (
    DEFAULT_THRESHOLD,
    BenchResult,
    compare_results,
    load_results,
    run_scenario,
    write_result,
)
from repro.bench.scenarios import SCENARIOS
from repro.sim.equeue import BACKENDS


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description=(
            "Run the pinned hot-path microbenchmarks and write one "
            "BENCH_<scenario>.json per scenario."
        ),
    )
    parser.add_argument(
        "-s",
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="scenario to run (repeatable; default: all)",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=1,
        help="repetitions per scenario; the fastest is kept (default 1)",
    )
    parser.add_argument(
        "--equeue",
        choices=sorted(BACKENDS) + ["auto"],
        default="heap",
        help=(
            "event-queue backend to run the scenarios on (default heap; "
            "results are bit-identical across backends, only speed moves)"
        ),
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        help=(
            "partitioned-engine worker count for leafspine scenarios "
            "(default 0 = serial; fingerprints are worker-count "
            "invariant, so --compare stays apples-to-apples)"
        ),
    )
    parser.add_argument(
        "--no-batch",
        action="store_false",
        dest="batch",
        help=(
            "disable the batched hot path (same-timestamp run draining "
            "and inline transmit trains); results are bit-identical, "
            "only speed moves — useful for before/after measurements "
            "and as a CI cross-check"
        ),
    )
    parser.add_argument(
        "--mode",
        choices=("packet", "fluid", "hybrid"),
        default=None,
        help=(
            "override every scenario's pinned simulation mode (default: "
            "each scenario's own — packet for all but leafspine_fluid). "
            "Modes do different work, so do not gate (--compare) "
            "against baselines of another mode"
        ),
    )
    parser.add_argument(
        "--sanitize",
        action="store_true",
        help=(
            "arm the runtime sanitizer for every scenario (freelist "
            "poisoning, event-queue order checks, partition-ownership "
            "assertions).  Checking costs wall time, so do not gate "
            "(--compare) against sanitizer-off baselines"
        ),
    )
    parser.add_argument(
        "--out",
        default=".",
        metavar="DIR",
        help="directory for BENCH_*.json files (default: cwd)",
    )
    parser.add_argument(
        "--spans",
        metavar="DIR",
        default=None,
        help=(
            "record the flight recorder during each scenario and write "
            "the kept repetition's timeline there as "
            "SPANS_<scenario>.jsonl + TRACE_<scenario>.json "
            "(Perfetto-loadable); also folds the stall-attribution "
            "table into BENCH_<scenario>.json.  Recording costs a "
            "little wall time, so do not gate (--compare) against "
            "spans-off baselines"
        ),
    )
    parser.add_argument(
        "--compare",
        metavar="PATH",
        default=None,
        help=(
            "baseline BENCH_*.json file or directory; exit 1 when any "
            "scenario regressed beyond the threshold"
        ),
    )
    parser.add_argument(
        "--compare-json",
        metavar="FILE",
        default=None,
        help=(
            "also write the --compare outcome as JSON (one object per "
            "scenario pair) — CI uploads this as an artifact"
        ),
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=(
            "fractional events/sec loss that counts as a regression "
            f"(default {DEFAULT_THRESHOLD:g} = fail below "
            f"{100 * (1 - DEFAULT_THRESHOLD):.0f}%% of baseline)"
        ),
    )
    parser.add_argument(
        "--list",
        action="store_true",
        dest="list_scenarios",
        help="list scenarios and exit",
    )
    return parser


def _geomean(ratios) -> Optional[float]:
    """Geometric mean of per-scenario ev/s ratios (None when empty).

    One cross-scenario number for perf-trajectory eyeballing: the
    geomean weights a 2x on a fast scenario and a 2x on a slow one
    equally, where an arithmetic mean over ev/s would drown the slow
    one.  Never gates — the per-scenario threshold does that.
    """
    if not ratios:
        return None
    log_sum = sum(math.log(r) for r in ratios)
    return math.exp(log_sum / len(ratios))


def _load_baseline(path: str) -> Optional[Dict[str, BenchResult]]:
    """Load the baseline, or print a one-line diagnosis and return None.

    Anything a bad path or malformed file can raise — missing file,
    unreadable JSON, a JSON document of the wrong shape (``TypeError``
    covers e.g. a top-level array), missing keys — must surface as a
    single actionable line, never a traceback.
    """
    try:
        return load_results(path)
    except (OSError, KeyError, ValueError, TypeError) as exc:
        detail = str(exc) or exc.__class__.__name__
        print(
            f"error: cannot load baseline from {path!r}: {detail}",
            file=sys.stderr,
        )
        return None


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_scenarios:
        for name in sorted(SCENARIOS):
            print(f"{name}: {SCENARIOS[name].description}")
        return 0
    if args.compare_json is not None and args.compare is None:
        print("error: --compare-json requires --compare", file=sys.stderr)
        return 2
    # validate the baseline *before* spending minutes on scenarios
    baseline = None
    if args.compare is not None:
        baseline = _load_baseline(args.compare)
        if baseline is None:
            return 2
    names = args.scenario or sorted(SCENARIOS)
    results = []
    for name in names:
        spans = SpanRecorder(pid="run") if args.spans is not None else None
        try:
            result = run_scenario(
                name,
                repeat=args.repeat,
                equeue=args.equeue,
                workers=args.workers,
                spans=spans,
                batch=args.batch,
                sanitize=args.sanitize,
                mode=args.mode,
            )
        except ValueError as exc:
            # e.g. --mode on a scenario with nothing to promote
            print(f"error: {name}: {exc}", file=sys.stderr)
            return 2
        results.append(result)
        path = write_result(result, args.out)
        print(f"{result.describe()} -> {path}")
        if spans is not None and len(spans.spans):
            os.makedirs(args.spans, exist_ok=True)
            jsonl = os.path.join(args.spans, f"SPANS_{name}.jsonl")
            trace = os.path.join(args.spans, f"TRACE_{name}.json")
            spans.export_jsonl(jsonl)
            spans.export_chrome(trace)
            print(f"  spans -> {jsonl}, {trace}")
    if baseline is None:
        return 0
    comparisons = compare_results(
        results, baseline, threshold=args.threshold
    )
    print()
    regressed = False
    for comparison in comparisons:
        print(comparison.describe())
        regressed = regressed or comparison.regressed
    ratios = [c.ratio for c in comparisons if c.ratio > 0]
    geomean = _geomean(ratios)
    if geomean is not None:
        n = len(ratios)
        print(
            f"geomean ev/s ratio over {n} scenario{'s' if n != 1 else ''}: "
            f"{geomean:.2f}x"
        )
    missing = [r.scenario for r in results if r.scenario not in baseline]
    if missing:
        print(f"(no baseline for: {', '.join(missing)})")
    if args.compare_json is not None:
        payload = {
            "equeue": args.equeue,
            "batch": args.batch,
            "threshold": args.threshold,
            "regressed": regressed,
            "geomean_ratio": round(geomean, 4) if geomean else None,
            "comparisons": [
                {
                    "scenario": c.scenario,
                    "baseline_eps": c.baseline_eps,
                    "new_eps": c.new_eps,
                    "ratio": round(c.ratio, 4),
                    "regressed": c.regressed,
                    "fingerprint_changed": c.fingerprint_changed,
                    "workers": c.workers,
                    "rounds": c.rounds,
                    "sync_stall_s": round(c.sync_stall_s, 6),
                    "start_method": c.start_method,
                }
                for c in comparisons
            ],
            "missing_baselines": missing,
        }
        with open(args.compare_json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"comparison JSON -> {args.compare_json}")
    return 1 if regressed else 0


if __name__ == "__main__":
    sys.exit(main())
