"""Bench execution and regression comparison.

``run_scenario`` runs one pinned scenario ``repeat`` times and keeps the
fastest repetition (events/sec): best-of-N is the standard answer to
wall-clock noise on shared CI runners, and the deterministic fields are
identical across repetitions anyway (the runner asserts so).

``compare_results`` implements the regression gate: new vs baseline by
scenario name, fail when events/sec dropped by more than ``threshold``
(default 30% — generous, because CI machines are noisy; the point is to
catch accidental algorithmic regressions, not 2% jitter).
"""

from __future__ import annotations

import json
import os
import platform
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Union

from repro.bench.scenarios import SCENARIOS
from repro.net.packet import freelist_stats, reset_freelist
from repro.obs.spans import SpanRecorder

SCHEMA_VERSION = 1

#: default regression threshold: fail below 70% of baseline throughput
DEFAULT_THRESHOLD = 0.30

Number = Union[int, float]


@dataclass
class BenchResult:
    """One scenario's measurements, as serialized to BENCH_<name>.json."""

    scenario: str
    events: int
    wall_s: float
    events_per_sec: float
    heap_hwm: int
    rss_hwm_bytes: int
    #: packet-freelist counters for the run: fresh allocations vs reuses
    allocations: Dict[str, int] = field(default_factory=dict)
    #: deterministic facts (completed/sim_ns/...) — build fingerprint
    fingerprint: Dict[str, Number] = field(default_factory=dict)
    repeat: int = 1
    schema: int = SCHEMA_VERSION
    python: str = ""
    machine: str = ""
    #: event-queue backend the scenario ran on (repro.sim.equeue name)
    equeue: str = "heap"
    #: the backend's structure counters from the kept repetition
    equeue_stats: Dict[str, int] = field(default_factory=dict)
    #: partitioned-engine worker count the scenario ran with (0 = serial)
    workers: int = 0
    #: CPUs the host exposed — context for judging parallel numbers
    cpu_count: int = 0
    #: barrier rounds the partitioned run synchronised through (0 = serial)
    rounds: int = 0
    #: coordinator wall time spent blocked on worker round reports
    sync_stall_s: float = 0.0
    #: multiprocessing start method of the partitioned run ("" = serial)
    start_method: str = ""
    #: per-phase stall attribution (stall_table output) when the scenario
    #: ran with span recording — empty otherwise
    phase_stats: Dict[str, object] = field(default_factory=dict)
    #: whether the batched hot path was on (old baselines default True —
    #: pre-batching engines and batch=True are throughput-comparable
    #: claims about the same scenario)
    batch: bool = True
    #: batched hot-path counters (runs_drained, trains, train_pkts,
    #: train_fallbacks, run/train histograms); empty in old baselines
    batch_stats: Dict[str, object] = field(default_factory=dict)
    #: simulation mode the scenario ran in (packet / fluid / hybrid);
    #: baselines of different modes are not throughput-comparable
    mode: str = "packet"
    #: FluidNetwork.stats_dict() counters (promoted flows, epochs,
    #: solver iterations, threshold crossings); empty for packet runs
    #: and in old baselines
    fluid_stats: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": self.schema,
            "scenario": self.scenario,
            "events": self.events,
            "wall_s": round(self.wall_s, 6),
            "events_per_sec": round(self.events_per_sec, 1),
            "heap_hwm": self.heap_hwm,
            "rss_hwm_bytes": self.rss_hwm_bytes,
            "allocations": self.allocations,
            "fingerprint": self.fingerprint,
            "repeat": self.repeat,
            "python": self.python,
            "machine": self.machine,
            "equeue": self.equeue,
            "equeue_stats": self.equeue_stats,
            "workers": self.workers,
            "cpu_count": self.cpu_count,
            "rounds": self.rounds,
            "sync_stall_s": round(self.sync_stall_s, 6),
            "start_method": self.start_method,
            "phase_stats": self.phase_stats,
            "batch": self.batch,
            "batch_stats": self.batch_stats,
            "mode": self.mode,
            "fluid_stats": self.fluid_stats,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchResult":
        return cls(
            scenario=str(data["scenario"]),
            events=int(data["events"]),  # type: ignore[arg-type]
            wall_s=float(data["wall_s"]),  # type: ignore[arg-type]
            events_per_sec=float(data["events_per_sec"]),  # type: ignore[arg-type]
            heap_hwm=int(data.get("heap_hwm", 0)),  # type: ignore[arg-type]
            rss_hwm_bytes=int(data.get("rss_hwm_bytes", 0)),  # type: ignore[arg-type]
            allocations=dict(data.get("allocations", {})),  # type: ignore[arg-type]
            fingerprint=dict(data.get("fingerprint", {})),  # type: ignore[arg-type]
            repeat=int(data.get("repeat", 1)),  # type: ignore[arg-type]
            schema=int(data.get("schema", SCHEMA_VERSION)),  # type: ignore[arg-type]
            python=str(data.get("python", "")),
            machine=str(data.get("machine", "")),
            equeue=str(data.get("equeue", "heap")),
            equeue_stats=dict(data.get("equeue_stats", {})),  # type: ignore[arg-type]
            workers=int(data.get("workers", 0)),  # type: ignore[arg-type]
            cpu_count=int(data.get("cpu_count", 0)),  # type: ignore[arg-type]
            rounds=int(data.get("rounds", 0)),  # type: ignore[arg-type]
            sync_stall_s=float(data.get("sync_stall_s", 0.0)),  # type: ignore[arg-type]
            start_method=str(data.get("start_method", "")),
            phase_stats=dict(data.get("phase_stats", {})),  # type: ignore[arg-type]
            # default-tolerant: baselines written before the batched hot
            # path carry neither key
            batch=bool(data.get("batch", True)),
            batch_stats=dict(data.get("batch_stats", {})),  # type: ignore[arg-type]
            # default-tolerant too: pre-fluid baselines are packet runs
            mode=str(data.get("mode", "packet")),
            fluid_stats=dict(data.get("fluid_stats", {})),  # type: ignore[arg-type]
        )

    def describe(self) -> str:
        alloc = self.allocations
        reuse = ""
        if alloc.get("packets_allocated") or alloc.get("packets_reused"):
            total = alloc["packets_allocated"] + alloc["packets_reused"]
            pct = 100.0 * alloc["packets_reused"] / total if total else 0.0
            reuse = f", {pct:.0f}% pkt reuse"
        backend = f", equeue {self.equeue}" if self.equeue != "heap" else ""
        fluid = ""
        if self.mode != "packet":
            fluid = f", {self.mode} mode"
            if self.fluid_stats:
                fluid += (
                    f" ({self.fluid_stats.get('flows', 0)} fluid flows, "
                    f"{self.fluid_stats.get('epochs', 0)} epochs)"
                )
        par = ""
        if self.workers:
            par = f", {self.workers} workers on {self.cpu_count} cpus"
            if self.start_method:
                par += f" via {self.start_method}"
            if self.rounds:
                par += (
                    f", {self.rounds} rounds, "
                    f"{self.sync_stall_s:.2f}s sync stall"
                )
        return (
            f"{self.scenario}: {self.events_per_sec / 1e3:.0f}k ev/s "
            f"({self.events} events, {self.wall_s:.2f}s wall, "
            f"heap hwm {self.heap_hwm}{reuse}{backend}{fluid}{par})"
        )


def run_scenario(
    name: str,
    repeat: int = 1,
    equeue: str = "heap",
    workers: int = 0,
    spans: Optional["SpanRecorder"] = None,
    batch: bool = True,
    sanitize: bool = False,
    mode: Optional[str] = None,
) -> BenchResult:
    """Run one pinned scenario ``repeat`` times; keep the fastest.

    ``equeue`` selects the event-queue backend and ``workers`` the
    partitioned-engine worker count (leafspine scenarios only; 0 runs
    the serial engine); the scenario's deterministic fingerprint must
    come out identical regardless, which the cross-repetition assertion
    below extends to the cross-backend and serial-vs-partitioned
    comparisons made by the CLI and CI.

    ``spans`` turns the flight recorder on for every repetition: the
    kept (fastest) repetition's spans land in the recorder and its
    stall-attribution table in ``BenchResult.phase_stats``.  Recording
    costs a little wall time per chunk/round boundary, so spans-on
    numbers are not comparable with spans-off baselines — keep the flag
    off for regression gating.

    ``mode`` overrides the scenario's pinned simulation mode (None runs
    the pin).  Modes do different work by design, so mode-crossed
    comparisons are apples-to-oranges — the recorded ``BenchResult.mode``
    lets the reader catch that.
    """
    scenario = SCENARIOS[name]
    effective_mode = mode if mode is not None else scenario.mode
    spans_on = spans is not None and spans.enabled
    best_profile: Optional[Dict[str, object]] = None
    best_spans: Optional["SpanRecorder"] = None
    fingerprint: Optional[Mapping[str, Number]] = None
    allocations: Dict[str, int] = {}
    for _ in range(max(1, repeat)):
        reset_freelist()
        rep_spans: Optional["SpanRecorder"] = None
        if spans_on and spans is not None:
            rep_spans = SpanRecorder(capacity=spans.capacity, pid=spans.pid)
        profile, run_fingerprint = scenario.run(
            equeue=equeue, workers=workers, spans=rep_spans, batch=batch,
            sanitize=sanitize, mode=mode,
        )
        allocated, reused, _free = freelist_stats()
        if fingerprint is not None and dict(run_fingerprint) != dict(
            fingerprint
        ):
            raise AssertionError(
                f"{name}: non-deterministic across repetitions: "
                f"{dict(fingerprint)} != {dict(run_fingerprint)}"
            )
        fingerprint = run_fingerprint
        if (
            best_profile is None
            or profile["events_per_sec"] > best_profile["events_per_sec"]
        ):
            best_profile = profile
            best_spans = rep_spans
            allocations = {
                "packets_allocated": allocated,
                "packets_reused": reused,
            }
    assert best_profile is not None and fingerprint is not None
    if spans is not None and best_spans is not None:
        spans.clear()
        spans.adopt(best_spans.spans, best_spans.dropped_spans)
    return BenchResult(
        scenario=name,
        events=int(best_profile["events"]),  # type: ignore[call-overload]
        wall_s=float(best_profile["wall_s"]),  # type: ignore[arg-type]
        events_per_sec=float(best_profile["events_per_sec"]),  # type: ignore[arg-type]
        heap_hwm=int(best_profile["heap_hwm"]),  # type: ignore[call-overload]
        rss_hwm_bytes=int(best_profile["rss_hwm_bytes"]),  # type: ignore[call-overload]
        allocations=allocations,
        fingerprint=dict(fingerprint),
        repeat=max(1, repeat),
        python=platform.python_version(),
        machine=platform.machine(),
        equeue=str(best_profile.get("equeue", "heap")),
        equeue_stats=dict(best_profile.get("equeue_stats", {})),  # type: ignore[arg-type,call-overload]
        workers=int(best_profile.get("workers", 0)),  # type: ignore[call-overload]
        cpu_count=int(best_profile.get("cpu_count", os.cpu_count() or 1)),  # type: ignore[call-overload]
        rounds=int(best_profile.get("rounds", 0)),  # type: ignore[call-overload]
        sync_stall_s=float(best_profile.get("sync_stall_s", 0.0)),  # type: ignore[arg-type]
        start_method=str(best_profile.get("start_method", "")),
        phase_stats=dict(best_profile.get("phase_stats", {})),  # type: ignore[call-overload]
        mode=effective_mode,
        fluid_stats=dict(best_profile.get("fluid_stats", {})),  # type: ignore[arg-type,call-overload]
        batch=batch,
        batch_stats={
            k: best_profile[k]
            for k in (
                "runs_drained",
                "run_hist",
                "trains",
                "train_pkts",
                "train_hist",
                "train_fallbacks",
            )
            if k in best_profile
        },
    )


def write_result(result: BenchResult, out_dir: str) -> str:
    """Write ``BENCH_<scenario>.json`` under ``out_dir``; return the path."""
    os.makedirs(out_dir, exist_ok=True)
    path = os.path.join(out_dir, f"BENCH_{result.scenario}.json")
    with open(path, "w") as fh:
        json.dump(result.as_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def load_results(path: str) -> Dict[str, BenchResult]:
    """Load baseline results from a BENCH_*.json file or a directory."""
    paths: List[str]
    if os.path.isdir(path):
        paths = sorted(
            os.path.join(path, name)
            for name in os.listdir(path)
            if name.startswith("BENCH_") and name.endswith(".json")
        )
        if not paths:
            raise FileNotFoundError(f"no BENCH_*.json files under {path}")
    else:
        paths = [path]
    results = {}
    for file_path in paths:
        with open(file_path) as fh:
            result = BenchResult.from_dict(json.load(fh))
        results[result.scenario] = result
    return results


@dataclass
class Comparison:
    """Outcome of one new-vs-baseline scenario pair."""

    scenario: str
    baseline_eps: float
    new_eps: float
    ratio: float  # new / baseline
    regressed: bool
    fingerprint_changed: bool
    #: parallel context of the *new* run (zero/empty when serial) — a
    #: parallel regression is diagnosed through rounds and sync stall,
    #: not throughput alone
    workers: int = 0
    rounds: int = 0
    sync_stall_s: float = 0.0
    start_method: str = ""

    def describe(self) -> str:
        verdict = "REGRESSED" if self.regressed else "ok"
        note = " [fingerprint changed]" if self.fingerprint_changed else ""
        par = ""
        if self.workers:
            par = (
                f" [{self.workers}w/{self.start_method or '?'}: "
                f"{self.rounds} rounds, "
                f"{self.sync_stall_s:.2f}s sync stall]"
            )
        return (
            f"{self.scenario}: {self.baseline_eps / 1e3:.0f}k -> "
            f"{self.new_eps / 1e3:.0f}k ev/s ({self.ratio:.2f}x) "
            f"{verdict}{par}{note}"
        )


def compare_results(
    new: Iterable[BenchResult],
    baseline: Mapping[str, BenchResult],
    threshold: float = DEFAULT_THRESHOLD,
) -> List[Comparison]:
    """Compare new results to a baseline; scenarios absent there are skipped.

    A fingerprint mismatch is reported but is not by itself a failure:
    it usually means the two builds intentionally do different work (a
    behaviour change shipped with the perf change), which makes the
    throughput comparison apples-to-oranges — the human reads the note.
    """
    comparisons = []
    for result in new:
        base = baseline.get(result.scenario)
        if base is None:
            continue
        ratio = (
            result.events_per_sec / base.events_per_sec
            if base.events_per_sec
            else float("inf")
        )
        comparisons.append(
            Comparison(
                scenario=result.scenario,
                baseline_eps=base.events_per_sec,
                new_eps=result.events_per_sec,
                ratio=ratio,
                regressed=ratio < 1.0 - threshold,
                fingerprint_changed=bool(base.fingerprint)
                and base.fingerprint != result.fingerprint,
                workers=result.workers,
                rounds=result.rounds,
                sync_stall_s=result.sync_stall_s,
                start_method=result.start_method,
            )
        )
    return comparisons
