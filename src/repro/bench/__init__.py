"""Microbenchmark subsystem: pinned-seed scenarios for the hot path.

Every perf-sensitive change to the simulation core is judged by the same
four scenarios, run through ``python -m repro bench``:

``engine_churn``
    Pure event-loop work — schedule / cancel / lazy-discard churn with a
    rotating timer set, no network objects at all.  Isolates the heap.
``port_saturation``
    One FIFO NIC driven at 0.9 load: the single-queue bypass path and the
    serializer, with almost no scheduler work.
``incast``
    300 cache flows into one star port at 0.95 load through DWRR: queue
    pressure, ECN marking, and the RTO machinery all active at once.
``leafspine_slice``
    A 2x2 leaf-spine fabric with the mixed workload through SP+DWRR: the
    full pipeline (ECMP, hybrid scheduler, PIAS tags) — the scenario the
    paper-scale sweeps are made of.

Each run writes ``BENCH_<scenario>.json`` with throughput (events/sec),
wall time, the engine's heap high-water mark, peak RSS, and packet
freelist counters.  ``--compare`` re-reads a previous set of files and
fails when throughput regressed beyond a threshold — this is what the CI
bench-smoke job runs against the committed baselines.

Seeds and sizes are pinned: two runs of the same scenario on the same
code execute the identical event sequence, so the deterministic fields
(``events`` aside from wall-clock noise, ``sim_ns``, ``completed``)
double as a quick correctness fingerprint.
"""

from repro.bench.runner import (
    BenchResult,
    compare_results,
    load_results,
    run_scenario,
    write_result,
)
from repro.bench.scenarios import SCENARIOS, Scenario

__all__ = [
    "SCENARIOS",
    "Scenario",
    "BenchResult",
    "run_scenario",
    "write_result",
    "load_results",
    "compare_results",
]
