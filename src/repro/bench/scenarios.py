"""The pinned scenarios: what each one stresses, and how it runs.

A scenario is a name, a one-line description, and a ``run()`` (taking
optional ``equeue`` backend-name, ``workers`` count, ``spans`` recorder,
and ``batch`` toggle keywords) returning ``(profile, fingerprint)``:

* ``profile`` — the :class:`~repro.obs.profile.RunProfile` dict for the
  run (events, heap_hwm, wall_s, events_per_sec, rss_hwm_bytes);
* ``fingerprint`` — deterministic facts about *what* the run computed
  (completed flows, simulated ns, ...), used to confirm that two builds
  being compared actually did the same work.

Everything here is seed-pinned; do not change sizes or seeds without
regenerating the committed baselines in ``benchmarks/baselines/``.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Dict, Mapping, NamedTuple, Optional, Tuple, Union

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.obs.profile import RunProfile
from repro.obs.spans import SpanRecorder
from repro.sim.engine import Simulator

Fingerprint = Mapping[str, Union[int, float]]
Profile = Dict[str, object]
RunFn = Callable[..., Tuple[Profile, Fingerprint]]


class Scenario(NamedTuple):
    name: str
    description: str
    run: RunFn
    #: the simulation mode the scenario pins (the bench CLI's --mode
    #: overrides it run-wide; results are not comparable across modes)
    mode: str = "packet"


def _engine_churn(
    equeue: str = "heap",
    workers: int = 0,
    spans: Optional[SpanRecorder] = None,
    batch: bool = True,
    sanitize: bool = False,
    mode: Optional[str] = None,
) -> Tuple[Profile, Fingerprint]:
    """Pure engine stress: a rotating timer set under constant churn.

    Models the shape RTO timers impose on the heap: a driver event fires
    every 10 ns, cancels the oldest of 256 outstanding timers and arms a
    replacement 5 us out.  Every timer is cancelled well before its
    deadline (it reaches the front of the rotation after 2.56 us), so
    the heap carries a steady tombstone population that the pop loop
    drains lazily — this exercises schedule, cancel, the tombstone
    drain, and tie-ordered dispatch, with zero network objects.

    ``spans`` is accepted for interface uniformity and ignored: the
    scenario drives the ``Simulator`` directly, without the chunked
    harness loop the serial span instrumentation hangs off.
    """
    del spans
    if workers:
        raise ValueError(
            "engine_churn has no fabric to partition (workers must be 0)"
        )
    if mode not in (None, "packet"):
        raise ValueError(
            "engine_churn has no flows to promote (mode must be packet)"
        )
    steps = 200_000
    k_timers = 256
    timer_horizon_ns = 5_000
    sim = Simulator(equeue=equeue, batch=batch, sanitize=sanitize or None)
    timers = deque()

    def noop() -> None:
        pass

    for i in range(k_timers):
        timers.append(sim.schedule(timer_horizon_ns + i, noop))

    remaining = [steps]

    def drive() -> None:
        left = remaining[0]
        if left == 0:
            for handle in timers:
                sim.cancel(handle)
            return
        remaining[0] = left - 1
        sim.cancel(timers.popleft())
        timers.append(sim.schedule(timer_horizon_ns, noop))
        sim.schedule(10, drive)

    sim.schedule(0, drive)
    # simlint: disable=SIM001 -- benchmark timing: perf_counter measures the run, it does not drive it
    start = time.perf_counter()
    sim.run()
    # simlint: disable=SIM001 -- closes the benchmark timing pair above
    wall = time.perf_counter() - start
    profile = RunProfile.capture(sim, wall).as_dict()
    fingerprint = {"steps": steps, "sim_ns": sim.now}
    return profile, fingerprint


def _experiment(**overrides) -> RunFn:
    def run(
        equeue: str = "heap",
        workers: int = 0,
        spans: Optional[SpanRecorder] = None,
        batch: bool = True,
        sanitize: bool = False,
        mode: Optional[str] = None,
    ) -> Tuple[Profile, Fingerprint]:
        params = dict(overrides)
        if mode is not None:
            params["mode"] = mode
        result = run_experiment(
            ExperimentConfig(
                equeue=equeue, workers=workers, batch=batch,
                sanitize=sanitize, **params
            ),
            spans=spans,
        )
        fingerprint = {
            "completed": result.completed,
            "total": result.total,
            "timeouts": result.timeouts,
            "drops": result.drops,
            "marks": result.marks,
            "sim_ns": result.sim_ns,
        }
        # the fluid engine's epoch/solver counters are deterministic
        # run properties too — pin them so a solver change that alters
        # the work done surfaces as a fingerprint note, not silence
        fluid = result.profile.get("fluid_stats")
        if isinstance(fluid, dict) and fluid:
            fingerprint["fluid_epochs"] = int(fluid.get("epochs", 0))
            fingerprint["fluid_completed"] = int(fluid.get("completed", 0))
        return dict(result.profile), fingerprint

    return run


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            "engine_churn",
            "event-loop schedule/cancel churn, no network objects",
            _engine_churn,
        ),
        Scenario(
            "port_saturation",
            "one FIFO NIC at 0.9 load (single-queue bypass path)",
            _experiment(
                scheme="tcn",
                scheduler="fifo",
                n_queues=1,
                workload="datamining",
                load=0.9,
                n_flows=30,
                seed=11,
            ),
        ),
        Scenario(
            "incast",
            "300 cache flows into one DWRR star port at 0.95 load",
            _experiment(
                scheme="tcn",
                scheduler="dwrr",
                workload="cache",
                load=0.95,
                n_flows=300,
                seed=13,
            ),
        ),
        Scenario(
            "leafspine_full",
            "12x12 leaf-spine, 144 hosts, mixed workload (partitionable "
            "with --workers; the fingerprint is worker-count invariant)",
            _experiment(
                scheme="tcn",
                scheduler="sp_dwrr",
                topology="leafspine",
                n_leaf=12,
                n_spine=12,
                hosts_per_leaf=12,
                workload="mixed",
                load=0.6,
                n_flows=400,
                seed=7,
            ),
        ),
        Scenario(
            "leafspine_slice",
            "2x2 leaf-spine fabric, mixed workload through SP+DWRR",
            _experiment(
                scheme="tcn",
                scheduler="sp_dwrr",
                topology="leafspine",
                workload="mixed",
                load=0.6,
                n_flows=120,
                seed=3,
            ),
        ),
        Scenario(
            "leafspine_fluid",
            "4x4 leaf-spine, bulk workload, hybrid mode: ~70 long "
            "(25 MB) flows on the fluid solver, shorts packet-exact "
            "(the packet-mode A/B of this exact config is the speedup "
            "evidence in docs/FLUID.md)",
            _experiment(
                scheme="tcn",
                scheduler="sp_dwrr",
                topology="leafspine",
                n_leaf=4,
                n_spine=4,
                hosts_per_leaf=4,
                workload="bulk",
                load=0.7,
                n_flows=100,
                seed=5,
                mode="hybrid",
                fluid_size_bytes=1_000_000,
            ),
            mode="hybrid",
        ),
    )
}
