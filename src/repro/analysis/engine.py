"""The simlint engine: file walking, pragmas, baseline, rule registry.

The engine is deliberately small and dependency-free (stdlib ``ast`` only):

* A **rule** is a callable ``(ModuleInfo) -> Iterable[Finding]`` registered
  through the :func:`rule` decorator, carrying an id (``SIMxxx``), a default
  severity, and a one-line rationale.
* **Pragmas** suppress findings inline::

      time.time()  # simlint: disable=SIM001 -- wall clock feeds wall_s only

  The justification after ``--`` is *mandatory*: a pragma without one does
  not suppress and instead raises a ``SIM000`` finding.  A pragma on a line
  of its own applies to the next source line; ``disable-file=`` applies to
  the whole module.  Pragmas that suppress nothing are reported (warning) so
  dead suppressions cannot accumulate.
* The **baseline** grandfathers existing findings: fingerprints are
  line-number-independent (rule + path + normalized source line + occurrence
  index), so unrelated edits do not invalidate it.  Only *new* error-level
  findings fail the lint.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
import tokenize
from pathlib import Path
from typing import (
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

#: bump when the baseline file format changes incompatibly
BASELINE_VERSION = 1
#: bump when the ``--format json`` report schema changes incompatibly
JSON_SCHEMA_VERSION = 1

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"

#: id reserved for pragma hygiene (malformed / unknown-rule / unused)
PRAGMA_RULE_ID = "SIM000"

_PRAGMA_RE = re.compile(
    r"#\s*simlint:\s*(?P<kind>disable|disable-file)\s*=\s*"
    r"(?P<rules>[A-Za-z0-9_,\s]+?)"
    r"(?:\s*--\s*(?P<why>.*\S))?\s*$"
)


class Finding(NamedTuple):
    """One diagnostic: a rule firing at a source location."""

    rule: str
    path: str  # repo-relative posix path
    line: int  # 1-based
    col: int  # 0-based
    severity: str
    message: str
    snippet: str  # stripped source line

    def fingerprint_key(self) -> str:
        """Line-number-independent identity used for baselining.

        Whitespace inside the snippet is collapsed so reformatting a line
        does not churn the baseline; the occurrence index for identical
        (rule, path, snippet) triples is appended by the baseline matcher.
        """
        norm = " ".join(self.snippet.split())
        return f"{self.rule}|{self.path}|{norm}"

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


#: rule scopes: module rules see one file, project rules see the whole run
SCOPE_MODULE = "module"
SCOPE_PROJECT = "project"


class Rule(NamedTuple):
    """A registered rule: metadata plus its check function.

    ``scope`` selects the check signature: ``"module"`` rules are called
    as ``check(mod)``, ``"project"`` rules as ``check(mod, project)``
    with the :class:`repro.analysis.symbols.Project` built over every
    module in the lint run.
    """

    id: str
    name: str
    severity: str
    rationale: str
    check: Callable[..., Iterable[Finding]]
    scope: str = SCOPE_MODULE


_REGISTRY: Dict[str, Rule] = {}


def rule(
    id: str,
    name: str,
    severity: str = SEVERITY_ERROR,
    rationale: str = "",
    scope: str = SCOPE_MODULE,
) -> Callable[[Callable[..., Iterable[Finding]]], Callable]:
    """Class/function decorator registering a simlint rule.

    >>> @rule("SIM999", "demo", rationale="docs example")
    ... def _check(mod):
    ...     return []
    >>> registered_rules()["SIM999"].name
    'demo'
    >>> _ = _REGISTRY.pop("SIM999")
    """

    def decorate(fn: Callable[..., Iterable[Finding]]) -> Callable:
        if id in _REGISTRY:
            raise ValueError(f"duplicate rule id {id}")
        if scope not in (SCOPE_MODULE, SCOPE_PROJECT):
            raise ValueError(f"unknown rule scope {scope!r}")
        _REGISTRY[id] = Rule(id, name, severity, rationale, fn, scope)
        return fn

    return decorate


def registered_rules() -> Dict[str, Rule]:
    """The rule registry (id -> Rule), importing the built-in rules."""
    # The import is deferred so engine <-> rules can cross-reference.
    from repro.analysis import rules as _rules  # noqa: F401

    return dict(_REGISTRY)


def rule_range() -> str:
    """The registry-derived id span, e.g. ``"SIM001..SIM017"``.

    User-facing text (CLI help, docs pointers) must use this instead of a
    hardcoded span so the advertised range can never rot as rules are
    added (it did once: "SIM001..SIM010" survived three rule additions).
    """
    ids = sorted(rid for rid in registered_rules() if rid != PRAGMA_RULE_ID)
    if not ids:
        return "none"
    if len(ids) == 1:
        return ids[0]
    return f"{ids[0]}..{ids[-1]}"


class Pragma(NamedTuple):
    line: int  # line the pragma comment sits on
    rules: Tuple[str, ...]
    justification: Optional[str]  # None = malformed (missing)
    file_wide: bool
    raw: str


class ModuleInfo:
    """One parsed module: tree, source lines, dotted name, pragmas."""

    def __init__(self, path: Path, rel: str, source: str) -> None:
        self.path = path
        self.rel = rel
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel)
        self.module = _dotted_module(rel)
        self.pragmas = _scan_pragmas(path, source)

    # -- helpers for rule authors ---------------------------------------

    def finding(
        self, rule_id: str, node: ast.AST, message: str, severity: Optional[str] = None
    ) -> Finding:
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        snippet = self.lines[line - 1].strip() if line <= len(self.lines) else ""
        if severity is None:
            severity = _REGISTRY[rule_id].severity if rule_id in _REGISTRY else SEVERITY_ERROR
        return Finding(rule_id, self.rel, line, col, severity, message, snippet)

    def package_parts(self) -> Tuple[str, ...]:
        """Dotted module split into parts, e.g. ('repro', 'sim', 'engine')."""
        return tuple(self.module.split("."))

    def in_packages(self, names: Iterable[str]) -> bool:
        """True when the module lives under ``repro.<one of names>``."""
        parts = self.package_parts()
        return len(parts) >= 2 and parts[0] == "repro" and parts[1] in set(names)


def _dotted_module(rel: str) -> str:
    """``src/repro/sim/engine.py`` -> ``repro.sim.engine``."""
    parts = Path(rel).with_suffix("").parts
    if "repro" in parts:
        parts = parts[parts.index("repro"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _scan_pragmas(path: Path, source: str) -> List[Pragma]:
    """Extract simlint pragmas from comments via the tokenizer.

    Using :mod:`tokenize` (not a line regex) means pragma-looking text inside
    string literals can never suppress anything.
    """
    pragmas: List[Pragma] = []
    try:
        tokens = tokenize.generate_tokens(iter(source.splitlines(True)).__next__)
        for tok in tokens:
            if tok.type != tokenize.COMMENT or "simlint:" not in tok.string:
                continue
            match = _PRAGMA_RE.search(tok.string)
            if match is None:
                # pragma-looking comment that does not parse: malformed
                pragmas.append(
                    Pragma(tok.start[0], (), None, False, tok.string.strip())
                )
                continue
            ids = tuple(
                r.strip().upper() for r in match.group("rules").split(",") if r.strip()
            )
            pragmas.append(
                Pragma(
                    tok.start[0],
                    ids,
                    match.group("why"),
                    match.group("kind") == "disable-file",
                    tok.string.strip(),
                )
            )
    except tokenize.TokenError:  # unterminated strings etc.: no pragmas
        pass
    return pragmas


# -- baseline ------------------------------------------------------------


class Baseline:
    """Grandfathered findings, persisted as fingerprint -> count.

    Counts (not sets) let several identical findings on distinct lines of
    one file be baselined individually: the first N occurrences of a
    fingerprint are absorbed, the N+1st is new.
    """

    def __init__(self, counts: Optional[Dict[str, int]] = None) -> None:
        self.counts: Dict[str, int] = dict(counts or {})

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.exists():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"baseline {path} has version {data.get('version')!r}, "
                f"expected {BASELINE_VERSION} — re-run with --write-baseline"
            )
        return cls(data.get("fingerprints", {}))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        counts: Dict[str, int] = {}
        for f in findings:
            key = _digest(f.fingerprint_key())
            counts[key] = counts.get(key, 0) + 1
        return cls(counts)

    def write(self, path: Path) -> None:
        payload = {
            "version": BASELINE_VERSION,
            "fingerprints": dict(sorted(self.counts.items())),
        }
        path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding]]:
        """Split into (baselined, new), consuming counts in file order."""
        remaining = dict(self.counts)
        old: List[Finding] = []
        new: List[Finding] = []
        for f in findings:
            key = _digest(f.fingerprint_key())
            if remaining.get(key, 0) > 0:
                remaining[key] -= 1
                old.append(f)
            else:
                new.append(f)
        return old, new


def _digest(key: str) -> str:
    return hashlib.sha256(key.encode()).hexdigest()[:16]


# -- the lint run --------------------------------------------------------


class LintResult:
    """Everything one lint run produced, pre-partitioned for reporting."""

    def __init__(
        self,
        findings: List[Finding],
        baselined: List[Finding],
        parse_errors: List[Finding],
        files_checked: int,
    ) -> None:
        #: live findings (pragma-suppressed removed, baseline removed)
        self.findings = findings
        self.baselined = baselined
        self.parse_errors = parse_errors
        self.files_checked = files_checked

    @property
    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_ERROR]

    @property
    def warnings(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == SEVERITY_WARNING]

    @property
    def ok(self) -> bool:
        """Gate condition: no new error-severity findings, no parse errors."""
        return not self.errors and not self.parse_errors

    def to_json(self) -> Dict:
        """The ``--format json`` document (schema pinned by tests)."""

        def encode(f: Finding, baselined: bool) -> Dict:
            return {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "severity": f.severity,
                "message": f.message,
                "snippet": f.snippet,
                "fingerprint": _digest(f.fingerprint_key()),
                "baselined": baselined,
            }

        all_rules = registered_rules()
        return {
            "version": JSON_SCHEMA_VERSION,
            "files_checked": self.files_checked,
            "ok": self.ok,
            "counts": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "baselined": len(self.baselined),
                "parse_errors": len(self.parse_errors),
            },
            "findings": (
                [encode(f, False) for f in self.findings]
                + [encode(f, True) for f in self.baselined]
                + [encode(f, False) for f in self.parse_errors]
            ),
            "rules": {
                rid: {
                    "name": r.name,
                    "severity": r.severity,
                    "rationale": r.rationale,
                }
                for rid, r in sorted(all_rules.items())
            },
        }


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield .py files under each path (sorted — deterministic output)."""
    for path in paths:
        if path.is_file() and path.suffix == ".py":
            yield path
        elif path.is_dir():
            yield from sorted(
                p for p in path.rglob("*.py") if "__pycache__" not in p.parts
            )


def _apply_pragmas(
    mod: ModuleInfo, findings: List[Finding]
) -> Tuple[List[Finding], List[Finding]]:
    """Suppress pragma-covered findings; emit SIM000 pragma-hygiene findings.

    Returns (kept, hygiene).  A pragma covers its own line and, when it is
    the only content of its line, the next line.  Malformed pragmas (no
    justification, or unknown rule ids) never suppress.
    """
    hygiene: List[Finding] = []
    known = set(_REGISTRY)
    # line -> set of rule ids suppressed there; pragma -> hit counter
    line_suppress: Dict[int, Dict[str, Pragma]] = {}
    file_suppress: Dict[str, Pragma] = {}
    used: Dict[int, bool] = {}

    def hygiene_finding(p: Pragma, message: str) -> Finding:
        snippet = (
            mod.lines[p.line - 1].strip() if p.line <= len(mod.lines) else p.raw
        )
        return Finding(
            PRAGMA_RULE_ID, mod.rel, p.line, 0, SEVERITY_ERROR, message, snippet
        )

    for p in mod.pragmas:
        if p.justification is None or not p.rules:
            hygiene.append(
                hygiene_finding(
                    p,
                    "malformed simlint pragma: expected "
                    "'# simlint: disable=<RULE[,RULE]> -- <justification>' "
                    "(the justification is mandatory)",
                )
            )
            continue
        unknown = [r for r in p.rules if r not in known]
        if unknown:
            hygiene.append(
                hygiene_finding(
                    p, f"simlint pragma names unknown rule(s): {', '.join(unknown)}"
                )
            )
            continue
        used[id(p)] = False
        if p.file_wide:
            for r in p.rules:
                file_suppress[r] = p
        else:
            stripped = mod.lines[p.line - 1].strip() if p.line <= len(mod.lines) else ""
            targets = [p.line]
            if stripped.startswith("#"):
                targets.append(p.line + 1)  # standalone pragma: next line
            for target in targets:
                bucket = line_suppress.setdefault(target, {})
                for r in p.rules:
                    bucket[r] = p

    kept: List[Finding] = []
    for f in findings:
        pragma = line_suppress.get(f.line, {}).get(f.rule) or file_suppress.get(f.rule)
        if pragma is not None:
            used[id(pragma)] = True
        else:
            kept.append(f)

    for p in mod.pragmas:
        if id(p) in used and not used[id(p)]:
            hygiene.append(
                Finding(
                    PRAGMA_RULE_ID,
                    mod.rel,
                    p.line,
                    0,
                    SEVERITY_WARNING,
                    f"unused simlint pragma (suppresses nothing): {p.raw}",
                    mod.lines[p.line - 1].strip() if p.line <= len(mod.lines) else "",
                )
            )
    return kept, hygiene


def lint_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    baseline: Optional[Baseline] = None,
    select: Optional[Iterable[str]] = None,
) -> LintResult:
    """Run every registered rule over the Python files under ``paths``.

    ``root`` anchors the repo-relative paths used in findings and baseline
    fingerprints (defaults to the current working directory).  ``select``
    restricts to a subset of rule ids (pragma hygiene always runs).
    """
    all_rules = registered_rules()
    active = [
        r
        for rid, r in sorted(all_rules.items())
        if select is None or rid in set(select)
    ]
    root = (root or Path.cwd()).resolve()
    findings: List[Finding] = []
    parse_errors: List[Finding] = []
    files = 0
    # phase 1: parse everything (project rules need the full module set
    # before any rule runs)
    mods: List[ModuleInfo] = []
    for path in iter_python_files(paths):
        files += 1
        resolved = path.resolve()
        try:
            rel = resolved.relative_to(root).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            mods.append(ModuleInfo(path, rel, path.read_text()))
        except SyntaxError as exc:
            parse_errors.append(
                Finding(
                    "PARSE",
                    rel,
                    exc.lineno or 1,
                    (exc.offset or 1) - 1,
                    SEVERITY_ERROR,
                    f"cannot parse: {exc.msg}",
                    (exc.text or "").strip(),
                )
            )
    # phase 2: symbol table + call graph, then every rule per module.
    # Findings of project rules are anchored in the module being checked,
    # so pragma application (which is per-module, per-line) gives every
    # cross-module finding exactly one suppression site: its anchor line.
    project = None
    if any(r.scope == SCOPE_PROJECT for r in active):
        from repro.analysis.symbols import build_project

        project = build_project(mods)
    for mod in mods:
        raw: List[Finding] = []
        for r in active:
            if r.scope == SCOPE_PROJECT:
                raw.extend(r.check(mod, project))
            else:
                raw.extend(r.check(mod))
        raw.sort(key=lambda f: (f.line, f.col, f.rule))
        kept, hygiene = _apply_pragmas(mod, raw)
        findings.extend(kept)
        findings.extend(hygiene)
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    if baseline is None:
        return LintResult(findings, [], parse_errors, files)
    old, new = baseline.partition(findings)
    return LintResult(new, old, parse_errors, files)
