"""Intra-procedural dataflow for simlint's project rules.

Two pieces live here, both consumed by the SIM015 freelist escape rule
(``repro/analysis/rules.py``) on top of the :mod:`repro.analysis.symbols`
call graph:

* :func:`release_summaries` — a fixpoint over the resolved call graph
  computing, per function, *which positional parameters may reach*
  ``repro.net.packet.release``.  The seed fact is release itself
  (parameter 0); one round of propagation makes ``Host.receive`` a
  may-release function, two make anything that calls it one, and so on.
  Only ``Name``-resolvable calls propagate — calls through opaque
  receivers (``handler(pkt)`` where ``handler`` came out of a dict) are
  invisible, which is a documented false-negative, never a false
  positive.
* :class:`FrameFlow` — a path-sensitive walker over one function body
  tracking the *maybe-released* and *pooled-frame* name sets through
  branches and loops.  Branch states are unioned (a frame released on
  *some* path is maybe-released after the join); a branch that
  terminates (``return``/``raise``/``continue``/``break``) does not
  contribute its state, so the ubiquitous ``if err: release(p); return``
  early-out stays clean.  Loops are walked twice so a release of a
  loop-invariant name is seen by its own second iteration.

The walker deliberately yields *events*, not findings — the rule layer
owns message text and the division of labour with SIM010 (whose simpler
same-statement-list scan already covers direct ``release(x); use(x)``
sequences; events with ``direct``-in-the-same-list provenance are
suppressed here so one bug never fires twice).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.symbols import Project

#: the freelist API, by fully-qualified name (resolution is lexical, so
#: these match however the import was aliased)
RELEASE_QN = "repro.net.packet.release"
MAKE_QNS = frozenset(
    {"repro.net.packet.make_data", "repro.net.packet.make_ack"}
)

#: event kinds yielded by FrameFlow.analyze
DOUBLE_RELEASE = "double-release"
USE_AFTER = "use-after-release"
STORE_ESCAPE = "store-escape"

#: one event: (kind, offending AST node, frame name, via-callee or "")
Event = Tuple[str, ast.AST, str, str]


def _param_indices(node: ast.FunctionDef, is_method: bool) -> Dict[str, int]:
    """Map parameter names to call-site positional indices.

    For methods the leading ``self`` is dropped so indices line up with
    ``self.m(a0, a1)`` call sites.
    """
    args = [a.arg for a in node.args.args]
    if is_method and args and args[0] in ("self", "cls"):
        args = args[1:]
    return {name: i for i, name in enumerate(args)}


def release_summaries(project: Project) -> Dict[str, Set[int]]:
    """``qualname -> set of positional indices that may be released``.

    Computed as a fixpoint over resolved call edges; cached on the
    project (one lint run builds it at most once).
    """
    cached = getattr(project, "_release_summaries", None)
    if cached is not None:
        return cached
    summaries: Dict[str, Set[int]] = {RELEASE_QN: {0}}
    params: Dict[str, Dict[str, int]] = {}
    for qn, info in project.functions.items():
        params[qn] = _param_indices(info.node, info.class_name is not None)
        summaries.setdefault(qn, set())

    changed = True
    while changed:
        changed = False
        for qn, info in project.functions.items():
            own = summaries[qn]
            own_params = params[qn]
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                target = project.resolve_callable(
                    info.module, info.class_name, node.func
                )
                if target is None:
                    continue
                callee = summaries.get(target)
                if not callee:
                    continue
                callee_params = params.get(target, {})
                for i, arg in enumerate(node.args):
                    if i in callee and isinstance(arg, ast.Name):
                        idx = own_params.get(arg.id)
                        if idx is not None and idx not in own:
                            own.add(idx)
                            changed = True
                for kw in node.keywords:
                    if kw.arg is None or not isinstance(kw.value, ast.Name):
                        continue
                    if callee_params.get(kw.arg) in callee:
                        idx = own_params.get(kw.value.id)
                        if idx is not None and idx not in own:
                            own.add(idx)
                            changed = True
    project._release_summaries = summaries  # type: ignore[attr-defined]
    return summaries


# provenance of a maybe-released name: how/where the release happened
_DIRECT = "direct"  # a literal release(x) call; second element = stmt-list id
_VIA_CALL = "call"  # released inside a resolved callee


class FrameFlow:
    """Path-sensitive frame tracking over one function body."""

    def __init__(
        self, project: Project, module: str, class_name: Optional[str]
    ) -> None:
        self.project = project
        self.module = module
        self.class_name = class_name
        self.summaries = release_summaries(project)
        self.events: List[Event] = []
        self._seen: Set[Tuple[str, int]] = set()  # dedupe across loop passes

    # -- public entry ----------------------------------------------------

    def analyze(self, fn: ast.FunctionDef) -> List[Event]:
        self.events = []
        self._seen = set()
        state = _State()
        self._stmts(fn.body, state)
        return self.events

    # -- event emission --------------------------------------------------

    def _emit(self, kind: str, node: ast.AST, name: str, via: str) -> None:
        key = (kind, id(node))
        if key not in self._seen:
            self._seen.add(key)
            self.events.append((kind, node, name, via))

    # -- resolution helpers ----------------------------------------------

    def _resolve(self, call: ast.Call) -> Optional[str]:
        return self.project.resolve_callable(
            self.module, self.class_name, call.func
        )

    def _release_indices(self, call: ast.Call) -> Tuple[Set[int], bool, str]:
        """(positional indices released, is-direct-release, callee label)."""
        target = self._resolve(call)
        if target == RELEASE_QN:
            return {0}, True, ""
        if target is not None:
            indices = self.summaries.get(target, set())
            if indices:
                return set(indices), False, target
        return set(), False, ""

    def _is_make(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call) and self._resolve(node) in MAKE_QNS
        )

    # -- the walker ------------------------------------------------------

    def _stmts(self, stmts: List[ast.stmt], state: "_State") -> bool:
        """Process a statement list; True when the list falls through."""
        list_id = id(stmts)
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue  # nested scopes are analyzed on their own
            if isinstance(stmt, (ast.Return, ast.Raise)):
                if getattr(stmt, "value", None) is not None:
                    self._uses(stmt.value, state, list_id)
                if isinstance(stmt, ast.Raise) and stmt.exc is not None:
                    self._uses(stmt.exc, state, list_id)
                return False
            if isinstance(stmt, (ast.Break, ast.Continue)):
                return False
            if isinstance(stmt, ast.Expr):
                self._expr(stmt.value, state, list_id)
            elif isinstance(stmt, ast.Assign):
                self._assign(stmt, state, list_id)
            elif isinstance(stmt, ast.AnnAssign):
                if stmt.value is not None:
                    self._expr(stmt.value, state, list_id)
                    if isinstance(stmt.target, ast.Name):
                        state.bind(stmt.target.id, self._is_make(stmt.value))
            elif isinstance(stmt, ast.AugAssign):
                self._uses(stmt.value, state, list_id)
                self._uses(stmt.target, state, list_id)
            elif isinstance(stmt, ast.If):
                self._uses(stmt.test, state, list_id)
                s_then = state.copy()
                s_else = state.copy()
                fall_then = self._stmts(stmt.body, s_then)
                fall_else = self._stmts(stmt.orelse, s_else)
                state.replace_with_merge(
                    (s_then if fall_then else None),
                    (s_else if fall_else else None),
                )
            elif isinstance(stmt, (ast.For, ast.AsyncFor)):
                self._uses(stmt.iter, state, list_id)
                body_state = state.copy()
                targets = _target_names(stmt.target)
                for _pass in (1, 2):  # second pass sees loop-carried state
                    for t in targets:
                        body_state.clear(t)
                    self._stmts(stmt.body, body_state)
                state.union(body_state)  # zero-or-more iterations
                self._stmts(stmt.orelse, state)
            elif isinstance(stmt, ast.While):
                self._uses(stmt.test, state, list_id)
                body_state = state.copy()
                for _pass in (1, 2):
                    self._stmts(stmt.body, body_state)
                state.union(body_state)
                self._stmts(stmt.orelse, state)
            elif isinstance(stmt, (ast.With, ast.AsyncWith)):
                for item in stmt.items:
                    self._uses(item.context_expr, state, list_id)
                if not self._stmts(stmt.body, state):
                    return False
            elif isinstance(stmt, ast.Try):
                pre = state.copy()
                fall = self._stmts(stmt.body, state)
                handler_states = []
                for handler in stmt.handlers:
                    hs = pre.copy()
                    if self._stmts(handler.body, hs):
                        handler_states.append(hs)
                if fall:
                    self._stmts(stmt.orelse, state)
                for hs in handler_states:
                    state.union(hs)
                self._stmts(stmt.finalbody, state)
            else:
                self._uses(stmt, state, list_id)
        return True

    def _assign(self, stmt: ast.Assign, state: "_State", list_id: int) -> None:
        self._expr(stmt.value, state, list_id)
        pooled_value = self._is_make(stmt.value) or (
            isinstance(stmt.value, ast.Name) and state.is_pooled(stmt.value.id)
        )
        for target in stmt.targets:
            if isinstance(target, ast.Name):
                state.bind(target.id, pooled_value)
            elif isinstance(target, (ast.Attribute, ast.Subscript)):
                # storing a pooled frame into an attribute or container:
                # remember the alias so a later release() is flagged
                if isinstance(stmt.value, ast.Name) and state.is_pooled(
                    stmt.value.id
                ):
                    state.stored[stmt.value.id] = target
                self._uses(target.value, state, list_id)

    def _expr(self, node: ast.AST, state: "_State", list_id: int) -> None:
        if isinstance(node, ast.Call):
            self._call(node, state, list_id)
        else:
            self._uses(node, state, list_id)

    def _call(self, call: ast.Call, state: "_State", list_id: int) -> None:
        indices, direct, via = self._release_indices(call)
        # container.append(pooled) and friends: record the escape alias
        func = call.func
        if (
            not indices
            and isinstance(func, ast.Attribute)
            and func.attr in ("append", "add", "appendleft", "insert", "push")
        ):
            for arg in call.args:
                if isinstance(arg, ast.Name) and state.is_pooled(arg.id):
                    state.stored[arg.id] = call
        for i, arg in enumerate(call.args):
            if i in indices and isinstance(arg, ast.Name):
                name = arg.id
                prov = state.released.get(name)
                if prov is not None:
                    if not (direct and prov == (_DIRECT, list_id)):
                        self._emit(DOUBLE_RELEASE, arg, name, via or prov[2])
                elif name in state.stored:
                    self._emit(STORE_ESCAPE, arg, name, via)
                    state.released[name] = _prov(direct, list_id, via)
                else:
                    state.released[name] = _prov(direct, list_id, via)
            else:
                self._uses(arg, state, list_id)
        for kw in call.keywords:
            self._uses(kw.value, state, list_id)
        # nested calls / receiver expression
        if isinstance(func, ast.Attribute):
            self._uses(func.value, state, list_id)
        elif not isinstance(func, ast.Name):
            self._uses(func, state, list_id)

    def _uses(self, node: ast.AST, state: "_State", list_id: int) -> None:
        """Flag Loads of maybe-released names; one event per name."""
        for sub in ast.walk(node):
            if isinstance(sub, (ast.Lambda, ast.FunctionDef)):
                continue
            if isinstance(sub, ast.Call):
                # a nested releasing call inside a larger expression still
                # updates state (rare, but send(release(p)) style code
                # should not silently reset)
                indices, direct, via = self._release_indices(sub)
                for i, arg in enumerate(sub.args):
                    if i in indices and isinstance(arg, ast.Name):
                        state.released.setdefault(
                            arg.id, _prov(direct, list_id, via)
                        )
            if (
                isinstance(sub, ast.Name)
                and isinstance(sub.ctx, ast.Load)
                and sub.id in state.released
            ):
                prov = state.released[sub.id]
                if prov[0] == _DIRECT and prov[1] == list_id:
                    continue  # SIM010's same-statement-list territory
                self._emit(USE_AFTER, sub, sub.id, prov[2])
                del state.released[sub.id]


def _prov(direct: bool, list_id: int, via: str) -> Tuple[str, int, str]:
    return (_DIRECT, list_id, via) if direct else (_VIA_CALL, 0, via)


def _target_names(target: ast.AST) -> List[str]:
    return [
        n.id for n in ast.walk(target) if isinstance(n, ast.Name)
    ]


class _State:
    """The walker's abstract state: released / pooled / stored names."""

    __slots__ = ("released", "pooled", "stored")

    def __init__(self) -> None:
        self.released: Dict[str, Tuple[str, int, str]] = {}
        self.pooled: Set[str] = set()
        self.stored: Dict[str, ast.AST] = {}

    def copy(self) -> "_State":
        s = _State()
        s.released = dict(self.released)
        s.pooled = set(self.pooled)
        s.stored = dict(self.stored)
        return s

    def bind(self, name: str, pooled: bool) -> None:
        """A fresh assignment to ``name`` re-validates it."""
        self.released.pop(name, None)
        self.stored.pop(name, None)
        if pooled:
            self.pooled.add(name)
        else:
            self.pooled.discard(name)

    def clear(self, name: str) -> None:
        self.released.pop(name, None)
        self.stored.pop(name, None)
        self.pooled.discard(name)

    def is_pooled(self, name: str) -> bool:
        return name in self.pooled

    def union(self, other: "_State") -> None:
        for name, prov in other.released.items():
            self.released.setdefault(name, prov)
        self.pooled |= other.pooled
        for name, node in other.stored.items():
            self.stored.setdefault(name, node)

    def replace_with_merge(
        self, a: Optional["_State"], b: Optional["_State"]
    ) -> None:
        """After an if/else: adopt the union of the falling-through arms."""
        merged = a if a is not None else b
        if merged is None:
            return  # both arms terminated: unreachable after the If
        if a is not None and b is not None:
            merged = a
            merged.union(b)
        self.released = merged.released
        self.pooled = merged.pooled
        self.stored = merged.stored
