"""``python -m repro lint`` — run simlint over the tree.

Exit codes: 0 clean (no new error-severity findings), 1 findings, 2 usage.

Examples::

    python -m repro lint                         # lint src/repro
    python -m repro lint --format json           # machine-readable report
    python -m repro lint src/repro/sched         # a subtree
    python -m repro lint --changed               # only files changed vs HEAD
    python -m repro lint --changed origin/main   # ... vs a merge base
    python -m repro lint --write-baseline        # grandfather current findings
    python -m repro lint --list-rules            # rule catalog
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import (
    Baseline,
    Finding,
    LintResult,
    lint_paths,
    registered_rules,
    rule_range,
)

#: default baseline location, relative to the lint root
DEFAULT_BASELINE = ".simlint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro lint",
        description=(
            "simlint: project-specific static analysis enforcing simulator "
            "determinism, hot-path discipline and cross-module ownership "
            f"(rules {rule_range()})."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files/directories to lint (default: the repro package sources)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (json is schema-versioned for CI artifacts)",
    )
    parser.add_argument(
        "--select", default=None, metavar="RULES",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline file: report every finding as new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print the rule catalog"
    )
    parser.add_argument(
        "--root", default=None, metavar="DIR",
        help="repo root for relative paths/fingerprints (default: cwd)",
    )
    parser.add_argument(
        "--changed", nargs="?", const="HEAD", default=None, metavar="BASE",
        help=(
            "lint only files changed against the given git base "
            "(`git diff --name-only BASE`; default HEAD), filtered to "
            "the lint targets — the pre-commit fast path"
        ),
    )
    return parser


def _changed_files(root: Path, base: str) -> Optional[List[Path]]:
    """Paths changed against ``base`` per git, or ``None`` on git failure.

    Includes uncommitted work (``git diff`` against a commit covers the
    worktree); deleted files are skipped by the existence filter in
    :func:`main`.
    """
    proc = subprocess.run(
        ["git", "-C", str(root), "diff", "--name-only", base],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        msg = proc.stderr.strip() or f"git diff --name-only {base} failed"
        print(f"error: {msg}", file=sys.stderr)
        return None
    return [root / line for line in proc.stdout.splitlines() if line.strip()]


def _default_paths(root: Path) -> List[Path]:
    """Lint target when none is given: the installed package's source tree."""
    src = root / "src" / "repro"
    if src.is_dir():
        return [src]
    # fall back to wherever the imported package actually lives
    import repro

    return [Path(repro.__file__).parent]


def _format_text(result: LintResult, out) -> None:
    for f in result.parse_errors + result.findings:
        out.write(
            f"{f.location()}: {f.severity} {f.rule} {f.message}\n"
            f"    {f.snippet}\n"
        )
    bits = [
        f"{result.files_checked} files",
        f"{len(result.errors)} errors",
        f"{len(result.warnings)} warnings",
    ]
    if result.baselined:
        bits.append(f"{len(result.baselined)} baselined")
    if result.parse_errors:
        bits.append(f"{len(result.parse_errors)} parse errors")
    out.write("simlint: " + ", ".join(bits) + "\n")


def _list_rules(out) -> None:
    for rid, r in sorted(registered_rules().items()):
        out.write(f"{rid}  {r.name}  [{r.severity}]\n    {r.rationale}\n")


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.list_rules:
        _list_rules(sys.stdout)
        return 0
    root = Path(args.root).resolve() if args.root else Path.cwd()
    paths = [Path(p) for p in args.paths] if args.paths else _default_paths(root)
    for p in paths:
        if not p.exists():
            print(f"error: no such path: {p}", file=sys.stderr)
            return 2
    if args.changed is not None:
        changed = _changed_files(root, args.changed)
        if changed is None:
            return 2
        # keep only Python files that still exist and fall under the
        # lint targets (so fixture trees with seeded findings stay out)
        scope = [t.resolve() for t in paths]
        picked = []
        for p in changed:
            if p.suffix != ".py" or not p.is_file():
                continue
            rp = p.resolve()
            if any(rp == s or s in rp.parents for s in scope):
                picked.append(p)
        if not picked:
            print(
                f"simlint: no changed Python files under the lint "
                f"targets (base {args.changed})"
            )
            return 0
        paths = picked
    select = None
    if args.select:
        select = [r.strip().upper() for r in args.select.split(",") if r.strip()]
        unknown = set(select) - set(registered_rules())
        if unknown:
            print(
                f"error: unknown rule(s): {', '.join(sorted(unknown))}",
                file=sys.stderr,
            )
            return 2

    baseline_path = Path(args.baseline) if args.baseline else root / DEFAULT_BASELINE

    if args.write_baseline:
        result = lint_paths(paths, root=root, baseline=None, select=select)
        findings: List[Finding] = result.findings
        Baseline.from_findings(findings).write(baseline_path)
        print(
            f"wrote {len(findings)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0

    baseline = None
    if not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    result = lint_paths(paths, root=root, baseline=baseline, select=select)
    if args.format == "json":
        json.dump(result.to_json(), sys.stdout, indent=2, sort_keys=True)
        sys.stdout.write("\n")
    else:
        _format_text(result, sys.stdout)
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
