"""The built-in simlint rules (run ``repro lint --list-rules`` for the span).

Each rule encodes one project-specific invariant that a generic linter
cannot express — they are all, one way or another, about keeping the
simulator **bit-deterministic under a seed** and its hot path disciplined.
docs/STATIC_ANALYSIS.md carries the full catalog with worked examples; the
docstring of each checker here is the normative statement.

Scope conventions
-----------------
``SIM_PACKAGES`` are the packages whose code can affect simulation results
(event order, timestamps, marking decisions, flow schedules).  Rules about
*determinism of results* apply there; rules about *codebase hygiene*
(wall-clock, prints, mutable defaults) apply to all of ``src/repro`` and are
suppressed at the legitimately-impure sites with justified pragmas.
"""

from __future__ import annotations

import ast
from typing import (
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from repro.analysis.engine import (
    SCOPE_PROJECT,
    SEVERITY_WARNING,
    Finding,
    ModuleInfo,
    rule,
)
from repro.analysis.symbols import Project

#: packages under ``repro.`` whose code affects simulated behaviour
SIM_PACKAGES = (
    "sim",
    "net",
    "sched",
    "aqm",
    "core",
    "transport",
    "topo",
    "workloads",
)

# -- SIM001: wall clock ---------------------------------------------------

_TIME_FNS = {
    "time",
    "time_ns",
    "perf_counter",
    "perf_counter_ns",
    "monotonic",
    "monotonic_ns",
    "process_time",
    "process_time_ns",
}
_DATETIME_FNS = {"now", "utcnow", "today"}


@rule(
    "SIM001",
    "no-wall-clock",
    rationale=(
        "Simulated time is Simulator.now; wall-clock reads make behaviour "
        "depend on host speed and destroy bit-reproducibility."
    ),
)
def check_wall_clock(mod: ModuleInfo) -> Iterator[Finding]:
    """Flag ``time.time()``/``perf_counter()``/``datetime.now()`` & friends.

    Applies to all of ``src/repro``: inside the sim-affecting packages a hit
    is always a bug; elsewhere (harness wall-time accounting, benchmarks)
    the few legitimate sites carry justified pragmas, so a new unannotated
    one still fails review.
    """
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Attribute):
            base = node.value
            if isinstance(base, ast.Name):
                if base.id == "time" and node.attr in _TIME_FNS:
                    yield mod.finding(
                        "SIM001",
                        node,
                        f"wall-clock call time.{node.attr} — simulated code "
                        "must read Simulator.now",
                    )
                elif base.id in ("datetime", "date") and node.attr in _DATETIME_FNS:
                    yield mod.finding(
                        "SIM001",
                        node,
                        f"wall-clock call {base.id}.{node.attr} — simulated "
                        "code must read Simulator.now",
                    )
            elif (
                isinstance(base, ast.Attribute)
                and isinstance(base.value, ast.Name)
                and base.value.id == "datetime"
                and node.attr in _DATETIME_FNS
            ):
                yield mod.finding(
                    "SIM001",
                    node,
                    f"wall-clock call datetime.{base.attr}.{node.attr}",
                )
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name in _TIME_FNS:
                    yield mod.finding(
                        "SIM001",
                        node,
                        f"imports wall-clock function time.{alias.name} — "
                        "keep the time module qualified so call sites are "
                        "individually auditable",
                    )


# -- SIM002: global random ------------------------------------------------

_RANDOM_DRAWS = {
    "random",
    "randint",
    "randrange",
    "uniform",
    "choice",
    "choices",
    "shuffle",
    "sample",
    "expovariate",
    "gauss",
    "normalvariate",
    "lognormvariate",
    "betavariate",
    "paretovariate",
    "weibullvariate",
    "vonmisesvariate",
    "triangular",
    "getrandbits",
    "seed",
}


@rule(
    "SIM002",
    "no-global-random",
    rationale=(
        "The module-level random stream is shared process state: any new "
        "consumer perturbs every existing draw.  All randomness flows "
        "through repro.sim.rng seeded streams."
    ),
)
def check_global_random(mod: ModuleInfo) -> Iterator[Finding]:
    """Flag ``random.<draw>()`` on the module-global stream and unseeded
    ``random.Random()`` construction, everywhere except ``repro.sim.rng``."""
    if mod.module == "repro.sim.rng":
        return
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "random"
        ):
            if func.attr in _RANDOM_DRAWS:
                yield mod.finding(
                    "SIM002",
                    node,
                    f"random.{func.attr}() uses the process-global stream — "
                    "draw from an RngFactory stream instead",
                )
            elif func.attr == "Random" and not node.args and not node.keywords:
                yield mod.finding(
                    "SIM002",
                    node,
                    "unseeded random.Random() — seed it, or take a stream "
                    "from RngFactory",
                )
        elif (
            isinstance(func, ast.Name)
            and func.id == "Random"
            and not node.args
            and not node.keywords
        ):
            yield mod.finding(
                "SIM002",
                node,
                "unseeded Random() — seed it, or take a stream from RngFactory",
            )


# -- SIM003: set-iteration order ------------------------------------------


def _scopes(tree: ast.Module) -> Iterator[Tuple[ast.AST, Sequence[ast.stmt]]]:
    """Yield (scope node, body) for the module and every function."""
    yield tree, tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.body


def _walk_scope(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
    """Walk a scope's statements without descending into nested scopes.

    Nested functions/lambdas/classes are *yielded* (so callers can note
    them) but not entered — each function body is analyzed exactly once,
    by its own entry from :func:`_scopes`.
    """
    stack: List[ast.AST] = list(body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


@rule(
    "SIM003",
    "no-set-iteration",
    severity=SEVERITY_WARNING,
    rationale=(
        "Iterating a set of id-hashed objects visits them in PYTHONHASHSEED "
        "order — identical seeds then produce different event interleavings "
        "across processes.  Iterate a list, or sorted(...) with a stable key."
    ),
)
def check_set_iteration(mod: ModuleInfo) -> Iterator[Finding]:
    """Flag ``for``/comprehension iteration over sets in sim-affecting code.

    Heuristic: direct iteration of a set display/comprehension/``set()``
    call, or of a local name bound to one earlier in the same scope.
    Wrapping in ``sorted(...)`` (any deterministic ordering) passes.
    """
    if not mod.in_packages(SIM_PACKAGES):
        return
    for _scope, body in _scopes(mod.tree):
        set_names: Set[str] = set()
        # first pass: names bound to set expressions anywhere in the scope
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        set_names.add(target.id)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_set_expr(node.value) and isinstance(node.target, ast.Name):
                    set_names.add(node.target.id)
        for node in _walk_scope(body):
            iters: List[ast.expr] = []
            if isinstance(node, ast.For):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for it in iters:
                if _is_set_expr(it):
                    yield mod.finding(
                        "SIM003",
                        it,
                        "iteration over a set — order follows "
                        "PYTHONHASHSEED for id-hashed elements; use a "
                        "list or sorted(...)",
                    )
                elif isinstance(it, ast.Name) and it.id in set_names:
                    yield mod.finding(
                        "SIM003",
                        it,
                        f"iteration over set {it.id!r} — order follows "
                        "PYTHONHASHSEED for id-hashed elements; use a "
                        "list or sorted(...)",
                    )


# -- SIM004: mutable defaults ---------------------------------------------


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "dict", "set", "defaultdict", "deque", "bytearray")
    )


@rule(
    "SIM004",
    "no-mutable-defaults",
    rationale=(
        "A mutable default is shared across every call — state leaks "
        "between experiments and across sweep workers."
    ),
)
def check_mutable_defaults(mod: ModuleInfo) -> Iterator[Finding]:
    """Flag list/dict/set (display or constructor) default argument values."""
    for node in ast.walk(mod.tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if _is_mutable_default(default):
                yield mod.finding(
                    "SIM004",
                    default,
                    "mutable default argument — use None and construct "
                    "inside the function",
                )


# -- SIM005: __slots__ on hot-path classes --------------------------------

#: classes constructed per-port/per-flow/per-packet: one instance dict each
#: is measurable memory and attribute-lookup overhead on the hot path
HOT_CLASS_NAMES = {
    "Scheduler",
    "Aqm",
    "SenderBase",
    "Packet",
    "PacketQueue",
    "EgressPort",
    "PortStats",
    "Link",
    # Host and Switch are intentionally absent: one instance per node (a
    # handful per topology, vs. thousands of packets), and the test suite
    # instruments them by patching ``receive`` on instances — which
    # ``__slots__`` would forbid.
    "Receiver",
    "Flow",
    "Simulator",
    "TransportStats",
    "RateMeter",
}

#: inheriting from any of these puts a class on the hot path (AST-level
#: name matching: the known abstract roots plus their shipped subclasses,
#: so one level of indirection is still caught)
HOT_BASE_NAMES = {
    "Scheduler",
    "_SpOverScheduler",
    "FifoScheduler",
    "StrictPriorityScheduler",
    "WrrScheduler",
    "DwrrScheduler",
    "WfqScheduler",
    "PifoScheduler",
    "SpDwrrScheduler",
    "SpWfqScheduler",
    "Aqm",
    "NoopAqm",
    "SenderBase",
    "DctcpSender",
    "DcqcnSender",
    "EcnStarSender",
    "RenoSender",
}


def _base_names(cls: ast.ClassDef) -> Set[str]:
    names: Set[str] = set()
    for base in cls.bases:
        if isinstance(base, ast.Name):
            names.add(base.id)
        elif isinstance(base, ast.Attribute):
            names.add(base.attr)
    return names


def _declares_slots(cls: ast.ClassDef) -> bool:
    for stmt in cls.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        elif isinstance(stmt, ast.AnnAssign):
            if isinstance(stmt.target, ast.Name) and stmt.target.id == "__slots__":
                return True
    return False


def _is_dataclass(cls: ast.ClassDef) -> bool:
    for dec in cls.decorator_list:
        name = None
        if isinstance(dec, ast.Name):
            name = dec.id
        elif isinstance(dec, ast.Attribute):
            name = dec.attr
        elif isinstance(dec, ast.Call):
            func = dec.func
            name = func.id if isinstance(func, ast.Name) else getattr(func, "attr", None)
        if name == "dataclass":
            return True
    return False


@rule(
    "SIM005",
    "slots-on-hot-path",
    rationale=(
        "Per-packet/per-flow objects without __slots__ each drag an "
        "instance dict: ~2x memory and a slower attribute path in the "
        "tightest loops the benchmarks gate."
    ),
)
def check_hot_path_slots(mod: ModuleInfo) -> Iterator[Finding]:
    """Hot-path classes (Packet, queues, ports, schedulers, AQMs, senders)
    must declare ``__slots__`` — empty tuple when they add no state."""
    if not mod.in_packages(SIM_PACKAGES):
        return
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        hot = node.name in HOT_CLASS_NAMES or (_base_names(node) & HOT_BASE_NAMES)
        if not hot or _is_dataclass(node):
            continue
        if not _declares_slots(node):
            yield mod.finding(
                "SIM005",
                node,
                f"hot-path class {node.name} does not declare __slots__ "
                "(use __slots__ = () when it adds no attributes)",
            )


# -- SIM006: stale `now` captured across event boundaries ------------------

_SCHEDULE_FNS = {"schedule", "schedule_at", "schedule_call", "schedule_many"}


def _names_read(node: ast.AST) -> Set[str]:
    return {
        n.id
        for n in ast.walk(node)
        if isinstance(n, ast.Name) and isinstance(n.ctx, ast.Load)
    }


@rule(
    "SIM006",
    "no-stale-now-capture",
    severity=SEVERITY_WARNING,
    rationale=(
        "A callback runs at its *fire* time; a captured `now = sim.now` "
        "snapshot is the *scheduling* time.  Control laws fed stale "
        "timestamps (sojourn, round time) silently skew marking decisions."
    ),
)
def check_stale_now_capture(mod: ModuleInfo) -> Iterator[Finding]:
    """Flag scheduling a lambda/closure that reads a local previously
    assigned from ``<sim>.now`` — re-read ``.now`` inside the callback."""
    if not mod.in_packages(SIM_PACKAGES):
        return
    for scope, body in _scopes(mod.tree):
        if scope is mod.tree:
            continue
        # locals snapshotting .now in this function
        now_names: Set[str] = set()
        inner_defs: Dict[str, ast.AST] = {}
        for node in _walk_scope(body):
            if isinstance(node, ast.Assign):
                value = node.value
                if isinstance(value, ast.Attribute) and value.attr == "now":
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            now_names.add(target.id)
            if isinstance(node, ast.FunctionDef) and node is not scope:
                inner_defs[node.name] = node
        if not now_names:
            continue
        for node in _walk_scope(body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            if attr not in _SCHEDULE_FNS:
                continue
            for arg in list(node.args) + [kw.value for kw in node.keywords]:
                callback: Optional[ast.AST] = None
                if isinstance(arg, ast.Lambda):
                    callback = arg.body
                elif isinstance(arg, ast.Name) and arg.id in inner_defs:
                    callback = inner_defs[arg.id]
                if callback is None:
                    continue
                stale = _names_read(callback) & now_names
                if stale:
                    yield mod.finding(
                        "SIM006",
                        arg,
                        "scheduled callback captures stale now-snapshot "
                        f"{sorted(stale)!r} — re-read Simulator.now at "
                        "fire time",
                    )


# -- SIM007: abstract surface of Scheduler/Aqm subclasses ------------------


def _trivial_hook(fn: ast.FunctionDef) -> bool:
    """True for a body that is only a docstring plus `pass`/`return False`."""
    body = list(fn.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    if not body:
        return True
    if len(body) != 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Pass):
        return True
    return (
        isinstance(stmt, ast.Return)
        and isinstance(stmt.value, ast.Constant)
        and stmt.value.value is False
    )


@rule(
    "SIM007",
    "override-abstract-surface",
    rationale=(
        "A Scheduler must implement enqueue+dequeue; an Aqm must override a "
        "hook to exist at all.  Re-defining a hook as a trivial no-op "
        "defeats the port's hook elision and re-adds a per-packet call."
    ),
)
def check_abstract_surface(mod: ModuleInfo) -> Iterator[Finding]:
    """Direct ``Scheduler`` subclasses must define both ``enqueue`` and
    ``dequeue``; direct ``Aqm`` subclasses must override at least one
    marking hook, and no subclass may shadow a hook with a trivial no-op
    body (the port elides hooks inherited from ``Aqm`` — a shadowing no-op
    silently re-enables the per-packet call)."""
    if not mod.in_packages(SIM_PACKAGES):
        return
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.ClassDef):
            continue
        bases = _base_names(node)
        methods = {
            s.name: s for s in node.body if isinstance(s, ast.FunctionDef)
        }
        if "Scheduler" in bases and node.name != "Scheduler":
            missing = {"enqueue", "dequeue"} - set(methods)
            if missing:
                yield mod.finding(
                    "SIM007",
                    node,
                    f"Scheduler subclass {node.name} does not implement "
                    f"{sorted(missing)} — the full abstract surface is "
                    "mandatory",
                )
        if "Aqm" in bases and node.name != "Aqm":
            hooks = {"on_enqueue", "on_dequeue"}
            overridden = hooks & set(methods)
            nontrivial = {h for h in overridden if not _trivial_hook(methods[h])}
            if not nontrivial:
                yield mod.finding(
                    "SIM007",
                    node,
                    f"Aqm subclass {node.name} overrides no marking hook — "
                    "it can never mark",
                )
            for h in overridden:
                if _trivial_hook(methods[h]):
                    yield mod.finding(
                        "SIM007",
                        methods[h],
                        f"{node.name}.{h} shadows the elided no-op hook with "
                        "a trivial body — delete the override so the port "
                        "skips the per-packet call",
                    )


# -- SIM008: float equality on simulated time ------------------------------

_TIME_NAME_SUFFIXES = ("_ns", "_ts", "_time")
_TIME_NAMES = {"now", "deadline", "enq_ts", "ts", "ts_echo", "sojourn"}


def _terminal_names(node: ast.AST) -> Iterator[str]:
    for n in ast.walk(node):
        if isinstance(n, ast.Name):
            yield n.id
        elif isinstance(n, ast.Attribute):
            yield n.attr


def _time_like(node: ast.AST) -> bool:
    for name in _terminal_names(node):
        if name in _TIME_NAMES or name.endswith(_TIME_NAME_SUFFIXES):
            return True
    return False


def _float_tainted(node: ast.AST) -> bool:
    for n in ast.walk(node):
        if isinstance(n, ast.Constant) and isinstance(n.value, float):
            return True
        if isinstance(n, ast.BinOp) and isinstance(n.op, ast.Div):
            return True
        if (
            isinstance(n, ast.Call)
            and isinstance(n.func, ast.Name)
            and n.func.id == "float"
        ):
            return True
    return False


@rule(
    "SIM008",
    "no-float-time-equality",
    rationale=(
        "Simulated time is integer nanoseconds by design; == against a "
        "float (or a true-division result) re-introduces the rounding "
        "surprises the integer clock exists to rule out."
    ),
)
def check_float_time_equality(mod: ModuleInfo) -> Iterator[Finding]:
    """Flag ``==``/``!=`` where one side is time-like (``.now``, ``*_ns``,
    ``*_ts``...) and either side is float-tainted (float literal, true
    division, ``float()``)."""
    if not mod.in_packages(SIM_PACKAGES):
        return
    for node in ast.walk(mod.tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left] + list(node.comparators)
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            if (_time_like(left) or _time_like(right)) and (
                _float_tainted(left) or _float_tainted(right)
            ):
                yield mod.finding(
                    "SIM008",
                    node,
                    "float equality on simulated time — compare integer "
                    "nanoseconds, or use an explicit tolerance",
                )


# -- SIM009: no print -----------------------------------------------------


@rule(
    "SIM009",
    "no-print",
    rationale=(
        "Stray prints corrupt machine-read CLI output and bypass the "
        "repro.obs tracing/metrics pipeline; user-facing output belongs to "
        "the CLI modules."
    ),
)
def check_print(mod: ModuleInfo) -> Iterator[Finding]:
    """Flag ``print()`` outside the CLI entry points (``__main__``, ``cli``
    modules) — route diagnostics through ``repro.obs``."""
    parts = mod.package_parts()
    if parts and (parts[-1] in ("__main__", "cli")):
        return
    for node in ast.walk(mod.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        ):
            yield mod.finding(
                "SIM009",
                node,
                "print() in library code — emit through repro.obs (trace/"
                "metrics) or return data to the CLI layer",
            )


# -- SIM010: freelist discipline ------------------------------------------

_MAKE_FNS = {"make_data", "make_ack"}


def _statement_lists(tree: ast.Module) -> Iterator[List[ast.stmt]]:
    for node in ast.walk(tree):
        for field in ("body", "orelse", "finalbody"):
            stmts = getattr(node, field, None)
            if isinstance(stmts, list) and stmts and isinstance(stmts[0], ast.stmt):
                yield stmts


@rule(
    "SIM010",
    "freelist-discipline",
    rationale=(
        "Packets are pooled: a make_data/make_ack result that is dropped on "
        "the floor leaks a frame for the whole run, and touching a packet "
        "after release() reads a frame the next make_* may have rewritten."
    ),
)
def check_freelist_discipline(mod: ModuleInfo) -> Iterator[Finding]:
    """In ``repro.net``/``repro.transport``: a ``make_data``/``make_ack``
    result must not be discarded, and a name passed to ``release()`` must
    not be used later in the same statement list (use-after-release).  The
    companion cross-module invariant — every make path reaches ``release``
    at the delivery endpoint — is enforced at runtime by the freelist
    counters the benchmarks gate."""
    if not mod.in_packages(("net", "transport")):
        return
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
            func = node.value.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _MAKE_FNS:
                yield mod.finding(
                    "SIM010",
                    node,
                    f"{name}() result discarded — the frame can never be "
                    "released back to the freelist",
                )
    for stmts in _statement_lists(mod.tree):
        released: Dict[str, int] = {}
        for idx, stmt in enumerate(stmts):
            if (
                isinstance(stmt, ast.Expr)
                and isinstance(stmt.value, ast.Call)
                and len(stmt.value.args) == 1
                and isinstance(stmt.value.args[0], ast.Name)
            ):
                func = stmt.value.func
                fname = (
                    func.id
                    if isinstance(func, ast.Name)
                    else func.attr if isinstance(func, ast.Attribute) else None
                )
                if fname == "release":
                    released[stmt.value.args[0].id] = idx
                    continue
            # reassignment re-validates the name
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id in released:
                        del released[target.id]
            if not released:
                continue
            for sub in ast.walk(stmt):
                if (
                    isinstance(sub, ast.Name)
                    and isinstance(sub.ctx, ast.Load)
                    and sub.id in released
                ):
                    yield mod.finding(
                        "SIM010",
                        sub,
                        f"{sub.id!r} used after release() — the frame may "
                        "already have been recycled by the next make_*",
                    )
                    del released[sub.id]
                    break


# -- API confinement (SIM011/SIM012/SIM013/SIM017) --------------------------
#
# The confinement rules share one declarative table: each entry names a
# confined API, where it may be used, and the one-line contract the
# confinement protects.  SIM011/SIM012/SIM013 keep their historical ids
# (and fixtures/baselines keyed on them); SIM017 carries the entries added
# by the whole-program pass, whose call detection resolves names through
# the project symbol table so aliased imports cannot dodge it.

_EQUEUE_PKG = ("repro", "sim", "equeue")
_ENGINE_PKG = ("repro", "sim", "engine")
_PARALLEL_PKG = ("repro", "sim", "parallel")
_SWEEP_PKG = ("repro", "harness", "sweep")
_NET_PKG = ("repro", "net")
_TRANSPORT_PKG = ("repro", "transport")


class Confinement(NamedTuple):
    """One confined API: what is restricted, and where it is legitimate."""

    rule_id: str
    #: "import"      — the whole module is confined (import / from-import)
    #: "from-import" — only ``names`` imported from ``api`` are confined
    #: "call"        — method calls named in ``names`` are confined
    kind: str
    api: str  # module dotted name ("" for call kind)
    names: Tuple[str, ...]  # confined names (empty = the whole module)
    allowed: Tuple[Tuple[str, ...], ...]  # package prefixes allowed to use it
    #: call kind only: "equeue-like" restricts to receivers named like an
    #: event queue (name contains "equeue" or is exactly "eq")
    receiver: str
    #: call kind only: flag only zero-argument calls
    no_args_only: bool
    message: str


CONFINEMENTS: Tuple[Confinement, ...] = (
    Confinement(
        "SIM011", "import", "heapq", (), (_EQUEUE_PKG,), "", False,
        "heapq imported outside repro.sim.equeue — event "
        "ordering belongs to the pluggable queue backends",
    ),
    Confinement(
        "SIM012", "import", "multiprocessing", (),
        (_SWEEP_PKG, _PARALLEL_PKG), "", False,
        "multiprocessing imported outside the sweep/parallel "
        "drivers — process fan-out belongs to repro.harness.sweep "
        "and repro.sim.parallel",
    ),
    Confinement(
        "SIM013", "call", "", ("drain_run",),
        (_ENGINE_PKG, _EQUEUE_PKG), "", False,
        "drain_run() called outside repro.sim.engine and "
        "repro.sim.equeue — run draining (tombstones, clock "
        "rule, batch accounting) belongs to Simulator.run",
    ),
    Confinement(
        "SIM013", "call", "", ("pop",),
        (_ENGINE_PKG, _EQUEUE_PKG), "equeue-like", True,
        "{receiver}.pop() outside repro.sim.engine and "
        "repro.sim.equeue — event consumption belongs to "
        "the engine run loop",
    ),
    Confinement(
        "SIM017", "import", "gc", (), (_ENGINE_PKG,), "", False,
        "gc control outside repro.sim.engine — the run loop owns the "
        "collector pause window; a second owner desynchronizes the "
        "gc.enable/disable pairing the engine guarantees",
    ),
    Confinement(
        "SIM017", "from-import", "repro.sim.equeue.heap",
        ("heappush", "heappop", "heapreplace", "heapify"),
        (_EQUEUE_PKG, _ENGINE_PKG, _PARALLEL_PKG), "", False,
        "raw heap primitives of the event-queue backend used outside the "
        "engine/equeue/parallel core — pushing entries behind the "
        "backends' backs bypasses the (time, seq) contract and the "
        "tombstone bookkeeping",
    ),
    Confinement(
        "SIM017", "from-import", "repro.net.packet",
        ("make_data", "make_ack", "make_data_run", "release"),
        (_NET_PKG, _TRANSPORT_PKG), "", False,
        "packet freelist constructors/release used outside repro.net and "
        "repro.transport — frame lifetime (and the sanitizer's poisoning "
        "protocol) is the endpoint layer's contract",
    ),
    Confinement(
        "SIM017", "from-import", "repro.net.boundary",
        ("BoundaryMux", "import_packet"),
        (_NET_PKG, _PARALLEL_PKG), "", False,
        "partition boundary plumbing used outside repro.net and "
        "repro.sim.parallel — cross-partition handoff must flow through "
        "the coordinator's insert_arrival protocol",
    ),
)


def _module_allowed(
    mod: ModuleInfo, allowed: Tuple[Tuple[str, ...], ...]
) -> bool:
    parts = mod.package_parts()
    return any(parts[: len(pkg)] == pkg for pkg in allowed)


def _confinement_hits(
    mod: ModuleInfo, entries: Sequence[Confinement]
) -> Iterator[Tuple[Confinement, Finding]]:
    """Run the import/call entries of the table against one module,
    yielding ``(entry, finding)`` pairs so callers can track which
    entries already reported (SIM017 uses this to dedupe its
    call-graph pass against the import pass)."""
    live = [e for e in entries if not _module_allowed(mod, e.allowed)]
    if not live:
        return
    imports = [e for e in live if e.kind == "import"]
    from_imports = [e for e in live if e.kind == "from-import"]
    calls = [e for e in live if e.kind == "call"]
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                for e in imports:
                    if alias.name == e.api or alias.name.startswith(e.api + "."):
                        yield e, mod.finding(e.rule_id, node, e.message)
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            for e in imports:
                if module == e.api or module.startswith(e.api + "."):
                    yield e, mod.finding(e.rule_id, node, e.message)
            for e in from_imports:
                if module != e.api:
                    continue
                hit = sorted(
                    {a.name for a in node.names} & set(e.names)
                )
                if hit:
                    yield e, mod.finding(e.rule_id, node, e.message)
        elif isinstance(node, ast.Call) and calls:
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            for e in calls:
                if func.attr not in e.names:
                    continue
                if e.no_args_only and (node.args or node.keywords):
                    continue
                if e.receiver == "equeue-like":
                    recv = func.value
                    if isinstance(recv, ast.Attribute):
                        name = recv.attr
                    elif isinstance(recv, ast.Name):
                        name = recv.id
                    else:
                        continue
                    if "equeue" not in name and name != "eq":
                        continue
                    yield e, mod.finding(
                        e.rule_id, node, e.message.format(receiver=name)
                    )
                else:
                    yield e, mod.finding(e.rule_id, node, e.message)


def _confinement_findings(
    mod: ModuleInfo, entries: Sequence[Confinement]
) -> Iterator[Finding]:
    """Findings-only view of :func:`_confinement_hits`."""
    for _, finding in _confinement_hits(mod, entries):
        yield finding


def _table_entries(rule_id: str) -> Tuple[Confinement, ...]:
    return tuple(e for e in CONFINEMENTS if e.rule_id == rule_id)


@rule(
    "SIM011",
    "heapq-in-equeue-only",
    rationale=(
        "Event ordering is the event-queue backends' contract: an ad-hoc "
        "heapq elsewhere in simulation code re-implements the (time, seq) "
        "total order in private and silently diverges from the pluggable "
        "backends and their cross-backend equivalence tests."
    ),
)
def check_heapq_confined(mod: ModuleInfo) -> Iterator[Finding]:
    """``heapq`` may be imported only under ``repro.sim.equeue``: every
    other module must order time-keyed work through the ``Simulator``
    scheduling API so it runs identically on all backends.  Non-event
    priority queues (e.g. a packet-ranking scheduler) are legitimate —
    suppress with a pragma naming the ordering domain."""
    yield from _confinement_findings(mod, _table_entries("SIM011"))


# -- SIM012: multiprocessing confinement ------------------------------------


@rule(
    "SIM012",
    "multiprocessing-in-drivers-only",
    rationale=(
        "Process fan-out is the drivers' contract: the sweep runner and "
        "the partitioned engine own the start-method fallbacks, "
        "spawn-safe bootstrap and digest-checked determinism.  An ad-hoc "
        "multiprocessing use elsewhere forks simulation state mid-run "
        "and bypasses every one of those guarantees."
    ),
)
def check_multiprocessing_confined(mod: ModuleInfo) -> Iterator[Finding]:
    """``multiprocessing`` may be imported only by ``repro.harness.sweep``
    and under ``repro.sim.parallel``: everywhere else, parallelism must go
    through those drivers (``run_sweep`` / ``cfg.workers``), which are the
    components tested for serial-equivalent results.  A genuinely new
    driver belongs next to them, not behind a pragma."""
    yield from _confinement_findings(mod, _table_entries("SIM012"))


# -- SIM013: event-queue draining confinement --------------------------------


@rule(
    "SIM013",
    "equeue-drain-in-engine-only",
    rationale=(
        "Event consumption is the run loop's contract: popping or "
        "run-draining an event queue advances the (time, seq) order, the "
        "tombstone filter and the batched clock rule.  A module that "
        "drains the queue directly bypasses run accounting and the "
        "batched/unbatched equivalence the engine guarantees."
    ),
)
def check_equeue_drain_confined(mod: ModuleInfo) -> Iterator[Finding]:
    """``pop()``/``drain_run()`` on an event queue may appear only in
    ``repro.sim.engine`` and the backends under ``repro.sim.equeue``:
    every other module observes events solely through ``Simulator``
    callbacks.  ``drain_run`` is unambiguous and flagged on any receiver;
    a bare zero-argument ``.pop()`` is flagged only when the receiver is
    named like an event queue (name contains ``equeue`` or is exactly
    ``eq``), so everyday list/deque/dict pops stay silent.  A genuinely
    new run driver belongs next to the engine, not behind a pragma."""
    yield from _confinement_findings(mod, _table_entries("SIM013"))


# -- SIM014: partition-ownership races (project scope) -----------------------

#: the coordinator-facing surface of a partition: the only methods other
#: code may invoke on a partition it does not own (the round protocol)
_PARTITION_API = frozenset(
    {
        "insert_arrival",
        "drain_outbox",
        "register_boundary",
        "run",
        "peek_time",
        "schedule_many",
        "apply_and_run",
        "initial_report",
        "final",
    }
)

_PARTITION_BASE = "PartitionSimulator"


def _is_partition_class(
    project: Project, qualname: Optional[str], depth: int = 0
) -> bool:
    """Is/wraps a PartitionSimulator (one wrapper level, e.g. _Partition)."""
    if qualname is None:
        return False
    if project.is_subclass_of(qualname, _PARTITION_BASE):
        return True
    info = project.classes.get(qualname)
    if info is not None and depth < 1:
        init = info.methods.get("__init__")
        if init is not None:
            for callee in project.calls.get(init, ()):
                if _is_partition_class(project, callee, depth + 1):
                    return True
    return False


def _chain_key(expr: ast.AST) -> Optional[str]:
    """``parts`` -> "parts"; ``self._parts`` -> "self._parts"; else None."""
    if isinstance(expr, ast.Name):
        return expr.id
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return f"self.{expr.attr}"
    return None


def _partition_collections_in(
    project: Project,
    module: str,
    class_name: Optional[str],
    nodes: Iterator[ast.AST],
) -> Set[str]:
    """Chain keys of names bound to collections of partition objects."""
    found: Set[str] = set()
    for node in nodes:
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        value = node.value
        if value is None:
            continue
        elements: List[ast.expr] = []
        if isinstance(value, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            elements.append(value.elt)
        elif isinstance(value, ast.DictComp):
            elements.append(value.value)
        elif isinstance(value, (ast.List, ast.Tuple)):
            elements.extend(value.elts)
        if not any(
            isinstance(e, ast.Call)
            and _is_partition_class(
                project,
                project.resolve_callable(module, class_name, e.func),
            )
            for e in elements
        ):
            continue
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            key = _chain_key(target)
            if key is not None:
                found.add(key)
    return found


def _elem_rooted(
    expr: ast.AST, collections: Set[str], elems: Set[str]
) -> bool:
    """Does an attribute/subscript chain root at a partition element?"""
    cur = expr
    subscripted = False
    while True:
        if isinstance(cur, ast.Attribute):
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            key = _chain_key(cur.value)
            if key is not None and key in collections:
                return True
            subscripted = True
            cur = cur.value
        else:
            break
    if subscripted:
        return False
    if isinstance(expr, ast.Name):
        return expr.id in elems
    return isinstance(cur, ast.Name) and cur.id in elems and cur.id != "self"


def _iter_collection_key(it: ast.AST) -> Optional[str]:
    """The chain key iterated by a for loop (``coll`` / ``coll.values()``)."""
    if isinstance(it, ast.Call) and isinstance(it.func, ast.Attribute):
        if it.func.attr in ("values", "itervalues") and not it.args:
            return _chain_key(it.func.value)
        return None
    return _chain_key(it)


@rule(
    "SIM014",
    "partition-ownership-race",
    scope=SCOPE_PROJECT,
    rationale=(
        "Each partition owns its event queue and node state; the only "
        "sanctioned cross-partition channel is the BoundaryMux export/"
        "insert_arrival handoff the coordinator replays at barrier "
        "rounds.  Direct mutation of another partition's internals is a "
        "race against its event loop and breaks the serial-equivalence "
        "digest the parallel engine guarantees."
    ),
)
def check_partition_ownership(
    mod: ModuleInfo, project: Project
) -> Iterator[Finding]:
    """Flag code holding a *collection* of partitions that mutates an
    element's internals — attribute stores through ``parts[i]...`` or
    method calls outside the round-protocol allowlist (``insert_arrival``,
    ``apply_and_run``, ``drain_outbox``, ...).  Applies to
    ``repro.sim.parallel`` and to modules importing from it (the code
    that can hold partition handles).  Known false negatives: a single
    partition reference aliased out of its collection, and collections
    passed across functions as parameters, are not tracked."""
    in_scope = mod.module.startswith("repro.sim.parallel")
    if not in_scope:
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.ImportFrom):
                if (node.module or "").startswith("repro.sim.parallel"):
                    in_scope = True
                    break
            elif isinstance(node, ast.Import):
                if any(
                    a.name.startswith("repro.sim.parallel")
                    for a in node.names
                ):
                    in_scope = True
                    break
    if not in_scope:
        return

    # class-wide partition-collection attributes (self._parts et al.)
    class_colls: Dict[str, Set[str]] = {}
    for stmt in mod.tree.body:
        if isinstance(stmt, ast.ClassDef):
            class_colls[stmt.name] = _partition_collections_in(
                project, mod.module, stmt.name, ast.walk(stmt)
            )

    for fn_qual, info in sorted(project.functions.items()):
        if info.module != mod.module:
            continue
        collections = set(class_colls.get(info.class_name or "", ()))
        collections |= _partition_collections_in(
            project, mod.module, info.class_name, ast.walk(info.node)
        )
        if not collections:
            continue
        # element names: loop vars over a collection, or subscript results
        elems: Set[str] = set()
        for node in ast.walk(info.node):
            if isinstance(node, ast.For):
                if (
                    _iter_collection_key(node.iter) in collections
                    and isinstance(node.target, ast.Name)
                ):
                    elems.add(node.target.id)
            elif isinstance(node, ast.Assign):
                if (
                    isinstance(node.value, ast.Subscript)
                    and _chain_key(node.value.value) in collections
                ):
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            elems.add(target.id)

        for node in ast.walk(info.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.Delete)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                    if isinstance(node, ast.AugAssign)
                    else node.targets
                )
                for target in targets:
                    if not isinstance(
                        target, (ast.Attribute, ast.Subscript)
                    ):
                        continue
                    # mutating *internals* (at least one attribute hop);
                    # rebinding a collection slot is the owner's business
                    if not isinstance(target, ast.Attribute):
                        continue
                    if _elem_rooted(target, collections, elems):
                        yield mod.finding(
                            "SIM014",
                            target,
                            "direct store into another partition's state "
                            "— cross-partition effects must flow through "
                            "BoundaryMux export / insert_arrival",
                        )
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                method = node.func.attr
                if method in _PARTITION_API:
                    continue
                if _elem_rooted(node.func.value, collections, elems):
                    yield mod.finding(
                        "SIM014",
                        node,
                        f"call to non-protocol method .{method}() on a "
                        "partition owned elsewhere — only the round "
                        "protocol surface "
                        "(insert_arrival/apply_and_run/...) may cross "
                        "partition boundaries",
                    )


# -- SIM015: freelist escape analysis (project scope) ------------------------


@rule(
    "SIM015",
    "freelist-escape",
    scope=SCOPE_PROJECT,
    rationale=(
        "Pooled frames have exactly one owner: release() must be reached "
        "once per frame, and no alias may outlive it — the next make_* "
        "rewrites every field of a recycled frame.  SIM010 catches the "
        "same-statement-list cases; this rule follows frames through "
        "branches and resolved calls (a helper that releases its "
        "parameter makes its callers releasing too)."
    ),
)
def check_freelist_escape(
    mod: ModuleInfo, project: Project
) -> Iterator[Finding]:
    """Path-sensitive frame tracking (see :mod:`repro.analysis.dataflow`):
    flags a frame released twice along some path, used after a call that
    may release it, or stored into a container/attribute and then
    released (dangling alias).  Cross-module findings anchor at the
    *caller's* offending line — that line is the one documented pragma
    site; a pragma on the callee's release cannot suppress them.  Known
    false negatives: calls through opaque receivers (dict-dispatched
    handlers, ``self.host.receive``) do not propagate release facts."""
    from repro.analysis.dataflow import (
        DOUBLE_RELEASE,
        STORE_ESCAPE,
        FrameFlow,
    )

    for fn_qual, info in sorted(project.functions.items()):
        if info.module != mod.module:
            continue
        flow = FrameFlow(project, mod.module, info.class_name)
        for kind, node, name, via in flow.analyze(info.node):
            via_note = f" (release happens inside {via.rsplit('.', 1)[-1]}())" if via else ""
            if kind == DOUBLE_RELEASE:
                message = (
                    f"frame {name!r} may be released twice along some "
                    f"path{via_note} — the freelist would hand the same "
                    "frame to two owners"
                )
            elif kind == STORE_ESCAPE:
                message = (
                    f"frame {name!r} was stored into a container/attribute "
                    "and is then released — the stored alias dangles once "
                    "the next make_* recycles the frame"
                )
            else:
                message = (
                    f"frame {name!r} used after it may have been "
                    f"released{via_note} — the frame may already be "
                    "recycled with every field rewritten"
                )
            yield mod.finding("SIM015", node, message)


# -- SIM016: event-callback purity (project scope) ---------------------------


def _lambda_bound_names(fn: ast.Lambda) -> Set[str]:
    args = fn.args
    bound = {a.arg for a in args.args}
    bound |= {a.arg for a in args.kwonlyargs}
    bound |= {a.arg for a in getattr(args, "posonlyargs", [])}
    if args.vararg:
        bound.add(args.vararg.arg)
    if args.kwarg:
        bound.add(args.kwarg.arg)
    return bound


def _reads_self_attr(fn: ast.FunctionDef, attrs: Set[str]) -> Optional[str]:
    for node in ast.walk(fn):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and node.attr in attrs
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
    return None


@rule(
    "SIM016",
    "event-callback-purity",
    severity=SEVERITY_WARNING,
    scope=SCOPE_PROJECT,
    rationale=(
        "A callback runs at fire time: closing over the live loop "
        "variable makes every callback see the final iteration, and a "
        "now-snapshot stashed on self is the *scheduling* time when the "
        "callback reads it.  SIM006 catches the same-function closure "
        "case; this rule follows the callback across function "
        "boundaries via the symbol table."
    ),
)
def check_callback_purity(
    mod: ModuleInfo, project: Project
) -> Iterator[Finding]:
    """Two cross-boundary generalizations of SIM006, in sim-affecting
    packages: (a) a callback scheduled *inside a for loop* that closes
    over the loop variable without default-binding it (late binding: all
    callbacks share the last element); (b) ``self.X = <...>.now`` in a
    method that then schedules another method of the same class which
    reads ``self.X`` — the callback consumes a scheduling-time snapshot.
    Known false negatives: snapshots flowing through intermediate
    helpers, dict-dispatched callbacks, and attributes read via
    aliases of ``self``."""
    if not mod.in_packages(SIM_PACKAGES):
        return
    for fn_qual, info in sorted(project.functions.items()):
        if info.module != mod.module:
            continue
        fn = info.node
        # (a) loop-variable capture
        for loop in ast.walk(fn):
            if not isinstance(loop, ast.For):
                continue
            targets = {
                n.id
                for n in ast.walk(loop.target)
                if isinstance(n, ast.Name)
            }
            if not targets:
                continue
            for node in ast.walk(loop):
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                attr = func.attr if isinstance(func, ast.Attribute) else None
                if attr not in _SCHEDULE_FNS:
                    continue
                for arg in list(node.args) + [k.value for k in node.keywords]:
                    if not isinstance(arg, ast.Lambda):
                        continue
                    captured = sorted(
                        (_names_read(arg.body) - _lambda_bound_names(arg))
                        & targets
                    )
                    if captured:
                        yield mod.finding(
                            "SIM016",
                            arg,
                            "scheduled callback closes over live loop "
                            f"variable(s) {captured!r} — every callback "
                            "will see the final iteration's value; bind "
                            "with a default (lambda x=x: ...)",
                        )
        # (b) cross-function now-snapshot via self attributes
        if info.class_name is None:
            continue
        now_locals: Set[str] = set()
        snap_attrs: Set[str] = set()
        for node in _walk_scope(fn.body):
            if not isinstance(node, ast.Assign):
                continue
            value = node.value
            bare_now = isinstance(value, ast.Attribute) and value.attr == "now"
            from_now_local = (
                isinstance(value, ast.Name) and value.id in now_locals
            )
            for target in node.targets:
                if isinstance(target, ast.Name) and bare_now:
                    now_locals.add(target.id)
                elif (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and (bare_now or from_now_local)
                ):
                    snap_attrs.add(target.attr)
        if not snap_attrs:
            continue
        cls_qual = f"{mod.module}.{info.class_name}"
        for node in _walk_scope(fn.body):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            attr = func.attr if isinstance(func, ast.Attribute) else None
            if attr not in _SCHEDULE_FNS:
                continue
            for arg in list(node.args) + [k.value for k in node.keywords]:
                if not (
                    isinstance(arg, ast.Attribute)
                    and isinstance(arg.value, ast.Name)
                    and arg.value.id == "self"
                ):
                    continue
                callee_qual = project.resolve_method(cls_qual, arg.attr)
                if callee_qual is None:
                    continue
                callee = project.functions[callee_qual].node
                hit = _reads_self_attr(callee, snap_attrs)
                if hit is not None:
                    yield mod.finding(
                        "SIM016",
                        arg,
                        f"scheduled callback {arg.attr}() reads "
                        f"self.{hit}, a .now snapshot taken at "
                        "scheduling time — re-read Simulator.now at "
                        "fire time",
                    )


# -- SIM017: API confinement via the call graph (project scope) --------------


@rule(
    "SIM017",
    "api-confinement",
    scope=SCOPE_PROJECT,
    rationale=(
        "Some APIs are contracts of exactly one subsystem: gc pausing "
        "belongs to the run loop, raw heap primitives to the event-queue "
        "core, frame construction to the endpoint layer, boundary "
        "plumbing to the parallel coordinator.  The declarative table "
        "(CONFINEMENTS) states who may use what; resolution through the "
        "project symbol table means aliased imports cannot dodge it."
    ),
)
def check_api_confinement(
    mod: ModuleInfo, project: Project
) -> Iterator[Finding]:
    """Enforce the SIM017 rows of :data:`CONFINEMENTS`: flag disallowed
    imports of confined names, and — via the call graph — call sites that
    *resolve* to a confined API even when the import itself was innocent
    (``import repro.net.boundary as b; b.import_packet(...)``).  Call
    findings are skipped for an entry whose import was already flagged in
    the module, so one smuggled API reports once per acquisition path."""
    entries = _table_entries("SIM017")
    live = [e for e in entries if not _module_allowed(mod, e.allowed)]
    if not live:
        return
    flagged_entries: Set[int] = set()
    for entry, finding in _confinement_hits(mod, live):
        flagged_entries.add(id(entry))
        yield finding
    # call-graph pass: resolved calls to confined qualnames
    confined: Dict[str, Confinement] = {}
    module_entries: List[Confinement] = []
    for e in live:
        if id(e) in flagged_entries:
            continue
        if e.kind == "from-import":
            for n in e.names:
                confined[f"{e.api}.{n}"] = e
        elif e.kind == "import" and e.api:
            module_entries.append(e)
    if not confined and not module_entries:
        return
    for fn_qual, info in sorted(project.functions.items()):
        if info.module != mod.module:
            continue
        for node in ast.walk(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = project.resolve_callable(
                mod.module, info.class_name, node.func
            )
            if target is None:
                continue
            entry = confined.get(target)
            if entry is None:
                for e in module_entries:
                    if target == e.api or target.startswith(e.api + "."):
                        entry = e
                        break
            if entry is not None:
                yield mod.finding(entry.rule_id, node, entry.message)


# -- SIM018: fluid-solver discipline ------------------------------------------

_FLUID_PKG = ("repro", "sim", "fluid")

#: the packet-freelist surface the fluid package may never touch
_FLUID_FREELIST_NAMES = frozenset(
    {"make_data", "make_ack", "make_data_run", "release", "reset_freelist"}
)
_FLUID_FORBIDDEN_MODULE = "repro.net.packet"


def _fluid_mutator(name: str) -> bool:
    """Function names allowed to mutate fluid state.

    ``__init__`` builds the objects; ``on_*`` are the scheduled event
    entry points; ``_epoch*`` are the epoch-boundary phases they call
    (settle / resolve / apply / arm / restore).  Everything else in the
    package is a pure helper.
    """
    return (
        name == "__init__"
        or name.startswith("on_")
        or name.startswith("_epoch")
    )


@rule(
    "SIM018",
    "fluid-epoch-discipline",
    rationale=(
        "The fluid solver is a rate abstraction: it must never construct "
        "or release pooled frames (frame lifetime is the packet engine's "
        "contract, guarded by the freelist counters and the sanitizer "
        "poisoning protocol), and fluid state may move only at epoch "
        "boundaries — mutation scattered through helpers breaks the "
        "piecewise-constant-rate invariant the epoch algebra "
        "(settle -> resolve -> apply -> arm) and the fluid digest pins "
        "rely on."
    ),
)
def check_fluid_discipline(mod: ModuleInfo) -> Iterator[Finding]:
    """In ``repro.sim.fluid`` only: (a) importing ``repro.net.packet`` —
    or naming any freelist constructor/release — is forbidden: fluid
    flows are rates, not frames; (b) attribute stores are confined to
    ``__init__`` and the epoch-boundary entry points (functions named
    ``on_*`` / ``_epoch*``) — helpers compute and return, they do not
    mutate.  Subscript stores (the solver's work arrays) are always
    allowed.  The packet side of the coupling (the port reading
    ``port.fluid``) lives outside this package and is deliberately out
    of scope."""
    parts = mod.package_parts()
    if parts[: len(_FLUID_PKG)] != _FLUID_PKG:
        return
    for node in ast.walk(mod.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == _FLUID_FORBIDDEN_MODULE or alias.name.startswith(
                    _FLUID_FORBIDDEN_MODULE + "."
                ):
                    yield mod.finding(
                        "SIM018",
                        node,
                        "repro.net.packet imported in the fluid package — "
                        "fluid flows are rates, not frames",
                    )
        elif isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == _FLUID_FORBIDDEN_MODULE or module.startswith(
                _FLUID_FORBIDDEN_MODULE + "."
            ):
                yield mod.finding(
                    "SIM018",
                    node,
                    "repro.net.packet imported in the fluid package — "
                    "fluid flows are rates, not frames",
                )
            else:
                hit = sorted(
                    {a.name for a in node.names} & _FLUID_FREELIST_NAMES
                )
                if hit:
                    yield mod.finding(
                        "SIM018",
                        node,
                        f"freelist name(s) {', '.join(hit)} imported in the "
                        "fluid package — the packet freelist is off-limits "
                        "to the fluid solver",
                    )
        elif isinstance(node, ast.Call):
            func = node.func
            name = (
                func.id
                if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute) else None
            )
            if name in _FLUID_FREELIST_NAMES:
                yield mod.finding(
                    "SIM018",
                    node,
                    f"{name}() called in the fluid package — the packet "
                    "freelist is off-limits to the fluid solver",
                )
    for scope, body in _scopes(mod.tree):
        if isinstance(
            scope, (ast.FunctionDef, ast.AsyncFunctionDef)
        ) and _fluid_mutator(scope.name):
            continue
        where = (
            "at module level"
            if isinstance(scope, ast.Module)
            else f"in helper {scope.name}()"
        )
        for node in _walk_scope(body):
            if isinstance(node, ast.Attribute) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                yield mod.finding(
                    "SIM018",
                    node,
                    f"fluid state mutated {where} — mutation is confined "
                    "to __init__ and the epoch-boundary entry points "
                    "(on_* / _epoch*)",
                )
