"""repro.analysis — simlint, the simulator-invariant static analyzer.

Every number this repository produces — the TCN vs. queue-length FCT
comparisons, the golden SHA-256 trace digests, the content-addressed sweep
cache — rests on one property: the simulator is **bit-deterministic under a
seed**.  Generic linters cannot see that property, because it is violated by
perfectly idiomatic Python: a ``time.time()`` in a control law, an iteration
over a ``set`` of id-hashed objects, a module-level ``random`` draw.

simlint is a stdlib-``ast`` rule engine that rejects those hazards at review
time.  It runs in two layers: per-module rules walk one file's AST, and
project rules get a whole-program view — a symbol table and call graph
(:mod:`repro.analysis.symbols`) plus release/escape dataflow summaries
(:mod:`repro.analysis.dataflow`) — to chase ownership across function and
module boundaries.  Rules live in :mod:`repro.analysis.rules` (the current
id span is :func:`rule_range`; never hardcode it), the walking/suppression/
baseline machinery in :mod:`repro.analysis.engine`, and the ``python -m
repro lint`` entry point in :mod:`repro.analysis.cli`.

The same invariants are enforced *dynamically* by the runtime sanitizer
(:mod:`repro.sanitize`) — the static layer proves what it can at review
time, the sanitizer catches what slips through at run time.

See docs/STATIC_ANALYSIS.md for the rule catalog, suppression pragmas, and
the re-baselining workflow.
"""

from repro.analysis.engine import (
    BASELINE_VERSION,
    JSON_SCHEMA_VERSION,
    Baseline,
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    iter_python_files,
    lint_paths,
    registered_rules,
    rule,
    rule_range,
)

__all__ = [
    "BASELINE_VERSION",
    "JSON_SCHEMA_VERSION",
    "Baseline",
    "Finding",
    "LintResult",
    "ModuleInfo",
    "Rule",
    "iter_python_files",
    "lint_paths",
    "registered_rules",
    "rule",
    "rule_range",
]
