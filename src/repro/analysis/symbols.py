"""Project symbol table and call graph for simlint's cross-module rules.

Layer 1 of the two-layer toolchain (see ``docs/STATIC_ANALYSIS.md``): a
:class:`Project` is built once per lint run from every parsed
:class:`~repro.analysis.engine.ModuleInfo` and gives project-scoped rules
(``scope="project"``) three things the per-file AST cannot:

* **Name resolution** — each module's import table maps local aliases to
  fully-qualified dotted names, so ``from repro.net.packet import release
  as rel; rel(p)`` resolves to ``repro.net.packet.release`` no matter how
  it was spelled (and regardless of whether the target module is part of
  the linted file set — resolution is lexical, which is what lets a
  single-file fixture exercise a cross-module rule).
* **Definitions** — functions, methods and classes keyed by qualname
  (``repro.sim.parallel.cluster._Partition.apply_and_run``), with class
  bases resolved so "is-a / wraps-a ``PartitionSimulator``" questions are
  answerable.
* **A call graph** — resolved edges for ``Name`` calls, dotted-attribute
  calls and ``self.method()`` calls, plus a conservative bag of *bare*
  attribute-call names (``obj.meth(...)`` on an unresolvable receiver).

Everything here is deliberately *lexical and conservative*: no type
inference, no points-to.  Rules built on top document the resulting
false-negative envelope rather than chase soundness.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analysis.engine import ModuleInfo


class FunctionInfo:
    """One function or method definition, addressable by qualname."""

    __slots__ = ("qualname", "module", "node", "class_name")

    def __init__(
        self,
        qualname: str,
        module: str,
        node: ast.FunctionDef,
        class_name: Optional[str],
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.node = node
        self.class_name = class_name  # None for module-level functions


class ClassInfo:
    """One class definition: resolved bases and its method table."""

    __slots__ = ("qualname", "module", "node", "bases", "methods")

    def __init__(
        self,
        qualname: str,
        module: str,
        node: ast.ClassDef,
        bases: Tuple[str, ...],
        methods: Dict[str, str],  # method name -> method qualname
    ) -> None:
        self.qualname = qualname
        self.module = module
        self.node = node
        self.bases = bases
        self.methods = methods


class Project:
    """Whole-program view over one lint run's modules."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        #: dotted module name -> ModuleInfo
        self.modules: Dict[str, ModuleInfo] = {m.module: m for m in modules}
        #: module -> {local alias -> fully-qualified dotted name}
        self.imports: Dict[str, Dict[str, str]] = {}
        #: qualname -> FunctionInfo (module functions and class methods)
        self.functions: Dict[str, FunctionInfo] = {}
        #: qualname -> ClassInfo
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> resolved callee qualnames
        self.calls: Dict[str, Set[str]] = {}
        #: caller qualname -> bare method names called on opaque receivers
        self.attr_calls: Dict[str, Set[str]] = {}
        for mod in modules:
            self._index_module(mod)
        for mod in modules:
            self._index_calls(mod)

    # -- construction ----------------------------------------------------

    def _index_module(self, mod: ModuleInfo) -> None:
        table: Dict[str, str] = {}
        for node in ast.walk(mod.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        table[head] = head
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(mod.module, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{base}.{alias.name}" if base else alias.name
        self.imports[mod.module] = table

        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qn = f"{mod.module}.{stmt.name}"
                self.functions[qn] = FunctionInfo(qn, mod.module, stmt, None)
            elif isinstance(stmt, ast.ClassDef):
                cls_qn = f"{mod.module}.{stmt.name}"
                methods: Dict[str, str] = {}
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        mq = f"{cls_qn}.{sub.name}"
                        methods[sub.name] = mq
                        self.functions[mq] = FunctionInfo(
                            mq, mod.module, sub, stmt.name
                        )
                bases = tuple(
                    b
                    for b in (
                        self.resolve_expr(mod.module, base) for base in stmt.bases
                    )
                    if b is not None
                )
                self.classes[cls_qn] = ClassInfo(
                    cls_qn, mod.module, stmt, bases, methods
                )

    @staticmethod
    def _import_base(module: str, node: ast.ImportFrom) -> Optional[str]:
        """Absolute dotted base of a ``from X import ...`` (relative-aware)."""
        if not node.level:
            return node.module or ""
        parts = module.split(".")
        # level 1 = current package: drop the module's own leaf name
        if len(parts) < node.level:
            return None
        anchor = parts[: len(parts) - node.level]
        if node.module:
            anchor.append(node.module)
        return ".".join(anchor)

    def _index_calls(self, mod: ModuleInfo) -> None:
        for qn, info in self.functions.items():
            if info.module != mod.module:
                continue
            resolved: Set[str] = set()
            bare: Set[str] = set()
            for node in ast.walk(info.node):
                if not isinstance(node, ast.Call):
                    continue
                target = self.resolve_callable(
                    mod.module, info.class_name, node.func
                )
                if target is not None:
                    resolved.add(target)
                elif isinstance(node.func, ast.Attribute):
                    bare.add(node.func.attr)
            self.calls[qn] = resolved
            self.attr_calls[qn] = bare

    # -- resolution ------------------------------------------------------

    def resolve_name(self, module: str, name: str) -> Optional[str]:
        """Resolve a bare name in ``module`` to a fully-qualified name."""
        target = self.imports.get(module, {}).get(name)
        if target is not None:
            return target
        local = f"{module}.{name}"
        if local in self.functions or local in self.classes:
            return local
        return None

    def resolve_expr(self, module: str, node: ast.AST) -> Optional[str]:
        """Resolve a ``Name`` or dotted ``Attribute`` chain to a fq name.

        ``packet.release`` under ``import repro.net.packet as packet``
        resolves to ``repro.net.packet.release``; chains whose head is not
        a plain name (calls, subscripts) resolve to ``None``.
        """
        parts: List[str] = []
        cur = node
        while isinstance(cur, ast.Attribute):
            parts.append(cur.attr)
            cur = cur.value
        if not isinstance(cur, ast.Name):
            return None
        parts.append(cur.id)
        parts.reverse()
        head = self.resolve_name(module, parts[0])
        if head is None:
            # unresolved head: a plain `import a.b` binds `a`, which the
            # import table records as itself, so only truly local/builtin
            # heads land here
            return None
        return ".".join([head] + parts[1:])

    def resolve_callable(
        self, module: str, class_name: Optional[str], func: ast.AST
    ) -> Optional[str]:
        """Resolve a call's ``func`` expression to a definition qualname.

        Handles bare names, dotted chains and ``self.method(...)`` (looked
        up in the enclosing class, then its resolved project bases).
        """
        if isinstance(func, ast.Name):
            return self.resolve_name(module, func.id)
        if not isinstance(func, ast.Attribute):
            return None
        recv = func.value
        if (
            isinstance(recv, ast.Name)
            and recv.id == "self"
            and class_name is not None
        ):
            return self.resolve_method(f"{module}.{class_name}", func.attr)
        return self.resolve_expr(module, func)

    def resolve_method(self, class_qualname: str, method: str) -> Optional[str]:
        """Find ``method`` on a class or its project-resolved bases (MRO-ish)."""
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            cq = stack.pop(0)
            if cq in seen:
                continue
            seen.add(cq)
            info = self.classes.get(cq)
            if info is None:
                continue
            if method in info.methods:
                return info.methods[method]
            stack.extend(info.bases)
        return None

    def is_subclass_of(self, class_qualname: str, base_suffix: str) -> bool:
        """True when the class or any resolved ancestor matches ``base_suffix``.

        ``base_suffix`` matches a full qualname or a trailing dotted suffix
        (``partition.PartitionSimulator``), so the check works even when
        the base's defining module is outside the linted file set.
        """
        seen: Set[str] = set()
        stack = [class_qualname]
        while stack:
            cq = stack.pop()
            if cq in seen:
                continue
            seen.add(cq)
            if cq == base_suffix or cq.endswith("." + base_suffix):
                return True
            info = self.classes.get(cq)
            if info is not None:
                stack.extend(info.bases)
        return False

    # -- reachability ----------------------------------------------------

    def reachable_from(self, roots: Iterable[str]) -> Set[str]:
        """Qualnames reachable from ``roots`` over *resolved* call edges."""
        seen: Set[str] = set()
        stack = [r for r in roots]
        while stack:
            qn = stack.pop()
            if qn in seen:
                continue
            seen.add(qn)
            stack.extend(self.calls.get(qn, ()))
        return seen

    def functions_in_package(self, prefix: str) -> List[str]:
        """Qualnames of every function whose module sits under ``prefix``."""
        dotted = prefix + "."
        return [
            qn
            for qn, info in self.functions.items()
            if info.module == prefix or info.module.startswith(dotted)
        ]


def build_project(modules: Sequence[ModuleInfo]) -> Project:
    """Build the whole-program view for one lint run."""
    return Project(modules)
