"""The receiving half: cumulative ACKs, reassembly, per-packet ECN echo.

One ACK per data packet (no delayed ACKs — like the ns-2 models the paper
simulates with), carrying:

* the cumulative acknowledgement (next expected segment),
* ECE = the CE bit of the data packet that triggered this ACK (accurate
  per-packet echo, which DCTCP needs and ECN* tolerates), and
* the echoed sender timestamp for RTT estimation.

The receiver records flow completion — the application-level FCT the whole
evaluation is scored on — the moment the last in-order byte arrives.
"""

from __future__ import annotations

from typing import Callable, Optional, Set

from repro.net.host import Host
from repro.net.packet import Packet, make_ack
from repro.sim.engine import Simulator
from repro.transport.flow import Flow


class Receiver:
    """Reassembling receiver for one flow."""

    __slots__ = (
        "sim", "host", "flow", "rcv_nxt", "_ooo", "on_complete", "on_bytes"
    )

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: Flow,
        on_complete: Optional[Callable[[Flow], None]] = None,
        on_bytes: Optional[Callable[[Flow, int, int], None]] = None,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.rcv_nxt = 0
        self._ooo: Set[int] = set()
        self.on_complete = on_complete
        #: optional delivery hook ``(flow, payload_bytes, now)`` — fired for
        #: every arriving data packet; goodput trackers plug in here.
        self.on_bytes = on_bytes
        host.register_receiver(flow.id, self)

    def on_data(self, pkt: Packet) -> None:
        seq = pkt.seq
        flow = self.flow
        if seq >= flow.npkts:
            return  # malformed/out-of-range segment: never acknowledge
        now = self.sim.now
        if self.on_bytes is not None:
            self.on_bytes(flow, pkt.payload, now)
        if seq == self.rcv_nxt:
            self.rcv_nxt += 1
            ooo = self._ooo
            while self.rcv_nxt in ooo:
                ooo.remove(self.rcv_nxt)
                self.rcv_nxt += 1
        elif seq > self.rcv_nxt:
            self._ooo.add(seq)
        # (seq < rcv_nxt: spurious retransmission; still ACK it)
        ack = make_ack(pkt, self.rcv_nxt, ece=pkt.ce, now=now)
        self.host.send(ack)
        if self.rcv_nxt >= flow.npkts and not flow.completed:
            flow.completed = True
            flow.fct_ns = now - flow.start_ns
            if self.on_complete is not None:
                self.on_complete(flow)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Receiver flow={self.flow.id} rcv_nxt={self.rcv_nxt}>"
