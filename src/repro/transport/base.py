"""The shared sender core: windowing, loss recovery, RTO, ECN plumbing.

Subclasses only decide how to *react to marks* (the ``_on_ecn_feedback``
hook): ECN* halves once per window, DCTCP cuts proportionally to its
estimated marking fraction.  Everything else — slow start, congestion
avoidance, NewReno fast retransmit with partial-ACK retransmission,
RFC 6298 RTO estimation with a configurable minimum (the paper tunes
RTO_min to 10 ms on the testbed and 5 ms in simulation) — is common.

Sequence numbers are in MSS-sized segments, the granularity at which the
whole simulator operates.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.net.host import Host
from repro.net.packet import Packet, make_data, make_data_run
from repro.sim.engine import Simulator
from repro.transport.flow import Flow
from repro.units import MSEC, MSS, SEC

#: per-packet DSCP override: (flow, segment index) -> dscp
Tagger = Callable[[Flow, int], int]


class TransportStats:
    """Counters one sender accumulates (aggregated by the harness)."""

    __slots__ = ("timeouts", "fast_retransmits", "retx_pkts", "ecn_acks", "acks")

    def __init__(self) -> None:
        self.timeouts = 0
        self.fast_retransmits = 0
        self.retx_pkts = 0
        self.ecn_acks = 0
        self.acks = 0


class SenderBase:
    """Window-based reliable sender with pluggable ECN response."""

    __slots__ = (
        "sim", "host", "flow", "cwnd", "max_cwnd", "ssthresh",
        "snd_una", "snd_nxt", "dupacks", "in_recovery", "recover",
        "done", "tagger", "on_done", "stats", "tracer",
        "min_rto_ns", "max_rto_ns", "srtt_ns", "rttvar_ns", "rto_ns",
        "_base_rto_ns", "_backoff", "_rto_deadline", "_rto_tick_at",
        "_cut_end", "app_rate_bps", "_app_tick", "_app_tokens",
        "_app_refill_ns", "_app_bucket", "_app_hwm", "_window_limited",
    )

    #: set False in subclasses that do not negotiate ECN
    ecn_capable = True

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: Flow,
        init_cwnd: float = 10.0,
        min_rto_ns: int = 10 * MSEC,
        init_rto_ns: Optional[int] = None,
        max_rto_ns: int = 2 * SEC,
        tagger: Optional[Tagger] = None,
        on_done: Optional[Callable[["SenderBase"], None]] = None,
        app_rate_bps: Optional[int] = None,
        max_cwnd: float = 2800.0,
    ) -> None:
        self.sim = sim
        self.host = host
        self.flow = flow
        self.cwnd = float(init_cwnd)
        # Socket-buffer equivalent (default ~4 MB of segments, like Linux
        # tcp_wmem max): without it, a flow that never sees a mark or loss
        # — e.g. alone in a strict-priority queue — would grow its window
        # without bound and bloat its own NIC queue.
        self.max_cwnd = float(max_cwnd)
        self.ssthresh = float(1 << 30)
        self.snd_una = 0
        self.snd_nxt = 0
        self.dupacks = 0
        self.in_recovery = False
        self.recover = -1
        self.done = False
        self.tagger = tagger
        self.on_done = on_done
        self.stats = TransportStats()
        #: optional repro.obs.Tracer recording cwnd/alpha/rate updates;
        #: None (the default) keeps the ACK path branch-only
        self.tracer = None
        # RFC 6298 state
        self.min_rto_ns = min_rto_ns
        self.max_rto_ns = max_rto_ns
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns = 0
        self.rto_ns = init_rto_ns if init_rto_ns is not None else min_rto_ns
        self._base_rto_ns = self.rto_ns
        self._backoff = 1
        # Lazy RTO timer: ``_rto_deadline`` is the authoritative expiry
        # (None = disarmed); ``_rto_tick_at`` is the fire time of the
        # earliest tick event in the heap (None = no tick in flight).
        # Re-arming just moves the deadline — the in-flight tick checks it
        # when it fires and reschedules itself — so the heap holds one
        # live entry per sender instead of one cancelled entry per ACK.
        self._rto_deadline: Optional[int] = None
        self._rto_tick_at: Optional[int] = None
        # once-per-window ECN reaction boundary (segment index)
        self._cut_end = 0
        # application pacing: an app-limited flow (e.g. the paper's
        # "500 Mbps TCP flow" in Fig. 5) releases data at this rate rather
        # than as fast as the window allows
        self.app_rate_bps = app_rate_bps
        # True while a token-release tick is in the heap; the tick checks
        # ``done`` at fire time, so completion never needs to cancel it.
        self._app_tick = False
        self._app_tokens = 1.0       # segments the app has made available
        self._app_refill_ns = 0      # last token refill time
        self._app_bucket = max(init_cwnd, 10.0)  # max burst (segments)
        self._app_hwm = 0            # highest segment ever sent (retx is free)
        # cwnd validation: only grow the window when it was actually the
        # limiting factor at the last send opportunity
        self._window_limited = True
        host.register_sender(flow.id, self)

    # -- lifecycle ------------------------------------------------------------

    def start(self) -> None:
        """Begin transmission (call at ``flow.start_ns``)."""
        self.flow.start_ns = self.sim.now
        self._app_refill_ns = self.sim.now
        self._send_window()

    def _complete(self) -> None:
        self.done = True
        self._disarm_rto()
        if self.on_done is not None:
            self.on_done(self)

    # -- transmit path -----------------------------------------------------

    def _send_window(self) -> None:
        wnd = int(self.cwnd)
        if wnd < 1:
            wnd = 1
        flow = self.flow
        if self.tagger is None and self.app_rate_bps is None:
            # Bulk fast path (the common shape: no per-packet tagger, no
            # app pacing): the burst is fully determined up front, so the
            # shared per-segment state is hoisted once and the per-packet
            # window re-checks of the generic loop below drop out.
            # ``host.send`` never dispatches events synchronously (it
            # only enqueues and schedules), so no ACK can move
            # ``snd_una``/``cwnd`` mid-burst — sending ``burst`` segments
            # here is step-for-step what the generic loop would do.
            snd_nxt = self.snd_nxt
            npkts = flow.npkts
            burst = npkts - snd_nxt
            w = wnd - (snd_nxt - self.snd_una)
            if burst > w:
                burst = w
            if burst > 0:
                send = self.host.send
                now = self.sim.now
                ect = self.ecn_capable
                dscp = flow.dscp
                fid = flow.id
                src = flow.src
                dst = flow.dst
                end = snd_nxt + burst
                tail = end == npkts  # the flow's short last segment?
                n_full = burst - 1 if tail else burst
                if n_full > 4:
                    # slow-start / post-recovery bursts: one freelist
                    # slice covers the whole run
                    for pkt in make_data_run(
                        fid, src, dst, snd_nxt, n_full, MSS, ect, dscp, now
                    ):
                        send(pkt)
                else:
                    for s in range(snd_nxt, snd_nxt + n_full):
                        send(
                            make_data(fid, src, dst, s, MSS, ect, dscp, now)
                        )
                if tail:
                    send(
                        make_data(
                            fid, src, dst, end - 1,
                            flow.payload_of(end - 1), ect, dscp, now,
                        )
                    )
                self.snd_nxt = end
            self._window_limited = self.snd_nxt - self.snd_una >= wnd
            if self._rto_deadline is None and self.snd_una < flow.npkts:
                self._arm_rto()
            return
        paced = self.app_rate_bps is not None
        if paced:
            self._refill_app_tokens()
        app_starved = False
        while self.snd_nxt < flow.npkts and self.snd_nxt - self.snd_una < wnd:
            if paced and self.snd_nxt >= self._app_hwm:
                # new data consumes an app token; retransmitted ranges are
                # already-produced data and flow freely
                if self._app_tokens < 1.0:
                    app_starved = True
                    break
                self._app_tokens -= 1.0
                self._app_hwm = self.snd_nxt + 1
            self._transmit(self.snd_nxt)
            self.snd_nxt += 1
        self._window_limited = self.snd_nxt - self.snd_una >= wnd
        if app_starved and not self._app_tick:
            # wake when the next segment's worth of tokens has accrued
            deficit = 1.0 - self._app_tokens
            delay = int(deficit * MSS * 8 * SEC / self.app_rate_bps) + 1
            self._app_tick = True
            self.sim.schedule(delay, self._on_app_release)
        if self._rto_deadline is None and self.snd_una < flow.npkts:
            self._arm_rto()

    def _refill_app_tokens(self) -> None:
        now = self.sim.now
        elapsed = now - self._app_refill_ns
        if elapsed > 0:
            self._app_tokens = min(
                self._app_bucket,
                self._app_tokens + self.app_rate_bps * elapsed / (8 * MSS * SEC),
            )
        self._app_refill_ns = now

    def _on_app_release(self) -> None:
        self._app_tick = False
        if not self.done:
            self._send_window()

    def _transmit(self, seq: int, is_retx: bool = False) -> None:
        flow = self.flow
        dscp = self.tagger(flow, seq) if self.tagger is not None else flow.dscp
        pkt = make_data(
            flow.id,
            flow.src,
            flow.dst,
            seq,
            flow.payload_of(seq),
            ect=self.ecn_capable,
            dscp=dscp,
            ts=self.sim.now,
        )
        pkt.is_retx = is_retx
        if is_retx:
            self.stats.retx_pkts += 1
        self.host.send(pkt)

    # -- ACK path ------------------------------------------------------------

    def on_ack(self, pkt: Packet) -> None:
        if self.done:
            return
        self.stats.acks += 1
        if pkt.ece:
            self.stats.ecn_acks += 1
        ack = pkt.seq
        if ack > self.snd_una:
            self._on_new_ack(pkt, ack)
        elif ack == self.snd_una:
            self._on_dupack(pkt)
        # acks below snd_una are stale reordering; ignore

    def _on_new_ack(self, pkt: Packet, ack: int) -> None:
        if pkt.ts_echo:
            self._update_rtt(self.sim.now - pkt.ts_echo)
        newly = ack - self.snd_una
        self.snd_una = ack
        self.dupacks = 0
        self._backoff = 1
        self._on_ecn_feedback(pkt.ece, newly)
        if self.in_recovery:
            if ack > self.recover:
                self.in_recovery = False
            elif self.snd_una < self.flow.npkts:
                # NewReno partial ACK: the next hole is also lost.  (The
                # bound matters: the flow-completing ACK can itself be a
                # "partial" ACK of an over-estimated recover point, and
                # there is no segment past npkts-1 to retransmit.)
                self._transmit(self.snd_una, is_retx=True)
        if not self.in_recovery:
            self._grow_cwnd(newly)
        if self.snd_una >= self.flow.npkts:
            self._complete()
            return
        self._arm_rto()
        self._send_window()

    def _on_dupack(self, pkt: Packet) -> None:
        self._on_ecn_feedback(pkt.ece, 0)
        self.dupacks += 1
        if self.dupacks == 3 and not self.in_recovery:
            self.stats.fast_retransmits += 1
            self.ssthresh = max(self.cwnd / 2.0, 2.0)
            self.cwnd = self.ssthresh
            self._trace_cwnd("fast_retx")
            self.in_recovery = True
            self.recover = self.snd_nxt
            self._transmit(self.snd_una, is_retx=True)
            self._arm_rto()

    def _grow_cwnd(self, newly_acked: int) -> None:
        if not self._window_limited:
            return  # cwnd validation: the app, not the window, was limiting
        if self.cwnd < self.ssthresh:
            self.cwnd += newly_acked  # slow start
        else:
            self.cwnd += newly_acked / self.cwnd  # congestion avoidance
        if self.cwnd > self.max_cwnd:
            self.cwnd = self.max_cwnd

    # -- ECN hook --------------------------------------------------------------

    def _on_ecn_feedback(self, ece: bool, newly_acked: int) -> None:
        """Subclass hook, called on every ACK (including dupacks)."""

    def _trace_cwnd(self, reason: str) -> None:
        """Record a congestion-window cut into the attached tracer.

        Cuts (not per-ACK growth) are the signal worth a trace event:
        they are rare, and each one names the congestion response — ECN,
        fast retransmit, or timeout — the evaluation figures break out.
        """
        tracer = self.tracer
        if tracer is not None:
            tracer.cwnd(self.sim.now, self.flow.id, self.cwnd, reason)

    def _window_cut_allowed(self) -> bool:
        """At most one multiplicative cut per window of data."""
        return self.snd_una > self._cut_end

    def _register_window_cut(self) -> None:
        self._cut_end = self.snd_nxt

    # -- RTO ------------------------------------------------------------------

    def _update_rtt(self, sample_ns: int) -> None:
        if sample_ns <= 0:
            return
        if self.srtt_ns is None:
            self.srtt_ns = sample_ns
            self.rttvar_ns = sample_ns // 2
        else:
            delta = abs(self.srtt_ns - sample_ns)
            self.rttvar_ns = (3 * self.rttvar_ns + delta) // 4
            self.srtt_ns = (7 * self.srtt_ns + sample_ns) // 8
        rto = self.srtt_ns + 4 * self.rttvar_ns
        self._base_rto_ns = max(self.min_rto_ns, min(rto, self.max_rto_ns))

    def _arm_rto(self) -> None:
        """(Re)start the retransmission timer: deadline = now + RTO.

        Called on every ACK, so it must be cheap: it updates the deadline
        integer and only touches the heap when no tick is in flight (or,
        rarely, when the new deadline is *earlier* than the in-flight tick
        — an RTO estimate that shrank below the outstanding tick).
        """
        self.rto_ns = rto_ns = min(
            self._base_rto_ns * self._backoff, self.max_rto_ns
        )
        deadline = self.sim.now + rto_ns
        self._rto_deadline = deadline
        tick_at = self._rto_tick_at
        if tick_at is None or deadline < tick_at:
            self._rto_tick_at = deadline
            self.sim.schedule(rto_ns, self._rto_tick)

    def _disarm_rto(self) -> None:
        """Stop the timer; any in-flight tick self-cleans at fire time."""
        self._rto_deadline = None

    def _rto_tick(self) -> None:
        """Deadline check at tick time: expire, re-arm, or stand down.

        A tick that fires before the (since-moved) deadline re-schedules
        itself at the current deadline — unless an earlier tick is already
        in flight and owns that duty.  A tick firing with the timer
        disarmed (flow done, or everything ACKed) simply evaporates.
        """
        deadline = self._rto_deadline
        now = self.sim.now
        tick_at = self._rto_tick_at
        if deadline is None or self.done:
            if tick_at is not None and tick_at <= now:
                self._rto_tick_at = None
            return
        if now < deadline:
            if tick_at is None or tick_at <= now:
                self._rto_tick_at = deadline
                self.sim.schedule(deadline - now, self._rto_tick)
            return
        self._rto_tick_at = None
        self._on_timeout()

    def _on_timeout(self) -> None:
        if self.done:
            return
        self.stats.timeouts += 1
        self.ssthresh = max(self.cwnd / 2.0, 2.0)
        self.cwnd = 1.0
        self._trace_cwnd("timeout")
        self.dupacks = 0
        self.in_recovery = False
        self.snd_nxt = self.snd_una  # go-back-N from the hole
        self._backoff = min(self._backoff * 2, 64)
        self._send_window()
        self._arm_rto()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} flow={self.flow.id} cwnd={self.cwnd:.1f} "
            f"una={self.snd_una}/{self.flow.npkts}>"
        )
