"""DCQCN-style rate-based congestion control (Zhu et al., SIGCOMM 2015).

The paper's discussion (§4.3) names this pairing as future work: DCQCN is
the ECN-based congestion control of RoCEv2 deployments, it *requires*
RED-like probabilistic marking to stay fair, and TCN's probabilistic
variant (:class:`repro.core.tcn.ProbabilisticTcn`) provides exactly that
signal under any scheduler.  This module implements a faithful,
simulator-scale DCQCN sender so the combination can be evaluated.

Model (following the DCQCN paper's reaction point):

* transmission is **rate-paced** (no congestion window — RDMA NICs pace);
  reliability still uses go-back-N on timeout, as RoCE NICs do;
* the receiver's per-packet ECE echo stands in for CNPs (congestion
  notification packets);
* on the first marked ACK of each ~RTT window: remember the target rate
  ``RT = RC``, cut ``RC *= (1 - alpha/2)``, and bump
  ``alpha = (1-g) alpha + g``;
* a periodic timer decays ``alpha *= (1-g)`` when no mark arrived, and
  raises the rate in DCQCN's two phases: *fast recovery* (five halvings of
  the gap: ``RC = (RT + RC)/2``) then *additive increase*
  (``RT += R_AI``).
"""

from __future__ import annotations

from typing import Optional

from repro.net.host import Host
from repro.sim.engine import Simulator
from repro.transport.base import SenderBase, Tagger
from repro.transport.flow import Flow
from repro.units import MSEC, MSS, SEC, USEC


class DcqcnSender(SenderBase):
    """Rate-paced sender with DCQCN's alpha/rate control laws.

    The inherited window machinery is retained purely for loss recovery
    (go-back-N via RTO, dupack fast retransmit); the *sending rate* is
    governed by DCQCN's ``RC`` instead of the window: packets are released
    one at a time by a pacing timer.
    """

    __slots__ = (
        "line_rate_bps", "min_rate_bps", "rc_bps", "rt_bps", "alpha",
        "alpha_timer_ns", "rate_timer_ns", "_marked_since_alpha_timer",
        "_cut_since_rate_timer", "_fr_count", "_pace_tick",
        "_timers_started", "_dcqcn_hwm",
    )

    ecn_capable = True

    #: alpha gain (DCQCN's g)
    g = 1.0 / 16.0
    #: additive increase step (bits/s)
    r_ai_bps = 40_000_000
    #: fast-recovery stages before additive increase
    fr_stages = 5

    def __init__(
        self,
        sim: Simulator,
        host: Host,
        flow: Flow,
        line_rate_bps: int,
        alpha_timer_ns: int = 55 * USEC,
        rate_timer_ns: int = 300 * USEC,
        min_rate_bps: int = 10_000_000,
        min_rto_ns: int = 5 * MSEC,
        tagger: Optional[Tagger] = None,
        **kwargs,
    ) -> None:
        super().__init__(
            sim, host, flow, init_cwnd=1.0, min_rto_ns=min_rto_ns,
            tagger=tagger, **kwargs,
        )
        # effectively unbounded window: rate pacing is the throttle
        self.cwnd = float(1 << 20)
        self.max_cwnd = float(1 << 20)
        self.line_rate_bps = line_rate_bps
        self.min_rate_bps = min_rate_bps
        self.rc_bps = float(line_rate_bps)   # current rate
        self.rt_bps = float(line_rate_bps)   # target rate
        self.alpha = 1.0
        self.alpha_timer_ns = alpha_timer_ns
        self.rate_timer_ns = rate_timer_ns
        self._marked_since_alpha_timer = False
        self._cut_since_rate_timer = False
        self._fr_count = 0
        # True while a pacing tick is in the heap; the tick checks ``done``
        # at fire time (lazy timer — completion never cancels it).
        self._pace_tick = False
        self._timers_started = False

    # -- pacing ----------------------------------------------------------

    def start(self) -> None:
        self.flow.start_ns = self.sim.now
        if not self._timers_started:
            self._timers_started = True
            self.sim.schedule(self.alpha_timer_ns, self._alpha_timer)
            self.sim.schedule(self.rate_timer_ns, self._rate_timer)
        self._pace_next()

    def _send_window(self) -> None:  # called by ACK/RTO paths
        # Under pacing, new transmissions happen only on the pace timer;
        # recovery retransmissions (timeout path) reset snd_nxt and the
        # pacer picks them up.
        if not self._pace_tick and not self.done:
            self._pace_next()
        if self._rto_deadline is None and self.snd_una < self.flow.npkts:
            self._arm_rto()

    def _pace_next(self) -> None:
        self._pace_tick = False
        if self.done:
            return
        flow = self.flow
        if self.snd_nxt < flow.npkts:
            self._transmit(self.snd_nxt, is_retx=self.snd_nxt < self._hwm())
            self.snd_nxt += 1
            gap_ns = int(MSS * 8 * SEC / max(self.rc_bps, self.min_rate_bps))
            self._pace_tick = True
            self.sim.schedule(max(gap_ns, 1), self._pace_next)
        if self._rto_deadline is None and self.snd_una < flow.npkts:
            self._arm_rto()

    def _hwm(self) -> int:
        # highest segment sent before (for retransmission bookkeeping)
        return getattr(self, "_dcqcn_hwm", 0)

    def _transmit(self, seq: int, is_retx: bool = False) -> None:
        super()._transmit(seq, is_retx)
        if seq >= self._hwm():
            self._dcqcn_hwm = seq + 1

    # -- DCQCN control laws -------------------------------------------------

    def _on_ecn_feedback(self, ece: bool, newly_acked: int) -> None:
        if not ece:
            return
        self._marked_since_alpha_timer = True
        if self._cut_since_rate_timer:
            return  # at most one cut per rate-timer period
        self._cut_since_rate_timer = True
        self.rt_bps = self.rc_bps
        self.rc_bps = max(
            self.rc_bps * (1.0 - self.alpha / 2.0), self.min_rate_bps
        )
        self.alpha = (1.0 - self.g) * self.alpha + self.g
        self._fr_count = 0
        tracer = self.tracer
        if tracer is not None:
            tracer.rate(self.sim.now, self.flow.id, self.rc_bps)
            tracer.alpha(self.sim.now, self.flow.id, self.alpha)

    def _alpha_timer(self) -> None:
        if self.done:
            return
        if not self._marked_since_alpha_timer:
            self.alpha = (1.0 - self.g) * self.alpha
        self._marked_since_alpha_timer = False
        self.sim.schedule(self.alpha_timer_ns, self._alpha_timer)

    def _rate_timer(self) -> None:
        if self.done:
            return
        if not self._cut_since_rate_timer:
            if self._fr_count < self.fr_stages:
                self._fr_count += 1  # fast recovery toward the target
            else:
                self.rt_bps = min(
                    self.rt_bps + self.r_ai_bps, float(self.line_rate_bps)
                )
            self.rc_bps = min(
                (self.rt_bps + self.rc_bps) / 2.0, float(self.line_rate_bps)
            )
        self._cut_since_rate_timer = False
        self.sim.schedule(self.rate_timer_ns, self._rate_timer)

    def _grow_cwnd(self, newly_acked: int) -> None:
        pass  # rate-controlled: the window never throttles

    def _complete(self) -> None:
        # the in-flight pace tick (if any) sees ``done`` and stands down
        super()._complete()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<DcqcnSender flow={self.flow.id} rc={self.rc_bps / 1e9:.2f}Gbps "
            f"alpha={self.alpha:.2f}>"
        )
