"""ECN* and plain Reno senders.

ECN* (Wu et al., CoNEXT 2012 — "regular ECN-enabled TCP") treats an ECN
mark like a loss signal minus the retransmission: cut the window in half,
at most once per window of data.  It has no smoothing, which is why the
paper calls it the most challenging transport for an AQM (lambda = 1 in
Equation 1; premature marks directly halve throughput).

:class:`RenoSender` is the non-ECN control: marks never reach it (it does
not set ECT), so only drops regulate it.  Used in tests and as a no-ECN
baseline.
"""

from __future__ import annotations

from repro.transport.base import SenderBase


class EcnStarSender(SenderBase):
    """Regular ECN TCP: halve cwnd on ECE, once per window."""

    __slots__ = ()

    ecn_capable = True

    def _on_ecn_feedback(self, ece: bool, newly_acked: int) -> None:
        if ece and self._window_cut_allowed():
            self.cwnd = max(self.cwnd / 2.0, 1.0)
            self.ssthresh = max(self.cwnd, 2.0)
            self._trace_cwnd("ecn")
            self._register_window_cut()


class RenoSender(SenderBase):
    """NewReno without ECN — the baseline the base class already implements."""

    __slots__ = ()

    ecn_capable = False
