"""ECN-capable transports: DCTCP and ECN* over a shared NewReno base.

The paper's end hosts run DCTCP (testbed and default simulations) and ECN*
(robustness simulations, §6.2.2).  Both are implemented as window-based
senders over a common loss-recovery core; receivers echo CE marks per
packet (ECE) exactly as DCTCP requires.
"""

from repro.transport.flow import Flow
from repro.transport.base import SenderBase, TransportStats
from repro.transport.tcp import EcnStarSender, RenoSender
from repro.transport.dctcp import DctcpSender
from repro.transport.dcqcn import DcqcnSender
from repro.transport.receiver import Receiver

__all__ = [
    "Flow",
    "SenderBase",
    "TransportStats",
    "EcnStarSender",
    "RenoSender",
    "DctcpSender",
    "DcqcnSender",
    "Receiver",
]
