"""DCTCP (Alizadeh et al., SIGCOMM 2010).

The sender maintains ``alpha``, an EWMA of the fraction of ACKs carrying
ECN-Echo per window of data (gain ``g = 1/16``), and on congestion cuts
``cwnd <- cwnd x (1 - alpha/2)`` — a gentle shave when marking is sparse,
a Reno-like halving when every packet is marked.  The cut fires at most
once per window, mirroring the CWR handshake of real stacks.

The receiver side needs no DCTCP-specific code here because our
:class:`~repro.transport.receiver.Receiver` already echoes CE state on
every ACK (the accurate per-packet echo DCTCP's state machine exists to
approximate under delayed ACKs).
"""

from __future__ import annotations

from repro.transport.base import SenderBase


class DctcpSender(SenderBase):
    """DCTCP congestion control over the shared reliable core."""

    __slots__ = (
        "alpha", "_acked_in_window", "_marked_in_window", "_window_end",
    )

    ecn_capable = True

    #: EWMA gain for the marking-fraction estimate (the paper's g = 1/16)
    g = 1.0 / 16.0

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        # Start conservative (alpha = 1): an early mark halves, as DCTCP
        # recommends for safe slow-start exit.
        self.alpha = 1.0
        self._acked_in_window = 0
        self._marked_in_window = 0
        self._window_end = 0  # alpha update boundary (segment index)

    def _on_ecn_feedback(self, ece: bool, newly_acked: int) -> None:
        # Count ACK arrivals; dupacks (newly_acked == 0) still count one
        # segment's worth of feedback.
        weight = newly_acked if newly_acked > 0 else 1
        self._acked_in_window += weight
        if ece:
            self._marked_in_window += weight
            if self._window_cut_allowed():
                self.cwnd = max(self.cwnd * (1.0 - self.alpha / 2.0), 1.0)
                self.ssthresh = max(self.cwnd, 2.0)
                self._trace_cwnd("ecn")
                self._register_window_cut()
        if self.snd_una >= self._window_end:
            self._update_alpha()
            self._window_end = self.snd_nxt

    def _update_alpha(self) -> None:
        if self._acked_in_window > 0:
            frac = self._marked_in_window / self._acked_in_window
            self.alpha = (1.0 - self.g) * self.alpha + self.g * frac
            tracer = self.tracer
            if tracer is not None:
                tracer.alpha(self.sim.now, self.flow.id, self.alpha)
        self._acked_in_window = 0
        self._marked_in_window = 0
