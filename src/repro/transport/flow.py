"""The flow (application message) abstraction.

A flow is one request/response message of a known size between two hosts —
the unit whose completion time (FCT) the paper reports.  The ``service``
field selects the switch queue (via DSCP); under PIAS the per-packet DSCP
additionally depends on how many bytes the flow has sent.
"""

from __future__ import annotations

from typing import Optional

from repro.units import MSS


class Flow:
    """One message to be transported."""

    __slots__ = (
        "id",
        "src",
        "dst",
        "size_bytes",
        "start_ns",
        "service",
        "dscp",
        "npkts",
        "fct_ns",
        "completed",
    )

    def __init__(
        self,
        flow_id: int,
        src: int,
        dst: int,
        size_bytes: int,
        start_ns: int = 0,
        service: int = 0,
        dscp: Optional[int] = None,
    ) -> None:
        if size_bytes <= 0:
            raise ValueError(f"flow size must be positive, got {size_bytes}")
        if src == dst:
            raise ValueError(f"flow {flow_id}: src == dst == {src}")
        self.id = flow_id
        self.src = src
        self.dst = dst
        self.size_bytes = size_bytes
        self.start_ns = start_ns
        self.service = service
        self.dscp = dscp if dscp is not None else service
        self.npkts = -(-size_bytes // MSS)  # ceil
        self.fct_ns: Optional[int] = None
        self.completed = False

    def payload_of(self, seq: int) -> int:
        """Payload bytes of segment ``seq`` (the last one may be short)."""
        if seq == self.npkts - 1:
            return self.size_bytes - (self.npkts - 1) * MSS
        return MSS

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Flow {self.id} {self.src}->{self.dst} {self.size_bytes}B "
            f"svc={self.service}{' done' if self.completed else ''}>"
        )
