"""Setup shim: this offline environment lacks the `wheel` package, so
`pip install -e .` (PEP 517 editable) cannot build a wheel.  `python
setup.py develop` installs the same editable egg-link without wheel.
All real metadata lives in pyproject.toml."""

from setuptools import setup

setup()
