"""Figure 9: traffic prioritization, SP (1) / WFQ (4) + PIAS + DCTCP.

Same as Figure 8 on the round-less scheduler.  Paper: TCN (SP/WFQ) reaches
up to 84% lower 99th-percentile small-flow FCT than CoDel, and the same
large gaps versus per-queue standard-threshold RED; MQ-ECN is excluded
(SP/WFQ has no rounds).
"""

from benchmarks.benchlib import (
    assert_tcn_beats_queue_length_baseline,
    fct_comparison_text,
    run_schemes_pooled,
    save_results,
    star_testbed_kwargs,
)

SCHEMES = ("tcn", "codel", "red_std")
LOADS = (0.6, 0.9)
SEEDS = (1, 2, 3)

PAPER = [
    "small-flow 99p: TCN up to 84% lower than CoDel",
    "small-flow avg/99p: large gaps versus per-queue standard threshold",
    "large-flow avg: TCN within 1.9%",
    "MQ-ECN excluded: SP/WFQ has no rounds",
]


def test_fig09(benchmark):
    per_load = {}

    def workload():
        for load in LOADS:
            per_load[load] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="sp_wfq", n_queues=5, n_high=1,
                pias=True, load=load, **star_testbed_kwargs(),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    text = fct_comparison_text(
        "Figure 9", "prioritization, SP/WFQ + PIAS + DCTCP", PAPER, per_load
    )
    extra = "\nsmall-flow timeouts at high load: " + str(
        {k: r.timeouts_small for k, r in per_load[max(LOADS)].items()}
    )
    save_results("fig09_priority_spwfq", text + extra)

    high = per_load[max(LOADS)]
    assert_tcn_beats_queue_length_baseline(high, small_avg_margin=1.3)
    tcn, codel, red = (high[s].summary for s in ("tcn", "codel", "red_std"))
    assert red.p99_small_ns >= 2.0 * tcn.p99_small_ns
    # the paper's TCN-vs-CoDel tail gap
    assert codel.p99_small_ns >= 1.5 * tcn.p99_small_ns
