"""Figure 5: static flows under SP/WFQ — policy preservation and RTT.

Paper setup: SP/WFQ with 3 queues (q1 strict high, q2/q3 equal-weight),
DCTCP; a 500 Mbps app-limited flow in q1, one greedy flow in q2, four in
q3.  Expected goodputs 500/250/250 Mbps under any correct scheme.  Ping
through q3 measures RTT: TCN ~ ideal ECN/RED ~ CoDel, all far below
per-queue ECN/RED with the standard threshold (paper: 415 us vs 1084 us
average — 61.7% lower; 582 vs 1400 us at the 99th — 58.4% lower).
"""

import statistics

from repro.aqm.codel import CoDel
from repro.aqm.perqueue import PerQueueRed
from repro.apps.pinger import Pinger
from repro.core.tcn import Tcn
from repro.metrics.timeseries import GoodputTracker
from repro.sched.base import make_queues
from repro.sched.hybrid import SpWfqScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MB, MBPS, MSEC, SEC, USEC

from benchmarks.benchlib import save_results
from repro.harness.report import format_table

SCHEMES = {
    "tcn": lambda: Tcn(256 * USEC),
    "red_std": lambda: PerQueueRed(32 * KB),
    # the "ideal" oracle: q2/q3 each own 250 Mbps -> K_i = 8 KB
    "ideal": lambda: PerQueueRed([32 * KB, 8 * KB, 8 * KB]),
    "codel": lambda: CoDel(target_ns=51_200, interval_ns=1_024_000),
}

PAPER_RTT_US = {"tcn": (415, 582), "red_std": (1084, 1400)}


def _run(scheme: str):
    sim = Simulator()
    topo = StarTopology(
        sim, 4, GBPS,
        sched_factory=lambda: SpWfqScheduler(
            make_queues(3, quanta=[1500] * 3), n_high=1
        ),
        aqm_factory=SCHEMES[scheme],
        buffer_bytes=96 * KB,
        link_delay_ns=62_500,
    )
    tracker = GoodputTracker()
    on_bytes = lambda f, b, t: tracker.record(f.service, b, t)  # noqa: E731
    fid = 0
    for src, svc, n, start in ((0, 0, 1, 0), (1, 1, 1, SEC), (2, 2, 4, 2 * SEC)):
        for _ in range(n):
            fid += 1
            f = Flow(fid, src, 3, 2000 * MB, service=svc)
            Receiver(sim, topo.hosts[3], f, on_bytes=on_bytes)
            s = DctcpSender(
                sim, topo.hosts[src], f, init_cwnd=10,
                app_rate_bps=500 * MBPS if svc == 0 else None,
            )
            sim.schedule(start, s.start)
    ping = Pinger(sim, topo.hosts[2], 3, flow_id=9999, dscp=2,
                  interval_ns=1 * MSEC)
    sim.schedule(2 * SEC + 100 * MSEC, ping.start)
    sim.run(until=5 * SEC)
    goodputs = [tracker.goodput_bps(s, 3 * SEC, 5 * SEC) / 1e6 for s in range(3)]
    rtts = sorted(ping.rtts_ns)
    return goodputs, (
        statistics.mean(rtts) / 1000,
        rtts[max(0, int(0.99 * len(rtts)) - 1)] / 1000,
    )


def test_fig05(benchmark):
    out = {}

    def workload():
        for scheme in SCHEMES:
            out[scheme] = _run(scheme)

    benchmark.pedantic(workload, rounds=1, iterations=1)

    rows = []
    for scheme, (g, (avg, p99)) in out.items():
        paper = PAPER_RTT_US.get(scheme)
        rows.append([
            scheme,
            f"{g[0]:.0f}/{g[1]:.0f}/{g[2]:.0f}",
            f"{paper[0]}/{paper[1]}" if paper else "-",
            f"{avg:.0f}/{p99:.0f}",
        ])
    table = format_table(
        ["scheme", "goodputs q1/q2/q3 (Mbps)", "paper RTT avg/p99 (us)",
         "measured RTT avg/p99 (us)"],
        rows,
    )
    save_results("fig05_static_flows", "Figure 5 (SP/WFQ static flows)\n" + table)

    # 5(a): every scheme preserves SP/WFQ's 500/250/250 split
    for scheme, (g, _) in out.items():
        assert abs(g[0] - 500) < 35, (scheme, g)
        assert abs(g[1] - g[2]) < 40, (scheme, g)
    # 5(b): TCN's RTT far below per-queue standard; close to ideal & CoDel
    tcn_avg = out["tcn"][1][0]
    red_avg = out["red_std"][1][0]
    ideal_avg = out["ideal"][1][0]
    assert red_avg > 1.8 * tcn_avg, "TCN must cut RTT vs standard threshold"
    assert tcn_avg < 1.5 * ideal_avg, "TCN should be near the oracle"
    assert out["tcn"][1][1] < out["red_std"][1][1], "99th percentile too"
