"""Figure 6: inter-service isolation, DWRR (4 queues) + DCTCP, web search.

Paper findings (testbed, loads 10-90%): all schemes tie on overall average
FCT; TCN cuts the small-flow average by up to 61.4% and the 99th percentile
by up to 73.3% versus per-queue ECN/RED with the standard threshold, ties
MQ-ECN, and stays within 2.8% on large flows.
"""

from benchmarks.benchlib import (
    assert_tcn_beats_baseline_across_loads,
    fct_comparison_text,
    run_schemes_pooled,
    save_results,
    star_testbed_kwargs,
)

SCHEMES = ("tcn", "codel", "mqecn", "red_std")
LOADS = (0.6, 0.9)
SEEDS = (1, 2, 3)

PAPER = [
    "overall avg FCT: all schemes within ~2.5% of each other",
    "small-flow avg: TCN up to 61.4% lower than per-queue standard (9679 -> 3733 us)",
    "small-flow 99p: TCN up to 73.3% lower than per-queue standard",
    "large-flow avg: TCN within 2.8% of per-queue standard",
    "TCN ~ MQ-ECN on DWRR",
]


def test_fig06(benchmark):
    per_load = {}

    def workload():
        for load in LOADS:
            per_load[load] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="dwrr", n_queues=4, load=load,
                **star_testbed_kwargs(),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    save_results(
        "fig06_isolation_dwrr",
        fct_comparison_text(
            "Figure 6", "isolation, DWRR + DCTCP, web search", PAPER, per_load
        ),
    )

    # the paper's "up to 61.4% / 73.3% lower" claims are maxima over the
    # load sweep; no-regression properties must hold at every load
    assert_tcn_beats_baseline_across_loads(per_load)
    high = per_load[max(LOADS)]
    # TCN ~ MQ-ECN (the paper's parity claim for round-robin)
    tcn, mq = high["tcn"].summary, high["mqecn"].summary
    assert abs(tcn.avg_small_ns - mq.avg_small_ns) <= 0.2 * tcn.avg_small_ns
    # red_std suffers the most drops (its standing queues exhaust the buffer)
    assert high["red_std"].drops > 1.5 * high["tcn"].drops
