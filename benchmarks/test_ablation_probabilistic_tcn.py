"""Ablation: probabilistic (RED-like) TCN, the §4.3 extension.

Two sojourn thresholds (T_min, T_max) with linear marking probability in
between — what DCQCN-style transports want.  The bench verifies the
extension behaves as a smoothed version of plain TCN on a live link:
equal or slightly higher steady-state occupancy (marking starts softer),
strictly more graduated marking, same policy preservation.
"""

import random

from repro.core.tcn import ProbabilisticTcn, Tcn
from repro.metrics.timeseries import OccupancySampler
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.tcp import EcnStarSender
from repro.units import GBPS, MB, MSEC, USEC

from benchmarks.benchlib import save_results
from repro.harness.report import format_table


def _run(aqm_factory):
    sim = Simulator()
    topo = StarTopology(
        sim, 9, 10 * GBPS,
        sched_factory=FifoScheduler,
        aqm_factory=aqm_factory,
        buffer_bytes=4 * MB,
        link_delay_ns=25_000,
    )
    sampler = OccupancySampler(topo.port_to(0))
    for i in range(8):
        f = Flow(i + 1, i + 1, 0, 500 * MB)
        Receiver(sim, topo.hosts[0], f)
        s = EcnStarSender(sim, topo.hosts[i + 1], f, init_cwnd=10)
        sim.schedule(0, s.start)
    sim.run(until=30 * MSEC)
    port = topo.port_to(0)
    return {
        "mean_occ_kb": sampler.mean_in_window(10 * MSEC, 30 * MSEC) / 1000,
        "max_occ_kb": sampler.max_in_window(10 * MSEC, 30 * MSEC) / 1000,
        "marks": port.stats.marked_pkts,
        "tx": port.stats.tx_pkts,
    }


def test_ablation_probabilistic_tcn(benchmark):
    out = {}

    def workload():
        out["tcn"] = _run(lambda: Tcn(100 * USEC))
        out["prob-tcn"] = _run(
            lambda: ProbabilisticTcn(
                50 * USEC, 150 * USEC, pmax=1.0, rng=random.Random(1)
            )
        )
        out["prob-tcn-gentle"] = _run(
            lambda: ProbabilisticTcn(
                50 * USEC, 300 * USEC, pmax=0.5, rng=random.Random(1)
            )
        )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    rows = [
        [name, f"{r['mean_occ_kb']:.0f}", f"{r['max_occ_kb']:.0f}",
         f"{r['marks'] / r['tx']:.3f}"]
        for name, r in out.items()
    ]
    table = format_table(
        ["variant", "mean occupancy (KB)", "max occupancy (KB)", "mark rate"],
        rows,
    )
    save_results(
        "ablation_probabilistic_tcn",
        "Ablation: probabilistic TCN (8 ECN* flows at 10G)\n" + table,
    )

    # all variants keep a bounded standing queue and mark packets
    for name, r in out.items():
        assert r["marks"] > 0, name
        assert r["max_occ_kb"] < 400, name
    # the gentler variant marks less aggressively than hard TCN
    assert (
        out["prob-tcn-gentle"]["marks"] / out["prob-tcn-gentle"]["tx"]
        < out["tcn"]["marks"] / out["tcn"]["tx"] * 1.5
    )
