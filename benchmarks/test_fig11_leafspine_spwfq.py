"""Figure 11: leaf-spine fabric, SP (1) / WFQ (7) + PIAS + DCTCP.

The Figure 10 experiment on the round-less WFQ low band (same numbers in
the paper: up to 38.8% lower small-flow average, up to 94.3% lower 99th
percentile, large flows within 1.37%).
"""

from benchmarks.benchlib import (
    fct_comparison_text,
    leafspine_kwargs,
    run_schemes_pooled,
    save_results,
)

SCHEMES = ("tcn", "red_std")
LOADS = (0.6, 0.9)
SEEDS = (1, 2)

PAPER = [
    "small-flow avg: TCN up to 38.8% lower than per-queue standard",
    "small-flow 99p: TCN up to 94.3% lower",
    "large-flow avg: TCN within 1.37%",
]


def test_fig11(benchmark):
    per_load = {}

    def workload():
        for load in LOADS:
            per_load[load] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="sp_wfq", load=load,
                **leafspine_kwargs(),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    text = fct_comparison_text(
        "Figure 11", "leaf-spine, SP/WFQ + PIAS + DCTCP, mixed workloads",
        PAPER, per_load,
    )
    save_results("fig11_leafspine_spwfq", text)

    high = per_load[max(LOADS)]
    tcn, red = high["tcn"], high["red_std"]
    # the robust signals at this scale: drop/timeout asymmetry (the paper's
    # 589-vs-46 mechanism) with no large-flow or overall cost for TCN
    assert red.drops > 2 * tcn.drops
    assert red.timeouts >= tcn.timeouts
    assert tcn.summary.avg_large_ns <= 1.10 * red.summary.avg_large_ns
    assert tcn.summary.avg_all_ns <= 1.05 * red.summary.avg_all_ns
