"""Shared machinery for the per-figure benchmarks.

Every benchmark regenerates one table/figure of the paper at reduced scale
(fewer flows, fewer load points — same code paths) and:

* prints a paper-vs-measured table,
* writes it to ``benchmarks/results/<figure>.txt``,
* asserts the paper's *qualitative* result (who wins, direction and rough
  magnitude of the gap) — absolute numbers are not expected to match a
  different substrate.

Scale note: the testbed figures used 5,000 flows per point and the ns-2
figures 50,000; pure-Python packet simulation runs ~100-200 flows per
point in CI time.  Percentile statistics are accordingly noisier, which
the assertions allow for.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_fct_rows
from repro.harness.runner import ExperimentResult
from repro.harness.sweep import ResultCache, SweepOutcome, SweepResult, run_sweep

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")
CACHE_DIR = os.path.join(os.path.dirname(__file__), ".cache")


def _bench_cache() -> Optional[ResultCache]:
    """The shared benchmark result cache (set REPRO_SWEEP_CACHE=0 to
    disable, e.g. while hacking on the simulator with a dirty tree)."""
    if os.environ.get("REPRO_SWEEP_CACHE", "1") == "0":
        return None
    return ResultCache(CACHE_DIR)


def _bench_processes() -> Optional[int]:
    """Worker count for benchmark sweeps (REPRO_SWEEP_PROCESSES to pin;
    0 forces serial in-process runs)."""
    env = os.environ.get("REPRO_SWEEP_PROCESSES")
    return int(env) if env is not None else None


def _checked(outcome: SweepOutcome) -> List[SweepResult]:
    """Benchmarks must fail loudly on any crashed/timed-out cell."""
    failures = outcome.errors()
    if failures:
        details = "; ".join(
            f"{r.config.scheme}/seed={r.config.seed}: "
            f"{r.error.kind}: {r.error.message}"
            for r in failures
        )
        raise RuntimeError(f"sweep failed for {len(failures)} config(s): {details}")
    return outcome.results


def save_results(figure: str, text: str) -> None:
    """Print a figure's table and persist it under benchmarks/results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{figure}.txt")
    with open(path, "w") as fh:
        fh.write(text + "\n")
    print(f"\n{text}\n[saved to {path}]")


def run_schemes(
    schemes: Iterable[str], **cfg_kwargs
) -> Dict[str, SweepResult]:
    """Run the same configuration under several marking schemes.

    Routed through the sweep runner: schemes run across worker processes
    and repeat runs are served from ``benchmarks/.cache``.
    """
    schemes = list(schemes)
    configs = [ExperimentConfig(scheme=s, **cfg_kwargs) for s in schemes]
    outcome = run_sweep(
        configs, processes=_bench_processes(), cache=_bench_cache()
    )
    return dict(zip(schemes, _checked(outcome)))


def _completed_flow_pairs(run) -> List[Tuple[int, int]]:
    """(size_bytes, fct_ns) of completed flows, from either an
    ExperimentResult (full flow objects) or a SweepResult (compact)."""
    stats = getattr(run, "flow_stats", None)
    if stats is not None:
        return [(size, fct) for size, fct in stats]
    return [(f.size_bytes, f.fct_ns) for f in run.flows if f.completed]


class _FlowStat:
    """The slice of Flow the FCT collector reads: size and completion time."""

    __slots__ = ("size_bytes", "fct_ns")

    def __init__(self, size_bytes: int, fct_ns: int) -> None:
        self.size_bytes = size_bytes
        self.fct_ns = fct_ns


class PooledResult:
    """FCT statistics pooled over several seeds of the same config.

    The paper runs 5,000-50,000 flows per point; at benchmark scale we
    instead pool a few seeds (each scheme sees the *same* seeds, so the
    comparison stays pair-matched) to stabilize tail percentiles.
    Duck-types the slice of :class:`ExperimentResult` the report needs,
    and accepts either :class:`ExperimentResult` or sweep results.
    """

    def __init__(self, runs: List) -> None:
        from repro.metrics.fct import FctCollector

        self.runs = runs
        collector = FctCollector()
        for run in runs:
            for size_bytes, fct_ns in _completed_flow_pairs(run):
                collector.on_complete(_FlowStat(size_bytes, fct_ns))
        self.summary = collector.summarize()
        self.timeouts = sum(r.timeouts for r in runs)
        self.timeouts_small = sum(r.timeouts_small for r in runs)
        self.drops = sum(r.drops for r in runs)
        self.marks = sum(r.marks for r in runs)
        self.completed = sum(r.completed for r in runs)
        self.total = sum(r.total for r in runs)


def run_schemes_pooled(
    schemes: Iterable[str], seeds: Iterable[int], **cfg_kwargs
) -> Dict[str, PooledResult]:
    """Run each scheme over several seeds and pool the flow statistics.

    The full schemes x seeds grid goes through the sweep runner in one
    call, so every cell runs in parallel and is independently cached.
    """
    schemes, seeds = list(schemes), list(seeds)
    configs = [
        ExperimentConfig(scheme=scheme, seed=seed, **cfg_kwargs)
        for scheme in schemes
        for seed in seeds
    ]
    outcome = run_sweep(
        configs, processes=_bench_processes(), cache=_bench_cache()
    )
    flat = _checked(outcome)
    results = {}
    for i, scheme in enumerate(schemes):
        runs = flat[i * len(seeds):(i + 1) * len(seeds)]
        results[scheme] = PooledResult(runs)
    return results


def fct_comparison_text(
    figure: str,
    title: str,
    paper_rows: List[str],
    per_load_results: Dict[float, Dict[str, ExperimentResult]],
) -> str:
    """Compose the full paper-vs-measured report for an FCT figure."""
    parts = [f"{figure}: {title}", "", "Paper reports:"]
    parts += [f"  - {row}" for row in paper_rows]
    for load, results in per_load_results.items():
        parts += ["", f"Measured at load {load:.0%}:", format_fct_rows(results)]
    return "\n".join(parts)


def star_testbed_kwargs(**overrides) -> dict:
    """The §6.1 testbed configuration: 9 servers at 1 GbE, 96 KB port
    buffers, DCTCP with RTO_min 10 ms, standard thresholds 32 KB / 256 us,
    CoDel tuned to (51.2 us, 1024 us), persistent connections."""
    from repro.units import KB, USEC

    kwargs = dict(
        workload="websearch",
        n_flows=150,
        init_cwnd=10,
        red_threshold_bytes=32 * KB,
        tcn_threshold_ns=256 * USEC,
        codel_target_ns=51_200,
        codel_interval_ns=1_024_000,
        persistent_connections=True,
        max_warm_cwnd=32,
    )
    kwargs.update(overrides)
    return kwargs


def leafspine_kwargs(**overrides) -> dict:
    """The §6.2 simulation configuration, scaled down: leaf-spine fabric at
    10 Gbps, 300 KB buffers, SP + 7 DWRR/WFQ queues, PIAS, all four
    workloads mixed across services (tails clipped at 20 MB to bound
    per-flow simulation cost), RTO_min 5 ms, thresholds 65 pkt / 78 us."""
    from repro.units import GBPS, KB, MB, MSEC, USEC

    kwargs = dict(
        topology="leafspine",
        n_leaf=2,
        n_spine=2,
        hosts_per_leaf=3,
        link_rate_bps=10 * GBPS,
        buffer_bytes=300 * KB,
        base_rtt_ns=85_200,
        n_queues=8,
        n_high=1,
        pias=True,
        workload="mixed",
        workload_clip_bytes=20 * MB,
        n_flows=400,
        init_cwnd=16,
        min_rto_ns=5 * MSEC,
        red_threshold_bytes=65 * 1500,
        tcn_threshold_ns=78 * USEC,
    )
    kwargs.update(overrides)
    return kwargs


def assert_tcn_beats_queue_length_baseline(
    results: Dict[str, ExperimentResult],
    small_avg_margin: float = 1.0,
    large_slack: float = 1.10,
) -> None:
    """The recurring qualitative claim of §6: versus per-queue ECN/RED with
    the standard threshold, TCN improves small flows without sacrificing
    large flows or overall average FCT."""
    tcn, red = results["tcn"].summary, results["red_std"].summary
    assert tcn.avg_small_ns is not None and red.avg_small_ns is not None
    # small flows: TCN at least `small_avg_margin` x better (1.0 = no worse)
    assert red.avg_small_ns >= small_avg_margin * tcn.avg_small_ns, (
        f"small-flow avg: tcn={tcn.avg_small_ns:.0f} red={red.avg_small_ns:.0f}"
    )
    assert red.p99_small_ns >= tcn.p99_small_ns * 0.95, (
        f"small-flow p99: tcn={tcn.p99_small_ns:.0f} red={red.p99_small_ns:.0f}"
    )
    # large flows: within ~10% (paper: within 2.8%)
    if tcn.avg_large_ns and red.avg_large_ns:
        assert tcn.avg_large_ns <= large_slack * red.avg_large_ns, (
            f"large-flow avg: tcn={tcn.avg_large_ns:.0f} "
            f"red={red.avg_large_ns:.0f}"
        )
    # overall: comparable or better
    assert tcn.avg_all_ns <= 1.10 * red.avg_all_ns


def assert_tcn_beats_baseline_across_loads(
    per_load: Dict[float, Dict[str, ExperimentResult]],
    small_avg_margin: float = 1.15,
    small_p99_margin: float = 1.25,
    large_slack: float = 1.10,
) -> None:
    """The paper's isolation claims are "up to X%" — i.e. the *best* gap
    over the load sweep — while the no-regression properties (large flows,
    overall average, small-flow no-worse) must hold at *every* load."""
    best_avg = 0.0
    best_p99 = 0.0
    for load, results in per_load.items():
        tcn, red = results["tcn"].summary, results["red_std"].summary
        assert tcn.avg_small_ns is not None and red.avg_small_ns is not None
        best_avg = max(best_avg, red.avg_small_ns / tcn.avg_small_ns)
        best_p99 = max(best_p99, red.p99_small_ns / tcn.p99_small_ns)
        # per-load no-regression bounds
        assert red.avg_small_ns >= 0.90 * tcn.avg_small_ns, load
        if tcn.avg_large_ns and red.avg_large_ns:
            assert tcn.avg_large_ns <= large_slack * red.avg_large_ns, load
        assert tcn.avg_all_ns <= 1.10 * red.avg_all_ns, load
    assert best_avg >= small_avg_margin, (
        f"best small-avg gap over loads only {best_avg:.2f}x"
    )
    assert best_p99 >= small_p99_margin, (
        f"best small-p99 gap over loads only {best_p99:.2f}x"
    )
