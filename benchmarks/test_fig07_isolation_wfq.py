"""Figure 7: inter-service isolation, WFQ (4 queues) + DCTCP, web search.

Same experiment as Figure 6 on a scheduler MQ-ECN cannot run on (no
rounds) — the paper drops MQ-ECN from this figure, and so do we; TCN keeps
its gains with zero reconfiguration: up to 61.1% lower small-flow average
and 79.3% lower 99th percentile versus per-queue standard-threshold RED.
"""

import pytest

from benchmarks.benchlib import (
    assert_tcn_beats_baseline_across_loads,
    fct_comparison_text,
    run_schemes_pooled,
    save_results,
    star_testbed_kwargs,
)

SCHEMES = ("tcn", "codel", "red_std")
LOADS = (0.6, 0.9)
SEEDS = (1, 2, 3)

PAPER = [
    "small-flow avg: TCN up to 61.1% lower than per-queue standard (9529 -> 3711 us)",
    "small-flow 99p: TCN up to 79.3% lower",
    "large-flow avg: TCN within 2.6%",
    "MQ-ECN excluded: WFQ has no rounds",
]


def test_fig07(benchmark):
    per_load = {}

    def workload():
        for load in LOADS:
            per_load[load] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="wfq", n_queues=4, load=load,
                **star_testbed_kwargs(),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    save_results(
        "fig07_isolation_wfq",
        fct_comparison_text(
            "Figure 7", "isolation, WFQ + DCTCP, web search", PAPER, per_load
        ),
    )

    assert_tcn_beats_baseline_across_loads(per_load, small_avg_margin=1.10)


def test_fig07_mqecn_cannot_run_on_wfq():
    """The structural point of the figure: MQ-ECN is not even definable."""
    from repro.harness.config import ExperimentConfig
    from repro.harness.runner import run_experiment

    with pytest.raises(TypeError, match="round-robin"):
        run_experiment(
            ExperimentConfig(
                scheme="mqecn", scheduler="wfq", n_flows=5, load=0.5
            )
        )
