"""Figure 8: traffic prioritization, SP (1) / DWRR (4) + PIAS + DCTCP.

The headline experiment: the first 100 KB of every flow rides a shared
strict-priority queue, so small flows finish entirely at high priority and
their tail FCT is set by buffer pressure from the low-priority queues.
Paper: TCN cuts the small-flow average by up to 82.8% (6222 -> 1073 us) and
the 99th percentile by up to 95.3% (82658 -> 3860 us) versus per-queue
standard-threshold RED, and beats CoDel because instantaneous marking
controls buffer pressure that CoDel's interval-long window lets through.
"""

from benchmarks.benchlib import (
    assert_tcn_beats_queue_length_baseline,
    fct_comparison_text,
    run_schemes_pooled,
    save_results,
    star_testbed_kwargs,
)

SCHEMES = ("tcn", "codel", "red_std")
LOADS = (0.6, 0.9)
SEEDS = (1, 2, 3)

PAPER = [
    "small-flow avg: TCN up to 82.8% lower than per-queue standard (6222 -> 1073 us)",
    "small-flow 99p: TCN up to 95.3% lower (82658 -> 3860 us)",
    "mechanism: high-priority packets drop under LOW-priority buffer pressure;",
    "           TCN keeps total occupancy low, standard RED keeps it near-full",
    "TCN (SP/DWRR) also far below CoDel at the 99th percentile",
]


def test_fig08(benchmark):
    per_load = {}

    def workload():
        for load in LOADS:
            per_load[load] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="sp_dwrr", n_queues=5, n_high=1,
                pias=True, load=load, **star_testbed_kwargs(),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    text = fct_comparison_text(
        "Figure 8", "prioritization, SP/DWRR + PIAS + DCTCP", PAPER, per_load
    )
    extra = "\nsmall-flow timeouts at high load: " + str(
        {k: r.timeouts_small for k, r in per_load[max(LOADS)].items()}
    )
    save_results("fig08_priority_spdwrr", text + extra)

    high = per_load[max(LOADS)]
    # the big gaps of the paper, at reduced magnitude
    assert_tcn_beats_queue_length_baseline(high, small_avg_margin=1.4)
    tcn, codel, red = (high[s].summary for s in ("tcn", "codel", "red_std"))
    assert red.p99_small_ns >= 2.0 * tcn.p99_small_ns, (
        "standard-threshold RED must blow up the small-flow tail"
    )
    # TCN's burst advantage over CoDel (instantaneous vs windowed marking)
    assert codel.p99_small_ns >= 1.5 * tcn.p99_small_ns
    # timeouts tell the §6.1.3 story
    assert high["red_std"].timeouts_small >= high["tcn"].timeouts_small
