"""Figure 13: robustness to the number of queues — 32 queues with ECN*.

§6.2.2: with 31 low-priority queues (up from 7) per-queue standard RED
gets *worse* — its worst-case standing backlog scales with the queue count
(31 x K >> buffer), so drops and timeouts rise (paper: 4478 timeouts at
32 queues vs 2469 at 8, at 90% load) — while TCN's single sojourn
threshold is queue-count-independent.
"""

from benchmarks.benchlib import (
    fct_comparison_text,
    leafspine_kwargs,
    run_schemes_pooled,
    save_results,
)
from repro.units import USEC

SCHEMES = ("tcn", "red_std")
LOADS = (0.9,)
SEEDS = (1, 2)

PAPER = [
    "TCN's small-flow advantage grows with queue count:",
    "  38.7% lower avg (8 queues) -> 47.8% lower (32 queues) at 90% load",
    "red_std timeouts grow with queues (2469 -> 4478); TCN's do not",
]


def _kwargs(n_queues: int):
    return leafspine_kwargs(
        transport="ecnstar",
        red_threshold_bytes=84 * 1500,
        tcn_threshold_ns=101 * USEC,
        n_queues=n_queues,
    )


def test_fig13(benchmark):
    results = {}

    def workload():
        for nq in (8, 32):
            results[nq] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="sp_dwrr", load=LOADS[0],
                **_kwargs(nq),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    text = fct_comparison_text(
        "Figure 13", "leaf-spine, 8 vs 32 queues, ECN* (robustness)",
        PAPER, {0.9: results[32]},
    )
    extra = "\n8-queue vs 32-queue drops: " + str(
        {nq: {k: r.drops for k, r in res.items()} for nq, res in results.items()}
    ) + "\n8-queue vs 32-queue timeouts: " + str(
        {nq: {k: r.timeouts for k, r in res.items()} for nq, res in results.items()}
    )
    save_results("fig13_many_queues", text + extra)

    for nq in (8, 32):
        tcn, red = results[nq]["tcn"], results[nq]["red_std"]
        assert red.drops >= 2 * tcn.drops, f"{nq} queues"
        assert red.timeouts > tcn.timeouts, f"{nq} queues"
        assert tcn.summary.avg_all_ns <= 1.05 * red.summary.avg_all_ns
    # red_std's timeout disadvantage persists (or grows) at 32 queues,
    # while TCN stays in the single digits at both.  (Cross-queue-count
    # FCTs are not compared directly: changing the queue count changes the
    # service partition and hence the workload mixture at this scale.)
    assert results[32]["tcn"].timeouts <= 10
    assert results[32]["red_std"].timeouts > results[32]["tcn"].timeouts
