"""Figure 1: per-port ECN/RED violates DWRR scheduling policy.

Paper setup: 3 servers on a Pica8 GbE switch, DWRR with 2 equal-quantum
queues, per-port threshold 30 KB, DCTCP.  Service 1 has one long flow,
service 2 has 2..16; under per-port ECN/RED service 2's goodput grows with
its flow count (670 Mbps at 8 flows, 782 Mbps at 16), though DWRR says the
split must stay 50/50.  We also run TCN as the control: perfectly fair.
"""

from repro.aqm.perport import PerPortRed
from repro.core.tcn import Tcn
from repro.metrics.timeseries import GoodputTracker
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MB, SEC, USEC

from benchmarks.benchlib import save_results
from repro.harness.report import format_table

PAPER = {2: 520, 4: 600, 8: 670, 16: 782}  # svc-2 goodput (Mbps), Fig. 1


def _run(n_flows_svc2: int, scheme: str):
    sim = Simulator()
    aqm = {
        "perport": lambda: PerPortRed(30 * KB),
        "tcn": lambda: Tcn(250 * USEC),
    }[scheme]
    topo = StarTopology(
        sim, 3, GBPS,
        sched_factory=lambda: DwrrScheduler(make_queues(2, quanta=[1500, 1500])),
        aqm_factory=aqm,
        buffer_bytes=192 * KB,
        link_delay_ns=62_500,
    )
    tracker = GoodputTracker()
    on_bytes = lambda f, b, t: tracker.record(f.service, b, t)  # noqa: E731
    flows = [Flow(1, 0, 2, 500 * MB, service=0)]
    flows += [Flow(2 + i, 1, 2, 500 * MB, service=1) for i in range(n_flows_svc2)]
    for f in flows:
        Receiver(sim, topo.hosts[2], f, on_bytes=on_bytes)
        s = DctcpSender(sim, topo.hosts[f.src], f, init_cwnd=10)
        sim.schedule(0, s.start)
    sim.run(until=2 * SEC)
    return (
        tracker.goodput_bps(0, 1 * SEC, 2 * SEC) / 1e6,
        tracker.goodput_bps(1, 1 * SEC, 2 * SEC) / 1e6,
    )


def test_fig01(benchmark):
    measured = {}

    def workload():
        for n2 in (2, 8, 16):
            measured[n2] = {
                "perport": _run(n2, "perport"),
                "tcn": _run(n2, "tcn"),
            }

    benchmark.pedantic(workload, rounds=1, iterations=1)

    rows = []
    for n2, res in measured.items():
        p1, p2 = res["perport"]
        t1, t2 = res["tcn"]
        rows.append([
            str(n2), f"{PAPER[n2]}", f"{p2:.0f}", f"{p1:.0f}",
            f"{t2:.0f}", f"{t1:.0f}",
        ])
    table = format_table(
        ["svc2 flows", "paper svc2 (perport)", "meas svc2 (perport)",
         "meas svc1 (perport)", "meas svc2 (tcn)", "meas svc1 (tcn)"],
        rows,
    )
    save_results("fig01_perport_violation", "Figure 1 (goodput, Mbps)\n" + table)

    # qualitative claims
    g2 = {n2: measured[n2]["perport"][1] for n2 in measured}
    assert g2[16] > g2[8] > g2[2], "violation must grow with flow count"
    assert g2[8] > 600, "service 2 must exceed 60% of the link at 8 flows"
    for n2 in measured:
        t1, t2 = measured[n2]["tcn"]
        assert abs(t1 - t2) < 0.07 * 973, "TCN must keep the 50/50 split"
