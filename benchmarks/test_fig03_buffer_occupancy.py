"""Figure 3: buffer occupancy under enqueue RED, dequeue RED, and TCN.

Paper setup: 9 servers at 10 Gbps, 8 synchronized ECN* long flows into one
queue; K = 125 KB for the RED schemes, T = 100 us for TCN.  Findings: the
slow-start peak is ~375 KB (3x BDP) for enqueue RED and TCN but ~250 KB
(2x BDP) for dequeue RED (it reacts to *future* congestion earlier); after
slow start all three oscillate in the 0..125 KB band.
"""

from repro.aqm.dequeue_red import DequeueRed
from repro.aqm.perqueue import PerQueueRed
from repro.core.tcn import Tcn
from repro.metrics.timeseries import OccupancySampler
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.tcp import EcnStarSender
from repro.units import GBPS, KB, MB, MSEC, USEC

from benchmarks.benchlib import save_results
from repro.harness.report import format_table

BDP = 125 * KB
PAPER_PEAK_KB = {"enqueue_red": 375, "dequeue_red": 250, "tcn": 375}


def _run(scheme: str):
    sim = Simulator()
    aqm = {
        "enqueue_red": lambda: PerQueueRed(125 * KB),
        "dequeue_red": lambda: DequeueRed(125 * KB),
        "tcn": lambda: Tcn(100 * USEC),
    }[scheme]
    topo = StarTopology(
        sim, 9, 10 * GBPS,
        sched_factory=FifoScheduler,
        aqm_factory=aqm,
        buffer_bytes=4 * MB,
        link_delay_ns=25_000,
    )
    sampler = OccupancySampler(topo.port_to(0))
    for i in range(8):
        f = Flow(i + 1, i + 1, 0, 500 * MB)
        Receiver(sim, topo.hosts[0], f)
        s = EcnStarSender(sim, topo.hosts[i + 1], f, init_cwnd=10)
        sim.schedule(0, s.start)
    sim.run(until=20 * MSEC)
    return sampler


def test_fig03(benchmark):
    samplers = {}

    def workload():
        for scheme in ("enqueue_red", "dequeue_red", "tcn"):
            samplers[scheme] = _run(scheme)

    benchmark.pedantic(workload, rounds=1, iterations=1)

    rows = []
    for scheme, sampler in samplers.items():
        steady = sampler.max_in_window(10 * MSEC, 20 * MSEC)
        rows.append([
            scheme,
            str(PAPER_PEAK_KB[scheme]),
            f"{sampler.peak_bytes / 1000:.0f}",
            f"{steady / 1000:.0f}",
        ])
    table = format_table(
        ["scheme", "paper peak (KB)", "measured peak (KB)",
         "steady max 10-20ms (KB)"],
        rows,
    )
    save_results("fig03_buffer_occupancy", "Figure 3 (switch buffer occupancy)\n" + table)

    peaks = {s: sp.peak_bytes for s, sp in samplers.items()}
    assert 2.5 * BDP <= peaks["enqueue_red"] <= 3.5 * BDP
    assert 2.5 * BDP <= peaks["tcn"] <= 3.5 * BDP
    assert 1.6 * BDP <= peaks["dequeue_red"] <= 2.4 * BDP
    assert peaks["dequeue_red"] < peaks["tcn"]
    for sampler in samplers.values():
        assert sampler.max_in_window(10 * MSEC, 20 * MSEC) <= 1.3 * BDP
