"""Ablation: per-service-pool ECN/RED lets *ports* interfere (§3.2.2).

The paper states (without a dedicated figure) that per-pool marking is
even worse than per-port: queues on different ports sharing a buffer pool
mark each other's traffic.  This bench constructs exactly that: two
egress ports draining to different receivers share one pool; port B
carries heavy traffic, port A carries one well-behaved flow.  Under
per-pool RED the flow on port A gets marked (and throttled) by port B's
occupancy; under TCN it is unaffected.
"""

from repro.aqm.perport import BufferPool, PerPoolRed
from repro.core.tcn import Tcn
from repro.metrics.timeseries import GoodputTracker
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sim.engine import Simulator
from repro.net.classifier import DscpClassifier
from repro.net.host import Host
from repro.net.link import Link
from repro.net.nic import make_nic
from repro.net.port import EgressPort
from repro.net.switch import Switch
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MB, SEC, USEC

from benchmarks.benchlib import save_results
from repro.harness.report import format_table


def _run(scheme: str):
    """3 senders, 2 receivers; senders 1-2 blast receiver B, sender 0
    sends one flow to receiver A."""
    sim = Simulator()
    switch = Switch(sim)
    pool = BufferPool(96 * KB)

    def new_aqm():
        if scheme == "pool":
            return PerPoolRed(pool, 30 * KB)
        return Tcn(250 * USEC)

    hosts = []
    for host_id in range(5):  # 0-2 senders, 3-4 receivers
        sched = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        port = EgressPort(
            sim, GBPS, buffer_bytes=96 * KB, scheduler=sched, aqm=new_aqm(),
            classify=DscpClassifier(2), name=f"p{host_id}",
        )
        switch.add_port(port)
        switch.set_route(host_id, port)
        nic = make_nic(sim, GBPS, link=Link(switch, 62_500))
        host = Host(sim, host_id, nic)
        port.link = Link(host, 62_500)
        hosts.append(host)

    tracker = GoodputTracker()
    on_bytes = lambda f, b, t: tracker.record(f.id, b, t)  # noqa: E731
    # the victim: one flow, own uncongested port (to host 3)
    victim = Flow(1, 0, 3, 500 * MB, service=0)
    Receiver(sim, hosts[3], victim, on_bytes=on_bytes)
    v = DctcpSender(sim, hosts[0], victim, init_cwnd=10, max_cwnd=84)
    sim.schedule(0, v.start)
    # the aggressors: four flows from two hosts into host 4
    for i in range(4):
        f = Flow(2 + i, 1 + i % 2, 4, 500 * MB, service=1)
        Receiver(sim, hosts[4], f, on_bytes=on_bytes)
        s = DctcpSender(sim, hosts[1 + i % 2], f, init_cwnd=10, max_cwnd=84)
        sim.schedule(0, s.start)
    sim.run(until=2 * SEC)
    return tracker.goodput_bps(1, 1 * SEC, 2 * SEC) / 1e6


def test_ablation_pool_interference(benchmark):
    out = {}

    def workload():
        out["pool_red"] = _run("pool")
        out["tcn"] = _run("tcn")

    benchmark.pedantic(workload, rounds=1, iterations=1)

    table = format_table(
        ["scheme", "victim goodput (Mbps, own idle port!)"],
        [[k, f"{v:.0f}"] for k, v in out.items()],
    )
    save_results(
        "ablation_pool_interference",
        "Ablation: per-service-pool RED cross-port interference (Remark 2)\n"
        + table,
    )

    # the victim's port is idle: it deserves full line rate.  Under
    # per-pool RED it gets throttled by the other port's backlog.
    assert out["tcn"] > 900
    assert out["pool_red"] < 0.85 * out["tcn"]
