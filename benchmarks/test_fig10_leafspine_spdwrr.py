"""Figure 10: leaf-spine fabric, SP (1) / DWRR (7) + PIAS + DCTCP.

Paper setup: 144 hosts, 12x12 leaf-spine at 10 Gbps, per-flow ECMP, 7
services each with its own Fig. 4 workload, 50,000 flows.  Findings: TCN
within ~1.2% of per-queue standard RED on large flows, up to 38.2% lower
small-flow average, up to 94.3% lower small-flow 99th percentile; at 90%
load standard RED suffers 589 small-flow TCP timeouts versus TCN's 46.

Scaled here to a 2x2 fabric with 3 hosts/leaf and 400 flows x 2 seeds
(workload tails clipped at 20 MB); the differentiation signal at this
scale is the drop/timeout asymmetry plus the small-flow average.
"""

from benchmarks.benchlib import (
    fct_comparison_text,
    leafspine_kwargs,
    run_schemes_pooled,
    save_results,
)

SCHEMES = ("tcn", "red_std")
LOADS = (0.6, 0.9)
SEEDS = (1, 2)

PAPER = [
    "overall avg: TCN ~0.7-1.4% lower than per-queue standard",
    "small-flow avg: TCN up to 38.2% lower",
    "small-flow 99p: TCN up to 94.3% lower",
    "timeouts for small flows at 90% load: 589 (red_std) vs 46 (TCN)",
]


def test_fig10(benchmark):
    per_load = {}

    def workload():
        for load in LOADS:
            per_load[load] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="sp_dwrr", load=load,
                **leafspine_kwargs(),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    text = fct_comparison_text(
        "Figure 10", "leaf-spine, SP/DWRR + PIAS + DCTCP, mixed workloads",
        PAPER, per_load,
    )
    extra = "\ntimeouts at high load: " + str(
        {k: (r.timeouts, r.timeouts_small) for k, r in per_load[max(LOADS)].items()}
    )
    save_results("fig10_leafspine_spdwrr", text + extra)

    high = per_load[max(LOADS)]
    tcn, red = high["tcn"], high["red_std"]
    # the paper's timeout asymmetry (589 vs 46), reproduced in miniature
    assert red.timeouts > tcn.timeouts
    assert red.drops > 2 * tcn.drops
    # small flows no worse, large flows within 10%
    assert red.summary.avg_small_ns >= 0.95 * tcn.summary.avg_small_ns
    assert tcn.summary.avg_large_ns <= 1.10 * red.summary.avg_large_ns
    assert tcn.summary.avg_all_ns <= 1.05 * red.summary.avg_all_ns
