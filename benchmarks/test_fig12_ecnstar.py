"""Figure 12: robustness to transport — ECN* instead of DCTCP (§6.2.2).

ECN* halves its window on every marked window with no smoothing, so a
premature mark costs real throughput: the paper calls it the most
challenging transport for an AQM.  Paper findings (leaf-spine, SP/DWRR,
thresholds 84 pkt / 101 us): TCN's large-flow FCT stays within 1.8% of
per-queue standard-threshold RED while still improving small flows —
i.e. the sojourn threshold does not over-mark even for ECN*.
"""

from benchmarks.benchlib import (
    fct_comparison_text,
    leafspine_kwargs,
    run_schemes_pooled,
    save_results,
)
from repro.units import USEC

SCHEMES = ("tcn", "red_std")
LOADS = (0.6, 0.9)
SEEDS = (1, 2)

PAPER = [
    "large-flow avg: TCN within 1.8% of per-queue standard even under ECN*",
    "small flows: large improvements preserved",
    "thresholds: 84 packets for RED, 101 us for TCN",
]


def _kwargs():
    return leafspine_kwargs(
        transport="ecnstar",
        red_threshold_bytes=84 * 1500,
        tcn_threshold_ns=101 * USEC,
    )


def test_fig12(benchmark):
    per_load = {}

    def workload():
        for load in LOADS:
            per_load[load] = run_schemes_pooled(
                SCHEMES, SEEDS, scheduler="sp_dwrr", load=load, **_kwargs(),
            )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    text = fct_comparison_text(
        "Figure 12", "leaf-spine, SP/DWRR + PIAS + ECN* (robustness)",
        PAPER, per_load,
    )
    save_results("fig12_ecnstar", text)

    high = per_load[max(LOADS)]
    tcn, red = high["tcn"], high["red_std"]
    # the robustness claim: no throughput loss for large flows under the
    # most marking-sensitive transport
    assert tcn.summary.avg_large_ns <= 1.10 * red.summary.avg_large_ns
    assert tcn.summary.avg_all_ns <= 1.05 * red.summary.avg_all_ns
    assert red.drops >= tcn.drops
