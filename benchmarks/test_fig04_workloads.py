"""Figure 4: the four production flow-size distributions.

Regenerates the CDF table per workload (the data behind the figure) and
verifies the skewness statements the paper leans on: all heavy-tailed, web
search the least skewed (~60% of its bytes from flows under 10 MB).
"""

import random

from repro.units import KB, MB
from repro.workloads.distributions import ALL_WORKLOADS

from benchmarks.benchlib import save_results
from repro.harness.report import format_table


def test_fig04(benchmark):
    stats = {}

    def workload():
        rng = random.Random(1)
        for w in ALL_WORKLOADS:
            samples = [w.sample(rng) for _ in range(20_000)]
            stats[w.name] = {
                "mean_kb": w.mean() / 1000,
                "sample_mean_kb": sum(samples) / len(samples) / 1000,
                "flows_le_100kb": w.fraction_below(100 * KB),
                "bytes_le_10mb": w.byte_fraction_below(10 * MB),
                "p50_kb": w.quantile(0.5) / 1000,
                "p99_kb": w.quantile(0.99) / 1000,
            }

    benchmark.pedantic(workload, rounds=1, iterations=1)

    rows = []
    for name, s in stats.items():
        rows.append([
            name,
            f"{s['mean_kb']:.1f}",
            f"{s['sample_mean_kb']:.1f}",
            f"{s['p50_kb']:.2f}",
            f"{s['p99_kb']:.0f}",
            f"{s['flows_le_100kb']:.2f}",
            f"{s['bytes_le_10mb']:.2f}",
        ])
    table = format_table(
        ["workload", "mean (KB)", "sampled mean (KB)", "median (KB)",
         "p99 (KB)", "flows<=100KB", "bytes<=10MB"],
        rows,
    )
    save_results("fig04_workloads", "Figure 4 (flow-size distributions)\n" + table)

    # sampling agrees with the analytic distribution
    for name, s in stats.items():
        assert abs(s["sample_mean_kb"] - s["mean_kb"]) / s["mean_kb"] < 0.15, name
    # the paper's skewness statement about web search
    assert 0.45 <= stats["websearch"]["bytes_le_10mb"] <= 0.75
    # every workload is heavy-tailed: median flow far below the mean
    for name, s in stats.items():
        assert s["p50_kb"] < 0.5 * s["mean_kb"], name
