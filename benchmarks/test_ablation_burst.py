"""Ablation: instantaneous vs windowed sojourn marking under incast.

DESIGN.md calls out the core design choice TCN makes relative to CoDel:
mark on the *instantaneous* sojourn of each departing packet instead of
the windowed minimum.  This bench isolates that choice with a synchronized
incast microburst (the §4.3 / §6.1 'faster reaction to bursty traffic'
claim): TCN delivers congestion notification within the first RTT; CoDel
stays silent for a full interval and lets the buffer absorb (or drop) the
burst.
"""

from repro.aqm.codel import CoDel
from repro.core.tcn import Tcn
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MSEC, SEC, USEC

from benchmarks.benchlib import save_results
from repro.harness.report import format_table


def _incast(aqm_factory, n_senders=24, flow_kb=256, buffer_kb=150):
    sim = Simulator()
    topo = StarTopology(
        sim, n_senders + 1, 10 * GBPS,
        sched_factory=FifoScheduler,
        aqm_factory=aqm_factory,
        buffer_bytes=buffer_kb * KB,
        link_delay_ns=25_000,
    )
    flows = []
    for i in range(n_senders):
        f = Flow(i + 1, i + 1, 0, flow_kb * KB)
        flows.append(f)
        Receiver(sim, topo.hosts[0], f)
        s = DctcpSender(sim, topo.hosts[i + 1], f, init_cwnd=16,
                        min_rto_ns=10 * MSEC)
        sim.schedule(0, s.start)
    port = topo.port_to(0)
    sim.run(until=1 * MSEC)
    marks_1ms = port.stats.marked_pkts
    sim.run(until=5 * SEC)
    fcts = sorted(f.fct_ns for f in flows if f.completed)
    return {
        "marks_first_ms": marks_1ms,
        "drops": port.stats.dropped_pkts,
        "completed": len(fcts),
        "p99_fct_us": fcts[-1] / 1000 if fcts else None,
    }


def test_ablation_burst(benchmark):
    out = {}

    def workload():
        out["tcn"] = _incast(lambda: Tcn(100 * USEC))
        out["codel"] = _incast(
            lambda: CoDel(target_ns=20 * USEC, interval_ns=1 * MSEC)
        )

    benchmark.pedantic(workload, rounds=1, iterations=1)

    rows = [
        [name,
         str(r["marks_first_ms"]),
         str(r["drops"]),
         str(r["completed"]),
         f"{r['p99_fct_us']:.0f}" if r["p99_fct_us"] else "-"]
        for name, r in out.items()
    ]
    table = format_table(
        ["scheme", "marks in first 1ms", "drops", "flows done", "worst FCT (us)"],
        rows,
    )
    save_results(
        "ablation_burst",
        "Ablation: burst reaction (24-flow incast, 10G, 150 KB buffer)\n" + table,
    )

    assert out["tcn"]["marks_first_ms"] > 3 * max(1, out["codel"]["marks_first_ms"])
    assert out["codel"]["drops"] >= out["tcn"]["drops"]
    assert out["tcn"]["completed"] == 24
