"""Figure 2: queue-capacity estimation under DWRR.

Paper setup: 11 servers at 10 Gbps, DWRR with two 18 KB-quantum queues,
ECN*.  8 flows occupy queue 1 from t=0; 2 more start into queue 2 at
t=10 ms, dropping queue 1's capacity to 5 Gbps.  Findings:

 (a) Algorithm 1 with dq_thresh = 40 KB gets only ~29 samples in 2 ms and
     converges slowly;
 (b) with dq_thresh = 10 KB samples oscillate between ~3.7 and ~10 Gbps
     and the smoothed estimate settles >20% above the true 5 Gbps;
 (c) MQ-ECN (round-time based) converges to 5 Gbps within ~600 us.
"""

from repro.aqm.ideal import IdealRed
from repro.aqm.mqecn import MqEcn
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.transport.tcp import EcnStarSender
from repro.units import GBPS, KB, MB, MSEC, USEC

from benchmarks.benchlib import save_results
from repro.harness.report import format_table


def _run(dq_thresh=None, mqecn=False):
    sim = Simulator()
    aqms = []

    def aqm_factory():
        if mqecn:
            aqm = MqEcn(100 * USEC)
        else:
            aqm = IdealRed(
                100 * USEC, dq_thresh_bytes=dq_thresh, record_samples=True
            )
        aqms.append(aqm)
        return aqm

    topo = StarTopology(
        sim, 11, 10 * GBPS,
        sched_factory=lambda: DwrrScheduler(make_queues(2, quanta=[18_000] * 2)),
        aqm_factory=aqm_factory,
        buffer_bytes=4 * MB,
        link_delay_ns=25_000,
    )
    for i in range(8):
        f = Flow(i + 1, i + 1, 0, 2000 * MB, service=0)
        Receiver(sim, topo.hosts[0], f)
        s = EcnStarSender(sim, topo.hosts[i + 1], f, init_cwnd=10)
        sim.schedule(0, s.start)
    for i in range(2):
        f = Flow(9 + i, 9 + i, 0, 2000 * MB, service=1)
        Receiver(sim, topo.hosts[0], f)
        s = EcnStarSender(sim, topo.hosts[9 + i], f, init_cwnd=10)
        sim.schedule(10 * MSEC, s.start)

    port = topo.port_to(0)
    q0 = port.scheduler.queues[0]
    series = []
    if mqecn:
        def snap():
            series.append((sim.now, aqms[0].rate_estimate_bps(q0)))
            sim.schedule(20 * USEC, snap)
        sim.schedule(20 * USEC, snap)
    sim.run(until=16 * MSEC)
    if mqecn:
        return series
    return aqms[0].meter_for(q0).samples


def test_fig02(benchmark):
    out = {}

    def workload():
        out["dq40"] = _run(dq_thresh=40 * KB)
        out["dq10"] = _run(dq_thresh=10 * KB)
        out["mqecn"] = _run(mqecn=True)

    benchmark.pedantic(workload, rounds=1, iterations=1)

    # analyse the window after the capacity change at t = 10 ms
    def window(samples, lo, hi):
        return [s for s in samples if lo < s[0] <= hi]

    w40 = window(out["dq40"], 10 * MSEC, 12 * MSEC)
    w10 = window(out["dq10"], 10 * MSEC, 12 * MSEC)
    smoothed40_end = window(out["dq40"], 10 * MSEC, 16 * MSEC)[-1][2]
    smoothed10_end = window(out["dq10"], 10 * MSEC, 16 * MSEC)[-1][2]
    mq = [r for t, r in out["mqecn"] if t <= 10 * MSEC + 600 * USEC][-1]

    raw10 = [s for _, s, _ in w10]
    rows = [
        ["dq_thresh=40KB samples in 2ms", "29", str(len(w40))],
        ["dq_thresh=40KB smoothed @16ms (Gbps)", "~5 (slow)", f"{smoothed40_end/1e9:.2f}"],
        ["dq_thresh=10KB raw sample min (Gbps)", "3.7", f"{min(raw10)/1e9:.1f}"],
        ["dq_thresh=10KB raw sample max (Gbps)", "10", f"{max(raw10)/1e9:.1f}"],
        ["dq_thresh=10KB smoothed @16ms (Gbps)", ">6 (wrong)", f"{smoothed10_end/1e9:.2f}"],
        ["MQ-ECN estimate 600us after change (Gbps)", "5.0", f"{mq/1e9:.2f}"],
    ]
    table = format_table(["quantity", "paper", "measured"], rows)
    save_results("fig02_rate_measurement", "Figure 2 (queue-1 capacity estimation)\n" + table)

    # (a) few samples, slow but eventually correct-ish
    assert 20 <= len(w40) <= 40
    # (b) oscillation and a wrong (too high) estimate
    assert max(raw10) / min(raw10) > 1.8
    assert smoothed10_end > 1.2 * 5 * GBPS
    # (c) MQ-ECN converges fast and exactly
    assert abs(mq - 5 * GBPS) / (5 * GBPS) < 0.05
