"""Seeded RNG streams: reproducibility and independence."""

from repro.sim.rng import RngFactory


def test_same_seed_same_draws():
    a, b = RngFactory(42), RngFactory(42)
    assert [a.stream("x").random() for _ in range(5)] == [
        b.stream("x").random() for _ in range(5)
    ]


def test_different_seeds_differ():
    a, b = RngFactory(1), RngFactory(2)
    assert a.stream("x").random() != b.stream("x").random()


def test_streams_are_independent():
    """Drawing from one stream must not perturb another."""
    a, b = RngFactory(7), RngFactory(7)
    a.stream("noise").random()  # extra draw on an unrelated stream
    assert a.stream("flows").random() == b.stream("flows").random()


def test_stream_is_cached():
    f = RngFactory(1)
    assert f.stream("x") is f.stream("x")


def test_named_streams_differ():
    f = RngFactory(1)
    assert f.stream("a").random() != f.stream("b").random()
