"""The runtime sanitizer: the dynamic twin of simlint's project rules.

Three properties are pinned here:

* **transparency** — a sanitized run of a clean simulation raises
  nothing and produces bit-identical results (FCTs, counters, sim_ns)
  to the unsanitized run, on both the serial and partitioned engines;
* **detection** — each invariant class (freelist double-release /
  use-after-release / direct-tampering, event-queue pop order / floor
  claims / drain shape, partition-ownership handoff keys) has a seeded
  violation the sanitizer catches;
* **zero footprint when off** — an unsanitized engine carries no
  wrapper and no freelist hook.

The freelist hook is process-global, so every test detaches it on the
way out (autouse fixture) to keep the rest of the suite unaffected.
"""

import os
import subprocess
import sys

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.net import packet
from repro.net.boundary import BoundaryMux
from repro.net.packet import make_ack, make_data, make_data_run, release
from repro.sanitize import (
    POISON,
    SanitizeError,
    Sanitizer,
    SanitizingEventQueue,
    Violation,
    detach,
    env_enabled,
)
from repro.sim.engine import Simulator
from repro.sim.equeue.heap import HeapEventQueue
from repro.sim.parallel.partition import (
    ARRIVAL_BIT,
    SRC_SHIFT,
    TIME_SHIFT,
    PartitionSimulator,
)


@pytest.fixture(autouse=True)
def _clean_freelist():
    """Isolate the process-global freelist hook and frame pool."""
    detach()
    packet.reset_freelist()
    yield
    detach()
    packet.reset_freelist()


def _collecting_sanitizer(sim=None):
    return Sanitizer(sim=sim, raise_on_violation=False)


class TestFreelistPoisoning:
    def test_double_release_raises(self):
        san = Sanitizer()
        san.attach_freelist()
        pkt = make_data(1, 2, 3, 0, 1000, True, 0, 50)
        release(pkt)
        with pytest.raises(SanitizeError, match="double-release"):
            release(pkt)

    def test_double_release_does_not_duplicate_the_frame(self):
        san = _collecting_sanitizer()
        san.attach_freelist()
        pkt = make_data(1, 2, 3, 0, 1000, True, 0, 50)
        release(pkt)
        release(pkt)
        assert [v.kind for v in san.violations] == ["double-release"]
        # the second release must not append again: one frame, one owner
        assert packet.freelist_stats()[2] == 1

    def test_released_frames_are_poisoned_and_reuse_is_clean(self):
        san = Sanitizer()
        san.attach_freelist()
        pkt = make_data(1, 2, 3, 0, 1000, True, 0, 50)
        release(pkt)
        assert pkt.ts == POISON and pkt.enq_ts == POISON
        again = make_data(4, 5, 6, 7, 500, False, 2, 60)
        assert again is pkt  # recycled
        assert again.ts == 60 and again.enq_ts == 0  # fully rewritten

    def test_make_ack_and_run_reuse_are_clean(self):
        san = Sanitizer()
        san.attach_freelist()
        frames = [make_data(1, 2, 3, s, 1000, True, 0, 5) for s in range(4)]
        for f in frames:
            release(f)
        data = make_data(1, 2, 3, 9, 1000, True, 0, 70)
        make_ack(data, 10, False, 71)
        run = make_data_run(1, 2, 3, 0, 4, 1000, True, 0, 72)
        assert [p.seq for p in run] == [0, 1, 2, 3]
        assert all(p.ts == 72 for p in run)
        assert san.violations == []

    def test_freelist_tampering_is_caught_on_reuse(self):
        san = _collecting_sanitizer()
        san.attach_freelist()
        pkt = make_data(1, 2, 3, 0, 1000, True, 0, 50)
        # bypass release(): push the live frame straight onto the pool
        packet._free.append(pkt)
        make_data(1, 2, 3, 1, 1000, True, 0, 51)
        assert [v.kind for v in san.violations] == ["freelist-corruption"]

    def test_attach_clears_retained_frames(self):
        pkt = make_data(1, 2, 3, 0, 1000, True, 0, 50)
        release(pkt)  # unsanitized: retained without poison
        assert packet.freelist_stats()[2] == 1
        Sanitizer().attach_freelist()
        assert packet.freelist_stats()[2] == 0

    def test_use_after_release_caught_at_boundary_export(self):
        san = _collecting_sanitizer()
        san.attach_freelist()
        mux = BoundaryMux(3)
        pkt = make_data(1, 2, 3, 0, 1000, True, 0, 50)
        release(pkt)
        mux.export(pkt)
        kinds = [v.kind for v in san.violations]
        assert "use-after-release" in kinds

    def test_violation_carries_sim_time(self):
        sim = Simulator()
        sim.now = 777
        san = _collecting_sanitizer(sim=sim)
        san.record("demo", "msg")
        assert san.violations == [Violation("demo", "msg", 777)]


class _ShuffledQueue(HeapEventQueue):
    """A deliberately broken backend: pops the *last* heap entry."""

    def pop(self):
        if not self.entries:
            return None
        return self.entries.pop()


class TestEventQueueChecks:
    def test_name_wraps_inner(self):
        eq = SanitizingEventQueue(HeapEventQueue(), _collecting_sanitizer())
        assert eq.name == "sanitize(heap)"

    def test_pop_order_violation(self):
        san = _collecting_sanitizer()
        eq = SanitizingEventQueue(_ShuffledQueue(), san)
        eq.push((10, 1, None))
        eq.push((20, 2, None))
        eq.pop()  # surfaces t=20 first
        eq.pop()  # then t=10: out of order
        assert [v.kind for v in san.violations] == ["pop-order"]

    def test_duplicate_seq_and_push_into_past(self):
        sim = Simulator()
        sim.now = 100
        san = _collecting_sanitizer(sim=sim)
        eq = SanitizingEventQueue(HeapEventQueue(), san)
        eq.push((200, 7, None))
        eq.push((210, 7, None))
        eq.push((50, 8, None))
        kinds = [v.kind for v in san.violations]
        assert kinds == ["duplicate-seq", "push-into-past"]

    def test_floor_overclaim(self):
        san = _collecting_sanitizer()
        inner = HeapEventQueue()
        eq = SanitizingEventQueue(inner, san)
        eq.push((30, 1, None))
        assert eq.peek_floor() == 30
        # sneak an earlier entry in behind the wrapper's back
        inner.push((10, 2, None))
        eq.pop()
        assert [v.kind for v in san.violations] == ["floor-overclaim"]

    def test_push_after_probe_lawfully_lowers_the_claim(self):
        san = _collecting_sanitizer()
        eq = SanitizingEventQueue(HeapEventQueue(), san)
        eq.push((30, 1, None))
        assert eq.peek_floor() == 30
        eq.push((10, 2, None))  # the claim never covered this push
        eq.pop()
        assert san.violations == []

    def test_drain_run_checks_pass_on_honest_backend(self):
        san = _collecting_sanitizer()
        eq = SanitizingEventQueue(HeapEventQueue(), san)
        for s in range(4):
            eq.push((10, s, None))
        eq.push((20, 9, None))
        run = eq.drain_run(100, 64)
        assert [e[1] for e in run] == [0, 1, 2, 3]
        assert len(eq) == 1
        assert san.violations == []

    def test_cancel_is_lazy(self):
        eq = SanitizingEventQueue(HeapEventQueue(), _collecting_sanitizer())
        entry = (10, 1, None)
        eq.push(entry)
        assert eq.cancel(entry) is False
        assert not eq.physical_cancel


class TestPartitionOwnership:
    def _arrival_seq(self, send_t, src_pid, h=0):
        return (send_t << TIME_SHIFT) | ARRIVAL_BIT | (src_pid << SRC_SHIFT) | h

    def test_good_arrival_is_silent(self):
        sim = PartitionSimulator(0, sanitize=True)
        sim._san.raise_on_violation = False
        sim.insert_arrival(100, self._arrival_seq(90, 1), lambda a: None, None)
        assert sim._san.violations == []

    def test_arrival_without_arrival_bit(self):
        sim = PartitionSimulator(0, sanitize=True)
        sim._san.raise_on_violation = False
        sim.insert_arrival(100, (90 << TIME_SHIFT) | 5, lambda a: None, None)
        assert [v.kind for v in sim._san.violations] == ["boundary-ownership"]

    def test_arrival_from_self(self):
        sim = PartitionSimulator(2, sanitize=True)
        sim._san.raise_on_violation = False
        sim.insert_arrival(100, self._arrival_seq(90, 2), lambda a: None, None)
        assert [v.kind for v in sim._san.violations] == ["arrival-from-self"]

    def test_send_after_delivery(self):
        sim = PartitionSimulator(0, sanitize=True)
        sim._san.raise_on_violation = False
        sim.insert_arrival(100, self._arrival_seq(150, 1), lambda a: None, None)
        assert [v.kind for v in sim._san.violations] == ["send-after-delivery"]

    def test_sanitized_partition_runs_events(self):
        sim = PartitionSimulator(0, sanitize=True)
        fired = []
        sim.schedule(10, lambda: fired.append(sim.now))
        sim.schedule_many([(5, lambda: fired.append(sim.now))])
        sim.insert_arrival(20, self._arrival_seq(15, 1), fired.append, 99)
        assert sim.run() == 3
        assert fired == [5, 10, 99]
        assert sim._san.violations == []


class TestTransparency:
    CFG = dict(
        scheme="tcn", scheduler="dwrr", load=0.7, n_flows=40, seed=1,
    )

    def _facts(self, result):
        return (
            result.completed, result.total, result.timeouts,
            result.drops, result.marks, result.sim_ns,
        )

    def test_serial_run_is_bit_identical(self):
        plain = run_experiment(ExperimentConfig(**self.CFG))
        detach()
        packet.reset_freelist()
        sanitized = run_experiment(ExperimentConfig(sanitize=True, **self.CFG))
        assert self._facts(plain) == self._facts(sanitized)
        assert sanitized.profile["equeue"] == "sanitize(heap)"

    def test_leafspine_slice_is_bit_identical(self):
        cfg = dict(
            scheme="tcn", scheduler="sp_dwrr", topology="leafspine",
            workload="mixed", load=0.6, n_flows=60, seed=3,
        )
        plain = run_experiment(ExperimentConfig(**cfg))
        detach()
        packet.reset_freelist()
        sanitized = run_experiment(ExperimentConfig(sanitize=True, **cfg))
        assert self._facts(plain) == self._facts(sanitized)

    def test_off_means_no_wrapper_and_no_hook(self, monkeypatch):
        # force the default path even when the suite runs sanitized
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        sim = Simulator()
        assert sim._san is None
        assert sim._heap is not None
        assert packet._san is None

    def test_on_disables_backend_specialization(self):
        sim = Simulator(sanitize=True)
        assert sim._heap is None and sim._ladder is None
        assert sim.equeue_name == "sanitize(heap)"
        assert packet._san is sim._san

    def test_config_fingerprint_ignores_sanitize(self):
        from repro.harness.sweep import config_fingerprint

        a = config_fingerprint(ExperimentConfig(**self.CFG))
        b = config_fingerprint(ExperimentConfig(sanitize=True, **self.CFG))
        assert a == b


class TestEnvSwitch:
    def test_env_enabled_parsing(self, monkeypatch):
        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        assert not env_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "0")
        assert not env_enabled()
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        assert env_enabled()

    def test_env_arms_default_constructed_simulator(self):
        # subprocess: the hook is process-global and engine construction
        # reads the env at call time — keep this hermetic
        code = (
            "import sys; sys.path.insert(0, 'src')\n"
            "from repro.sim.engine import Simulator\n"
            "sim = Simulator()\n"
            "assert sim.equeue_name == 'sanitize(heap)', sim.equeue_name\n"
            "print('armed')\n"
        )
        env = dict(os.environ, REPRO_SANITIZE="1", PYTHONPATH="src")
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == "armed"

    def test_explicit_false_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        sim = Simulator(sanitize=False)
        assert sim._san is None
