"""simlint: rules fire exactly where the fixtures say, pragmas and the
baseline round-trip, the JSON schema stays stable, and the repo's own tree
is clean.  The hash-seed determinism property SIM003 guards is asserted
end-to-end in ``TestHashSeedDeterminism``."""

import json
import os
import re
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    BASELINE_VERSION,
    JSON_SCHEMA_VERSION,
    Baseline,
    lint_paths,
    registered_rules,
    rule_range,
)
from repro.analysis.cli import main as lint_main

REPO_ROOT = Path(__file__).resolve().parent.parent
FIXTURE_ROOT = REPO_ROOT / "tests" / "simlint_fixtures"
#: cross-module pragma fixtures — a separate root so the seeded SIM015
#: stays out of the main fixture sweep (fixture_files rglobs repro/)
XMOD_ROOT = FIXTURE_ROOT / "xmod"
EXPECT_RE = re.compile(r"#\s*expect:\s*(?P<rules>SIM\d{3}(?:\s*,\s*SIM\d{3})*)")


def expected_findings(path):
    """(rule, line) pairs declared by ``# expect:`` comments in a fixture."""
    expected = set()
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        match = EXPECT_RE.search(line)
        if match:
            for rule_id in match.group("rules").split(","):
                expected.add((rule_id.strip(), lineno))
    return expected


def fixture_files():
    return sorted((FIXTURE_ROOT / "repro").rglob("bad_*.py"))


class TestRulesOnFixtures:
    def test_fixtures_exist_and_cover_every_rule(self):
        files = fixture_files()
        assert files, "fixture package is empty"
        covered = set()
        for path in files:
            covered |= {rule_id for rule_id, _ in expected_findings(path)}
        all_rules = set(registered_rules()) - {"SIM000"}
        assert covered == all_rules, (
            f"rules without a fixture: {sorted(all_rules - covered)}; "
            f"fixtures naming unknown rules: {sorted(covered - all_rules)}"
        )

    @pytest.mark.parametrize(
        "path", fixture_files(), ids=lambda p: p.stem
    )
    def test_rule_fires_exactly_where_expected(self, path):
        expected = expected_findings(path)
        assert expected, f"{path} declares no '# expect:' lines"
        result = lint_paths([path], root=FIXTURE_ROOT)
        actual = {(f.rule, f.line) for f in result.findings}
        assert actual == expected, (
            f"missing: {sorted(expected - actual)}, "
            f"unexpected: {sorted(actual - expected)}"
        )

    def test_fixture_package_fails_the_gate(self):
        result = lint_paths([FIXTURE_ROOT / "repro"], root=FIXTURE_ROOT)
        assert not result.ok
        assert result.errors

    def test_select_restricts_rules(self):
        path = FIXTURE_ROOT / "repro" / "sched" / "bad_scheduler.py"
        result = lint_paths([path], root=FIXTURE_ROOT, select=["SIM005"])
        assert {f.rule for f in result.findings} == {"SIM005"}


class TestPragmas:
    def _lint_source(self, tmp_path, source, name="repro/sim/mod.py"):
        path = tmp_path / name
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
        return lint_paths([path], root=tmp_path)

    def test_justified_pragma_suppresses(self, tmp_path):
        result = self._lint_source(
            tmp_path,
            "import time\n"
            "t = time.time()  # simlint: disable=SIM001 -- wall accounting\n",
        )
        assert result.findings == []

    def test_standalone_pragma_covers_next_line(self, tmp_path):
        result = self._lint_source(
            tmp_path,
            "import time\n"
            "# simlint: disable=SIM001 -- wall accounting\n"
            "t = time.time()\n",
        )
        assert result.findings == []

    def test_file_pragma_covers_whole_module(self, tmp_path):
        result = self._lint_source(
            tmp_path,
            "# simlint: disable-file=SIM001 -- wall-clock is this module's job\n"
            "import time\n"
            "a = time.time()\n"
            "b = time.monotonic()\n",
        )
        assert result.findings == []

    def test_pragma_without_justification_is_rejected(self, tmp_path):
        result = self._lint_source(
            tmp_path,
            "import time\n"
            "t = time.time()  # simlint: disable=SIM001\n",
        )
        rules_hit = {f.rule for f in result.findings}
        # the violation is NOT suppressed, and the pragma itself is flagged
        assert rules_hit == {"SIM000", "SIM001"}
        assert any(
            "justification" in f.message
            for f in result.findings
            if f.rule == "SIM000"
        )

    def test_pragma_with_unknown_rule_is_rejected(self, tmp_path):
        result = self._lint_source(
            tmp_path,
            "x = 1  # simlint: disable=SIM999 -- no such rule\n",
        )
        assert [f.rule for f in result.findings] == ["SIM000"]
        assert "unknown rule" in result.findings[0].message

    def test_unused_pragma_is_reported(self, tmp_path):
        result = self._lint_source(
            tmp_path,
            "x = 1  # simlint: disable=SIM001 -- nothing to suppress here\n",
        )
        assert [f.rule for f in result.findings] == ["SIM000"]
        assert result.findings[0].severity == "warning"
        assert "unused" in result.findings[0].message

    def test_pragma_inside_string_literal_is_inert(self, tmp_path):
        result = self._lint_source(
            tmp_path,
            'DOC = "# simlint: disable=SIM001 -- not a real pragma"\n'
            "import time\n"
            "t = time.time()\n",
        )
        assert [f.rule for f in result.findings] == ["SIM001"]


class TestCrossModulePragmas:
    """A cross-module finding (source in one file, sink in another) has
    exactly one suppression site: the line the finding anchors at — the
    sink.  A pragma at the *source* (the helper's release) suppresses
    nothing and is itself reported as unused."""

    def _copy_tree(self, tmp_path, edit=None):
        """Copy the xmod fixture pair into tmp_path, optionally editing."""
        for src in sorted(XMOD_ROOT.rglob("*.py")):
            rel = src.relative_to(XMOD_ROOT)
            dst = tmp_path / rel
            dst.parent.mkdir(parents=True, exist_ok=True)
            text = src.read_text()
            if edit is not None:
                text = edit(rel.as_posix(), text)
            dst.write_text(text)
        return [tmp_path / "repro"]

    def test_finding_anchors_at_the_sink(self):
        result = lint_paths([XMOD_ROOT / "repro"], root=XMOD_ROOT)
        assert [f.rule for f in result.findings] == ["SIM015"]
        finding = result.findings[0]
        assert finding.path == "repro/transport/caller.py"
        assert finding.snippet == "return pkt.seq"
        assert "surrender()" in finding.message

    def test_pragma_at_the_sink_suppresses(self, tmp_path):
        def edit(rel, text):
            if rel.endswith("caller.py"):
                text = text.replace(
                    "return pkt.seq",
                    "return pkt.seq  # simlint: disable=SIM015 "
                    "-- frame provably requeued before surrender",
                )
            return text

        paths = self._copy_tree(tmp_path, edit)
        result = lint_paths(paths, root=tmp_path)
        assert result.findings == []

    def test_pragma_at_the_source_does_not_suppress(self, tmp_path):
        def edit(rel, text):
            if rel.endswith("helper.py"):
                text = text.replace(
                    "release(frame)",
                    "release(frame)  # simlint: disable=SIM015 "
                    "-- helper is allowed to release",
                )
            return text

        paths = self._copy_tree(tmp_path, edit)
        result = lint_paths(paths, root=tmp_path)
        by_rule = {}
        for f in result.findings:
            by_rule.setdefault(f.rule, []).append(f)
        # the sink finding survives...
        assert [f.path for f in by_rule["SIM015"]] == [
            "repro/transport/caller.py"
        ]
        # ...and the source-side pragma is flagged as suppressing nothing
        assert [f.path for f in by_rule["SIM000"]] == [
            "repro/transport/helper.py"
        ]
        assert "unused" in by_rule["SIM000"][0].message

    def test_cross_module_finding_is_baselinable(self, tmp_path):
        first = lint_paths([XMOD_ROOT / "repro"], root=XMOD_ROOT)
        baseline = Baseline.from_findings(first.findings)
        again = lint_paths(
            [XMOD_ROOT / "repro"], root=XMOD_ROOT, baseline=baseline
        )
        assert again.ok
        assert len(again.baselined) == 1


class TestRuleRange:
    def test_range_tracks_the_registry(self):
        ids = sorted(r for r in registered_rules() if r != "SIM000")
        assert rule_range() == f"{ids[0]}..{ids[-1]}"
        # the span that once went stale in help text must stay derived
        assert rule_range() >= "SIM001..SIM014"

    def test_cli_description_uses_derived_range(self, capsys):
        from repro.analysis.cli import build_parser

        assert rule_range() in build_parser().description
        assert "SIM001..SIM010" not in build_parser().description


class TestChangedFlag:
    def _git(self, cwd, *args):
        subprocess.run(
            ["git", *args], cwd=cwd, check=True, capture_output=True,
            env=dict(
                os.environ,
                GIT_AUTHOR_NAME="t", GIT_AUTHOR_EMAIL="t@t",
                GIT_COMMITTER_NAME="t", GIT_COMMITTER_EMAIL="t@t",
            ),
        )

    def _repo_with_commit(self, tmp_path):
        self._git(tmp_path, "init", "-q")
        src = tmp_path / "src" / "repro"
        src.mkdir(parents=True)
        (src / "clean.py").write_text("x = 1\n")
        (src / "other.py").write_text("y = 2\n")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "seed")
        return src

    def test_changed_lints_only_touched_files(self, tmp_path, capsys):
        src = self._repo_with_commit(tmp_path)
        (src / "clean.py").write_text(
            "import time\nt = time.time()\n"
        )
        code = lint_main(["--root", str(tmp_path), "--changed"])
        out = capsys.readouterr().out
        assert code == 1
        assert "clean.py" in out and "SIM001" in out
        assert "other.py" not in out

    def test_changed_with_no_changes_is_clean(self, tmp_path, capsys):
        self._repo_with_commit(tmp_path)
        code = lint_main(["--root", str(tmp_path), "--changed"])
        assert code == 0
        assert "no changed Python files" in capsys.readouterr().out

    def test_changed_skips_files_outside_the_targets(self, tmp_path, capsys):
        self._repo_with_commit(tmp_path)
        stray = tmp_path / "scripts"
        stray.mkdir()
        (stray / "tool.py").write_text("z = 1\n")
        self._git(tmp_path, "add", "-A")
        self._git(tmp_path, "commit", "-qm", "stray")
        # a *tracked* change outside src/repro: in the diff, out of scope
        (stray / "tool.py").write_text("import time\nt = time.time()\n")
        code = lint_main(["--root", str(tmp_path), "--changed"])
        assert code == 0
        assert "no changed Python files" in capsys.readouterr().out

    def test_bad_base_exits_two(self, tmp_path, capsys):
        self._repo_with_commit(tmp_path)
        code = lint_main(
            ["--root", str(tmp_path), "--changed", "no-such-ref"]
        )
        assert code == 2


class TestBaseline:
    def test_round_trip_absorbs_then_catches_new(self, tmp_path):
        target = FIXTURE_ROOT / "repro" / "topo" / "bad_print.py"
        first = lint_paths([target], root=FIXTURE_ROOT)
        assert first.errors

        baseline_path = tmp_path / "baseline.json"
        Baseline.from_findings(first.findings).write(baseline_path)
        baseline = Baseline.load(baseline_path)

        again = lint_paths([target], root=FIXTURE_ROOT, baseline=baseline)
        assert again.ok
        assert len(again.baselined) == len(first.findings)

        # a *new* violation in the same file is not grandfathered
        copy = tmp_path / "repro" / "topo" / "bad_print.py"
        copy.parent.mkdir(parents=True)
        copy.write_text(target.read_text() + "\n\nprint('new violation')\n")
        newer = lint_paths([copy], root=tmp_path, baseline=baseline)
        assert not newer.ok
        assert len(newer.findings) == 1
        assert newer.findings[0].rule == "SIM009"

    def test_fingerprints_survive_line_moves(self, tmp_path):
        target = FIXTURE_ROOT / "repro" / "topo" / "bad_print.py"
        baseline = Baseline.from_findings(
            lint_paths([target], root=FIXTURE_ROOT).findings
        )
        # shift every finding down ten lines; fingerprints must still match
        moved = tmp_path / "repro" / "topo" / "bad_print.py"
        moved.parent.mkdir(parents=True)
        moved.write_text("\n" * 10 + target.read_text())
        result = lint_paths([moved], root=tmp_path, baseline=baseline)
        assert result.ok
        assert result.baselined

    def test_version_mismatch_is_an_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({"version": 999, "fingerprints": {}}))
        with pytest.raises(ValueError, match="version"):
            Baseline.load(path)

    def test_missing_baseline_is_empty(self, tmp_path):
        baseline = Baseline.load(tmp_path / "does-not-exist.json")
        assert baseline.counts == {}


class TestJsonSchema:
    def test_document_shape_is_stable(self):
        result = lint_paths([FIXTURE_ROOT / "repro"], root=FIXTURE_ROOT)
        doc = result.to_json()
        assert doc["version"] == JSON_SCHEMA_VERSION == 1
        assert set(doc) == {
            "version", "files_checked", "ok", "counts", "findings", "rules",
        }
        assert set(doc["counts"]) == {
            "errors", "warnings", "baselined", "parse_errors",
        }
        assert doc["findings"], "fixture lint should produce findings"
        for finding in doc["findings"]:
            assert set(finding) == {
                "rule", "path", "line", "col", "severity", "message",
                "snippet", "fingerprint", "baselined",
            }
            assert re.fullmatch(r"[0-9a-f]{16}", finding["fingerprint"])
        for rule_id, meta in doc["rules"].items():
            assert re.fullmatch(r"SIM\d{3}", rule_id)
            assert set(meta) == {"name", "severity", "rationale"}

    def test_baseline_version_is_pinned(self):
        assert BASELINE_VERSION == 1


class TestCli:
    def test_fixture_package_exits_nonzero(self, capsys):
        code = lint_main(
            [str(FIXTURE_ROOT / "repro"), "--root", str(FIXTURE_ROOT)]
        )
        assert code == 1
        assert "SIM" in capsys.readouterr().out

    def test_json_format_parses(self, capsys):
        code = lint_main(
            [
                str(FIXTURE_ROOT / "repro"),
                "--root", str(FIXTURE_ROOT),
                "--format", "json",
            ]
        )
        assert code == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["version"] == JSON_SCHEMA_VERSION
        assert not doc["ok"]

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "clean.py"
        path.write_text("x = 1\n")
        assert lint_main([str(path), "--root", str(tmp_path)]) == 0

    def test_unknown_select_exits_two(self, capsys):
        assert lint_main(["--select", "SIM999"]) == 2

    def test_missing_path_exits_two(self, capsys):
        assert lint_main([str(FIXTURE_ROOT / "no-such-dir")]) == 2

    def test_list_rules(self, capsys):
        assert lint_main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in registered_rules():
            if rule_id != "SIM000":
                assert rule_id in out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        baseline = tmp_path / "bl.json"
        target = str(FIXTURE_ROOT / "repro" / "topo")
        root = ["--root", str(FIXTURE_ROOT)]
        assert lint_main(
            [target, *root, "--write-baseline", "--baseline", str(baseline)]
        ) == 0
        assert lint_main([target, *root, "--baseline", str(baseline)]) == 0
        assert lint_main([target, *root, "--no-baseline"]) == 1


class TestRepoIsClean:
    def test_src_repro_lints_clean(self):
        """The shipped tree has zero findings — and therefore also zero
        unjustified or unused pragmas (both are SIM000 findings)."""
        result = lint_paths([REPO_ROOT / "src" / "repro"], root=REPO_ROOT)
        assert result.ok, [f.location() + " " + f.rule for f in result.errors]
        assert result.warnings == [], [
            f.location() + " " + f.message for f in result.warnings
        ]


class TestHashSeedDeterminism:
    """The property SIM003 exists to protect, asserted end-to-end: the FCT
    vector of a run must not depend on PYTHONHASHSEED."""

    SCRIPT = (
        "import json\n"
        "from repro.harness.config import ExperimentConfig\n"
        "from repro.harness.runner import run_experiment\n"
        "cfg = ExperimentConfig(scheme='tcn', scheduler='dwrr',"
        " transport='dctcp', workload='websearch', load=0.6, seed=7,"
        " n_flows=40, n_queues=4)\n"
        "r = run_experiment(cfg)\n"
        "print(json.dumps(sorted([f.id, f.fct_ns] for f in r.flows)))\n"
    )

    def _fct_vector(self, hash_seed):
        env = dict(os.environ)
        env["PYTHONHASHSEED"] = str(hash_seed)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            capture_output=True,
            text=True,
            env=env,
            cwd=str(REPO_ROOT),
            check=True,
        )
        return json.loads(proc.stdout)

    def test_fct_vector_identical_across_hash_seeds(self):
        base = self._fct_vector(0)
        assert base, "experiment produced no flows"
        assert any(fct is not None for _, fct in base)
        assert self._fct_vector(42) == base
