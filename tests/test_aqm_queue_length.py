"""Queue-length AQMs: per-queue, per-port, per-pool, and dequeue RED."""

import pytest

from repro.aqm.dequeue_red import DequeueRed
from repro.aqm.perport import BufferPool, PerPoolRed, PerPortRed
from repro.aqm.perqueue import PerQueueRed
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sim.engine import Simulator
from repro.units import KB
from tests.helpers import data_pkt, fill, make_port


def _port_with(aqm, n_queues=2, buffer_bytes=500 * KB):
    sim = Simulator()
    sched = DwrrScheduler(make_queues(n_queues, quanta=[1500] * n_queues))
    port = make_port(sim, scheduler=sched, aqm=aqm, buffer_bytes=buffer_bytes)
    return sim, port, sched


class TestPerQueueRed:
    def test_marks_when_own_queue_over_k(self):
        sim, port, sched = _port_with(PerQueueRed(3000))
        queue = sched.queues[0]
        fill(sched, 0, 3)  # 4500 B backlog
        assert port.aqm.on_enqueue(port, queue, data_pkt(), 0) is True

    def test_no_mark_below_k(self):
        sim, port, sched = _port_with(PerQueueRed(30_000))
        queue = sched.queues[0]
        fill(sched, 0, 2)
        assert port.aqm.on_enqueue(port, queue, data_pkt(), 0) is False

    def test_queues_isolated(self):
        """Another queue's backlog never marks this queue's packets."""
        sim, port, sched = _port_with(PerQueueRed(3000))
        fill(sched, 1, 50)  # huge backlog in queue 1
        q0 = sched.queues[0]
        assert port.aqm.on_enqueue(port, q0, data_pkt(dscp=0), 0) is False

    def test_per_queue_thresholds_list(self):
        aqm = PerQueueRed([3000, 30_000])
        sim, port, sched = _port_with(aqm)
        fill(sched, 0, 3)
        fill(sched, 1, 3)
        assert aqm.on_enqueue(port, sched.queues[0], data_pkt(), 0) is True
        assert aqm.on_enqueue(port, sched.queues[1], data_pkt(), 0) is False

    def test_threshold_count_mismatch_rejected(self):
        sim = Simulator()
        sched = DwrrScheduler(make_queues(3, quanta=[1500] * 3))
        with pytest.raises(ValueError):
            make_port(sim, scheduler=sched, aqm=PerQueueRed([1000, 2000]))


class TestPerPortRed:
    def test_marks_on_aggregate_occupancy(self):
        """Remark 2's mechanism: queue 0's single packet gets marked purely
        because queue 1 filled the port."""
        sim, port, sched = _port_with(PerPortRed(30 * KB))
        # stuff queue 1 through the port so occupancy is accounted
        for i in range(30):
            port.receive(data_pkt(flow_id=2, seq=i, dscp=1))
        assert port.occupancy > 30 * KB
        assert port.aqm.on_enqueue(port, sched.queues[0], data_pkt(dscp=0), 0)

    def test_no_mark_when_port_quiet(self):
        sim, port, sched = _port_with(PerPortRed(30 * KB))
        assert not port.aqm.on_enqueue(port, sched.queues[0], data_pkt(), 0)


class TestPerPoolRed:
    def test_pool_spans_ports(self):
        pool = BufferPool(500 * KB)
        sim = Simulator()
        ports = []
        for _ in range(2):
            sched = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
            ports.append(
                make_port(sim, scheduler=sched, aqm=PerPoolRed(pool, 30 * KB))
            )
        # fill port 0 past the pool threshold
        for i in range(30):
            ports[0].receive(data_pkt(seq=i, dscp=1))
        # a packet on the *other* port gets marked: cross-port interference
        q0 = ports[1].scheduler.queues[0]
        assert ports[1].aqm.on_enqueue(ports[1], q0, data_pkt(), 0) is True

    def test_pool_admission(self):
        pool = BufferPool(4000)
        assert pool.admit(1500)
        pool.occupancy = 3000
        assert not pool.admit(1500)
        assert pool.admit(1000)

    def test_pool_enforced_at_ports(self):
        pool = BufferPool(3000)
        sim = Simulator()
        sched = DwrrScheduler(make_queues(2, quanta=[1500, 1500]))
        port = make_port(sim, scheduler=sched, aqm=PerPoolRed(pool, 1500))
        for i in range(4):
            port.receive(data_pkt(seq=i))
        assert port.stats.dropped_pkts >= 1

    def test_pool_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)


class TestDequeueRed:
    def test_marks_on_remaining_backlog(self):
        aqm = DequeueRed(3000)
        sim, port, sched = _port_with(aqm)
        queue = sched.queues[0]
        fill(sched, 0, 4)
        pkt, _ = sched.dequeue(0)  # leaves 3 pkts = 4500 B behind
        assert aqm.on_dequeue(port, queue, pkt, 0) is True

    def test_last_packet_not_marked(self):
        aqm = DequeueRed(3000)
        sim, port, sched = _port_with(aqm)
        queue = sched.queues[0]
        fill(sched, 0, 1)
        pkt, _ = sched.dequeue(0)  # leaves nothing behind
        assert aqm.on_dequeue(port, queue, pkt, 0) is False

    def test_never_marks_at_enqueue(self):
        aqm = DequeueRed(3000)
        sim, port, sched = _port_with(aqm)
        fill(sched, 0, 10)
        assert aqm.on_enqueue(port, sched.queues[0], data_pkt(), 0) is False
