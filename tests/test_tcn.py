"""TCN: instantaneous sojourn-time marking (the paper's §4) and the
probabilistic RED-like extension (§4.3)."""

import random

import pytest
from hypothesis import given, strategies as st

from repro.core.tcn import ProbabilisticTcn, Tcn
from repro.core.thresholds import standard_tcn_threshold_ns
from repro.net.queue import PacketQueue
from repro.units import USEC
from tests.helpers import data_pkt


def _sojourn_mark(aqm, sojourn_ns, enq_ts=1_000_000):
    pkt = data_pkt()
    pkt.enq_ts = enq_ts
    queue = PacketQueue(0)
    return aqm.on_dequeue(None, queue, pkt, enq_ts + sojourn_ns)


class TestTcn:
    def test_marks_above_threshold(self):
        assert _sojourn_mark(Tcn(100 * USEC), 101 * USEC) is True

    def test_no_mark_below_threshold(self):
        assert _sojourn_mark(Tcn(100 * USEC), 99 * USEC) is False

    def test_exact_threshold_not_marked(self):
        """The rule is strictly 'larger than the threshold'."""
        assert _sojourn_mark(Tcn(100 * USEC), 100 * USEC) is False

    def test_never_marks_at_enqueue(self):
        tcn = Tcn(100 * USEC)
        assert tcn.on_enqueue(None, PacketQueue(0), data_pkt(), 0) is False

    def test_statelessness(self):
        """Decisions are independent: identical sojourns give identical
        answers regardless of history (no per-queue state)."""
        tcn = Tcn(100 * USEC)
        for _ in range(5):
            assert _sojourn_mark(tcn, 150 * USEC) is True
            assert _sojourn_mark(tcn, 50 * USEC) is False

    def test_threshold_independent_of_queue(self):
        """The same instance serves any number of queues — the property
        that makes TCN scheduler-agnostic."""
        tcn = Tcn(100 * USEC)
        for qidx in range(8):
            pkt = data_pkt(dscp=qidx)
            pkt.enq_ts = 0
            assert tcn.on_dequeue(None, PacketQueue(qidx), pkt, 150 * USEC)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            Tcn(0)

    def test_standard_threshold_equation3(self):
        assert standard_tcn_threshold_ns(100 * USEC, 1.0) == 100 * USEC
        assert standard_tcn_threshold_ns(250 * USEC, 0.5) == 125 * USEC


class TestProbabilisticTcn:
    def test_below_tmin_never_marks(self):
        aqm = ProbabilisticTcn(50 * USEC, 150 * USEC, pmax=1.0)
        assert all(
            not _sojourn_mark(aqm, 40 * USEC) for _ in range(50)
        )

    def test_above_tmax_always_marks(self):
        aqm = ProbabilisticTcn(50 * USEC, 150 * USEC, pmax=0.1)
        assert all(_sojourn_mark(aqm, 200 * USEC) for _ in range(50))

    def test_midpoint_marks_at_about_half_pmax(self):
        aqm = ProbabilisticTcn(
            0, 200 * USEC, pmax=1.0, rng=random.Random(1)
        )
        marks = sum(_sojourn_mark(aqm, 100 * USEC) for _ in range(4000))
        assert 0.45 <= marks / 4000 <= 0.55

    def test_pmax_caps_probability(self):
        aqm = ProbabilisticTcn(
            0, 200 * USEC, pmax=0.2, rng=random.Random(1)
        )
        marks = sum(_sojourn_mark(aqm, 199 * USEC) for _ in range(4000))
        assert marks / 4000 <= 0.25

    def test_degenerate_equal_thresholds(self):
        aqm = ProbabilisticTcn(100 * USEC, 100 * USEC)
        assert _sojourn_mark(aqm, 101 * USEC) is True
        assert _sojourn_mark(aqm, 99 * USEC) is False

    def test_validation(self):
        with pytest.raises(ValueError):
            ProbabilisticTcn(200, 100)
        with pytest.raises(ValueError):
            ProbabilisticTcn(0, 100, pmax=0.0)
        with pytest.raises(ValueError):
            ProbabilisticTcn(0, 100, pmax=1.5)


@given(
    threshold=st.integers(min_value=1, max_value=1_000_000),
    sojourn=st.integers(min_value=0, max_value=2_000_000),
)
def test_property_tcn_is_a_pure_threshold_function(threshold, sojourn):
    """mark <=> sojourn > threshold, for any values."""
    assert _sojourn_mark(Tcn(threshold), sojourn) == (sojourn > threshold)


@given(
    tmin=st.integers(min_value=0, max_value=500_000),
    span=st.integers(min_value=0, max_value=500_000),
    sojourn=st.integers(min_value=0, max_value=2_000_000),
)
def test_property_probabilistic_tcn_brackets(tmin, span, sojourn):
    """Deterministic outside [tmin, tmax]; inside, outcome is a coin flip
    and both outcomes are legal."""
    aqm = ProbabilisticTcn(tmin, tmin + span, pmax=1.0, rng=random.Random(0))
    result = _sojourn_mark(aqm, sojourn)
    if sojourn <= tmin:
        assert result is False
    elif sojourn >= tmin + span:
        assert result is True
