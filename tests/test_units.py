"""Unit conversions: the arithmetic everything else leans on."""

import pytest

from repro.units import (
    GBPS,
    MSEC,
    MSS,
    MTU,
    SEC,
    USEC,
    bytes_in_flight,
    fmt_rate,
    fmt_time,
    rate_bps_from,
    tx_time_ns,
)


class TestTxTime:
    def test_full_mtu_at_10g(self):
        assert tx_time_ns(1500, 10 * GBPS) == 1200

    def test_full_mtu_at_1g(self):
        assert tx_time_ns(1500, GBPS) == 12_000

    def test_rounds_up(self):
        # 1 byte at 3 bps: 8/3 s -> must round up, not truncate
        assert tx_time_ns(1, 3) == -(-8 * SEC // 3)

    def test_zero_size_is_zero(self):
        assert tx_time_ns(0, GBPS) == 0

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            tx_time_ns(1500, 0)

    def test_back_to_back_never_overlap(self):
        # serialization times must sum to >= the exact fluid time
        rate = 7_777_777  # awkward rate
        exact = 100 * 1500 * 8 * SEC / rate
        total = sum(tx_time_ns(1500, rate) for _ in range(100))
        assert total >= exact


class TestBdp:
    def test_paper_standard_threshold(self):
        # 10 Gbps x 100 us = 125 KB (the paper's Fig. 3 setup)
        assert bytes_in_flight(10 * GBPS, 100 * USEC) == 125_000

    def test_testbed_bdp(self):
        # 1 Gbps x 250 us ~ 31.25 KB (the testbed's 32 KB threshold)
        assert bytes_in_flight(GBPS, 250 * USEC) == 31_250


class TestRateFrom:
    def test_simple(self):
        assert rate_bps_from(125, 1000) == 1 * GBPS

    def test_rejects_zero_duration(self):
        with pytest.raises(ValueError):
            rate_bps_from(100, 0)


class TestFraming:
    def test_mtu_is_mss_plus_header(self):
        assert MTU == MSS + 40


class TestFormatting:
    def test_fmt_time_scales(self):
        assert fmt_time(5) == "5ns"
        assert fmt_time(1500) == "1.500us"
        assert fmt_time(2 * MSEC) == "2.000ms"
        assert fmt_time(3 * SEC) == "3.000s"

    def test_fmt_rate_scales(self):
        assert fmt_rate(5e9) == "5.00Gbps"
        assert fmt_rate(250e6) == "250.00Mbps"
        assert fmt_rate(9_500) == "9.50Kbps"
        assert fmt_rate(12) == "12bps"
