"""Scheduler equivalence: optimized hot paths vs naive reference models.

The production schedulers inline queue accounting and (for SP/DWRR)
flatten the band delegation for speed.  These tests hold every
discipline to an independently written, deliberately naive reference
implementation of its documented semantics: randomized enqueue/dequeue
sequences must produce the *identical* packet order.

Also covered: the egress port's single-queue FIFO bypass must transmit
exactly what the generic scheduler path transmits, and the flattened
``SpDwrrScheduler`` must match the generic strict-priority delegation
over a plain ``DwrrScheduler``.
"""

import random
from collections import deque

import pytest

from repro.net.link import Link
from repro.net.packet import Packet, PacketKind
from repro.net.port import EgressPort
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sched.fifo import FifoScheduler
from repro.sched.hybrid import SpDwrrScheduler, SpWfqScheduler
from repro.sched.pifo import PifoScheduler, stfq_rank
from repro.sched.sp import StrictPriorityScheduler
from repro.sched.wfq import WfqScheduler
from repro.sched.wrr import WrrScheduler
from repro.sim.engine import Simulator
from repro.units import MBPS


def _pkt(i: int, payload: int) -> Packet:
    return Packet(flow_id=i, src=0, dst=1, kind=PacketKind.DATA,
                  seq=i, payload=payload)


# -- naive reference models ----------------------------------------------
#
# Each model keeps plain per-queue lists and applies the discipline's
# documented rule directly; none of them share code with the package.


class RefFifo:
    def __init__(self, params):
        self.pkts = []

    def enqueue(self, pkt, qidx, now):
        self.pkts.append(pkt)

    def dequeue(self, now):
        return self.pkts.pop(0) if self.pkts else None


class RefStrictPriority:
    def __init__(self, params):
        n = params["n"]
        priorities = params["priorities"]
        # the scheduler defaults priorities to the queue index when all 0
        if all(p == 0 for p in priorities) and n > 1:
            priorities = list(range(n))
        self.order = sorted(range(n), key=lambda i: (priorities[i], i))
        self.pkts = [[] for _ in range(n)]

    def enqueue(self, pkt, qidx, now):
        self.pkts[qidx].append(pkt)

    def dequeue(self, now):
        for i in self.order:
            if self.pkts[i]:
                return self.pkts[i].pop(0)
        return None


class _RefRoundRobin:
    """Shared rotation machinery for the WRR/DWRR references."""

    def __init__(self, n):
        self.pkts = [[] for _ in range(n)]
        self.active = deque()
        self.credit = [0] * n
        self.fresh_turn = [True] * n

    def enqueue(self, pkt, qidx, now):
        if not self.pkts[qidx]:
            self.active.append(qidx)
            self.credit[qidx] = 0
            self.fresh_turn[qidx] = True
        self.pkts[qidx].append(pkt)

    def _turn_credit(self, qidx):
        raise NotImplementedError

    def _cost(self, pkt):
        raise NotImplementedError

    def dequeue(self, now):
        while self.active:
            qidx = self.active[0]
            if self.fresh_turn[qidx]:
                self.credit[qidx] += self._turn_credit(qidx)
                self.fresh_turn[qidx] = False
            head = self.pkts[qidx][0]
            cost = self._cost(head)
            if cost <= self.credit[qidx]:
                self.credit[qidx] -= cost
                pkt = self.pkts[qidx].pop(0)
                if not self.pkts[qidx]:
                    self.active.popleft()
                    self.credit[qidx] = 0
                    self.fresh_turn[qidx] = True
                return pkt
            self.active.rotate(-1)
            self.fresh_turn[qidx] = True
        return None


class RefWrr(_RefRoundRobin):
    """weight whole packets per turn (min 1); credit resets each turn."""

    def __init__(self, params):
        super().__init__(params["n"])
        self.weights = params["weights"]

    def _turn_credit(self, qidx):
        return max(1, round(self.weights[qidx]))

    def _cost(self, pkt):
        return 1

    def dequeue(self, now):
        # WRR credit does not accumulate across turns: a fresh turn
        # *sets* the packet budget rather than adding to a deficit
        while self.active:
            qidx = self.active[0]
            if self.fresh_turn[qidx]:
                self.credit[qidx] = self._turn_credit(qidx)
                self.fresh_turn[qidx] = False
            if self.credit[qidx] > 0:
                self.credit[qidx] -= 1
                pkt = self.pkts[qidx].pop(0)
                if not self.pkts[qidx]:
                    self.active.popleft()
                    self.fresh_turn[qidx] = True
                return pkt
            self.active.rotate(-1)
            self.fresh_turn[qidx] = True
        return None


class RefDwrr(_RefRoundRobin):
    """quantum bytes of deficit per turn, spent on whole packets."""

    def __init__(self, params):
        super().__init__(params["n"])
        self.quanta = params["quanta"]

    def _turn_credit(self, qidx):
        return self.quanta[qidx]

    def _cost(self, pkt):
        return pkt.wire_size


class RefWfq:
    """Self-clocked fair queueing: smallest virtual finish tag wins."""

    def __init__(self, params):
        n = params["n"]
        self.weights = params["weights"]
        self.pkts = [[] for _ in range(n)]
        self.tags = [[] for _ in range(n)]
        self.last_finish = [0.0] * n
        self.vtime = 0.0

    def enqueue(self, pkt, qidx, now):
        start = max(self.vtime, self.last_finish[qidx])
        finish = start + pkt.wire_size / self.weights[qidx]
        self.last_finish[qidx] = finish
        self.pkts[qidx].append(pkt)
        self.tags[qidx].append(finish)

    def dequeue(self, now):
        best = None
        for i, tags in enumerate(self.tags):
            if tags and (best is None or tags[0] < self.tags[best][0]):
                best = i
        if best is None:
            return None
        self.vtime = self.tags[best].pop(0)
        pkt = self.pkts[best].pop(0)
        if not any(self.pkts):
            self.vtime = 0.0
            self.last_finish = [0.0] * len(self.last_finish)
        return pkt


class RefPifoStfq:
    """PIFO with the STFQ rank program: global start-tag order."""

    def __init__(self, params):
        self.weights = params["weights"]
        self.finish = {}
        self.vtime = 0.0
        self.heap = []  # (rank, seq) sorted lazily
        self.seq = 0

    def enqueue(self, pkt, qidx, now):
        start = max(self.vtime, self.finish.get(qidx, 0.0))
        self.finish[qidx] = start + pkt.wire_size / self.weights[qidx]
        self.seq += 1
        self.heap.append((start, self.seq, pkt))

    def dequeue(self, now):
        if not self.heap:
            return None
        self.heap.sort()
        rank, _, pkt = self.heap.pop(0)
        self.vtime = rank
        if not self.heap:
            self.vtime = 0.0
            self.finish.clear()
        return pkt


class RefSpDwrr:
    """Strict high band over a DWRR low band (local indices)."""

    def __init__(self, params):
        n_high = params["n_high"]
        self.n_high = n_high
        self.high = [[] for _ in range(n_high)]
        low_n = params["n"] - n_high
        self.low = RefDwrr(
            {"n": low_n, "quanta": params["quanta"][n_high:]}
        )

    def enqueue(self, pkt, qidx, now):
        if qidx < self.n_high:
            self.high[qidx].append(pkt)
        else:
            self.low.enqueue(pkt, qidx - self.n_high, now)

    def dequeue(self, now):
        for band in self.high:
            if band:
                return band.pop(0)
        return self.low.dequeue(now)


class RefSpWfq(RefSpDwrr):
    def __init__(self, params):
        n_high = params["n_high"]
        self.n_high = n_high
        self.high = [[] for _ in range(n_high)]
        low_n = params["n"] - n_high
        self.low = RefWfq(
            {"n": low_n, "weights": params["weights"][n_high:]}
        )


# -- the randomized equivalence driver -----------------------------------


def _random_trial(make_real, make_ref, seed, n_queues):
    rng = random.Random(seed)
    weights = [rng.choice([0.5, 1.0, 2.0, 3.0]) for _ in range(n_queues)]
    quanta = [rng.choice([500, 1500, 3000]) for _ in range(n_queues)]
    priorities = (
        [0] * n_queues
        if rng.random() < 0.5
        else [rng.randrange(3) for _ in range(n_queues)]
    )
    params = {
        "n": n_queues,
        "weights": weights,
        "quanta": quanta,
        "priorities": priorities,
        "n_high": max(1, n_queues // 3),
    }
    queues = make_queues(
        n_queues, weights=weights, quanta=quanta, priorities=priorities
    )
    real = make_real(queues, params)
    ref = make_ref(params)

    real_order, ref_order = [], []
    now = 0
    backlog = 0
    for op in range(400):
        now += rng.randrange(1, 5000)
        if backlog and rng.random() < 0.45:
            result = real.dequeue(now)
            expected = ref.dequeue(now)
            if result is None:
                assert expected is None
            else:
                real_order.append(id(result[0]))
                ref_order.append(id(expected))
                backlog -= 1
        else:
            for _ in range(rng.randrange(1, 4)):
                pkt = _pkt(op, rng.randrange(0, 1460))
                qidx = rng.randrange(n_queues)
                real.enqueue(pkt, qidx, now)
                ref.enqueue(pkt, qidx, now)
                backlog += 1
    # drain completely: every packet must come out, in the same order
    while True:
        now += 1
        result = real.dequeue(now)
        expected = ref.dequeue(now)
        if result is None:
            assert expected is None
            break
        real_order.append(id(result[0]))
        ref_order.append(id(expected))
    assert real_order == ref_order
    assert real.total_bytes == 0


_DISCIPLINES = {
    "fifo": (lambda qs, p: FifoScheduler([qs[0]]), RefFifo, 1),
    "sp": (lambda qs, p: StrictPriorityScheduler(qs), RefStrictPriority, 4),
    "wrr": (lambda qs, p: WrrScheduler(qs), RefWrr, 4),
    "dwrr": (lambda qs, p: DwrrScheduler(qs), RefDwrr, 4),
    "wfq": (lambda qs, p: WfqScheduler(qs), RefWfq, 4),
    "pifo_stfq": (
        lambda qs, p: PifoScheduler(qs, rank_fn=stfq_rank),
        RefPifoStfq,
        4,
    ),
    "sp_dwrr": (
        lambda qs, p: SpDwrrScheduler(qs, n_high=p["n_high"]),
        RefSpDwrr,
        6,
    ),
    "sp_wfq": (
        lambda qs, p: SpWfqScheduler(qs, n_high=p["n_high"]),
        RefSpWfq,
        6,
    ),
}


@pytest.mark.parametrize("name", sorted(_DISCIPLINES))
@pytest.mark.parametrize("seed", range(8))
def test_discipline_matches_reference(name, seed):
    make_real, ref_cls, n_queues = _DISCIPLINES[name]
    # stable per-discipline seed offset (hash() is randomized per process)
    offset = sum(map(ord, name))
    _random_trial(
        make_real, ref_cls, seed=seed * 1000 + offset, n_queues=n_queues
    )


# -- flattened SP/DWRR vs the generic delegation path ---------------------


class _GenericSpDwrr(SpDwrrScheduler):
    """SpDwrr forced through the generic base-class enqueue/dequeue."""

    def enqueue(self, pkt, qidx, now):
        if qidx < self._n_high:
            self._account_enqueue(pkt, qidx)
        else:
            self.total_bytes += pkt.wire_size
            self._low.enqueue(pkt, qidx - self._n_high, now)

    def dequeue(self, now):
        for queue in self._high:
            if queue:
                return self._account_dequeue(queue), queue
        result = self._low.dequeue(now)
        if result is None:
            return None
        pkt, queue = result
        self.total_bytes -= pkt.wire_size
        return pkt, queue


@pytest.mark.parametrize("seed", range(5))
def test_flattened_sp_dwrr_matches_generic_delegation(seed):
    rng = random.Random(seed)
    n, n_high = 6, 2
    quanta = [rng.choice([500, 1500, 3000]) for _ in range(n)]
    fast = SpDwrrScheduler(make_queues(n, quanta=quanta), n_high=n_high)
    slow = _GenericSpDwrr(make_queues(n, quanta=quanta), n_high=n_high)
    backlog = 0
    now = 0
    for op in range(600):
        now += rng.randrange(1, 2000)
        if backlog and rng.random() < 0.5:
            a = fast.dequeue(now)
            b = slow.dequeue(now)
            assert (a is None) == (b is None)
            if a is not None:
                assert (a[0].flow_id, a[1].index) == (
                    b[0].flow_id,
                    b[1].index,
                )
                backlog -= 1
        else:
            payload = rng.randrange(0, 1460)
            qidx = rng.randrange(n)
            fast.enqueue(_pkt(op, payload), qidx, now)
            slow.enqueue(_pkt(op, payload), qidx, now)
            backlog += 1
    assert fast.total_bytes == slow.total_bytes
    assert [q.bytes for q in fast.queues] == [q.bytes for q in slow.queues]
    assert [q.dequeued_pkts for q in fast.queues] == [
        q.dequeued_pkts for q in slow.queues
    ]


# -- the egress port's single-queue FIFO bypass ---------------------------


class _SubclassedFifo(FifoScheduler):
    """Defeats the port's `type(...) is FifoScheduler` bypass check."""


class _Sink:
    def __init__(self):
        self.order = []

    def receive(self, pkt):
        self.order.append((pkt.flow_id, pkt.seq, pkt.wire_size))


@pytest.mark.parametrize("seed", range(4))
def test_fifo_port_bypass_matches_generic_path(seed):
    rng = random.Random(seed)
    arrivals = []
    t = 0
    for i in range(300):
        t += rng.randrange(0, 3000)
        arrivals.append((t, i, rng.randrange(0, 1460)))

    def run(scheduler_cls):
        sim = Simulator()
        sink = _Sink()
        port = EgressPort(
            sim,
            rate_bps=100 * MBPS,
            buffer_bytes=64_000,
            scheduler=scheduler_cls(),
            link=Link(sink, 1_000),
        )
        for when, i, payload in arrivals:
            sim.schedule_call(when, port.receive, _pkt(i, payload))
        sim.run()
        return sink.order, port.stats, port.occupancy

    fast_order, fast_stats, fast_occ = run(FifoScheduler)
    slow_order, slow_stats, slow_occ = run(_SubclassedFifo)
    assert fast_order == slow_order
    assert fast_occ == slow_occ == 0
    for fld in ("rx_pkts", "tx_pkts", "tx_bytes", "dropped_pkts"):
        assert getattr(fast_stats, fld) == getattr(slow_stats, fld), fld
