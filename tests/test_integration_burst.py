"""Burst handling: TCN's instantaneous marking vs CoDel's interval wait,
exercised with an incast microburst (§4.3, 'faster reaction to bursty
datacenter traffic')."""

from repro.aqm.codel import CoDel
from repro.core.tcn import Tcn
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MSEC, SEC, USEC


def _incast(aqm_factory, n_senders=16, flow_bytes=256 * KB, buffer_bytes=150 * KB):
    """All senders fire one flow at the same receiver at t=0."""
    sim = Simulator()
    topo = StarTopology(
        sim, n_senders + 1, 10 * GBPS,
        sched_factory=FifoScheduler,
        aqm_factory=aqm_factory,
        buffer_bytes=buffer_bytes,
        link_delay_ns=25_000,
    )
    flows = []
    senders = []
    for i in range(n_senders):
        f = Flow(i + 1, i + 1, 0, flow_bytes)
        flows.append(f)
        Receiver(sim, topo.hosts[0], f)
        s = DctcpSender(
            sim, topo.hosts[i + 1], f, init_cwnd=16, min_rto_ns=10 * MSEC
        )
        senders.append(s)
        sim.schedule(0, s.start)
    sim.run(until=5 * SEC)
    port = topo.port_to(0)
    return flows, senders, port


class TestIncast:
    def test_tcn_completes_incast(self):
        flows, senders, port = _incast(lambda: Tcn(100 * USEC))
        assert all(f.completed for f in flows)

    def test_tcn_marks_during_burst(self):
        _, _, port = _incast(lambda: Tcn(100 * USEC))
        assert port.stats.marked_pkts > 0

    def test_tcn_first_marks_arrive_within_one_interval(self):
        """TCN reacts to the burst long before one CoDel interval: compare
        marks accumulated in the first millisecond."""
        sim_marks = {}
        for name, factory in (
            ("tcn", lambda: Tcn(100 * USEC)),
            ("codel", lambda: CoDel(target_ns=20 * USEC, interval_ns=1 * MSEC)),
        ):
            sim = Simulator()
            topo = StarTopology(
                sim, 17, 10 * GBPS, sched_factory=FifoScheduler,
                aqm_factory=factory, buffer_bytes=150 * KB,
                link_delay_ns=25_000,
            )
            for i in range(16):
                f = Flow(i + 1, i + 1, 0, 256 * KB)
                Receiver(sim, topo.hosts[0], f)
                s = DctcpSender(sim, topo.hosts[i + 1], f, init_cwnd=16)
                sim.schedule(0, s.start)
            sim.run(until=1 * MSEC)
            sim_marks[name] = topo.port_to(0).stats.marked_pkts
        assert sim_marks["tcn"] > sim_marks["codel"]
        assert sim_marks["tcn"] > 10

    def test_codel_slow_start_costs_drops(self):
        """With a tight shared buffer, CoDel's interval-long blindness to
        the burst shows up as at least as many drops as TCN suffers."""
        _, _, port_tcn = _incast(lambda: Tcn(100 * USEC), buffer_bytes=100 * KB)
        _, _, port_codel = _incast(
            lambda: CoDel(target_ns=20 * USEC, interval_ns=1 * MSEC),
            buffer_bytes=100 * KB,
        )
        assert port_codel.stats.dropped_pkts >= port_tcn.stats.dropped_pkts

    def test_heavier_incast_still_completes(self):
        flows, _, _ = _incast(lambda: Tcn(100 * USEC), n_senders=32)
        assert all(f.completed for f in flows)
