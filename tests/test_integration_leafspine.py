"""Leaf-spine end-to-end behaviour: ECMP path stability, fabric-wide TCN,
and the harness's all-to-all experiment shape."""


from repro.core.tcn import Tcn
from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.sched.fifo import FifoScheduler
from repro.sim.engine import Simulator
from repro.topo.leafspine import LeafSpineTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MB, MSEC, SEC, USEC


class TestEcmpPathing:
    def _topo(self):
        sim = Simulator()
        topo = LeafSpineTopology(
            sim, 2, 2, 2,
            sched_factory=FifoScheduler,
            aqm_factory=lambda: Tcn(78 * USEC),
            edge_rate_bps=10 * GBPS,
        )
        return sim, topo

    def test_flow_sticks_to_one_spine(self):
        """No packet reordering from ECMP: all of a flow's packets (and
        its ACKs) cross the same spine."""
        sim, topo = self._topo()
        spine_hits = {0: 0, 1: 0}
        for spine_id, spine in enumerate(topo.spines):
            orig = spine.receive

            def spy(pkt, sid=spine_id, orig=orig):
                spine_hits[sid] += 1
                orig(pkt)

            spine.receive = spy
        flow = Flow(123, 0, 2, 500 * KB)  # cross-leaf
        Receiver(sim, topo.hosts[2], flow)
        s = DctcpSender(sim, topo.hosts[0], flow)
        sim.schedule(0, s.start)
        sim.run(until=1 * SEC)
        assert flow.completed
        used = [sid for sid, n in spine_hits.items() if n > 0]
        assert len(used) == 1, f"flow crossed multiple spines: {spine_hits}"

    def test_different_flows_use_different_spines(self):
        sim, topo = self._topo()
        spines = {topo.ecmp_spine(fid) for fid in range(50)}
        assert spines == {0, 1}

    def test_intra_leaf_traffic_skips_spines(self):
        sim, topo = self._topo()
        crossed = []
        for spine in topo.spines:
            orig = spine.receive

            def spy(pkt, orig=orig):
                crossed.append(pkt)
                orig(pkt)

            spine.receive = spy
        flow = Flow(5, 0, 1, 100 * KB)  # same leaf
        Receiver(sim, topo.hosts[1], flow)
        s = DctcpSender(sim, topo.hosts[0], flow)
        sim.schedule(0, s.start)
        sim.run(until=1 * SEC)
        assert flow.completed
        assert not crossed


class TestFabricExperiment:
    def test_mixed_services_complete_and_bin_sanely(self):
        cfg = ExperimentConfig(
            scheme="tcn", scheduler="sp_dwrr", topology="leafspine",
            n_leaf=2, n_spine=2, hosts_per_leaf=3,
            link_rate_bps=10 * GBPS, buffer_bytes=300 * KB,
            base_rtt_ns=85_200, n_queues=8, pias=True,
            workload="mixed", workload_clip_bytes=5 * MB,
            load=0.6, n_flows=120, min_rto_ns=5 * MSEC, seed=11,
        )
        res = run_experiment(cfg)
        assert res.all_completed
        s = res.summary
        assert s.n_small > 0
        # small flows must finish fast through the high-priority queue
        assert s.avg_small_ns < 2_000_000

    def test_ecn_star_fabric(self):
        cfg = ExperimentConfig(
            scheme="tcn", scheduler="sp_dwrr", topology="leafspine",
            n_leaf=2, n_spine=2, hosts_per_leaf=2,
            link_rate_bps=10 * GBPS, buffer_bytes=300 * KB,
            base_rtt_ns=85_200, n_queues=8, pias=True,
            transport="ecnstar", workload="cache",
            load=0.5, n_flows=60, min_rto_ns=5 * MSEC, seed=3,
        )
        res = run_experiment(cfg)
        assert res.all_completed

    def test_tcn_threshold_uniform_across_fabric(self):
        """Every port of every switch gets the same TCN threshold — the
        'easy to configure' property (§4.1)."""
        from repro.harness.runner import _build_topology
        from repro.sim.engine import Simulator

        cfg = ExperimentConfig(
            scheme="tcn", scheduler="dwrr", topology="leafspine",
            n_leaf=2, n_spine=2, hosts_per_leaf=2,
            link_rate_bps=10 * GBPS, base_rtt_ns=85_200,
        )
        sim = Simulator()
        topo = _build_topology(sim, cfg)
        thresholds = set()
        for sw in list(topo.leaves) + list(topo.spines):
            for port in sw.ports:
                thresholds.add(port.aqm.threshold_ns)
        assert len(thresholds) == 1
