"""The discrete-event engine: ordering, cancellation, run bounds."""

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import Simulator


class TestScheduling:
    def test_runs_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(30, lambda: fired.append(30))
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(20, lambda: fired.append(20))
        sim.run()
        assert fired == [10, 20, 30]

    def test_ties_fire_in_scheduling_order(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(100, lambda i=i: fired.append(i))
        sim.run()
        assert fired == list(range(10))

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(42, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [42]
        assert sim.now == 42

    def test_schedule_during_run(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.schedule(5, lambda: fired.append("second"))

        sim.schedule(10, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 15

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            sim.schedule(-1, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.run()
        with pytest.raises(ValueError):
            sim.schedule_at(5, lambda: None)

    def test_schedule_at_now_is_allowed(self):
        sim = Simulator()
        fired = []
        sim.schedule(0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [0]

    def test_schedule_call_passes_argument(self):
        sim = Simulator()
        fired = []
        sim.schedule_call(10, fired.append, "a")
        sim.schedule_call(5, fired.append, "b")
        sim.run()
        assert fired == ["b", "a"]

    def test_schedule_call_interleaves_with_schedule(self):
        # 3-tuple and 4-tuple heap entries coexist; seq breaks all ties,
        # so heapq never compares the callable slots.
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append("plain"))
        sim.schedule_call(10, fired.append, "arg")
        sim.schedule(10, lambda: fired.append("plain2"))
        sim.run()
        assert fired == ["plain", "arg", "plain2"]

    def test_schedule_many_preserves_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_many(
            [
                (30, lambda: fired.append(30)),
                (10, lambda: fired.append(10)),
                (20, lambda: fired.append(20)),
            ]
        )
        sim.run()
        assert fired == [10, 20, 30]

    def test_schedule_many_ties_fire_in_list_order(self):
        sim = Simulator()
        fired = []
        sim.schedule_many([(5, lambda i=i: fired.append(i)) for i in range(8)])
        sim.run()
        assert fired == list(range(8))


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule(10, lambda: fired.append(1))
        sim.cancel(ev)
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        ev = sim.schedule(10, lambda: None)
        sim.cancel(ev)
        sim.cancel(ev)
        assert sim.run() == 0

    def test_cancel_one_of_many(self):
        sim = Simulator()
        fired = []
        evs = [sim.schedule(i, lambda i=i: fired.append(i)) for i in range(5)]
        sim.cancel(evs[2])
        sim.run()
        assert fired == [0, 1, 3, 4]

    def test_cancel_schedule_call_handle(self):
        sim = Simulator()
        fired = []
        ev = sim.schedule_call(10, fired.append, 1)
        sim.schedule_call(20, fired.append, 2)
        sim.cancel(ev)
        sim.run()
        assert fired == [2]

    def test_cancelled_events_not_counted_as_executed(self):
        sim = Simulator()
        keep = sim.schedule(10, lambda: None)
        drop = sim.schedule(20, lambda: None)
        sim.cancel(drop)
        assert sim.run() == 1
        assert sim.events_executed == 1
        assert keep  # the handle itself is a plain truthy tuple


class TestRunBounds:
    def test_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(100, lambda: fired.append(100))
        sim.run(until=50)
        assert fired == [10]
        assert sim.now == 50  # clock advanced to the bound

    def test_until_resumes(self):
        sim = Simulator()
        fired = []
        sim.schedule(10, lambda: fired.append(10))
        sim.schedule(100, lambda: fired.append(100))
        sim.run(until=50)
        sim.run()
        assert fired == [10, 100]

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(50, lambda: fired.append(50))
        sim.run(until=50)
        assert fired == [50]

    def test_max_events(self):
        sim = Simulator()
        fired = []
        for i in range(10):
            sim.schedule(i, lambda i=i: fired.append(i))
        executed = sim.run(max_events=3)
        assert executed == 3
        assert fired == [0, 1, 2]

    def test_returns_executed_count(self):
        sim = Simulator()
        for i in range(7):
            sim.schedule(i, lambda: None)
        assert sim.run() == 7

    def test_max_events_with_until_does_not_jump_clock(self):
        """Regression: stopping on max_events with events still pending
        before `until` must not force-advance the clock past them."""
        sim = Simulator()
        fired = []
        for t in (10, 20, 30):
            sim.schedule(t, lambda t=t: fired.append(t))
        assert sim.run(until=100, max_events=1) == 1
        assert sim.now == 10  # NOT 100: events at 20/30 are still due
        sim.run()
        assert fired == [10, 20, 30]
        assert sim.now == 30

    def test_max_events_then_step_never_goes_backwards(self):
        sim = Simulator()
        times = []
        for t in (10, 20):
            sim.schedule(t, lambda: times.append(sim.now))
        sim.run(until=100, max_events=1)
        before = sim.now
        sim.step()
        assert sim.now >= before
        assert times == sorted(times)

    def test_until_advances_when_remaining_events_are_later(self):
        # stopped on max_events, but every remaining event is past `until`:
        # advancing the clock to the bound is still correct
        sim = Simulator()
        sim.schedule(10, lambda: None)
        sim.schedule(500, lambda: None)
        sim.run(until=100, max_events=1)
        assert sim.now == 100

    def test_until_advances_past_cancelled_pending_event(self):
        sim = Simulator()
        sim.schedule(10, lambda: None)
        ev = sim.schedule(50, lambda: None)
        sim.cancel(ev)
        sim.run(until=100, max_events=1)
        assert sim.now == 100


class TestStepAndPeek:
    def test_step_executes_one(self):
        sim = Simulator()
        fired = []
        sim.schedule(1, lambda: fired.append(1))
        sim.schedule(2, lambda: fired.append(2))
        assert sim.step() is True
        assert fired == [1]

    def test_step_on_empty_returns_false(self):
        assert Simulator().step() is False

    def test_peek_skips_cancelled(self):
        sim = Simulator()
        ev = sim.schedule(5, lambda: None)
        sim.schedule(9, lambda: None)
        sim.cancel(ev)
        assert sim.peek_time() == 9

    def test_peek_empty_is_none(self):
        assert Simulator().peek_time() is None


class TestPendingAndIdle:
    def test_pending_counts_live_events(self):
        sim = Simulator()
        for i in range(4):
            sim.schedule(i + 1, lambda: None)
        assert sim.pending == 4

    def test_pending_excludes_cancelled(self):
        """Regression: lazily-cancelled events must not count as work."""
        sim = Simulator()
        evs = [sim.schedule(i + 1, lambda: None) for i in range(5)]
        sim.cancel(evs[0])
        sim.cancel(evs[3])
        assert sim.pending == 3

    def test_pending_zero_when_all_cancelled(self):
        sim = Simulator()
        evs = [sim.schedule(i + 1, lambda: None) for i in range(3)]
        for ev in evs:
            sim.cancel(ev)
        assert sim.pending == 0
        assert sim.idle

    def test_pending_is_side_effect_free(self):
        """`pending` is a pure observer: reading it must not reorder or
        compact the heap, so interleaved reads never perturb execution."""
        sim = Simulator()
        fired = []
        evs = [sim.schedule(i + 1, lambda i=i: fired.append(i)) for i in range(6)]
        sim.cancel(evs[0])
        sim.cancel(evs[2])
        heap = sim._heap
        if heap is None:  # sanitizer wrapper active (REPRO_SANITIZE=1)
            heap = sim._equeue.inner.entries
        before = list(heap)
        assert sim.pending == 4
        assert sim.pending == 4  # repeated reads agree
        assert list(heap) == before  # heap untouched
        sim.run()
        assert fired == [1, 3, 4, 5]

    def test_idle_lifecycle(self):
        sim = Simulator()
        assert sim.idle
        ev = sim.schedule(5, lambda: None)
        assert not sim.idle
        sim.cancel(ev)
        assert sim.idle
        sim.schedule(7, lambda: None)
        sim.run()
        assert sim.idle


class TestCounters:
    def test_heap_hwm_tracks_peak_outstanding(self):
        sim = Simulator()
        for i in range(5):
            sim.schedule(i + 1, lambda: None)
        assert sim.heap_hwm == 5
        sim.run()
        assert sim.heap_hwm == 5  # high-water mark, not current size

    def test_heap_hwm_counts_schedule_many_batch(self):
        sim = Simulator()
        sim.schedule_many([(i + 1, lambda: None) for i in range(7)])
        assert sim.heap_hwm == 7

    def test_events_executed_accumulates_across_runs(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()
        sim.schedule(1, lambda: None)
        sim.run()
        assert sim.events_executed == 2


@given(st.lists(st.integers(min_value=0, max_value=10_000), min_size=1, max_size=200))
def test_property_events_fire_in_nondecreasing_time(delays):
    """Whatever the scheduling order, execution times never go backwards."""
    sim = Simulator()
    times = []
    for d in delays:
        sim.schedule(d, lambda: times.append(sim.now))
    sim.run()
    assert times == sorted(times)
    assert len(times) == len(delays)


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=1_000), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_property_cancelled_subset_never_fires(plan):
    """Exactly the non-cancelled events fire, in time order."""
    sim = Simulator()
    fired = []
    expected = []
    for i, (delay, cancelled) in enumerate(plan):
        ev = sim.schedule(delay, lambda i=i: fired.append(i))
        if cancelled:
            sim.cancel(ev)
        else:
            expected.append((delay, i))
    sim.run()
    expected.sort()
    assert fired == [i for _, i in expected]
