"""Cross-module pragma fixture: the use-after-release sink.

``surrender`` releases its argument inside ``helper.py``; the use below
is a SIM015 anchored HERE (the sink), which is therefore the one
documented suppression site for this cross-module finding.
"""

from repro.net.packet import make_data

from repro.transport.helper import surrender


def peek_after_surrender(now):
    pkt = make_data(1, 2, 3, 0, 1000, True, 0, now)
    surrender(pkt)
    return pkt.seq
