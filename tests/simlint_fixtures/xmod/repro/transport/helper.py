"""Cross-module pragma fixture: the releasing helper (the *source*).

This file is deliberately clean on its own — releasing a parameter is a
legitimate ownership transfer.  The violation only exists in
``caller.py``, which keeps using the frame afterwards; simlint anchors
that finding at the caller's use line, so a pragma *here* must not
suppress it (see TestCrossModulePragmas in tests/test_simlint.py).
"""

from repro.net.packet import release


def surrender(frame):
    release(frame)
