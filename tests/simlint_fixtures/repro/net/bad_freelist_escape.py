"""SIM015: frames escaping the freelist ownership discipline across paths."""

from repro.net.packet import make_ack, make_data, release


def helper_release(frame):
    # the release itself is fine: SIM015 anchors at the *caller's* misuse
    release(frame)


def double_release_branch(pkt, flag):
    if flag:
        release(pkt)
    release(pkt)  # expect: SIM015


def early_out_is_clean(pkt, bad):
    if bad:
        release(pkt)
        return None
    return pkt.seq  # near miss: the releasing path already returned


def release_via_helper_then_use(now):
    pkt = make_data(1, 2, 3, 0, 1000, True, 0, now)
    helper_release(pkt)
    return pkt.seq  # expect: SIM015


def store_then_release(buf, data, now):
    ack = make_ack(data, 1, False, now)
    buf.append(ack)
    release(ack)  # expect: SIM015


def store_without_release_is_ownership_transfer(buf, data, now):
    ack = make_ack(data, 2, False, now)
    buf.append(ack)  # near miss: the container now owns the frame
    return ack.seq
