"""SIM012 fixture: multiprocessing smuggled into packet-layer code."""
import multiprocessing  # expect: SIM012
from multiprocessing import Pool  # expect: SIM012
from multiprocessing.pool import ThreadPool  # expect: SIM012


def parallel_checksums(frames):
    with multiprocessing.Pool() as pool:
        return pool.map(sum, frames)
