"""SIM003: iteration over sets (PYTHONHASHSEED-ordered for id-hashed keys)."""


def drain(ports):
    pending = {p for p in ports if p.busy}
    for port in pending:  # expect: SIM003
        port.flush()
    for port in set(ports):  # expect: SIM003
        port.close()
    sizes = [p.mtu for p in {ports[0], ports[1]}]  # expect: SIM003
    for port in sorted(pending, key=lambda p: p.name):  # fine: ordered
        port.reset()
    return sizes
