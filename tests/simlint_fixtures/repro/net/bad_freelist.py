"""SIM010: freelist discipline — leaked frames and use-after-release."""

from repro.net.packet import make_data, release


def leak(flow, host):
    make_data(flow.id, flow.src, flow.dst, 0, 1000)  # expect: SIM010


def use_after_release(pkt, stats):
    release(pkt)
    stats.last_seq = pkt.seq  # expect: SIM010


def reassigned_is_fine(pkt, fresh, stats):
    release(pkt)
    pkt = fresh
    stats.last_seq = pkt.seq  # fine: name re-bound after release
