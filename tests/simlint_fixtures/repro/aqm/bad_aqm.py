"""SIM007: AQMs that cannot mark, or shadow the elided no-op hooks."""

from repro.aqm.base import Aqm


class NeverMarks(Aqm):  # expect: SIM007
    """Overrides neither hook: it can never mark anything."""

    __slots__ = ("threshold",)

    def __init__(self, threshold):
        self.threshold = threshold


class ShadowingAqm(Aqm):
    """The trivial on_enqueue re-adds a per-packet call the port had elided."""

    __slots__ = ()

    def on_enqueue(self, port, queue, pkt, now):  # expect: SIM007
        return False

    def on_dequeue(self, port, queue, pkt, now):
        return now - pkt.enq_ts > 1000
