"""SIM002: draws on the process-global random stream."""

import random
from random import Random


def next_arrival(rate):
    gap = random.expovariate(rate)  # expect: SIM002
    rng = random.Random()  # expect: SIM002
    other = Random()  # expect: SIM002
    seeded = Random(42)  # fine: explicitly seeded
    return gap, rng, other, seeded
