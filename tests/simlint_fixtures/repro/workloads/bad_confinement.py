"""SIM017: confined subsystem APIs smuggled outside their owning packages."""

import gc  # expect: SIM017
import repro.net.boundary as boundary

from repro.net.packet import freelist_stats
from repro.sim.equeue.heap import heappush  # expect: SIM017


def pause_collector():
    # near miss for the call pass: the `import gc` above already reported,
    # so the acquisition path fires exactly once per module
    gc.disable()


def rank(heap, item):
    heappush(heap, item)  # same: reported at the from-import line


def smuggle(fields):
    # the import line was innocent (module alias, not a confined name);
    # the call graph still resolves this to repro.net.boundary.import_packet
    return boundary.import_packet(fields)  # expect: SIM017


def audit():
    # near miss: freelist_stats is observability, not a confined API
    return freelist_stats()
