"""SIM004: mutable default arguments shared across calls."""


def build_thresholds(values=[]):  # expect: SIM004
    values.append(1)
    return values


def make_table(mapping={}, names=None):  # expect: SIM004
    return mapping, names


def from_ctor(bank=list()):  # expect: SIM004
    return bank
