"""SIM011 fixture: heapq smuggled into scheduler code."""
import heapq  # expect: SIM011
from heapq import heappush  # expect: SIM011


def stash(pending, entry):
    heappush(pending, entry)
    return heapq.heappop(pending)
