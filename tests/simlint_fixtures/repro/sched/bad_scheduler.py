"""SIM005 + SIM007: slot-less hot-path class, incomplete abstract surface."""

from repro.sched.base import Scheduler


class HalfScheduler(Scheduler):  # expect: SIM005,SIM007
    """Implements enqueue but forgets dequeue, and declares no __slots__."""

    def enqueue(self, pkt, qidx, now):
        self._account_enqueue(pkt, qidx)


class SlottedButLazy(Scheduler):  # expect: SIM007
    """Slots are fine; the missing dequeue is not."""

    __slots__ = ()

    def enqueue(self, pkt, qidx, now):
        self._account_enqueue(pkt, qidx)
