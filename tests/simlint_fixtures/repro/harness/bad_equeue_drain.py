"""SIM013 fixture: event-queue draining smuggled outside the engine."""


def fast_forward(sim):
    eq = sim._equeue
    while True:
        entry = eq.pop()  # expect: SIM013
        if entry is None:
            break


def drain_now(sim, handler):
    run = sim._equeue.drain_run(limit=64)  # expect: SIM013
    for entry in run:
        handler(entry)


def fine_pops(pending, free):
    # ordinary container pops must stay silent
    item = pending.pop()
    frame = free.pop()
    return item, frame
