"""SIM016: scheduled callbacks capturing loop state or .now snapshots."""


class Poller:
    def __init__(self, sim, queues):
        self.sim = sim
        self.queues = queues
        self.mark_ts = 0
        self.seen_ts = 0

    def arm_all(self):
        for q in self.queues:
            self.sim.schedule(10, lambda: q.tick())  # expect: SIM016

    def arm_all_bound(self):
        for q in self.queues:
            # near miss: default-binding freezes the current element
            self.sim.schedule(10, lambda q=q: q.tick())

    def snapshot_and_arm(self):
        self.mark_ts = self.sim.now
        self.sim.schedule(50, self._fire)  # expect: SIM016

    def _fire(self):
        return self.mark_ts

    def snapshot_only(self):
        self.seen_ts = self.sim.now
        # near miss: _tick re-reads the clock at fire time
        self.sim.schedule(50, self._tick)

    def _tick(self):
        return self.sim.now
