"""SIM001: wall-clock reads inside a sim-affecting package."""

import time
from datetime import datetime
from time import perf_counter  # expect: SIM001


def tick(sim):
    sim.deadline = time.time() + 5.0  # expect: SIM001
    stamp = datetime.now()  # expect: SIM001
    return perf_counter(), stamp
