"""SIM018: fluid-solver discipline — freelist touches, scattered mutation."""

from repro.net.packet import make_data, release  # expect: SIM017, SIM018

EPOCH_NS = 1_000_000  # fine: name store, not fluid state


def forge_frame(flow):
    pkt = make_data(flow.id, flow.src, flow.dst, 0, 1000)  # expect: SIM018
    release(pkt)  # expect: SIM018
    return pkt


def rescale(link, factor):
    link.rate_bps = link.rate_bps * factor  # expect: SIM018
    link.shares[0] = 0.0  # fine: subscript store — the solver's work arrays


def on_rate_change(link, factor):
    link.rate_bps = link.rate_bps * factor  # fine: scheduled entry point


def _epoch_resolve(link):
    link.converged = True  # fine: epoch-boundary phase
