"""SIM014: cross-partition mutation bypassing the round-protocol handoff."""

from repro.sim.parallel.partition import PartitionSimulator


class BadCoordinator:
    def __init__(self, n, horizon):
        self.parts = {pid: PartitionSimulator(pid) for pid in range(n)}
        self.horizon = horizon

    def poke(self, dst, fn):
        self.parts[dst].schedule(10, fn)  # expect: SIM014

    def poison_clock(self, dst, t):
        self.parts[dst].now = t  # expect: SIM014

    def splice_outbox(self, dst, rec):
        self.parts[dst].outbox.append(rec)  # expect: SIM014

    def inject(self, dst, seq, fn, pkt):
        # near miss: the sanctioned handoff API stays silent
        self.parts[dst].insert_arrival(10, seq, fn, pkt)

    def drive(self):
        for p in self.parts.values():
            p.run(self.horizon)  # near miss: round-protocol surface

    def collect(self):
        reports = []
        for p in self.parts.values():
            reports.append(p.final())  # near miss: round-protocol surface
        return reports
