"""SIM006: callbacks capturing a stale `now` snapshot."""


def arm_timer(sim, port):
    now = sim.now
    sim.schedule(1000, lambda: port.expire(now))  # expect: SIM006

    def fire():
        port.mark_at(now)

    sim.schedule(2000, fire)  # expect: SIM006
    sim.schedule(3000, lambda: port.expire(sim.now))  # fine: re-reads .now
