"""SIM008: float equality against simulated time."""


def check(sim, pkt, rtt_ns):
    if sim.now == rtt_ns / 2:  # expect: SIM008
        return True
    if pkt.enq_ts == 1.5:  # expect: SIM008
        return True
    if sim.now == rtt_ns:  # fine: integer == integer
        return True
    return sim.now >= rtt_ns / 2  # fine: ordering, not equality
