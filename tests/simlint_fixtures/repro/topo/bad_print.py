"""SIM009: print() in library code."""


def build(sim, n):
    print(f"building topology with {n} hosts")  # expect: SIM009
    return [sim.host(i) for i in range(n)]
