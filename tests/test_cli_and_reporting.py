"""The CLI entry point, benchlib pooling, and report edge cases."""

import subprocess
import sys

import pytest

from benchmarks.benchlib import PooledResult, run_schemes_pooled
from repro.harness.config import ExperimentConfig
from repro.harness.report import format_fct_rows, format_table
from repro.harness.runner import run_experiment


class TestCli:
    def test_main_runs_and_reports(self):
        from repro.__main__ import main

        rc = main([
            "--scheme", "tcn", "--scheduler", "dwrr",
            "--flows", "12", "--load", "0.5", "--seed", "2",
        ])
        assert rc == 0

    def test_main_rejects_unknown_scheme(self):
        from repro.__main__ import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scheme", "nonsense"])

    def test_module_invocation(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "--flows", "10", "--load", "0.5"],
            capture_output=True, text=True, timeout=300,
        )
        assert result.returncode == 0
        assert "completed 10/10" in result.stdout

    def test_run_subcommand_is_equivalent_to_bare_flags(self, capsys):
        from repro.__main__ import main

        rc = main(["run", "--flows", "10", "--load", "0.5", "--seed", "2"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "completed 10/10" in out
        assert "profile:" in out and "ev/s" in out

    def test_run_with_trace_then_trace_subcommand(self, tmp_path, capsys):
        from repro.__main__ import main

        trace_path = str(tmp_path / "run.jsonl")
        rc = main([
            "run", "--flows", "10", "--load", "0.5", "--seed", "2",
            "--trace", trace_path, "--ports",
        ])
        assert rc == 0
        run_out = capsys.readouterr().out
        assert f"trace events to {trace_path}" in run_out
        assert "mark%" in run_out  # --ports breakdown table

        rc = main(["trace", trace_path])
        assert rc == 0
        trace_out = capsys.readouterr().out
        assert "per-queue lifecycle:" in trace_out
        assert "sojourn" in trace_out and "p99=" in trace_out

    def test_trace_subcommand_missing_file(self, capsys):
        from repro.__main__ import main

        assert main(["trace", "/nonexistent/trace.jsonl"]) == 2
        assert "error:" in capsys.readouterr().err


class TestPooledResult:
    def _runs(self):
        base = dict(scheme="tcn", scheduler="dwrr", workload="cache",
                    load=0.5, n_flows=10)
        return [
            run_experiment(ExperimentConfig(seed=s, **base)) for s in (1, 2)
        ]

    def test_pools_flows_across_seeds(self):
        runs = self._runs()
        pooled = PooledResult(runs)
        assert pooled.summary.n_flows == sum(r.completed for r in runs)
        assert pooled.completed == pooled.total == 20

    def test_counters_summed(self):
        runs = self._runs()
        pooled = PooledResult(runs)
        assert pooled.drops == sum(r.drops for r in runs)
        assert pooled.marks == sum(r.marks for r in runs)
        assert pooled.timeouts == sum(r.timeouts for r in runs)

    def test_run_schemes_pooled_shapes(self):
        out = run_schemes_pooled(
            ("tcn",), seeds=(1, 2), scheduler="dwrr", workload="cache",
            load=0.5, n_flows=8,
        )
        assert set(out) == {"tcn"}
        assert out["tcn"].summary.n_flows == 16


class TestReportEdgeCases:
    def test_fct_rows_without_tcn_baseline(self):
        res = run_experiment(ExperimentConfig(
            scheme="red_std", scheduler="dwrr", workload="cache",
            load=0.5, n_flows=8, seed=1,
        ))
        out = format_fct_rows({"red_std": res})
        assert "red_std" in out
        assert "-" in out  # normalization column empty without tcn

    def test_format_table_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out and len(out.splitlines()) == 2

    def test_missing_large_bin_renders_dash(self):
        res = run_experiment(ExperimentConfig(
            scheme="tcn", scheduler="dwrr", workload="cache",
            load=0.5, n_flows=8, seed=1,
        ))
        # cache flows are all < 10 MB: the large column must be "-"
        out = format_fct_rows({"tcn": res})
        assert res.summary.avg_large_ns is None
        row = [l for l in out.splitlines() if l.startswith("tcn")][0]
        assert "-" in row
