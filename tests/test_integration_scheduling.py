"""End-to-end scheduling-policy preservation — the paper's core claims.

* Fig. 1: per-port ECN/RED lets a many-flow service steal bandwidth from a
  single-flow service under DWRR; TCN does not.
* Fig. 5a: TCN preserves SP/WFQ (500/250/250 Mbps) exactly.
* MQ-ECN and TCN agree on round-robin schedulers.
"""

import pytest

from repro.aqm.mqecn import MqEcn
from repro.aqm.perport import PerPortRed
from repro.core.tcn import Tcn
from repro.metrics.timeseries import GoodputTracker
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sched.hybrid import SpWfqScheduler
from repro.sched.pifo import PifoScheduler, stfq_rank
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, MB, MBPS, SEC, USEC


def _two_service_run(aqm_factory, n_flows_svc2, sched_factory=None):
    """Fig. 1's setup: DWRR with 2 equal queues, 1 vs N DCTCP flows."""
    sim = Simulator()
    topo = StarTopology(
        sim, 3, GBPS,
        sched_factory=sched_factory
        or (lambda: DwrrScheduler(make_queues(2, quanta=[1500, 1500]))),
        aqm_factory=aqm_factory,
        buffer_bytes=192 * KB,
        link_delay_ns=62_500,
    )
    tracker = GoodputTracker()
    on_bytes = lambda f, b, t: tracker.record(f.service, b, t)  # noqa: E731
    flows = [Flow(1, 0, 2, 500 * MB, service=0)]
    flows += [
        Flow(2 + i, 1, 2, 500 * MB, service=1) for i in range(n_flows_svc2)
    ]
    for f in flows:
        Receiver(sim, topo.hosts[2], f, on_bytes=on_bytes)
        s = DctcpSender(sim, topo.hosts[f.src], f, init_cwnd=10)
        sim.schedule(0, s.start)
    sim.run(until=2 * SEC)
    return (
        tracker.goodput_bps(0, 1 * SEC, 2 * SEC),
        tracker.goodput_bps(1, 1 * SEC, 2 * SEC),
    )


class TestFig1PolicyViolation:
    def test_perport_red_violates_dwrr_with_many_flows(self):
        """Service 2 with 8 flows grabs well over its 50% share."""
        g1, g2 = _two_service_run(lambda: PerPortRed(30 * KB), 8)
        assert g2 > 0.6 * GBPS
        assert g1 < 0.35 * GBPS

    def test_perport_violation_grows_with_flow_count(self):
        _, g2_2 = _two_service_run(lambda: PerPortRed(30 * KB), 2)
        _, g2_8 = _two_service_run(lambda: PerPortRed(30 * KB), 8)
        assert g2_8 > g2_2

    def test_tcn_preserves_dwrr_fairness(self):
        g1, g2 = _two_service_run(lambda: Tcn(250 * USEC), 8)
        assert g1 == pytest.approx(g2, rel=0.05)
        assert g1 + g2 > 0.9 * GBPS

    def test_tcn_fairness_independent_of_flow_count(self):
        g1_a, _ = _two_service_run(lambda: Tcn(250 * USEC), 2)
        g1_b, _ = _two_service_run(lambda: Tcn(250 * USEC), 16)
        assert g1_a == pytest.approx(g1_b, rel=0.05)

    def test_mqecn_also_preserves_dwrr(self):
        g1, g2 = _two_service_run(lambda: MqEcn(250 * USEC), 8)
        assert g1 == pytest.approx(g2, rel=0.1)

    def test_tcn_preserves_pifo_stfq(self):
        """The scheduler MQ-ECN cannot touch: PIFO with an STFQ rank —
        TCN still preserves the 50/50 policy."""
        g1, g2 = _two_service_run(
            lambda: Tcn(250 * USEC),
            8,
            sched_factory=lambda: PifoScheduler(
                make_queues(2), rank_fn=stfq_rank
            ),
        )
        assert g1 == pytest.approx(g2, rel=0.07)


class TestFig5aSpWfq:
    def _run(self):
        sim = Simulator()
        topo = StarTopology(
            sim, 4, GBPS,
            sched_factory=lambda: SpWfqScheduler(
                make_queues(3, quanta=[1500] * 3), n_high=1
            ),
            aqm_factory=lambda: Tcn(250 * USEC),
            buffer_bytes=96 * KB,
            link_delay_ns=62_500,
        )
        tracker = GoodputTracker()
        on_bytes = lambda f, b, t: tracker.record(f.service, b, t)  # noqa: E731
        fid = 0
        for src, svc, n in ((0, 0, 1), (1, 1, 1), (2, 2, 4)):
            for _ in range(n):
                fid += 1
                f = Flow(fid, src, 3, 2000 * MB, service=svc)
                Receiver(sim, topo.hosts[3], f, on_bytes=on_bytes)
                s = DctcpSender(
                    sim, topo.hosts[src], f, init_cwnd=10,
                    app_rate_bps=500 * MBPS if svc == 0 else None,
                )
                sim.schedule(svc * SEC, s.start)
        sim.run(until=4 * SEC)
        return [tracker.goodput_bps(s, 3 * SEC, 4 * SEC) for s in range(3)]

    def test_policy_500_250_250(self):
        g = self._run()
        assert g[0] == pytest.approx(500 * MBPS, rel=0.05)
        # queues 2 and 3 split the remainder evenly despite 1-vs-4 flows
        assert g[1] == pytest.approx(g[2], rel=0.08)
        assert g[1] + g[2] == pytest.approx(473 * MBPS, rel=0.10)
