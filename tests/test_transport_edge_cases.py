"""Sender/receiver edge cases beyond the mainline paths."""

import pytest

from repro.net.host import Host
from repro.net.nic import make_nic
from repro.net.packet import Packet, PacketKind
from repro.sim.engine import Simulator
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.units import GBPS, MB, MSS


def _sender(size=1 * MB, cwnd=10.0):
    sim = Simulator()
    nic = make_nic(sim, GBPS, link=None)
    host = Host(sim, 0, nic)
    flow = Flow(1, 0, 1, size)
    sender = DctcpSender(sim, host, flow, init_cwnd=cwnd)
    sender.start()
    return sim, sender


def _ack(sender, ack, ece=False):
    pkt = Packet(1, 1, 0, PacketKind.ACK, seq=ack)
    pkt.ece = ece
    sender.on_ack(pkt)


class TestAckEdgeCases:
    def test_stale_ack_below_una_ignored(self):
        sim, s = _sender()
        _ack(s, 5)
        before = (s.cwnd, s.snd_una, s.dupacks)
        _ack(s, 3)  # stale reordering
        assert (s.cwnd, s.snd_una, s.dupacks) == before

    def test_acks_after_done_ignored(self):
        sim, s = _sender(size=2 * MSS)
        _ack(s, 2)
        assert s.done
        _ack(s, 2)  # stray ACK post-completion: no crash, no state change
        assert s.done

    def test_completion_cancels_rto(self):
        sim, s = _sender(size=2 * MSS)
        _ack(s, 2)
        # no timer left: the simulation drains without firing a timeout
        sim.run()
        assert s.stats.timeouts == 0

    def test_cumulative_ack_jumps_multiple_segments(self):
        sim, s = _sender(cwnd=20)
        _ack(s, 7)
        assert s.snd_una == 7
        # slow start: +7 for 7 newly acked segments
        assert s.cwnd == pytest.approx(27.0)

    def test_dupacks_below_three_do_not_retransmit(self):
        sim, s = _sender(cwnd=10)
        _ack(s, 2)
        _ack(s, 2)
        _ack(s, 2)  # 2 dupacks so far
        assert s.stats.fast_retransmits == 0
        _ack(s, 2)  # third dupack
        assert s.stats.fast_retransmits == 1

    def test_no_second_fast_retransmit_in_same_recovery(self):
        sim, s = _sender(cwnd=10)
        for _ in range(5):
            _ack(s, 1)
        assert s.stats.fast_retransmits == 1


class TestFlowEdgeCases:
    def test_last_segment_payload(self):
        flow = Flow(1, 0, 1, MSS + 100)
        assert flow.npkts == 2
        assert flow.payload_of(0) == MSS
        assert flow.payload_of(1) == 100

    def test_exact_multiple(self):
        flow = Flow(1, 0, 1, 3 * MSS)
        assert flow.npkts == 3
        assert flow.payload_of(2) == MSS

    def test_one_byte_flow(self):
        flow = Flow(1, 0, 1, 1)
        assert flow.npkts == 1
        assert flow.payload_of(0) == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            Flow(1, 0, 1, 0)
        with pytest.raises(ValueError):
            Flow(1, 2, 2, 100)


class TestSwitchEdgeCases:
    def test_unrouted_destination_raises(self):
        from repro.net.switch import Switch
        from tests.helpers import data_pkt

        sim = Simulator()
        sw = Switch(sim)
        with pytest.raises(LookupError, match="no route"):
            sw.receive(data_pkt(dst=42))
