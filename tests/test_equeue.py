"""The pluggable event-queue backends are interchangeable, bit for bit.

Three layers of evidence, from the structure up to the paper's pinned
experiments:

1. raw-backend fuzz — randomized push/pop/peek/cancel sequences against a
   sorted-list reference model, including the clustered/far-future delay
   mixes that exercise the ladder's resize/migration and the wheel's
   cascades;
2. Simulator-level fuzz — re-entrant scheduling (callbacks that schedule
   and cancel more work) must execute the identical event sequence on
   every backend;
3. end-to-end — both pinned golden configs produce byte-identical trace
   and FCT digests on all three backends (the heap's digests are the
   SHA-256 pins in test_trace_determinism.py, so equality here chains all
   backends to the committed goldens).
"""

import hashlib
import io
import json
import random

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.runner import run_experiment
from repro.obs import Tracer
from repro.sim.engine import Simulator
from repro.sim.equeue import BACKENDS, make_equeue
from repro.sim.equeue.ladder import LadderEventQueue
from repro.sim.equeue.wheel import TimerWheelEventQueue

ALL = sorted(BACKENDS)


def _backend_name(recorded):
    """Strip the sanitizer wrapper so backend-name pins hold under
    REPRO_SANITIZE=1 (the profile then records e.g. "sanitize(heap)")."""
    if recorded.startswith("sanitize(") and recorded.endswith(")"):
        return recorded[len("sanitize(") : -1]
    return recorded


# -- layer 1: raw backends against a reference model ----------------------


class _RefModel:
    """Sorted list + lazy-cancel set: the minimal correct queue."""

    def __init__(self):
        self.entries = []
        self.cancelled = set()

    def push(self, entry):
        self.entries.append(entry)
        self.entries.sort()

    def cancel(self, entry, physical):
        if physical:
            self.entries.remove(entry)
        else:
            self.cancelled.add(entry[1])

    def pop_live(self):
        while self.entries:
            entry = self.entries.pop(0)
            if entry[1] in self.cancelled:
                self.cancelled.discard(entry[1])
                continue
            return entry
        return None


def _delay_mixes():
    return {
        "clustered": lambda rng: rng.randrange(0, 2_000),
        "bimodal": lambda rng: (
            rng.randrange(0, 500)
            if rng.random() < 0.8
            else rng.randrange(100_000, 50_000_000)
        ),
        "far": lambda rng: rng.randrange(1_000_000, 10_000_000_000),
    }


@pytest.mark.parametrize("backend", ALL)
@pytest.mark.parametrize("mix", sorted(_delay_mixes()))
@pytest.mark.parametrize("seed", [1, 7])
def test_fuzz_backend_matches_reference_model(backend, mix, seed):
    rng = random.Random(seed)
    delay = _delay_mixes()[mix]
    eq = make_equeue(backend)
    cancelled = set()
    eq.attach(cancelled)
    ref = _RefModel()
    now, seq = 0, 0
    live = []
    for _ in range(4000):
        op = rng.random()
        if op < 0.55 or not ref.entries:
            seq += 1
            entry = (now + delay(rng), seq, None)
            eq.push(entry)
            ref.push(entry)
            live.append(entry)
        elif op < 0.70 and live:
            victim = live.pop(rng.randrange(len(live)))
            if victim[1] not in ref.cancelled:
                physical = eq.cancel(victim)
                ref.cancel(victim, physical)
                if not physical:
                    cancelled.add(victim[1])
        else:
            expect = ref.pop_live()
            got = eq.pop()
            while got is not None and got[1] in cancelled:
                cancelled.discard(got[1])
                got = eq.pop()
            assert got == expect
            if expect is not None:
                now = expect[0]
                if expect in live:
                    live.remove(expect)
        # exact-length equality would be too strict: the wheel cancels
        # physically and the ladder purges far-heap tombstones, both of
        # which also clean the shared cancelled set.  The invariant that
        # always holds: backend size == live entries + pending tombstones.
        live_ref = len(ref.entries) - len(ref.cancelled)
        assert len(eq) == live_ref + len(cancelled)
    # drain: the full remaining order must match
    while True:
        expect = ref.pop_live()
        got = eq.pop()
        while got is not None and got[1] in cancelled:
            cancelled.discard(got[1])
            got = eq.pop()
        assert got == expect
        if expect is None:
            break


@pytest.mark.parametrize("backend", ALL)
def test_peek_is_nondestructive_and_matches_pop(backend):
    eq = make_equeue(backend)
    eq.attach(set())
    rng = random.Random(3)
    for seq in range(200):
        eq.push((rng.randrange(0, 1_000_000), seq, None))
    while True:
        head = eq.peek()
        assert eq.peek() == head
        assert eq.pop() == head
        if head is None:
            break


# -- layer 2: Simulator-level re-entrant equivalence -----------------------


def _run_reentrant(backend, seed):
    """A self-scheduling workload: every callback logs and spawns more."""
    sim = Simulator(equeue=backend)
    rng = random.Random(seed)
    log = []
    pending = []

    def fire(tag):
        log.append((sim.now, tag))
        for _ in range(rng.randrange(0, 3)):
            tag2 = len(log) * 1000 + rng.randrange(100)
            delay = rng.choice((0, rng.randrange(1, 300), rng.randrange(1, 10_000_000)))
            pending.append(sim.schedule_call(delay, fire, tag2))
        if pending and rng.random() < 0.3:
            sim.cancel(pending.pop(rng.randrange(len(pending))))

    for tag in range(40):
        pending.append(sim.schedule_call(rng.randrange(0, 5_000), fire, tag))
    sim.run(max_events=6000)
    return log, sim.now, sim.events_executed


@pytest.mark.parametrize("seed", [11, 23])
def test_reentrant_schedules_execute_identically_on_all_backends(seed):
    runs = {b: _run_reentrant(b, seed) for b in ALL}
    reference = runs["heap"]
    assert reference[0], "workload generated no events"
    for backend, run in runs.items():
        assert run == reference, f"{backend} diverged from heap"


# -- layer 3: end-to-end golden digests ------------------------------------

# the single source of truth for the pinned configs and their digests
from tests.test_trace_determinism import _GOLDEN  # noqa: E402


def _digests(config, backend):
    tracer = Tracer()
    result = run_experiment(
        ExperimentConfig(equeue=backend, **config), tracer=tracer
    )
    buf = io.StringIO()
    tracer.export_jsonl(buf)
    trace_sha = hashlib.sha256(buf.getvalue().encode()).hexdigest()
    fcts = [f.fct_ns for f in result.flows]
    fct_sha = hashlib.sha256(json.dumps(fcts).encode()).hexdigest()
    return trace_sha, fct_sha, result.profile["equeue"]


@pytest.mark.parametrize("name", sorted(_GOLDEN))
def test_golden_digests_identical_across_backends(name):
    golden = _GOLDEN[name]
    results = {b: _digests(golden["config"], b) for b in ALL}
    for backend, (trace_sha, fct_sha, recorded) in results.items():
        assert _backend_name(recorded) == backend
        # every backend must land on the committed pins — not just agree
        # with each other
        assert trace_sha == golden["trace_sha256"], (
            f"{backend} trace digest diverges from the pin on {name}"
        )
        assert fct_sha == golden["fct_sha256"], (
            f"{backend} FCT digest diverges from the pin on {name}"
        )


# -- backend internals ------------------------------------------------------


class TestLadderInternals:
    def test_resize_adapts_width_and_preserves_order(self):
        lad = LadderEventQueue(shift=20)
        lad.attach(set())
        # dense same-bucket bursts: long consumed runs force narrowing
        seq = 0
        out = []
        for burst in range(40):
            for _ in range(600):
                seq += 1
                lad.push((burst * 2_000_000 + seq % 1000, seq, None))
            for _ in range(600):
                out.append(lad.pop())
        assert lad.stats()["resizes"] >= 1
        assert lad.stats()["width_ns"] < (1 << 20)
        assert out == sorted(out)
        assert lad.pop() is None

    def test_far_heap_migrates_into_ring(self):
        lad = LadderEventQueue(shift=4, nbuckets=16)
        lad.attach(set())
        horizon = 16 << 4
        entries = [(i * horizon * 2, i, None) for i in range(1, 50)]
        for e in entries:
            lad.push(e)
        assert lad.stats()["far_pushes"] > 0
        assert [lad.pop() for _ in entries] == entries
        assert lad.stats()["migrated"] > 0

    def test_far_heap_purges_cancelled_tombstones(self):
        cancelled = set()
        lad = LadderEventQueue(shift=2, nbuckets=4)
        lad.attach(cancelled)
        n = 6000  # past the purge floor of 4096
        entries = [(10**9 + i, i, None) for i in range(n)]
        for e in entries:
            lad.push(e)
            cancelled.add(e[1])  # engine-style lazy cancel
        # the purge triggers on the far heap doubling past the floor
        assert lad.stats()["purges"] >= 1
        assert lad.stats()["purged_tombstones"] > 0
        assert len(lad) < n
        # purged seqs are consumed from the cancelled set exactly like lazy
        # pops; entries pushed after the last purge threshold remain pending
        assert len(cancelled) == len(lad)
        assert len(cancelled) < n

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            LadderEventQueue(nbuckets=100)
        with pytest.raises(ValueError):
            LadderEventQueue(shift=99)


class TestWheelInternals:
    def test_cancel_is_physical(self):
        wheel = TimerWheelEventQueue()
        wheel.attach(set())
        assert wheel.physical_cancel
        keep = (5_000_000, 1, None)
        drop = (5_000_000, 2, None)
        wheel.push(keep)
        wheel.push(drop)
        assert wheel.cancel(drop)
        assert wheel.stats()["physical_cancels"] == 1
        assert len(wheel) == 1
        assert wheel.pop() == keep
        assert wheel.pop() is None

    def test_cancel_in_bottom_run_falls_back_to_lazy(self):
        wheel = TimerWheelEventQueue()
        wheel.attach(set())
        near = (1, 1, None)
        wheel.push(near)
        assert wheel.peek() == near  # drained into the bottom run
        assert not wheel.cancel(near)

    def test_long_deadlines_cascade_down_in_order(self):
        wheel = TimerWheelEventQueue(g0_shift=2, levels=4)
        wheel.attach(set())
        entries = [(1 << (2 * i + 3), i, None) for i in range(12)]
        for e in reversed(entries):
            wheel.push(e)
        assert [wheel.pop() for _ in entries] == entries
        assert wheel.stats()["cascades"] > 0

    def test_validates_construction(self):
        with pytest.raises(ValueError):
            TimerWheelEventQueue(g0_shift=99)
        with pytest.raises(ValueError):
            TimerWheelEventQueue(levels=1)


class TestEngineIntegration:
    @pytest.mark.parametrize("backend", ALL)
    def test_profile_records_backend_and_stats(self, backend):
        result = run_experiment(
            ExperimentConfig(
                scheme="tcn", scheduler="dwrr", workload="cache",
                load=0.5, n_flows=3, seed=1, equeue=backend,
            )
        )
        assert _backend_name(result.profile["equeue"]) == backend
        assert isinstance(result.profile["equeue_stats"], dict)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            Simulator(equeue="nope")
        with pytest.raises(ValueError):
            ExperimentConfig(
                scheme="tcn", scheduler="dwrr", workload="cache",
                load=0.5, n_flows=3, seed=1, equeue="nope",
            ).validate()

    def test_auto_resolves_to_a_real_backend(self):
        sim = Simulator(equeue="auto")
        assert _backend_name(sim.equeue_name) in BACKENDS
