"""PIFO programmable scheduler and its rank programs."""

from repro.sched.base import make_queues
from repro.sched.pifo import PifoScheduler, lstf_rank, stfq_rank
from tests.helpers import data_pkt, drain_in_order, fill


class TestRankOrdering:
    def test_dequeues_in_rank_order(self):
        def rank_by_seq(pkt, queue, now, state):
            return -pkt.seq  # highest seq first

        s = PifoScheduler(make_queues(1), rank_fn=rank_by_seq)
        for i in range(5):
            s.enqueue(data_pkt(seq=i), 0, 0)
        assert [p.seq for p in drain_in_order(s)] == [4, 3, 2, 1, 0]

    def test_rank_ties_fifo(self):
        s = PifoScheduler(make_queues(1), rank_fn=lambda *a: 0.0)
        for i in range(5):
            s.enqueue(data_pkt(seq=i), 0, 0)
        assert [p.seq for p in drain_in_order(s)] == [0, 1, 2, 3, 4]


class TestStfqRank:
    def test_emulates_fair_queueing(self):
        s = PifoScheduler(make_queues(2), rank_fn=stfq_rank)
        fill(s, 0, 50)
        fill(s, 1, 50)
        served = {0: 0, 1: 0}
        for _ in range(40):
            pkt, queue = s.dequeue(0)
            served[queue.index] += pkt.wire_size
        assert abs(served[0] - served[1]) <= 2 * 1500

    def test_weighted(self):
        s = PifoScheduler(make_queues(2, weights=[3.0, 1.0]), rank_fn=stfq_rank)
        fill(s, 0, 120)
        fill(s, 1, 120)
        served = {0: 0, 1: 0}
        for _ in range(100):
            pkt, queue = s.dequeue(0)
            served[queue.index] += pkt.wire_size
        assert 2.3 <= served[0] / served[1] <= 3.7

    def test_state_resets_on_empty(self):
        s = PifoScheduler(make_queues(2), rank_fn=stfq_rank)
        fill(s, 0, 10)
        drain_in_order(s)
        assert s.rank_state.get("vtime", 0.0) == 0.0


class TestLstfRank:
    def test_least_slack_first(self):
        s = PifoScheduler(make_queues(2), rank_fn=lstf_rank)
        s.rank_state["slack_ns"] = {0: 1_000_000, 1: 10_000}
        loose = data_pkt(dscp=0, seq=0)
        loose.ts = 0
        tight = data_pkt(dscp=1, seq=1)
        tight.ts = 0
        s.enqueue(loose, 0, now=0)
        s.enqueue(tight, 1, now=0)
        pkt, _ = s.dequeue(0)
        assert pkt.seq == 1  # tight slack served first

    def test_unknown_class_yields(self):
        s = PifoScheduler(make_queues(2), rank_fn=lstf_rank)
        s.rank_state["slack_ns"] = {1: 10_000}
        unknown = data_pkt(dscp=0, seq=0)
        known = data_pkt(dscp=1, seq=1)
        s.enqueue(unknown, 0, now=0)
        s.enqueue(known, 1, now=0)
        assert s.dequeue(0)[0].seq == 1


class TestAccounting:
    def test_logical_queue_bytes_tracked(self):
        s = PifoScheduler(make_queues(2), rank_fn=stfq_rank)
        fill(s, 0, 2)
        fill(s, 1, 1)
        assert s.queues[0].bytes == 3000
        assert s.queues[1].bytes == 1500
        drain_in_order(s)
        assert s.queues[0].bytes == 0 and s.queues[1].bytes == 0

    def test_total_bytes(self):
        s = PifoScheduler(make_queues(2), rank_fn=stfq_rank)
        fill(s, 0, 4)
        assert s.total_bytes == 4 * 1500
        drain_in_order(s)
        assert s.is_empty

    def test_no_rounds(self):
        assert PifoScheduler(make_queues(2)).supports_rounds is False
