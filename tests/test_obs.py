"""repro.obs: tracer ring buffer, metrics registry, profiling, summaries."""

import io
import json

import pytest

from repro.harness.config import ExperimentConfig
from repro.harness.report import format_port_breakdown
from repro.harness.runner import run_experiment
from repro.obs import (
    NULL_TRACER,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NullTracer,
    RunProfile,
    Tracer,
    format_trace_summary,
    summarize_events,
    summarize_trace_file,
)
from repro.sim.engine import Simulator
from tests.helpers import data_pkt, make_port


class TestTracer:
    def test_records_lifecycle_events(self):
        tr = Tracer()
        pkt = data_pkt(flow_id=7, seq=3)
        tr.enqueue(100, "p0", 2, pkt)
        tr.dequeue(250, "p0", 2, pkt, 150)
        tr.mark(250, "p0", 2, pkt, "deq")
        tr.drop(300, "p0", 1, pkt, "buffer")
        tr.cwnd(400, 7, 12.5, "ecn")
        tr.alpha(400, 7, 0.25)
        tr.rate(500, 7, 1e9)
        assert len(tr) == 7
        kinds = [d["ev"] for d in tr.iter_dicts()]
        assert kinds == [
            "enqueue", "dequeue", "mark", "drop", "cwnd", "alpha", "rate",
        ]
        deq = list(tr.iter_dicts())[1]
        assert deq["sojourn_ns"] == 150 and deq["q"] == 2 and deq["flow"] == 7

    def test_ring_evicts_oldest(self):
        tr = Tracer(capacity=3)
        pkt = data_pkt()
        for t in range(5):
            tr.enqueue(t, "p0", 0, pkt)
        assert len(tr) == 3
        assert tr.dropped_events == 2
        assert [d["t"] for d in tr.iter_dicts()] == [2, 3, 4]

    def test_export_jsonl_round_trips(self, tmp_path):
        tr = Tracer()
        tr.enqueue(1, "p0", 0, data_pkt(flow_id=1, seq=0))
        tr.cwnd(2, 1, 10.0, "timeout")
        path = str(tmp_path / "t.jsonl")
        assert tr.export_jsonl(path) == 2
        lines = open(path).read().splitlines()
        assert [json.loads(l)["ev"] for l in lines] == ["enqueue", "cwnd"]
        # compact, sorted-key formatting (the determinism contract)
        assert lines[0] == json.dumps(
            json.loads(lines[0]), sort_keys=True, separators=(",", ":")
        )

    def test_export_to_stream_and_clear(self):
        tr = Tracer()
        tr.enqueue(1, "p0", 0, data_pkt())
        buf = io.StringIO()
        assert tr.export_jsonl(buf) == 1
        tr.clear()
        assert len(tr) == 0 and tr.dropped_events == 0

    def test_null_tracer_records_nothing(self):
        pkt = data_pkt()
        NULL_TRACER.enqueue(1, "p0", 0, pkt)
        NULL_TRACER.dequeue(1, "p0", 0, pkt, 0)
        NULL_TRACER.mark(1, "p0", 0, pkt, "enq")
        NULL_TRACER.drop(1, "p0", 0, pkt, "buffer")
        NULL_TRACER.cwnd(1, 1, 1.0, "ecn")
        NULL_TRACER.alpha(1, 1, 0.5)
        NULL_TRACER.rate(1, 1, 1e9)
        assert len(NULL_TRACER) == 0
        assert not NullTracer().enabled and Tracer().enabled


class TestRegistry:
    def test_counter_monotonic(self):
        c = Counter("x")
        c.inc()
        c.inc(4)
        assert c.snapshot() == 5
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_gauge_sets(self):
        g = Gauge("x")
        g.set(7)
        g.set(3)
        assert g.snapshot() == 3

    def test_histogram_exact_aggregates(self):
        h = Histogram("x")
        for v in (1, 2, 3, 100, 1000):
            h.record(v)
        assert h.count == 5 and h.sum == 1106
        assert h.min == 1 and h.max == 1000
        assert h.mean == pytest.approx(1106 / 5)

    def test_histogram_percentile_within_bucket_factor(self):
        h = Histogram("x")
        for v in range(1, 101):
            h.record(v)
        p50 = h.percentile(50.0)
        # bucket upper bound: within a factor of two of the true median
        assert 50 <= p50 <= 127
        assert h.percentile(100.0) == 100.0  # clamped to observed max
        assert h.percentile(0.0) >= 1.0

    def test_histogram_empty_and_negative(self):
        h = Histogram("x")
        assert h.percentile(50.0) is None and h.mean is None
        with pytest.raises(ValueError):
            h.record(-1)

    def test_get_or_create_and_type_collision(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")
        with pytest.raises(ValueError):
            reg.gauge("a")
        assert "a" in reg and len(reg) == 1

    def test_snapshot_is_plain_and_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b.n").inc(2)
        reg.gauge("a.g").set(1.5)
        reg.histogram("c.h").record(8)
        snap = reg.snapshot()
        assert list(snap) == ["a.g", "b.n", "c.h"]
        assert snap["b.n"] == 2 and snap["a.g"] == 1.5
        assert snap["c.h"]["count"] == 1 and snap["c.h"]["buckets"] == {"4": 1}
        json.dumps(snap)  # JSON-serialisable as-is


class TestPortTracing:
    def _traced_port(self, sim, **kwargs):
        port = make_port(sim, **kwargs)
        tracer = Tracer()
        port.tracer = tracer
        return port, tracer

    def test_mark_events_match_port_counter(self):
        from tests.test_port import _MarkAll

        sim = Simulator()
        port, tracer = self._traced_port(sim, aqm=_MarkAll())
        for i in range(5):
            port.receive(data_pkt(seq=i))
        sim.run()
        marks = [d for d in tracer.iter_dicts() if d["ev"] == "mark"]
        assert len(marks) == port.stats.marked_pkts == 5
        assert all(m["where"] == "deq" for m in marks)

    def test_sojourn_matches_queueing_delay(self):
        sim = Simulator()
        port, tracer = self._traced_port(sim)
        for i in range(3):
            port.receive(data_pkt(seq=i))
        sim.run()
        deqs = [d for d in tracer.iter_dicts() if d["ev"] == "dequeue"]
        assert [d["sojourn_ns"] for d in deqs] == sorted(
            d["sojourn_ns"] for d in deqs
        )
        assert deqs[0]["sojourn_ns"] == 0  # head packet never waits

    def test_drop_event_carries_cause_and_queue(self):
        from repro.sched.dwrr import DwrrScheduler
        from repro.sched.base import make_queues

        sim = Simulator()
        port, tracer = self._traced_port(
            sim, buffer_bytes=3000,
            scheduler=DwrrScheduler(make_queues(2)),
        )
        for i in range(4):
            port.receive(data_pkt(seq=i, dscp=1))
        drops = [d for d in tracer.iter_dicts() if d["ev"] == "drop"]
        assert len(drops) == 1
        assert drops[0]["cause"] == "buffer" and drops[0]["q"] == 1

    def test_rx_bytes_counts_dropped_arrivals_too(self):
        sim = Simulator()
        port = make_port(sim, buffer_bytes=3000)
        for i in range(4):
            port.receive(data_pkt(seq=i))
        wire = data_pkt().wire_size
        assert port.stats.rx_bytes == 4 * wire
        assert port.stats.dropped_bytes == wire


class TestStatefulClassifierOnDrop:
    def test_classifier_stepped_once_per_packet(self):
        calls = []

        def classify(pkt):
            calls.append(pkt.seq)
            return 0

        sim = Simulator()
        port = make_port(sim, buffer_bytes=3000, classify=classify)
        for i in range(4):
            port.receive(data_pkt(seq=i))
        # one call per arrival — the dropped packet must not re-classify
        assert calls == [0, 1, 2, 3]
        assert port.stats.dropped_pkts == 1


class TestProfile:
    def test_simulator_counts_events_and_heap(self):
        sim = Simulator()
        for i in range(10):
            sim.schedule(i + 1, lambda: None)
        assert sim.heap_hwm == 10
        sim.run()
        assert sim.events_executed == 10

    def test_capture_and_describe(self):
        sim = Simulator()
        sim.schedule(1, lambda: None)
        sim.run()
        prof = RunProfile.capture(sim, wall_s=2.0)
        assert prof.events == 1 and prof.events_per_sec == 0.5
        assert prof.heap_hwm == 1
        assert prof.as_dict()["events"] == 1
        assert "ev/s" in prof.describe()


class TestSummaries:
    def _events(self):
        tr = Tracer()
        pkt = data_pkt(flow_id=1)
        for t in (10, 20):
            tr.enqueue(t, "p0", 0, pkt)
        tr.dequeue(30, "p0", 0, pkt, 20)
        tr.dequeue(45, "p0", 0, pkt, 25)
        tr.mark(45, "p0", 0, pkt, "deq")
        tr.drop(50, "p0", 1, pkt, "buffer")
        return tr

    def test_summarize_counts_and_rates(self):
        s = summarize_events(self._events().iter_dicts())
        assert s.n_events == 6
        q0 = s.queues[("p0", 0)]
        assert (q0.enqueued, q0.dequeued, q0.marked) == (2, 2, 1)
        assert q0.mark_rate == 0.5
        assert s.queues[("p0", 1)].dropped == 1
        assert s.drop_causes == {"buffer": 1}
        assert s.total_marks == 1 and s.total_drops == 1
        assert s.t_first_ns == 10 and s.t_last_ns == 50

    def test_sojourn_percentiles(self):
        s = summarize_events(self._events().iter_dicts())
        assert s.sojourns_ns == [20, 25]
        assert s.sojourn_percentile(50.0) == 20.0
        assert s.sojourn_percentile(99.0) == 25.0
        assert s.sojourn_mean_ns == 22.5

    def test_file_and_live_summaries_agree(self, tmp_path):
        tr = self._events()
        path = str(tmp_path / "t.jsonl")
        tr.export_jsonl(path)
        live = summarize_events(tr.iter_dicts())
        from_file = summarize_trace_file(path)
        assert format_trace_summary(live) == format_trace_summary(from_file)

    def test_format_mentions_percentiles(self):
        out = format_trace_summary(summarize_events(self._events().iter_dicts()))
        assert "p50=" in out and "p99=" in out and "mark-rate" in out
        assert "drop causes: buffer=1" in out

    def test_empty_trace_formats(self):
        out = format_trace_summary(summarize_events([]))
        assert "0 events" in out


class TestRunMetrics:
    @pytest.fixture(scope="class")
    def result(self):
        return run_experiment(ExperimentConfig(
            scheme="tcn", scheduler="dwrr", workload="cache",
            load=0.5, n_flows=12, seed=2,
        ))

    def test_port_counters_match_stats(self, result):
        total_marks = sum(
            v for k, v in result.metrics.items()
            # port-level key: port.<name>.marked_pkts (3 dotted parts);
            # per-queue keys have 4
            if k.startswith("port.") and k.endswith(".marked_pkts")
            and len(k.split(".")) == 3
        )
        assert total_marks == result.marks

    def test_queue_counters_present(self, result):
        assert any(".q0.dequeued_pkts" in k for k in result.metrics)

    def test_fct_histogram_counts_completions(self, result):
        assert result.metrics["fct_ns"]["count"] == result.completed

    def test_profile_attached(self, result):
        assert result.profile["events"] == result.events > 0
        assert result.profile["heap_hwm"] > 0

    def test_port_breakdown_renders(self, result):
        out = format_port_breakdown(result.metrics)
        assert "sw0:p0" in out and "mark%" in out

    def test_port_breakdown_empty(self):
        assert "no port traffic" in format_port_breakdown({})


class TestRegisterMetricsHooks:
    def test_custom_aqm_hook_called(self):
        from repro.aqm.base import Aqm

        class CountingAqm(Aqm):
            def register_metrics(self, registry, port):
                registry.gauge(f"aqm.{port.name}.custom").set(42)

        sim = Simulator()
        port = make_port(sim, aqm=CountingAqm())
        reg = MetricsRegistry()
        port.aqm.register_metrics(reg, port)
        port.scheduler.register_metrics(reg, port)  # default: no-op
        assert reg.snapshot() == {"aqm.port.custom": 42}
