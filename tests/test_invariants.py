"""System-wide conservation invariants, driven by hypothesis.

These catch accounting bugs that unit tests miss: bytes in a port must be
conserved (rx = tx + dropped + buffered), occupancy may never go negative
or exceed the configured buffer, and every byte a sender ships is either
delivered exactly once (in order) or accounted as a drop somewhere.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core.tcn import Tcn
from repro.sched.base import make_queues
from repro.sched.dwrr import DwrrScheduler
from repro.sched.hybrid import SpDwrrScheduler, SpWfqScheduler
from repro.sched.pifo import PifoScheduler, stfq_rank
from repro.sched.sp import StrictPriorityScheduler
from repro.sched.wfq import WfqScheduler
from repro.sched.wrr import WrrScheduler
from repro.sim.engine import Simulator
from repro.topo.star import StarTopology
from repro.transport.dctcp import DctcpSender
from repro.transport.flow import Flow
from repro.transport.receiver import Receiver
from repro.units import GBPS, KB, SEC, USEC
from tests.helpers import data_pkt, make_port

_SCHED_FACTORIES = [
    lambda n: DwrrScheduler(make_queues(n, quanta=[1500] * n)),
    lambda n: WfqScheduler(make_queues(n)),
    lambda n: WrrScheduler(make_queues(n)),
    lambda n: StrictPriorityScheduler(make_queues(n)),
    lambda n: PifoScheduler(make_queues(n), rank_fn=stfq_rank),
    lambda n: SpDwrrScheduler(make_queues(n, quanta=[1500] * n), n_high=1),
    lambda n: SpWfqScheduler(make_queues(n, quanta=[1500] * n), n_high=1),
]


@settings(max_examples=25, deadline=None)
@given(
    sched_idx=st.integers(min_value=0, max_value=len(_SCHED_FACTORIES) - 1),
    n_queues=st.integers(min_value=2, max_value=6),
    arrivals=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=7),     # dscp
            st.integers(min_value=1, max_value=1460),  # payload
            st.integers(min_value=0, max_value=2000),  # gap ns
        ),
        min_size=1,
        max_size=150,
    ),
    buffer_kb=st.integers(min_value=3, max_value=64),
)
def test_property_port_conserves_bytes(sched_idx, n_queues, arrivals, buffer_kb):
    """rx_pkts == tx_pkts + dropped_pkts + buffered, for any scheduler,
    any arrival pattern, any buffer size; occupancy stays in bounds."""
    sim = Simulator()
    sched = _SCHED_FACTORIES[sched_idx](n_queues)
    port = make_port(
        sim, scheduler=sched, aqm=Tcn(100 * USEC),
        buffer_bytes=buffer_kb * 1000,
        classify=lambda pkt: min(pkt.dscp, n_queues - 1),
    )
    bound_violations = []
    port.occupancy_tracker = lambda now, occ: (
        bound_violations.append(occ)
        if occ < 0 or occ > buffer_kb * 1000
        else None
    )
    t = 0
    for i, (dscp, payload, gap) in enumerate(arrivals):
        t += gap
        sim.schedule_at(
            t, _Arrival(port, data_pkt(flow_id=i, seq=i, payload=payload, dscp=dscp))
        )
    sim.run()
    assert not bound_violations
    stats = port.stats
    buffered = sum(len(q) for q in sched.queues) + _pifo_backlog(sched)
    assert stats.rx_pkts == stats.tx_pkts + stats.dropped_pkts + buffered
    assert port.occupancy == sched.total_bytes


def _pifo_backlog(sched) -> int:
    heap = getattr(sched, "_heap", None)
    return len(heap) if heap is not None else 0


class _Arrival:
    __slots__ = ("port", "pkt")

    def __init__(self, port, pkt):
        self.port = port
        self.pkt = pkt

    def __call__(self):
        self.port.receive(self.pkt)


@settings(max_examples=10, deadline=None)
@given(
    sizes=st.lists(
        st.integers(min_value=100, max_value=400_000), min_size=2, max_size=10
    ),
    seed=st.integers(min_value=0, max_value=100),
)
def test_property_every_flow_delivers_exactly_its_bytes(sizes, seed):
    """End to end through a congested star: whatever the contention, every
    flow completes and the receiver saw exactly flow.size_bytes in order."""
    sim = Simulator()
    topo = StarTopology(
        sim, 5, GBPS,
        sched_factory=lambda: DwrrScheduler(make_queues(2, quanta=[1500, 1500])),
        aqm_factory=lambda: Tcn(250 * USEC),
        buffer_bytes=48 * KB,  # tight: force drops and retransmissions
        link_delay_ns=62_500,
    )
    rng = random.Random(seed)
    flows, receivers = [], []
    delivered = {}

    def on_bytes(flow, nbytes, now):
        delivered[flow.id] = delivered.get(flow.id, 0) + nbytes

    for i, size in enumerate(sizes):
        src = rng.randrange(1, 5)
        f = Flow(i + 1, src, 0, size, service=i % 2)
        flows.append(f)
        receivers.append(Receiver(sim, topo.hosts[0], f, on_bytes=on_bytes))
        s = DctcpSender(sim, topo.hosts[src], f, init_cwnd=8)
        sim.schedule(rng.randrange(0, 1_000_000), s.start)
    sim.run(until=30 * SEC)
    for f, r in zip(flows, receivers):
        assert f.completed, f
        assert r.rcv_nxt == f.npkts
        # deliveries may exceed size (spurious retransmissions) but the
        # reassembled stream is exactly the flow
        assert delivered[f.id] >= f.size_bytes
